//! The computation language in action: the paper's concurrency idioms as
//! actual Scheme programs, evaluated on STING threads with per-thread
//! generational heaps.
//!
//! Run with: `cargo run --release --example scheme_concurrency`

use sting::prelude::*;

fn main() {
    let vm = VmBuilder::new().vps(2).name("scheme").build();
    let interp = Interp::new(vm.clone());

    // --- Futures and stealing -----------------------------------------
    let v = interp
        .eval(
            r#"
(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
;; Split across two futures.
(let ((a (future (fib 18)))
      (b (future (fib 17))))
  (+ (touch a) (touch b)))
"#,
        )
        .unwrap();
    println!("(fib 19) via futures = {v}");

    // --- The Figure 2 sieve -------------------------------------------
    let primes = interp
        .eval(
            r#"
(define (make-filter n input output)
  (fork-thread
    (lambda ()
      (let loop ((c (stream-cursor input)))
        (let ((x (cursor-next! c)))
          (cond ((eof-object? x) (stream-close! output))
                ((zero? (modulo x n)) (loop c))
                (else (stream-attach! output x) (loop c))))))))

(define (sieve limit)
  (let ((numbers (make-stream)))
    (fork-thread
      (lambda ()
        (let loop ((i 2))
          (if (> i limit)
              (stream-close! numbers)
              (begin (stream-attach! numbers i) (loop (+ i 1)))))))
    (let loop ((in numbers) (primes '()))
      (let ((x (cursor-next! (stream-cursor in))))
        (if (eof-object? x)
            (reverse primes)
            (let ((out (make-stream)))
              (make-filter x in out)
              (loop out (cons x primes))))))))

(sieve 100)
"#,
        )
        .unwrap();
    println!("sieve(100) = {primes}");

    // --- Master/slave over a tuple space -------------------------------
    let total = interp
        .eval(
            r#"
(define ts (make-ts))
(define workers
  (map (lambda (k)
         (fork-thread
           (lambda ()
             (let loop ((done 0))
               (let ((job (ts-get ts (list 'job '?))))
                 (if (< (car job) 0)
                     done
                     (begin
                       (ts-put ts (list 'ack (car job) (* (car job) (car job))))
                       (loop (+ done 1)))))))))
       '(1 2 3)))

(let put ((n 0))
  (when (< n 30) (ts-put ts (list 'job n)) (put (+ n 1))))
(let collect ((n 0) (total 0))
  (if (= n 30)
      (begin
        (for-each (lambda (w) (ts-put ts (list 'job -1))) workers)
        (wait-for-all workers)
        total)
      (collect (+ n 1)
               (+ total (car (ts-get ts (list 'ack n '?)))))))
"#,
        )
        .unwrap();
    println!("Σ n² for n<30 via tuple-space farm = {total}");

    // --- Speculation -----------------------------------------------------
    let winner = interp
        .eval(
            r#"
(let* ((slow (fork-thread (lambda () (sleep-ms 2000) 'tortoise)))
       (fast (fork-thread (lambda () 'hare))))
  (cadr (wait-for-one! (list slow fast))))
"#,
        )
        .unwrap();
    println!("speculative race won by: {winner}");

    // --- Per-thread GC ----------------------------------------------------
    let stats = interp
        .eval(
            r#"
(begin
  (define (churn n acc) (if (= n 0) acc (churn (- n 1) (cons n acc))))
  (length (churn 200000 '()))
  (gc-stats))  ;; (minor major allocated copied promotions)
"#,
        )
        .unwrap();
    println!("per-thread gc-stats (minor major allocated copied promotions) = {stats}");

    let snap = vm.counters().snapshot();
    println!(
        "\nsubstrate counters: threads={} steals={} blocks={} preemptions={}",
        snap.threads_created, snap.steals, snap.blocks, snap.preemptions
    );
    vm.shutdown();
}
