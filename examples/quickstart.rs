//! Quickstart: the architecture of Figure 1, walked end to end.
//!
//! Builds a virtual machine (VPs + policy managers on a physical machine),
//! forks first-class threads, demands values with stealing, and prints the
//! substrate counters that the rest of the examples drill into.
//!
//! Run with: `cargo run --release --example quickstart`

use sting::prelude::*;

fn main() {
    // A virtual machine: 4 virtual processors multiplexed over the
    // available physical processors, each VP closed over a migrating FIFO
    // policy manager (the default fair scheduler).
    let vm = VmBuilder::new().vps(4).name("quickstart").build();
    println!("machine: {} VPs", vm.vp_count());
    for vp in vm.vps() {
        println!("  vp {} policy = {}", vp.index(), vp.policy_name());
    }

    // Threads are first-class objects.
    let r = vm.run(|cx| {
        // Eager fork (the paper's fork-thread).
        let eager = cx.fork(|_cx| (1..=10i64).product::<i64>());

        // Delayed thread (create-thread): runs only when demanded — and
        // since we demand it ourselves, it is *stolen* onto our TCB, with
        // no context switch and no new TCB.
        let lazy = cx.delayed(|_cx| (1..=10i64).sum::<i64>());

        // Threads are data: inspect them.
        println!("eager thread {:?}", eager.id());
        println!("lazy  thread {:?} state={:?}", lazy.id(), lazy.state());

        let product = cx.wait(&eager).unwrap().as_int().unwrap();
        let sum = cx.touch(&lazy).unwrap().as_int().unwrap(); // steal!
        println!("10! = {product}, Σ1..10 = {sum}");

        // Futures are just threads.
        let f = Future::spawn(cx, |cx| {
            let inner = Future::delay(&cx.vm(), |_| 21i64);
            inner.touch().unwrap().as_int().unwrap() * 2
        });
        f.touch().unwrap().as_int().unwrap()
    });
    println!("future result = {}", r.unwrap());

    // The genealogy of everything we ran, and the substrate counters.
    let snap = vm.counters().snapshot();
    println!(
        "counters: threads={} tcbs={} steals={} context-switches={} stacks-recycled={}",
        snap.threads_created,
        snap.tcbs_allocated,
        snap.steals,
        snap.context_switches,
        snap.stacks_recycled
    );
    vm.shutdown();
}
