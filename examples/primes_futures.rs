//! Figure 3's result-parallel prime finder with futures — and the §4.1.1
//! stealing story: under a LIFO scheduler touching walks the dependency
//! chain and *steals* delayed futures (cheap, local); under FIFO the chain
//! mostly blocks instead.  Compare the counters this prints.
//!
//! Run with: `cargo run --release --example primes_futures [limit]`

use std::sync::Arc;
use sting::prelude::*;

/// `(filter i primes)` from Figure 3: `n` joins the prime list if no known
/// prime up to √n divides it.  `primes` is a future of the prime list so
/// touching expresses the data dependency.
fn filter_prime(cx: &Cx, n: i64, primes: &Future) -> Value {
    let mut j = 3i64;
    while j * j <= n {
        if n % j == 0 {
            return primes.force(cx);
        }
        j += 2;
    }
    Value::cons(Value::Int(n), primes.force(cx))
}

fn primes_with_futures(vm: &Arc<Vm>, limit: i64) -> Value {
    vm.run(move |cx| {
        let mut primes = Future::spawn(cx, |_| Value::list([Value::Int(2)]));
        let mut i = 3i64;
        while i <= limit {
            let prev = primes.clone();
            // Each odd number gets an eager future (the paper's `(future
            // E)`), dependent on the previous one — the implicit dependence
            // chain that makes scheduling order matter.
            primes = Future::spawn(cx, move |cx| filter_prime(cx, i, &prev));
            i += 2;
        }
        primes.force(cx)
    })
    .unwrap()
}

fn run_with_policy(name: &str, factory: impl Fn() -> Box<dyn PolicyManager> + 'static, limit: i64) {
    let vm = VmBuilder::new()
        .vps(1)
        .policy(move |_| factory())
        .name(name)
        .build();
    let before = vm.counters().snapshot();
    let start = std::time::Instant::now();
    let primes = primes_with_futures(&vm, limit);
    let elapsed = start.elapsed();
    let d = vm.counters().snapshot().since(&before);
    let count = primes.list_iter().count();
    println!(
        "{name:<12} {count:>4} primes ≤ {limit} in {elapsed:>9.2?}: \
         threads={:<5} TCBs={:<4} steals={:<5} blocks={:<4} switches={}",
        d.threads_created, d.tcbs_allocated, d.steals, d.blocks, d.context_switches
    );
}

fn main() {
    let limit: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    println!("Figure 3 primes with futures — stealing under different policies\n");
    run_with_policy("local-lifo", || policies::local_lifo().boxed(), limit);
    run_with_policy("local-fifo", || policies::local_fifo().boxed(), limit);
    println!(
        "\nStealing throttles thread creation: with LIFO scheduling nearly every\n\
         future is stolen onto its toucher's TCB (steals ≈ futures, TCBs stay\n\
         flat); FIFO runs filters in creation order so touching blocks instead."
    );
}
