//! The Sieve of Eratosthenes of Figure 2: a chain of filter threads
//! connected by synchronizing streams, with the three concurrency
//! disciplines the paper derives from one abstraction — eager, lazy
//! (demand-driven via delayed threads), and throttled.
//!
//! Run with: `cargo run --release --example sieve [limit]`

use std::sync::Arc;
use std::time::Instant;
use sting::prelude::*;

/// One sieve filter: remove multiples of `n` from `input`, forward the
/// rest to `output` (the paper's `filter` procedure).
fn filter_thread(cx: &Cx, n: i64, input: Stream, output: Stream) -> Arc<sting::core::Thread> {
    cx.fork(move |_cx| {
        let mut cur = input.cursor();
        while let Some(v) = cur.next() {
            let x = v.as_int().unwrap();
            if x % n != 0 {
                output.attach(v);
            }
        }
        output.close();
        0i64
    })
}

/// The sieve skeleton of Figure 2, parameterized (like the paper's `op`
/// argument) by how new filters come into being.
fn sieve(cx: &Cx, limit: i64, eager: bool) -> Vec<i64> {
    let numbers = Stream::new();
    {
        let numbers = numbers.clone();
        cx.fork(move |_cx| {
            for i in 2..=limit {
                numbers.attach(Value::Int(i));
            }
            numbers.close();
            0i64
        });
    }
    let mut primes = Vec::new();
    let mut input = numbers;
    loop {
        let Some(v) = input.cursor().next() else {
            break;
        };
        let p = v.as_int().unwrap();
        primes.push(p);
        let output = Stream::new();
        if eager {
            filter_thread(cx, p, input.clone(), output.clone());
        } else {
            // Lazy variant: the filter is a delayed thread; demand from the
            // downstream reader (us, next iteration) schedules it.
            let (inp, out) = (input.clone(), output.clone());
            let t = cx.delayed(move |cx2| {
                let _t = filter_thread(cx2, p, inp, out);
                0i64
            });
            sting::core::tc::thread_run(&t, cx.current_vp().index()).unwrap();
        }
        input = output;
    }
    primes
}

fn main() {
    let limit: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    let vm = VmBuilder::new().vps(2).name("sieve").build();

    for eager in [true, false] {
        let label = if eager { "eager" } else { "lazy " };
        let before = vm.counters().snapshot();
        let start = Instant::now();
        let primes = vm
            .run(move |cx| {
                let ps = sieve(cx, limit, eager);
                Value::list(ps.into_iter().map(Value::Int))
            })
            .unwrap();
        let elapsed = start.elapsed();
        let d = vm.counters().snapshot().since(&before);
        let count = primes.list_iter().count();
        println!(
            "{label} sieve to {limit}: {count} primes in {elapsed:?} \
             (threads={} context-switches={} blocks={})",
            d.threads_created, d.context_switches, d.blocks
        );
    }

    let tail = vm
        .run(move |cx| {
            let ps = sieve(cx, limit, true);
            Value::list(ps.into_iter().rev().take(5).map(Value::Int))
        })
        .unwrap();
    println!("largest primes ≤ {limit}: {tail}");
    vm.shutdown();
}
