;; Figure 2's Sieve of Eratosthenes over synchronizing streams — a
;; standalone STING Scheme program.  Load into the REPL:
;;
;;   cargo run --release -p sting --bin repl -- examples/scheme/sieve.scm

(define (make-filter n input output)
  (fork-thread
    (lambda ()
      (let loop ((c (stream-cursor input)))
        (let ((x (cursor-next! c)))
          (cond ((eof-object? x) (stream-close! output))
                ((zero? (modulo x n)) (loop c))
                (else (stream-attach! output x) (loop c))))))))

(define (sieve limit)
  (let ((numbers (make-stream)))
    (fork-thread
      (lambda ()
        (let loop ((i 2))
          (if (> i limit)
              (stream-close! numbers)
              (begin (stream-attach! numbers i) (loop (+ i 1)))))))
    (let loop ((in numbers) (primes '()))
      (let ((x (cursor-next! (stream-cursor in))))
        (if (eof-object? x)
            (reverse primes)
            (let ((out (make-stream)))
              (make-filter x in out)
              (loop out (cons x primes))))))))

(display "primes up to 100: ")
(display (sieve 100))
(newline)
(length (sieve 200))
