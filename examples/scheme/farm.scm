;; A master/slave farm over a first-class tuple space (§4.2) — load into
;; the REPL:
;;
;;   cargo run --release -p sting --bin repl -- examples/scheme/farm.scm

(define ts (make-ts))

(define (worker)
  (fork-thread
    (lambda ()
      (let loop ((done 0))
        (let ((job (ts-get ts (list 'job '?))))
          (if (< (car job) 0)
              done
              (begin
                (ts-put ts (list 'result (car job) (* (car job) (car job))))
                (loop (+ done 1)))))))))

(define (run-farm jobs nworkers)
  (let ((workers (map (lambda (k) (worker)) (iota nworkers))))
    (for-each (lambda (n) (ts-put ts (list 'job n))) (iota jobs))
    (let ((total
           (fold + 0
                 (map (lambda (n)
                        (car (ts-get ts (list 'result n '?))))
                      (iota jobs)))))
      (for-each (lambda (w) (ts-put ts (list 'job -1))) workers)
      (wait-for-all workers)
      total)))

(display "sum of squares 0..19 = ")
(define answer (run-farm 20 3))
(display answer)
(newline)
answer
