//! Speculative (OR-parallel) computation (§4.3): race several search
//! strategies under a priority scheduler, take the first answer, and
//! terminate the losers so their work is reclaimed.
//!
//! Run with: `cargo run --release --example speculative`

use std::sync::Arc;
use sting::prelude::*;

/// Search for a number in [lo, hi) whose "hash" has `zeros` trailing zero
/// bits, scanning with the given stride — different strategies explore the
/// space in different orders.
fn search(cx: &Cx, lo: i64, hi: i64, stride: i64, zeros: u32) -> Option<i64> {
    let mut x = lo;
    while x < hi {
        let h = (x.wrapping_mul(0x9E3779B97F4A7C15u64 as i64)) as u64;
        if h.trailing_zeros() >= zeros {
            return Some(x);
        }
        x += stride;
        if x % 1024 == 0 {
            cx.checkpoint(); // stay preemptible (and terminable)
        }
    }
    None
}

fn main() {
    let vm = VmBuilder::new()
        .vps(2)
        .policy(|_| policies::priority_high().boxed())
        .name("speculative")
        .build();

    let r = vm.run(|cx| {
        let zeros = 17;
        // Three speculative strategies; the middle one is "promising", so
        // give it a higher priority (programmable priorities, §4.3).
        let strategies = [(1i64, 1i64), (7, 3), (13, 5)];
        let tasks: Vec<Arc<sting::core::Thread>> = strategies
            .iter()
            .map(|&(start, stride)| {
                cx.fork(
                    move |cx| match search(cx, start, 50_000_000, stride, zeros) {
                        Some(x) => Value::Int(x),
                        None => Value::Bool(false),
                    },
                )
            })
            .collect();
        tasks[1].set_priority(10);

        // wait-for-one + terminate the losers (the paper's definition).
        let (winner, result) = race(&tasks);
        let value = result.unwrap();
        println!("strategy {winner} won with {value}");

        // The losers determine with the loss marker; their state is
        // reclaimed (stacks recycled into the VP pools).
        for (i, t) in tasks.iter().enumerate() {
            let outcome = sting::core::tc::wait(t);
            println!("  task {i}: {outcome:?}");
        }
        value
    });

    let snap = vm.counters().snapshot();
    println!(
        "result = {} (threads={} preemptions={} stacks-recycled={})",
        r.unwrap(),
        snap.threads_created,
        snap.preemptions,
        snap.stacks_recycled
    );

    // AND-parallel counterpart: barrier synchronization via wait_for_all.
    let sum = vm.run(|cx| {
        let parts: Vec<_> = (0..4i64)
            .map(|k| cx.fork(move |_| (k * 1000..(k + 1) * 1000).sum::<i64>()))
            .collect();
        wait_for_all(&parts)
            .into_iter()
            .map(|r| r.unwrap().as_int().unwrap())
            .sum::<i64>()
    });
    println!("wait-for-all sum 0..4000 = {}", sum.unwrap());
    vm.shutdown();
}
