//! Master/slave computation over a first-class tuple space (§4.2): the
//! master deposits `("job" id payload)` tuples, a farm of workers removes
//! them associatively and publishes `("ack" id result)` tuples.  The VM
//! runs a **global FIFO** policy — the configuration the paper recommends
//! for worker farms (long-lived workers, perfect load sharing).
//!
//! Run with: `cargo run --release --example master_slave [jobs] [workers]`

use sting::core::policies::{GlobalQueue, QueueOrder};
use sting::prelude::*;

/// A deliberately uneven unit of work.
fn crunch(seed: i64) -> i64 {
    let mut x = seed;
    for _ in 0..(seed % 7 + 1) * 1000 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    x & 0xFFFF
}

fn main() {
    let jobs: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let workers: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    let queue = GlobalQueue::shared(QueueOrder::Fifo);
    let vm = VmBuilder::new()
        .vps(4)
        .policy(move |_| queue.policy())
        .name("master-slave")
        .build();

    let ts = TupleSpace::new();
    let job = Value::sym("job");
    let ack = Value::sym("ack");

    // The worker pool: long-lived threads that "rarely block" except to
    // take the next job.
    let pool: Vec<_> = (0..workers)
        .map(|w| {
            let ts = ts.clone();
            let (job, ack) = (job.clone(), ack.clone());
            vm.fork(move |cx| {
                let mut done = 0i64;
                loop {
                    let b = ts.get(&Template::new(vec![lit(job.clone()), formal(), formal()]));
                    let id = b[0].as_int().unwrap();
                    if id < 0 {
                        break; // poison pill
                    }
                    let payload = b[1].as_int().unwrap();
                    ts.put(vec![
                        ack.clone(),
                        Value::Int(id),
                        Value::Int(crunch(payload)),
                    ]);
                    cx.checkpoint();
                    done += 1;
                }
                println!("worker {w} processed {done} jobs");
                done
            })
        })
        .collect();

    let start = std::time::Instant::now();
    for id in 0..jobs {
        ts.put(vec![job.clone(), Value::Int(id), Value::Int(id * 17 + 3)]);
    }
    // Collect results (associative match on the id).
    let mut checksum = 0i64;
    for id in 0..jobs {
        let b = ts.get(&Template::new(vec![lit(ack.clone()), lit(id), formal()]));
        checksum ^= b[0].as_int().unwrap();
    }
    let elapsed = start.elapsed();

    for _ in 0..workers {
        ts.put(vec![job.clone(), Value::Int(-1), Value::Int(0)]);
    }
    let processed: i64 = pool
        .iter()
        .map(|t| t.join_blocking().unwrap().as_int().unwrap())
        .sum();

    let snap = vm.counters().snapshot();
    println!(
        "\n{jobs} jobs / {workers} workers on policy {} in {elapsed:?}",
        vm.vp(0).unwrap().policy_name()
    );
    println!(
        "checksum {checksum:#x}; {processed} jobs processed; blocks={} wakeups={}",
        snap.blocks, snap.wakeups
    );
    vm.shutdown();
}
