//! Echo/HTTP-lite server: one first-class STING thread per connection.
//!
//! The paper's case for threads-as-connections: a server accepts on a
//! STING thread, and every accepted connection gets its own thread under
//! a policy-managed priority — thousands of them multiplex over a handful
//! of virtual processors, because blocking on a socket parks only the
//! calling thread (the reactor arms fd readiness and re-enqueues the
//! thread when the kernel reports it).  Connections that speak
//! `GET ...` get a minimal HTTP response; anything else is echoed until
//! EOF.
//!
//! Run with: `cargo run --release --example echo_server`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use sting::core::net::{TcpListener, TcpStream, LOCALHOST};
use sting::prelude::*;

const CONNS: usize = 200;
const ROUNDS: usize = 5;

/// Serves one connection to completion; returns bytes moved.
fn serve(s: &TcpStream) -> usize {
    let mut buf = [0u8; 512];
    let mut moved = 0;
    loop {
        let n = match s.read(&mut buf) {
            Ok(0) | Err(_) => return moved,
            Ok(n) => n,
        };
        moved += n;
        if buf[..n].starts_with(b"GET ") {
            // HTTP-lite: one fixed response, then close.
            let body = b"sting says hello\n";
            let head = format!("HTTP/1.0 200 OK\r\ncontent-length: {}\r\n\r\n", body.len());
            let _ = s.write_all(head.as_bytes());
            let _ = s.write_all(body);
            s.shutdown_write();
            return moved;
        }
        if s.write_all(&buf[..n]).is_err() {
            return moved;
        }
    }
}

fn main() {
    // Two VPs and 32 KiB stacks: connection threads are cheap, and the
    // policy manager (not the reactor) decides which ready connection
    // runs next.
    let vm = VmBuilder::new()
        .vps(2)
        .stack_size(32 * 1024)
        .name("echo-server")
        .build();

    let listener = Arc::new(TcpListener::bind(LOCALHOST, 0).unwrap());
    let port = listener.local_port().unwrap();
    println!("echo server on 127.0.0.1:{port} ({CONNS} connections)");

    let served = Arc::new(AtomicUsize::new(0));
    let acceptor = {
        let listener = listener.clone();
        let vm2 = vm.clone();
        let served = served.clone();
        vm.fork(move |_cx| {
            for i in 0..CONNS + 1 {
                let s = match listener.accept() {
                    Ok(s) => s,
                    Err(_) => break,
                };
                let served = served.clone();
                // Every third connection is "interactive" (higher
                // priority): the policy manager runs its wakes first.
                ThreadBuilder::new(&vm2)
                    .name(&format!("conn-{i}"))
                    .priority(if i % 3 == 0 { 2 } else { 0 })
                    .spawn(move |_cx| {
                        let moved = serve(&s);
                        served.fetch_add(1, Ordering::Relaxed);
                        moved as i64
                    })
                    .unwrap();
            }
            0i64
        })
    };

    // Drive it: CONNS echo clients, each a STING thread too, plus one
    // HTTP-lite request at the end.
    let start = Instant::now();
    let clients: Vec<_> = (0..CONNS)
        .map(|i| {
            vm.fork(move |_cx| {
                let c = TcpStream::connect(LOCALHOST, port).unwrap();
                let msg = [b'a' + (i % 26) as u8; 64];
                for _ in 0..ROUNDS {
                    c.write_all(&msg).unwrap();
                    let mut buf = [0u8; 64];
                    let mut got = 0;
                    while got < buf.len() {
                        let n = c.read(&mut buf[got..]).unwrap();
                        assert_ne!(n, 0, "server hung up mid-echo");
                        got += n;
                    }
                    assert_eq!(buf, msg);
                }
                c.shutdown_write();
                (ROUNDS * msg.len()) as i64
            })
        })
        .collect();
    let echoed: i64 = clients
        .iter()
        .map(|t| t.join_blocking().unwrap().as_int().unwrap())
        .sum();

    let http = vm.fork(move |_cx| {
        let c = TcpStream::connect(LOCALHOST, port).unwrap();
        c.write_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        let mut out = Vec::new();
        let mut buf = [0u8; 256];
        loop {
            match c.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => out.extend_from_slice(&buf[..n]),
            }
        }
        Value::Str(String::from_utf8_lossy(&out).into_owned().into())
    });
    let response = http.join_blocking().unwrap();
    acceptor.join_blocking().unwrap();

    println!(
        "echoed {} KiB over {CONNS} connection-threads in {:?}",
        echoed / 1024,
        start.elapsed()
    );
    println!(
        "http-lite: {:?}",
        response
            .as_str()
            .and_then(|r| r.lines().next().map(str::to_string))
            .unwrap_or_default()
    );
    println!("served {} connections", served.load(Ordering::Relaxed));
    vm.shutdown();
}
