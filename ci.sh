#!/usr/bin/env bash
# Local CI gate — the same steps .github/workflows/ci.yml runs.
#
#   ./ci.sh          # format check, lints, tier-1 build + tests, rustdoc
#   ./ci.sh fmt      # just the format check
#   ./ci.sh clippy   # just the lints
#   ./ci.sh test     # just tier-1 (release build + full test suite)
#   ./ci.sh doc      # just the rustdoc build (warnings are errors)
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$*"; }

run_fmt() {
    step "cargo fmt --check"
    cargo fmt --all -- --check
}

run_clippy() {
    step "cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
}

run_test() {
    step "tier-1: cargo build --release"
    cargo build --release
    step "tier-1: cargo test"
    cargo test -q
}

run_doc() {
    step "cargo doc (RUSTDOCFLAGS=-D warnings)"
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
}

case "${1:-all}" in
    fmt) run_fmt ;;
    clippy) run_clippy ;;
    test) run_test ;;
    doc) run_doc ;;
    all)
        run_fmt
        run_clippy
        run_test
        run_doc
        ;;
    *)
        echo "usage: $0 [fmt|clippy|test|doc|all]" >&2
        exit 2
        ;;
esac

printf '\nCI OK\n'
