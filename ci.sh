#!/usr/bin/env bash
# Local CI gate — the same steps .github/workflows/ci.yml runs.
#
#   ./ci.sh          # format check, lints, tier-1 build + tests, rustdoc
#   ./ci.sh fmt      # just the format check
#   ./ci.sh clippy   # just the lints
#   ./ci.sh test     # just tier-1 (release build + full test suite)
#   ./ci.sh doc      # rustdoc build (warnings are errors), doctests, and
#                    # a relative-link check over the top-level markdown
#   ./ci.sh check    # model checker: sting-check self-tests + the deque/
#                    # trace interleaving models over the production source
#   ./ci.sh analyze  # static analyzer tier (<60s): the expect-flag corpus,
#                    # the expect-clean sweep, the static/dynamic lock-order
#                    # cross-check, and `repl --analyze` over the examples
#   ./ci.sh bench-smoke  # unified benchmark runner, smoke tier (<60s):
#                    # emits a schema-checked BENCH json and asserts the
#                    # Figure 6 shape orderings
#   ./ci.sh shard    # sharded-fleet tier (<60s): fleet + sharded tuple
#                    # integration tests, then a 2-shard farm smoke run
#                    # whose merged per-shard trace must audit clean
#   ./ci.sh io       # reactor-backend matrix: the net/io integration
#                    # suites forced onto epoll and then io_uring via
#                    # STING_IO_BACKEND (uring leg skips with a notice
#                    # on kernels without io_uring)
#   ./ci.sh miri     # deque/trace unit tests under Miri (skips with a
#                    # notice if no nightly Miri toolchain is installed)
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$*"; }

run_fmt() {
    step "cargo fmt --check"
    cargo fmt --all -- --check
}

run_clippy() {
    step "cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
}

run_test() {
    step "tier-1: cargo build --release"
    cargo build --release
    step "tier-1: cargo test"
    cargo test -q
}

run_doc() {
    step "cargo doc (RUSTDOCFLAGS=-D warnings)"
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
    step "cargo test --doc (worked examples in the rustdoc)"
    cargo test -q --doc --workspace
    step "markdown link check (README.md, ARCHITECTURE.md)"
    # Every relative link target in the tour documents must exist: these
    # files name modules and documents by path, and a rename that orphans
    # a link should fail CI, not a reader.  http(s) links are not fetched.
    local bad=0 doc target
    for doc in README.md ARCHITECTURE.md; do
        while IFS= read -r target; do
            target="${target%%#*}"          # strip fragment
            [[ -z "$target" || "$target" == http* ]] && continue
            if [[ ! -e "$target" ]]; then
                echo "$doc: broken relative link -> $target" >&2
                bad=1
            fi
        done < <(grep -oE '\]\(([^)]+)\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
    done
    [[ "$bad" -eq 0 ]] || { echo "link check FAILED" >&2; exit 1; }
    echo "link check OK"
}

run_check() {
    step "model checker: sting-check self-tests (litmus suite)"
    cargo test -q -p sting-check
    step "model checker: production deque/trace models (--cfg sting_check)"
    # A separate target dir so the cfg-switched build never clobbers the
    # normal incremental cache.
    RUSTFLAGS="--cfg sting_check" CARGO_TARGET_DIR=target/check \
        cargo test -q -p sting-core --test model
    step "model checker: production blocking-protocol models (--cfg sting_check)"
    RUSTFLAGS="--cfg sting_check" CARGO_TARGET_DIR=target/check \
        cargo test -q -p sting-core --test model_wait
    step "model checker: cross-shard mailbox models (--cfg sting_check)"
    RUSTFLAGS="--cfg sting_check" CARGO_TARGET_DIR=target/check \
        cargo test -q -p sting-core --test model_fleet
}

run_analyze() {
    step "analyze: corpus (expect-flag) + clean sweep (expect-clean)"
    cargo test -q -p sting-analyze
    step "analyze: static/dynamic lock-order cross-check"
    cargo test -q -p sting --test analyze_crosscheck
    step "analyze: repl --analyze over the shipped examples (expect exit 0)"
    cargo build -q -p sting --bin repl
    ./target/debug/repl --analyze examples/scheme/*.scm
    step "analyze: repl --analyze over the corpus (expect exit 1)"
    if ./target/debug/repl --analyze crates/analyze/tests/corpus/*.scm; then
        echo "corpus unexpectedly came back clean" >&2
        exit 1
    fi
}

run_bench_smoke() {
    step "bench-smoke: cargo build --release -p sting-bench --bin bench_all"
    cargo build --release -p sting-bench --bin bench_all
    step "bench-smoke: bench_all --smoke (schema + Figure 6 shape gates)"
    # The smoke tier includes the echo-server rows (connections-held,
    # block-wake, echo-rtt).  When the committed smoke baseline exists,
    # gate against it at 100%: smoke timings on a loaded box jitter far
    # more than a full run, so this catches order-of-magnitude latency
    # regressions (a lost wake-up turns µs p50s into ms), while the
    # committed full report (BENCH_PR10.json) stays the reference for
    # fine-grained comparisons.  Server rows are backend-labeled
    # (echo-rtt-epoll / echo-rtt-uring), so the gate also catches one
    # backend regressing while the other stays healthy.
    local against=()
    if [[ -f BENCH_PR10_SMOKE.json ]]; then
        against=(--against BENCH_PR10_SMOKE.json --threshold 1.0)
    fi
    ./target/release/bench_all --smoke --out target/BENCH_SMOKE.json "${against[@]}"
}

run_shard() {
    step "shard: fleet + sharded tuple-space integration tests"
    cargo test -q -p sting-core --test fleet
    cargo test -q -p sting-tuple --test sharded
    step "shard: 2-shard farm smoke + merged trace audit (shard_smoke)"
    cargo build --release -p sting-bench --bin shard_smoke
    ./target/release/shard_smoke
}

run_io() {
    step "io: net/io suites pinned to epoll (STING_IO_BACKEND=epoll)"
    STING_IO_BACKEND=epoll cargo test -q -p sting-core --test net --test io
    # The in-test matrix already covers both backends when the kernel
    # supports io_uring; the uring leg additionally proves the env-var
    # selection path end to end.  Skip-not-fail on old kernels, like the
    # miri tier without a nightly toolchain: the ignored probe test fails
    # exactly when the kernel refuses the ring.
    if cargo test -q -p sting-core --lib uring::tests::uring_supported_probe \
        -- --ignored >/dev/null 2>&1; then
        step "io: net/io suites pinned to io_uring (STING_IO_BACKEND=uring)"
        STING_IO_BACKEND=uring cargo test -q -p sting-core --test net --test io
        STING_IO_BACKEND=uring cargo test -q -p sting-core --lib uring::
    else
        step "io: uring leg SKIPPED (io_uring unavailable on this kernel)"
    fi
}

run_miri() {
    step "miri: deque/trace unit tests"
    if rustup run nightly cargo miri --version >/dev/null 2>&1; then
        # Unit tests only: the interesting unsafe code (deque slots, trace
        # rings) lives in the lib, and Miri cannot run the fiber layer's
        # inline-asm stack switching anyway.
        rustup run nightly cargo miri test -p sting-core --lib deque:: trace::
    else
        step "miri: SKIPPED (no nightly Miri toolchain installed)"
        echo "install with: rustup toolchain install nightly --component miri"
    fi
}

case "${1:-all}" in
    fmt) run_fmt ;;
    clippy) run_clippy ;;
    test) run_test ;;
    doc) run_doc ;;
    check) run_check ;;
    analyze) run_analyze ;;
    bench-smoke) run_bench_smoke ;;
    shard) run_shard ;;
    io) run_io ;;
    miri) run_miri ;;
    all)
        run_fmt
        run_clippy
        run_test
        run_doc
        run_check
        run_analyze
        run_bench_smoke
        run_shard
        run_io
        ;;
    *)
        echo "usage: $0 [fmt|clippy|test|doc|check|analyze|bench-smoke|shard|io|miri|all]" >&2
        exit 2
        ;;
esac

printf '\nCI OK\n'
