//! The substrate's dynamic value representation.

use crate::Symbol;
use std::any::Any;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// An opaque, reference-counted handle to a runtime object (thread,
/// tuple-space, mutex, stream…) travelling through the substrate as data.
///
/// Handles compare by identity (pointer equality) — two handles are equal
/// exactly when they designate the same runtime object, mirroring Scheme
/// `eq?` on such objects.
#[derive(Clone)]
pub struct NativeHandle {
    tag: &'static str,
    object: Arc<dyn Any + Send + Sync>,
}

impl NativeHandle {
    /// Wraps `object` with a human-readable type `tag` (e.g. `"thread"`).
    pub fn new<T: Any + Send + Sync>(tag: &'static str, object: Arc<T>) -> NativeHandle {
        NativeHandle { tag, object }
    }

    /// The type tag supplied at construction.
    pub fn tag(&self) -> &'static str {
        self.tag
    }

    /// Downcasts to the concrete runtime type.
    pub fn downcast<T: Any + Send + Sync>(&self) -> Option<Arc<T>> {
        self.object.clone().downcast::<T>().ok()
    }

    /// Identity of the underlying object (stable while it is alive).
    pub fn id(&self) -> usize {
        Arc::as_ptr(&self.object) as *const () as usize
    }
}

impl PartialEq for NativeHandle {
    fn eq(&self, other: &NativeHandle) -> bool {
        Arc::ptr_eq(&self.object, &other.object)
    }
}
impl Eq for NativeHandle {}

impl Hash for NativeHandle {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.id().hash(state);
    }
}

impl fmt::Debug for NativeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#<{} {:x}>", self.tag, self.id())
    }
}

/// Discriminant of a [`Value`], for cheap dispatch and error messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ValueKind {
    Unit,
    Bool,
    Int,
    Float,
    Char,
    Sym,
    Str,
    Nil,
    Pair,
    Vector,
    Native,
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueKind::Unit => "unit",
            ValueKind::Bool => "bool",
            ValueKind::Int => "int",
            ValueKind::Float => "float",
            ValueKind::Char => "char",
            ValueKind::Sym => "symbol",
            ValueKind::Str => "string",
            ValueKind::Nil => "nil",
            ValueKind::Pair => "pair",
            ValueKind::Vector => "vector",
            ValueKind::Native => "native",
        };
        f.write_str(s)
    }
}

/// A dynamic substrate value.
///
/// Structured variants share via [`Arc`] and are immutable, so `clone` is
/// O(1) and values move freely between threads.  Floats compare and hash by
/// bit pattern so `Value` can be [`Eq`] + [`Hash`] (tuple-space templates
/// hash on field values).
#[derive(Clone, Default)]
pub enum Value {
    /// The unspecified value (Scheme's unspecified / Rust's `()`).
    #[default]
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer (fixnum).
    Int(i64),
    /// A 64-bit float (flonum); equality/hash use the bit pattern.
    Float(f64),
    /// A character.
    Char(char),
    /// An interned symbol.
    Sym(Symbol),
    /// An immutable string.
    Str(Arc<str>),
    /// The empty list.
    Nil,
    /// An immutable pair (car, cdr).
    Pair(Arc<(Value, Value)>),
    /// An immutable vector.
    Vector(Arc<[Value]>),
    /// A first-class runtime object (thread, tuple-space, …).
    Native(NativeHandle),
}

impl Value {
    /// The value's kind.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Unit => ValueKind::Unit,
            Value::Bool(_) => ValueKind::Bool,
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Char(_) => ValueKind::Char,
            Value::Sym(_) => ValueKind::Sym,
            Value::Str(_) => ValueKind::Str,
            Value::Nil => ValueKind::Nil,
            Value::Pair(_) => ValueKind::Pair,
            Value::Vector(_) => ValueKind::Vector,
            Value::Native(_) => ValueKind::Native,
        }
    }

    /// Interns `name` and wraps it as a symbol value.
    pub fn sym(name: &str) -> Value {
        Value::Sym(Symbol::intern(name))
    }

    /// Builds a cons cell.
    pub fn cons(car: Value, cdr: Value) -> Value {
        Value::Pair(Arc::new((car, cdr)))
    }

    /// Builds a proper list from an iterator.
    pub fn list<I: IntoIterator<Item = Value>>(items: I) -> Value
    where
        I::IntoIter: DoubleEndedIterator,
    {
        let mut v = Value::Nil;
        for item in items.into_iter().rev() {
            v = Value::cons(item, v);
        }
        v
    }

    /// Builds a vector value.
    pub fn vector<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::Vector(items.into_iter().collect())
    }

    /// Wraps a runtime object as a native handle value.
    pub fn native<T: Any + Send + Sync>(tag: &'static str, object: Arc<T>) -> Value {
        Value::Native(NativeHandle::new(tag, object))
    }

    /// Scheme truthiness: everything except `#f` is true.
    pub fn is_truthy(&self) -> bool {
        !matches!(self, Value::Bool(false))
    }

    /// The `car` of a pair.
    pub fn car(&self) -> Option<&Value> {
        match self {
            Value::Pair(p) => Some(&p.0),
            _ => None,
        }
    }

    /// The `cdr` of a pair.
    pub fn cdr(&self) -> Option<&Value> {
        match self {
            Value::Pair(p) => Some(&p.1),
            _ => None,
        }
    }

    /// Integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float payload, accepting `Int` via widening.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// String payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Symbol payload, if this is a `Sym`.
    pub fn as_sym(&self) -> Option<Symbol> {
        match self {
            Value::Sym(s) => Some(*s),
            _ => None,
        }
    }

    /// Native handle, if this is a `Native`.
    pub fn as_native(&self) -> Option<&NativeHandle> {
        match self {
            Value::Native(h) => Some(h),
            _ => None,
        }
    }

    /// Downcasts a native handle value to its runtime type.
    pub fn native_as<T: Any + Send + Sync>(&self) -> Option<Arc<T>> {
        self.as_native().and_then(NativeHandle::downcast)
    }

    /// Iterates over the elements of a proper list (stops at a non-pair
    /// tail, so improper lists yield their leading elements).
    pub fn list_iter(&self) -> ListIter<'_> {
        ListIter { cur: self }
    }

    /// Length of a proper list, or `None` for improper lists/non-lists.
    pub fn list_len(&self) -> Option<usize> {
        let mut n = 0;
        let mut cur = self;
        loop {
            match cur {
                Value::Nil => return Some(n),
                Value::Pair(p) => {
                    n += 1;
                    cur = &p.1;
                }
                _ => return None,
            }
        }
    }
}

/// Iterator over the elements of a list value; see [`Value::list_iter`].
#[derive(Debug, Clone)]
pub struct ListIter<'a> {
    cur: &'a Value,
}

impl<'a> Iterator for ListIter<'a> {
    type Item = &'a Value;

    fn next(&mut self) -> Option<&'a Value> {
        match self.cur {
            Value::Pair(p) => {
                self.cur = &p.1;
                Some(&p.0)
            }
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Unit, Value::Unit) | (Value::Nil, Value::Nil) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Char(a), Value::Char(b)) => a == b,
            (Value::Sym(a), Value::Sym(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Pair(a), Value::Pair(b)) => Arc::ptr_eq(a, b) || **a == **b,
            (Value::Vector(a), Value::Vector(b)) => {
                std::ptr::eq(a.as_ptr(), b.as_ptr()) || **a == **b
            }
            (Value::Native(a), Value::Native(b)) => a == b,
            _ => false,
        }
    }
}
impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            Value::Unit | Value::Nil => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Char(c) => c.hash(state),
            Value::Sym(s) => s.hash(state),
            Value::Str(s) => s.hash(state),
            Value::Pair(p) => {
                p.0.hash(state);
                p.1.hash(state);
            }
            Value::Vector(v) => {
                for x in v.iter() {
                    x.hash(state);
                }
            }
            Value::Native(h) => h.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "#!unspecified"),
            Value::Bool(true) => write!(f, "#t"),
            Value::Bool(false) => write!(f, "#f"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Char(c) => match c {
                ' ' => write!(f, "#\\space"),
                '\n' => write!(f, "#\\newline"),
                '\t' => write!(f, "#\\tab"),
                c => write!(f, "#\\{c}"),
            },
            Value::Sym(s) => write!(f, "{s}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Nil => write!(f, "()"),
            Value::Pair(_) => {
                write!(f, "(")?;
                let mut cur = self;
                let mut first = true;
                loop {
                    match cur {
                        Value::Pair(p) => {
                            if !first {
                                write!(f, " ")?;
                            }
                            first = false;
                            write!(f, "{}", p.0)?;
                            cur = &p.1;
                        }
                        Value::Nil => break,
                        other => {
                            write!(f, " . {other}")?;
                            break;
                        }
                    }
                }
                write!(f, ")")
            }
            Value::Vector(v) => {
                write!(f, "#(")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Value::Native(h) => write!(f, "{h:?}"),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<()> for Value {
    fn from((): ()) -> Value {
        Value::Unit
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Value {
        Value::Int(i64::from(i))
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Value {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Float(x)
    }
}
impl From<char> for Value {
    fn from(c: char) -> Value {
        Value::Char(c)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(Arc::from(s.as_str()))
    }
}
impl From<Symbol> for Value {
    fn from(s: Symbol) -> Value {
        Value::Sym(s)
    }
}

impl FromIterator<Value> for Value {
    /// Collects into a proper list.
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Value {
        Value::list(iter.into_iter().collect::<Vec<_>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Value::from(42).to_string(), "42");
        assert_eq!(Value::from(true).to_string(), "#t");
        assert_eq!(Value::from(false).to_string(), "#f");
        assert_eq!(Value::from(2.5).to_string(), "2.5");
        assert_eq!(Value::from(2.0).to_string(), "2.0");
        assert_eq!(Value::from('x').to_string(), "#\\x");
        assert_eq!(Value::from(' ').to_string(), "#\\space");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
        assert_eq!(Value::Nil.to_string(), "()");
        assert_eq!(
            Value::list([1.into(), 2.into(), 3.into()]).to_string(),
            "(1 2 3)"
        );
        assert_eq!(Value::cons(1.into(), 2.into()).to_string(), "(1 . 2)");
        assert_eq!(
            Value::vector([Value::sym("a"), 2.into()]).to_string(),
            "#(a 2)"
        );
    }

    #[test]
    fn list_iteration_and_len() {
        let l = Value::list((0..5).map(Value::from));
        let items: Vec<i64> = l.list_iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(items, vec![0, 1, 2, 3, 4]);
        assert_eq!(l.list_len(), Some(5));
        assert_eq!(Value::Nil.list_len(), Some(0));
        assert_eq!(Value::cons(1.into(), 2.into()).list_len(), None);
        assert_eq!(Value::from(7).list_len(), None);
    }

    #[test]
    fn structural_equality() {
        let a = Value::list([1.into(), Value::from("x"), Value::sym("s")]);
        let b = Value::list([1.into(), Value::from("x"), Value::sym("s")]);
        assert_eq!(a, b);
        assert_ne!(a, Value::list([1.into()]));
        assert_ne!(Value::from(1), Value::from(1.0));
    }

    #[test]
    fn float_bits_semantics() {
        assert_eq!(Value::from(f64::NAN), Value::from(f64::NAN));
        assert_ne!(Value::from(0.0), Value::from(-0.0));
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::list([1.into(), 2.into()]));
        assert!(set.contains(&Value::list([1.into(), 2.into()])));
        assert!(!set.contains(&Value::list([1.into(), 3.into()])));
    }

    #[test]
    fn native_handle_identity() {
        let obj = Arc::new(5u32);
        let a = Value::native("box", obj.clone());
        let b = Value::native("box", obj);
        let c = Value::native("box", Arc::new(5u32));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.native_as::<u32>().as_deref(), Some(&5));
        assert!(a.native_as::<i64>().is_none());
        assert_eq!(a.as_native().unwrap().tag(), "box");
    }

    #[test]
    fn truthiness() {
        assert!(Value::from(0).is_truthy());
        assert!(Value::Nil.is_truthy());
        assert!(Value::Unit.is_truthy());
        assert!(!Value::from(false).is_truthy());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i32).as_int(), Some(3));
        assert_eq!(Value::from(3usize).as_int(), Some(3));
        assert_eq!(Value::from(3).as_f64(), Some(3.0));
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::sym("q").as_sym(), Some(Symbol::intern("q")));
        let collected: Value = (0..3).map(Value::from).collect();
        assert_eq!(collected, Value::list([0.into(), 1.into(), 2.into()]));
    }

    #[test]
    fn improper_list_iteration_stops_at_tail() {
        let l = Value::cons(1.into(), Value::cons(2.into(), 3.into()));
        let items: Vec<i64> = l.list_iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(items, vec![1, 2]);
        assert_eq!(l.to_string(), "(1 2 . 3)");
    }
}
