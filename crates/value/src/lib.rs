//! Dynamic values exchanged through the STING substrate.
//!
//! STING's coordination layer traffics in Scheme objects: thread results,
//! tuple fields, stream elements.  This crate is the Rust shape of those
//! objects — an immutable, cheaply-clonable dynamic [`Value`] with interned
//! [`Symbol`]s and opaque [`NativeHandle`]s for runtime objects (threads,
//! tuple-spaces, mutexes) that cross the boundary as first-class data.
//!
//! Structured values are immutable at this level; mutation lives either in
//! the computation language's own heap (`sting-areas`/`sting-scheme`) or in
//! the synchronizing data structures the paper uses for communication
//! (tuple-spaces, streams).  This is what lets values flow between threads
//! without locks.
//!
//! ```
//! use sting_value::{Symbol, Value};
//!
//! let v = Value::list([Value::from(1), Value::from("two"), Value::sym("three")]);
//! assert_eq!(v.to_string(), "(1 \"two\" three)");
//! assert_eq!(v.list_iter().count(), 3);
//! assert_eq!(Symbol::intern("three"), Symbol::intern("three"));
//! ```

#![deny(missing_docs)]

mod symbol;
mod value;

pub use symbol::Symbol;
pub use value::{ListIter, NativeHandle, Value, ValueKind};
