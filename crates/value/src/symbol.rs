//! Globally interned symbols.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// An interned identifier, compared and hashed in O(1).
///
/// Symbols are process-global: two [`Symbol::intern`] calls with the same
/// text from any OS or green thread yield equal symbols.
///
/// ```
/// use sting_value::Symbol;
/// let a = Symbol::intern("hello");
/// assert_eq!(&*a.as_str(), "hello");
/// assert_eq!(a, Symbol::intern("hello"));
/// assert_ne!(a, Symbol::intern("world"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<Arc<str>>,
    by_name: HashMap<Arc<str>, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            by_name: HashMap::new(),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning its canonical symbol.
    pub fn intern(name: &str) -> Symbol {
        let mut i = interner().lock();
        if let Some(&id) = i.by_name.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(i.names.len()).expect("symbol table overflow");
        let arc: Arc<str> = Arc::from(name);
        i.names.push(arc.clone());
        i.by_name.insert(arc, id);
        Symbol(id)
    }

    /// The symbol's text.
    pub fn as_str(self) -> Arc<str> {
        interner().lock().names[self.0 as usize].clone()
    }

    /// A stable numeric identity, useful for dense side tables.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Reconstructs a symbol from an index previously obtained via
    /// [`Symbol::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index` was never produced by the interner.
    pub fn from_index(index: u32) -> Symbol {
        assert!(
            (index as usize) < interner().lock().names.len(),
            "invalid symbol index {index}"
        );
        Symbol(index)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("foo-bar");
        let b = Symbol::intern("foo-bar");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Symbol::intern("alpha"), Symbol::intern("beta"));
    }

    #[test]
    fn round_trips_text() {
        let s = Symbol::intern("current-thread");
        assert_eq!(&*s.as_str(), "current-thread");
        assert_eq!(s.to_string(), "current-thread");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::intern("racy-symbol").index()))
            .collect();
        let ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
