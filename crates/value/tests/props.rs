//! Property tests for the substrate value model.

use proptest::prelude::*;
use sting_value::{Symbol, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        Just(Value::Nil),
        any::<bool>().prop_map(Value::from),
        any::<i64>().prop_map(Value::from),
        any::<f64>().prop_map(Value::from),
        any::<char>().prop_map(Value::from),
        "[a-z][a-z0-9-]{0,8}".prop_map(|s| Value::sym(&s)),
        ".{0,12}".prop_map(Value::from),
    ];
    leaf.prop_recursive(4, 32, 6, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Value::cons(a, b)),
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::list),
            prop::collection::vec(inner, 0..6).prop_map(Value::vector),
        ]
    })
}

proptest! {
    #[test]
    fn clone_is_equal(v in arb_value()) {
        prop_assert_eq!(v.clone(), v);
    }

    #[test]
    fn equal_values_hash_equal(v in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |x: &Value| {
            let mut h = DefaultHasher::new();
            x.hash(&mut h);
            h.finish()
        };
        prop_assert_eq!(hash(&v), hash(&v.clone()));
    }

    #[test]
    fn display_is_never_empty(v in arb_value()) {
        prop_assert!(!v.to_string().is_empty());
    }

    #[test]
    fn list_roundtrip(items in prop::collection::vec(arb_value(), 0..10)) {
        let l = Value::list(items.clone());
        let back: Vec<Value> = l.list_iter().cloned().collect();
        prop_assert_eq!(back, items.clone());
        prop_assert_eq!(l.list_len(), Some(items.len()));
    }

    #[test]
    fn cons_car_cdr(a in arb_value(), b in arb_value()) {
        let p = Value::cons(a.clone(), b.clone());
        prop_assert_eq!(p.car(), Some(&a));
        prop_assert_eq!(p.cdr(), Some(&b));
    }

    #[test]
    fn symbol_intern_stable(name in "[a-zA-Z][a-zA-Z0-9?!*-]{0,16}") {
        let a = Symbol::intern(&name);
        let b = Symbol::intern(&name);
        prop_assert_eq!(a, b);
        prop_assert_eq!(&*a.as_str(), name.as_str());
        prop_assert_eq!(Symbol::from_index(a.index()), a);
    }
}
