;; Expect: lock-order-cycle.  Two threads acquire the same two mutexes in
;; opposite orders — the classic AB/BA deadlock.
(define ma (make-mutex))
(define mb (make-mutex))

(define (ab)
  (mutex-acquire ma)
  (mutex-acquire mb)
  (mutex-release mb)
  (mutex-release ma))

(define (ba)
  (mutex-acquire mb)
  (mutex-acquire ma)
  (mutex-release ma)
  (mutex-release mb))

(fork-thread ab)
(fork-thread ba)
