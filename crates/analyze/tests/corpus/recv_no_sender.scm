;; Expect: no-waker.  The receive can never be satisfied: no reachable
;; code sends on (or closes) the channel.
(define ch (make-channel))

(channel-recv ch)
