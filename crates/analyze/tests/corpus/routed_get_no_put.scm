;; Expect: no-waker.  The routed cross-shard get can never be satisfied:
;; no reachable code deposits into the sharded tuple space.
(define fl (fleet-spawn 2))
(define sts (fleet-ts fl))

(fleet-ts-get sts (list 'job '?))
