;; Expect: barrier-arity.  The barrier waits for three parties but only
;; two threads can ever arrive, so both block forever.
(define b (make-barrier 3))

(define (phase)
  (barrier-arrive b))

(fork-thread phase)
(fork-thread phase)
