;; Expect: double-acquire.  STING mutexes are not reentrant: the second
;; acquire blocks on the lock the same thread already holds.
(define m (make-mutex))

(mutex-acquire m)
(mutex-acquire m)
(mutex-release m)
