//! The analyzer's acceptance corpus.
//!
//! The programs under `tests/corpus/` each exhibit exactly one hazard
//! class and must be flagged with a span-bearing diagnostic; every
//! shipped example program and the prelude itself must come back clean
//! (the only-flag-when-certain policy means zero diagnostics on working
//! code is part of the analyzer's contract, not a nice-to-have).

use sting_analyze::{analyze_file, analyze_source, analyze_source_bare, DiagnosticKind, Report};

fn corpus(name: &str) -> Report {
    let path = format!("{}/tests/corpus/{name}", env!("CARGO_MANIFEST_DIR"));
    analyze_file(&path).unwrap_or_else(|e| panic!("analyzing {name}: {e}"))
}

/// Asserts exactly one diagnostic of `kind` whose rendering contains all
/// of `needles` (span fragments and message keywords).
fn expect_one(report: &Report, kind: DiagnosticKind, needles: &[&str]) {
    assert_eq!(
        report.diagnostics.len(),
        1,
        "expected exactly one diagnostic, got:\n{report}"
    );
    let d = &report.diagnostics[0];
    assert_eq!(d.kind, kind, "wrong kind in:\n{report}");
    let rendered = d.to_string();
    for needle in needles {
        assert!(
            rendered.contains(needle),
            "missing {needle:?} in {rendered:?}"
        );
    }
}

#[test]
fn lock_cycle_flagged() {
    let report = corpus("lock_cycle.scm");
    // Both creation sites and both threads appear in the one message.
    expect_one(
        &report,
        DiagnosticKind::LockOrderCycle,
        &["lock-order-cycle", "3:12", "4:12", "acquired in a cycle"],
    );
    assert!(
        report.lock_edges.len() >= 2,
        "both orders should be in the exported graph:\n{report}"
    );
}

#[test]
fn barrier_arity_flagged() {
    expect_one(
        &corpus("barrier_arity.scm"),
        DiagnosticKind::BarrierArity,
        &["barrier-arity", "expects 3", "2 arrival"],
    );
}

#[test]
fn double_acquire_flagged() {
    // The diagnostic anchors at the second acquire and cites the mutex's
    // creation site.
    expect_one(
        &corpus("double_acquire.scm"),
        DiagnosticKind::DoubleAcquire,
        &["6:1", "double-acquire", "3:11"],
    );
}

#[test]
fn recv_with_no_sender_flagged() {
    expect_one(
        &corpus("recv_no_sender.scm"),
        DiagnosticKind::NoWaker,
        &["5:1", "no-waker"],
    );
}

#[test]
fn routed_get_with_no_put_flagged() {
    // The cross-shard tier of the sharded tuple space registers with the
    // same no-waker detector as the local ops: a routed get with no
    // reachable fleet-ts-put is flagged, and the message names the
    // missing waker.
    expect_one(
        &corpus("routed_get_no_put.scm"),
        DiagnosticKind::NoWaker,
        &["6:1", "no-waker", "fleet-ts-get", "fleet-ts-put"],
    );
}

#[test]
fn shipped_examples_are_clean() {
    let dir = format!("{}/../../examples/scheme", env!("CARGO_MANIFEST_DIR"));
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "scm") {
            let report = analyze_file(&path).unwrap_or_else(|e| panic!("{path:?}: {e}"));
            assert!(
                report.is_clean(),
                "false positive on {}:\n{report}",
                path.display()
            );
            checked += 1;
        }
    }
    assert!(checked >= 2, "expected to sweep the example programs");
}

#[test]
fn prelude_is_clean() {
    let report = analyze_source_bare(sting_scheme::PRELUDE).unwrap();
    assert!(
        report.is_clean(),
        "false positive in the prelude:\n{report}"
    );
}

#[test]
fn analysis_is_deterministic() {
    let first = corpus("lock_cycle.scm");
    let second = corpus("lock_cycle.scm");
    assert_eq!(first.diagnostics, second.diagnostics);
    assert_eq!(first.lock_edges, second.lock_edges);
}

#[test]
fn consistent_lock_order_is_clean_but_exported() {
    let report = analyze_source(
        "(define a (make-mutex))\n\
         (define b (make-mutex))\n\
         (define (go) (with-mutex a (lambda () (with-mutex b (lambda () 1)))))\n\
         (fork-thread go)\n\
         (fork-thread go)",
    )
    .unwrap();
    assert!(report.is_clean(), "flagged a consistent order:\n{report}");
    assert!(
        !report.lock_edges.is_empty(),
        "the a->b edge should still be exported"
    );
}
