//! Phase 1: monovariant (0-CFA) value flow over compiled bytecode.
//!
//! Each code object gets **one** abstract frame (its parameter slots) and
//! one abstract result; globals get one abstract slot each.  The analysis
//! simulates every code object's operand stack left to right — the
//! compiler only emits forward jumps inside a code object, so a single
//! pass per object reaches a local fixpoint, and the driver iterates
//! objects until frames, globals, results and call-site records stop
//! changing.  The output is a resolved call graph: for every `Call` /
//! `TailCall` site, which closures and primitives may be invoked and with
//! what abstract arguments.

use crate::domain::{AVal, Atom, ObjInfo, Site, SyncKind};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use sting_scheme::bytecode::{Op, Program};
use sting_scheme::{prims, Span};

/// Synchronization-object constructors and what they build.
pub const CONSTRUCTORS: &[(&str, SyncKind)] = &[
    ("make-mutex", SyncKind::Mutex),
    ("make-semaphore", SyncKind::Semaphore),
    ("make-barrier", SyncKind::Barrier),
    ("make-channel", SyncKind::Channel),
    ("make-ts", SyncKind::TupleSpace),
    ("fleet-ts", SyncKind::TupleSpace),
    ("make-stream", SyncKind::Stream),
];

/// Primitives that invoke closure arguments inline, possibly many times.
const HOF_PRIMS: &[&str] = &["map", "for-each", "apply", "filter"];

/// Primitives that invoke closure arguments inline exactly once (or at
/// most once, for the `%try` handler).
const ONESHOT_PRIMS: &[&str] = &["with-mutex", "%try"];

/// Primitives that spawn their thunk argument on a new thread.
const SPAWN_PRIMS: &[&str] = &["fork-thread", "create-thread"];

/// Primitives whose synchronization-object arguments are fully modeled by
/// the analyzer: passing an object here does **not** make it escape.
/// Objects that reach any other primitive (or an unknown callee) are
/// marked escaped and excluded from the only-flag-when-certain detectors.
const MODELED_PRIMS: &[&str] = &[
    "mutex-acquire",
    "mutex-release",
    "with-mutex",
    "semaphore-acquire",
    "semaphore-release",
    "barrier-arrive",
    "channel-send",
    "channel-recv",
    "channel-try-recv",
    "channel-close",
    "ts-put",
    "ts-get",
    "ts-rd",
    "ts-try-get",
    "ts-try-rd",
    "ts-spawn",
    "fleet-ts-put",
    "fleet-ts-get",
    "fleet-ts-rd",
    "fleet-ts-try-get",
    "fleet-ts-try-rd",
    "stream-attach!",
    "stream-close!",
    "stream-cursor",
    "cursor-hd",
    "cursor-rest",
    "cursor-next!",
    "eof-object?",
    "eq?",
    "eqv?",
    "equal?",
];

/// Everything phase 1 learns about one call site.
#[derive(Debug, Clone, Default)]
pub struct CallInfo {
    /// Argument count at the site.
    pub argc: usize,
    /// Source position of the call.
    pub span: Span,
    /// Closures called directly here.
    pub callees: BTreeSet<u32>,
    /// Closures a higher-order primitive may call here, many times.
    pub inlined: BTreeSet<u32>,
    /// Closures `with-mutex` / `%try` call here exactly once.
    pub oneshot: BTreeSet<u32>,
    /// Closures forked onto a new thread here.
    pub spawned: BTreeSet<u32>,
    /// Primitives callable here.
    pub prims: BTreeSet<&'static str>,
    /// Joined abstract arguments.
    pub args: Vec<AVal>,
}

/// The phase-1 result: resolved calls, object sites and value tables.
pub struct Flow<'p> {
    /// The analyzed program.
    pub program: &'p Program,
    /// Top-level code objects, in evaluation order.
    pub tops: Vec<u32>,
    /// One abstract frame (parameter slots) per code object.
    pub frames: Vec<Vec<AVal>>,
    /// Joined return value per code object.
    pub results: Vec<AVal>,
    /// Abstract global slots.
    pub globals: Vec<AVal>,
    /// Lexical parent code object (from `Closure` emission sites).
    pub parent: Vec<Option<u32>>,
    /// Resolved call sites.
    pub calls: BTreeMap<Site, CallInfo>,
    /// Synchronization-object allocation sites.
    pub objects: BTreeMap<Site, ObjInfo>,
    /// Object sites that reach unmodeled code; detectors skip these.
    pub escaped: BTreeSet<Site>,
    /// Closures that reach unmodeled code; walked as pseudo-threads whose
    /// wakers count but whose blockers are never flagged.
    pub shadow: BTreeSet<u32>,
    prim_by_symbol: HashMap<u32, &'static str>,
    assigned: Vec<bool>,
    changed: bool,
}

impl<'p> Flow<'p> {
    /// Runs the value-flow fixpoint over `tops` of `program`.
    pub fn analyze(program: &'p Program, tops: &[u32]) -> Flow<'p> {
        let prim_by_symbol: HashMap<u32, &'static str> = prims::names()
            .into_iter()
            .map(|n| (sting_value::Symbol::intern(n).index(), n))
            .collect();
        // A global slot holds its primitive only if no code ever assigns it.
        let mut assigned = vec![false; program.global_names.len()];
        for code in &program.codes {
            for op in &code.ops {
                if let Op::SetGlobal(slot) = op {
                    if let Some(a) = assigned.get_mut(*slot as usize) {
                        *a = true;
                    }
                }
            }
        }
        let globals = program
            .global_names
            .iter()
            .zip(&assigned)
            .map(|(sym, assigned)| match prim_by_symbol.get(&sym.index()) {
                Some(name) if !assigned => AVal::atom(Atom::Prim(name)),
                _ => AVal::bot(),
            })
            .collect();
        let frames = program
            .codes
            .iter()
            .map(|c| vec![AVal::bot(); c.arity as usize + usize::from(c.rest)])
            .collect();
        let mut flow = Flow {
            program,
            tops: tops.to_vec(),
            frames,
            results: vec![AVal::bot(); program.codes.len()],
            globals,
            parent: vec![None; program.codes.len()],
            calls: BTreeMap::new(),
            objects: BTreeMap::new(),
            escaped: BTreeSet::new(),
            shadow: BTreeSet::new(),
            prim_by_symbol,
            assigned,
            changed: false,
        };
        loop {
            flow.changed = false;
            for c in 0..program.codes.len() {
                flow.sim_code(c as u32);
            }
            if !flow.changed {
                break;
            }
        }
        flow
    }

    /// The frame `depth` lexical levels above `code`, if known yet.
    fn frame_at(&self, code: u32, depth: u16) -> Option<u32> {
        let mut cur = code;
        for _ in 0..depth {
            cur = self.parent[cur as usize]?;
        }
        Some(cur)
    }

    fn join_frame(&mut self, code: u32, idx: usize, v: &AVal) {
        if let Some(slot) = self.frames[code as usize].get_mut(idx) {
            self.changed |= slot.join(v);
        }
    }

    fn bind_args(&mut self, code: u32, args: &[AVal]) {
        let (arity, rest) = {
            let c = &self.program.codes[code as usize];
            (c.arity as usize, c.rest)
        };
        for (i, a) in args.iter().take(arity).enumerate() {
            let a = a.clone();
            self.join_frame(code, i, &a);
        }
        if rest {
            self.join_frame(code, arity, &AVal::opaque());
        }
    }

    /// Binds every parameter of `code` to `Top` (called from unknown or
    /// higher-order contexts with unknown arguments).
    fn bind_top(&mut self, code: u32) {
        let slots = self.frames[code as usize].len();
        for i in 0..slots {
            self.join_frame(code, i, &AVal::Top);
        }
    }

    /// Simulates the operand stack of one code object.  All jumps the
    /// compiler emits are forward, so one left-to-right pass suffices;
    /// anything flowing into persistent tables marks `changed` and the
    /// driver re-runs the object next round.
    fn sim_code(&mut self, c: u32) {
        let n = self.program.codes[c as usize].ops.len();
        let mut states: Vec<Option<Vec<AVal>>> = vec![None; n + 1];
        states[0] = Some(Vec::new());
        for ip in 0..n {
            let Some(mut stack) = states[ip].clone() else {
                continue;
            };
            let op = self.program.codes[c as usize].ops[ip];
            match op {
                Op::Const(k) => {
                    let atom = self.program.constants[k as usize]
                        .as_int()
                        .map_or(Atom::Opaque, Atom::Int);
                    stack.push(AVal::atom(atom));
                    flow_to(&mut states, ip + 1, stack);
                }
                Op::Int(i) => {
                    stack.push(AVal::atom(Atom::Int(i64::from(i))));
                    flow_to(&mut states, ip + 1, stack);
                }
                Op::True | Op::False | Op::Nil | Op::Unit => {
                    stack.push(AVal::opaque());
                    flow_to(&mut states, ip + 1, stack);
                }
                Op::Local(depth, idx) => {
                    let v = self
                        .frame_at(c, depth)
                        .and_then(|f| self.frames[f as usize].get(idx as usize).cloned())
                        .unwrap_or_else(AVal::bot);
                    stack.push(v);
                    flow_to(&mut states, ip + 1, stack);
                }
                Op::SetLocal(depth, idx) => {
                    let v = stack.pop().unwrap_or_else(AVal::bot);
                    if let Some(f) = self.frame_at(c, depth) {
                        self.join_frame(f, idx as usize, &v);
                    }
                    stack.push(AVal::opaque());
                    flow_to(&mut states, ip + 1, stack);
                }
                Op::Global(slot) => {
                    stack.push(self.globals[slot as usize].clone());
                    flow_to(&mut states, ip + 1, stack);
                }
                Op::SetGlobal(slot) => {
                    let v = stack.pop().unwrap_or_else(AVal::bot);
                    self.changed |= self.globals[slot as usize].join(&v);
                    stack.push(AVal::opaque());
                    flow_to(&mut states, ip + 1, stack);
                }
                Op::Closure(c2) => {
                    if self.parent[c2 as usize] != Some(c) {
                        self.parent[c2 as usize] = Some(c);
                        self.changed = true;
                    }
                    stack.push(AVal::atom(Atom::Closure(c2)));
                    flow_to(&mut states, ip + 1, stack);
                }
                Op::Call(argc) | Op::TailCall(argc) => {
                    let argc = argc as usize;
                    let split = stack.len().saturating_sub(argc);
                    let args: Vec<AVal> = stack.split_off(split);
                    let f = stack.pop().unwrap_or_else(AVal::bot);
                    let result = self.resolve_call(c, ip, &f, &args);
                    if matches!(op, Op::Call(_)) {
                        stack.push(result);
                        flow_to(&mut states, ip + 1, stack);
                    } else {
                        let r = self.results[c as usize].join(&result);
                        self.changed |= r;
                    }
                }
                Op::Return => {
                    let v = stack.pop().unwrap_or_else(AVal::bot);
                    self.changed |= self.results[c as usize].join(&v);
                }
                Op::Jump(d) => {
                    if let Some(t) = jump_target(ip, d) {
                        flow_to(&mut states, t, stack);
                    }
                }
                Op::JumpIfFalse(d) => {
                    stack.pop();
                    if let Some(t) = jump_target(ip, d) {
                        flow_to(&mut states, t, stack.clone());
                    }
                    flow_to(&mut states, ip + 1, stack);
                }
                Op::Pop => {
                    stack.pop();
                    flow_to(&mut states, ip + 1, stack);
                }
            }
        }
    }

    /// Resolves one call site: records callees/prims/args in the site's
    /// [`CallInfo`] and returns the abstract result.
    fn resolve_call(&mut self, c: u32, ip: usize, f: &AVal, args: &[AVal]) -> AVal {
        let site = Site {
            code: c,
            ip: ip as u32,
        };
        let span = self.program.codes[c as usize]
            .span_at(ip)
            .or(self.program.codes[c as usize].span);
        {
            let info = self.calls.entry(site).or_default();
            info.argc = args.len();
            info.span = span;
            while info.args.len() < args.len() {
                info.args.push(AVal::bot());
            }
        }
        for (i, a) in args.iter().enumerate() {
            // Re-borrow per argument to keep `self` free for helpers.
            let mut slot = self.calls[&site].args[i].clone();
            if slot.join(a) {
                self.changed = true;
                self.calls.get_mut(&site).unwrap().args[i] = slot;
            }
        }
        let mut result = AVal::bot();
        match f {
            AVal::Top => {
                // Unknown callee: arguments leak into unanalyzable code.
                self.escape_all(args);
                result = AVal::Top;
            }
            AVal::Atoms(atoms) => {
                for atom in atoms.clone() {
                    match atom {
                        Atom::Closure(c2) => {
                            if self.calls.get_mut(&site).unwrap().callees.insert(c2) {
                                self.changed = true;
                            }
                            self.bind_args(c2, args);
                            let r = self.results[c2 as usize].clone();
                            result.join(&r);
                        }
                        Atom::Prim(name) => {
                            if self.calls.get_mut(&site).unwrap().prims.insert(name) {
                                self.changed = true;
                            }
                            let r = self.prim_result(site, name, args, span);
                            result.join(&r);
                        }
                        // Calling a non-procedure is a runtime error; it
                        // produces no value worth tracking.
                        Atom::Obj(_) | Atom::Thread(_) | Atom::Int(_) | Atom::Opaque => {
                            result.join(&AVal::opaque());
                        }
                    }
                }
            }
        }
        result
    }

    /// Models one primitive application at `site`.
    fn prim_result(&mut self, site: Site, name: &'static str, args: &[AVal], span: Span) -> AVal {
        if let Some((_, kind)) = CONSTRUCTORS.iter().find(|(n, _)| *n == name) {
            let ctor = match kind {
                SyncKind::Barrier | SyncKind::Semaphore => {
                    args.first().and_then(AVal::as_const_int)
                }
                _ => None,
            };
            match self.objects.get_mut(&site) {
                Some(info) => {
                    // Constructor arguments only narrow monotonically: a
                    // once-known count that widens becomes unknown.
                    if info.ctor != ctor {
                        info.ctor = None;
                    }
                }
                None => {
                    self.objects.insert(
                        site,
                        ObjInfo {
                            kind: *kind,
                            span,
                            ctor,
                        },
                    );
                    self.changed = true;
                }
            }
            return AVal::atom(Atom::Obj(site));
        }
        if SPAWN_PRIMS.contains(&name) {
            for c2 in args.first().map(AVal::closures).unwrap_or_default() {
                if self.calls.get_mut(&site).unwrap().spawned.insert(c2) {
                    self.changed = true;
                }
            }
            return AVal::atom(Atom::Thread(site));
        }
        if HOF_PRIMS.contains(&name) {
            let mut result = AVal::opaque();
            for a in args {
                for c2 in a.closures() {
                    if self.calls.get_mut(&site).unwrap().inlined.insert(c2) {
                        self.changed = true;
                    }
                    self.bind_top(c2);
                    if name == "apply" {
                        let r = self.results[c2 as usize].clone();
                        result.join(&r);
                    }
                }
            }
            return result;
        }
        if ONESHOT_PRIMS.contains(&name) {
            // with-mutex: (with-mutex m thunk); %try: (%try body handler).
            let mut result = AVal::bot();
            let closure_args: &[AVal] = if name == "with-mutex" {
                args.get(1..).unwrap_or(&[])
            } else {
                args
            };
            for a in closure_args {
                for c2 in a.closures() {
                    if self.calls.get_mut(&site).unwrap().oneshot.insert(c2) {
                        self.changed = true;
                    }
                    self.bind_top(c2);
                    let r = self.results[c2 as usize].clone();
                    result.join(&r);
                }
            }
            if result.is_bot() {
                result = AVal::opaque();
            }
            return result;
        }
        match name {
            // The result aliases the argument: a cursor stands for its
            // stream, `thread-run` returns the thread it starts.
            "stream-cursor" | "cursor-rest" | "thread-run" => {
                args.first().cloned().unwrap_or_else(AVal::opaque)
            }
            _ => {
                if !MODELED_PRIMS.contains(&name) {
                    self.escape_all(args);
                }
                AVal::opaque()
            }
        }
    }

    /// Marks object arguments escaped and closure arguments shadow-walked:
    /// they reached code the analyzer does not model.
    fn escape_all(&mut self, args: &[AVal]) {
        for a in args {
            for s in a.obj_sites() {
                self.changed |= self.escaped.insert(s);
            }
            for c2 in a.closures() {
                if self.shadow.insert(c2) {
                    self.changed = true;
                }
                self.bind_top(c2);
            }
        }
    }

    /// Whether `slot` names a primitive still bound to its default.
    pub fn prim_global(&self, slot: u32) -> Option<&'static str> {
        if *self.assigned.get(slot as usize)? {
            return None;
        }
        self.prim_by_symbol
            .get(&self.program.global_names.get(slot as usize)?.index())
            .copied()
    }
}

/// Forward-jump target, or `None` for the backward jumps the compiler
/// never emits (loops are compiled to tail calls).
fn jump_target(ip: usize, d: i32) -> Option<usize> {
    usize::try_from(ip as i64 + 1 + i64::from(d))
        .ok()
        .filter(|t| *t > ip)
}

/// Joins `stack` into the state at `target` (element-wise, aligned at the
/// top of the stack in the defensive case of a height mismatch).
fn flow_to(states: &mut [Option<Vec<AVal>>], target: usize, stack: Vec<AVal>) {
    let Some(state) = states.get_mut(target) else {
        return;
    };
    match state {
        None => *state = Some(stack),
        Some(existing) => {
            let off = existing.len().saturating_sub(stack.len());
            for (slot, v) in existing.iter_mut().skip(off).zip(stack.iter()) {
                slot.join(v);
            }
        }
    }
}
