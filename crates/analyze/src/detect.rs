//! Phase 2: abstract per-thread walks over the resolved call graph, and
//! the four detectors built on what the walks record.
//!
//! Each abstract thread (the main top-level sequence, plus one thread per
//! `fork-thread`/`create-thread` site) is walked through the control-flow
//! graph of its root code object, descending into resolved callees, with
//! a lock state of **must-held** (intersection at joins) and **may-held**
//! (union at joins) mutex sites.  The walks record lock-order edges,
//! blocking operations, wakers, and barrier arrivals; the detectors then
//! flag lock-order cycles, double acquires, barrier arity mismatches and
//! blocking operations with no reachable waker.

use crate::domain::{Site, SyncKind};
use crate::flow::{CallInfo, Flow};
use crate::{Diagnostic, DiagnosticKind, LockEdge};
use std::collections::{BTreeMap, BTreeSet};
use sting_scheme::bytecode::Op;
use sting_scheme::Span;

/// Arrival / spawn multiplicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Count {
    Finite(i64),
    Many,
}

impl Count {
    fn add(self, other: Count) -> Count {
        match (self, other) {
            (Count::Finite(a), Count::Finite(b)) => Count::Finite(a.saturating_add(b)),
            _ => Count::Many,
        }
    }
}

/// What kind of waker a blocking operation needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wake {
    /// `channel-send` / `channel-close` for a `channel-recv`.
    Send,
    /// `ts-put` / `ts-spawn` for a `ts-get` / `ts-rd`.
    TsPut,
    /// `fleet-ts-put` for a routed `fleet-ts-get` / `fleet-ts-rd`.
    FleetTsPut,
    /// `stream-attach!` / `stream-close!` for a cursor read.
    Feed,
    /// `semaphore-release` for a `semaphore-acquire`.
    SemRelease,
}

impl Wake {
    fn waker_desc(self) -> &'static str {
        match self {
            Wake::Send => "channel-send or channel-close",
            Wake::TsPut => "ts-put or ts-spawn",
            Wake::FleetTsPut => "fleet-ts-put",
            Wake::Feed => "stream-attach! or stream-close!",
            Wake::SemRelease => "semaphore-release",
        }
    }
}

/// An unconditionally blocking operation observed during a walk.
#[derive(Debug, Clone)]
struct Blocker {
    op: &'static str,
    need: Wake,
    sites: Vec<Site>,
    span: Span,
    thread: usize,
    seq: u64,
    suppress: bool,
}

/// A wake-capable operation observed during a walk.
#[derive(Debug, Clone)]
struct Waker {
    kind: Wake,
    site: Site,
    thread: usize,
    seq: u64,
}

/// One recorded lock-order edge: `held` was (possibly) held while
/// `acquired` was acquired without a timeout.
#[derive(Debug, Clone)]
struct EdgeRec {
    span: Span,
    thread: usize,
}

#[derive(Debug, Clone)]
struct SpawnRec {
    roots: BTreeSet<u32>,
    many: bool,
    span: Span,
}

/// Abstract lock state along one control path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Locks {
    /// Mutex sites held on **every** path reaching here.
    must: BTreeSet<Site>,
    /// Mutex sites held on **some** path reaching here.
    may: BTreeSet<Site>,
}

impl Locks {
    fn join(&mut self, other: &Locks) {
        self.must = self.must.intersection(&other.must).copied().collect();
        self.may.extend(other.may.iter().copied());
    }
}

fn join_opt(acc: &mut Option<Locks>, v: Locks) {
    match acc {
        None => *acc = Some(v),
        Some(a) => a.join(&v),
    }
}

/// The phase-2 walker and detectors.
pub struct Detect<'f, 'p> {
    flow: &'f Flow<'p>,
    /// Code objects on a call-graph cycle: anything they do may repeat.
    cyclic: BTreeSet<u32>,
    threads: Vec<String>,
    seq: u64,
    suppress: bool,
    arrivals: BTreeMap<Site, Count>,
    timed_barriers: BTreeSet<Site>,
    edges: BTreeMap<(Site, Site), EdgeRec>,
    blockers: Vec<Blocker>,
    wakers: Vec<Waker>,
    spawns: BTreeMap<Site, SpawnRec>,
    diags: Vec<Diagnostic>,
}

impl<'f, 'p> Detect<'f, 'p> {
    /// Runs the walks and detectors, producing diagnostics and the
    /// lock-order graph.
    pub fn run(flow: &'f Flow<'p>) -> (Vec<Diagnostic>, Vec<LockEdge>) {
        let mut d = Detect {
            cyclic: cyclic_codes(flow),
            flow,
            threads: Vec::new(),
            seq: 0,
            suppress: false,
            arrivals: BTreeMap::new(),
            timed_barriers: BTreeSet::new(),
            edges: BTreeMap::new(),
            blockers: Vec::new(),
            wakers: Vec::new(),
            spawns: BTreeMap::new(),
            diags: Vec::new(),
        };
        let main = d.thread_id("main".to_string());
        d.walk_roots(main, &d.flow.tops.clone(), false);
        // Walk spawned threads (and threads they spawn) to a fixpoint; a
        // spawn site upgraded to `many` multiplicity is walked again so
        // its barrier arrivals widen.
        let mut done: BTreeMap<Site, bool> = BTreeMap::new();
        loop {
            let pending: Vec<(Site, SpawnRec)> = d
                .spawns
                .iter()
                .filter(|(s, r)| match done.get(*s) {
                    None => true,
                    Some(&walked_many) => !walked_many && r.many,
                })
                .map(|(s, r)| (*s, r.clone()))
                .collect();
            if pending.is_empty() {
                break;
            }
            for (site, rec) in pending {
                done.insert(site, rec.many);
                let id = d.thread_id(format!("thread forked at {}", rec.span));
                for root in rec.roots.clone() {
                    d.walk_roots(id, &[root], rec.many);
                }
            }
        }
        // Closures that escaped into unmodeled code may run anywhere, any
        // number of times: their wakers and lock edges count, but their
        // blocking operations are never flagged.
        d.suppress = true;
        for c in d.flow.shadow.clone() {
            let span = d.flow.program.codes[c as usize].span;
            let id = d.thread_id(format!("escaped closure at {span}"));
            d.walk_roots(id, &[c], true);
        }
        d.suppress = false;
        d.finish();
        let edges = d.export_edges();
        (d.diags, edges)
    }

    fn thread_id(&mut self, name: String) -> usize {
        self.threads.push(name);
        self.threads.len() - 1
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Walks a sequence of root code objects on one abstract thread,
    /// threading the lock state through (a mutex acquired by one
    /// top-level form is still held in the next).
    fn walk_roots(&mut self, thread: usize, roots: &[u32], many: bool) {
        let mut visiting = BTreeSet::new();
        let mut st = Locks::default();
        for &r in roots {
            st = self.walk_code(r, st, many, &mut visiting, thread);
        }
    }

    /// Walks one code object from `entry`, returning the exit lock state.
    /// Recursion is cut at the `visiting` set; code in a call cycle (or
    /// walked under `many`) gets a second pass from its own exit state so
    /// locks leaked across iterations surface as double acquires.
    fn walk_code(
        &mut self,
        c: u32,
        entry: Locks,
        many: bool,
        visiting: &mut BTreeSet<u32>,
        thread: usize,
    ) -> Locks {
        if !visiting.insert(c) {
            return entry;
        }
        let many = many || self.cyclic.contains(&c);
        let mut out = self.walk_cfg(c, entry.clone(), many, visiting, thread);
        if many && out != entry {
            out = self.walk_cfg(c, out.clone(), many, visiting, thread);
        }
        visiting.remove(&c);
        out
    }

    /// Propagates lock state through one code object's (forward-jump)
    /// control-flow graph, applying call effects at call sites.
    fn walk_cfg(
        &mut self,
        c: u32,
        entry: Locks,
        many: bool,
        visiting: &mut BTreeSet<u32>,
        thread: usize,
    ) -> Locks {
        let n = self.flow.program.codes[c as usize].ops.len();
        if n == 0 {
            return entry;
        }
        let mut states: Vec<Option<Locks>> = vec![None; n + 1];
        let mut exit: Option<Locks> = None;
        states[0] = Some(entry.clone());
        for ip in 0..n {
            let Some(cur) = states[ip].clone() else {
                continue;
            };
            let op = self.flow.program.codes[c as usize].ops[ip];
            match op {
                Op::Jump(d) => {
                    if let Some(t) = forward(ip, d) {
                        locks_to(&mut states, t, cur);
                    }
                }
                Op::JumpIfFalse(d) => {
                    if let Some(t) = forward(ip, d) {
                        locks_to(&mut states, t, cur.clone());
                    }
                    locks_to(&mut states, ip + 1, cur);
                }
                Op::Call(_) => {
                    let next = self.apply_call(c, ip, cur, many, visiting, thread);
                    locks_to(&mut states, ip + 1, next);
                }
                Op::TailCall(_) => {
                    let next = self.apply_call(c, ip, cur, many, visiting, thread);
                    join_opt(&mut exit, next);
                }
                Op::Return => join_opt(&mut exit, cur),
                _ => locks_to(&mut states, ip + 1, cur),
            }
        }
        exit.unwrap_or(entry)
    }

    /// Applies the effect of one resolved call site to the lock state.
    fn apply_call(
        &mut self,
        c: u32,
        ip: usize,
        cur: Locks,
        many: bool,
        visiting: &mut BTreeSet<u32>,
        thread: usize,
    ) -> Locks {
        let site = Site {
            code: c,
            ip: ip as u32,
        };
        let Some(info) = self.flow.calls.get(&site).cloned() else {
            return cur;
        };
        if !info.spawned.is_empty() {
            self.record_spawn(site, &info, many);
        }
        let mut out: Option<Locks> = None;
        for &name in &info.prims {
            let r = self.prim_effect(name, &info, cur.clone(), site, many, visiting, thread);
            join_opt(&mut out, r);
        }
        for &c2 in &info.callees {
            let r = self.walk_code(c2, cur.clone(), many, visiting, thread);
            join_opt(&mut out, r);
        }
        for &c2 in &info.inlined {
            // Called zero or more times by a higher-order primitive.
            let r = self.walk_code(c2, cur.clone(), true, visiting, thread);
            join_opt(&mut out, r);
            join_opt(&mut out, cur.clone());
        }
        out.unwrap_or(cur)
    }

    fn record_spawn(&mut self, site: Site, info: &CallInfo, many: bool) {
        let rec = self.spawns.entry(site).or_insert_with(|| SpawnRec {
            roots: BTreeSet::new(),
            many,
            span: info.span,
        });
        rec.roots.extend(info.spawned.iter().copied());
        rec.many |= many;
    }

    /// Mutex-typed object sites an argument may denote.
    fn sites_of(&self, v: Option<&crate::domain::AVal>, kind: SyncKind) -> Vec<Site> {
        v.map(|a| a.obj_sites())
            .unwrap_or_default()
            .into_iter()
            .filter(|s| self.flow.objects.get(s).map(|o| o.kind) == Some(kind))
            .collect()
    }

    fn acquire(&mut self, targets: &[Site], mut cur: Locks, span: Span, thread: usize) -> Locks {
        for &m in targets {
            for h in cur.may.clone() {
                if h != m {
                    self.edges.entry((h, m)).or_insert(EdgeRec { span, thread });
                }
            }
            if targets.len() == 1 && cur.must.contains(&m) {
                let at = self.flow.objects[&m].span;
                self.diag(
                    DiagnosticKind::DoubleAcquire,
                    span,
                    format!(
                        "mutex created at {at} is acquired while already held by the same \
                         thread; STING mutexes are not reentrant, so this self-deadlocks"
                    ),
                );
            }
            if targets.len() == 1 {
                cur.must.insert(m);
            }
            cur.may.insert(m);
        }
        cur
    }

    fn release(&mut self, targets: &[Site], mut cur: Locks) -> Locks {
        for &m in targets {
            cur.must.remove(&m);
            if targets.len() == 1 {
                cur.may.remove(&m);
            }
        }
        cur
    }

    fn block(&mut self, op: &'static str, need: Wake, sites: Vec<Site>, span: Span, thread: usize) {
        let seq = self.next_seq();
        let suppress = self.suppress;
        self.blockers.push(Blocker {
            op,
            need,
            sites,
            span,
            thread,
            seq,
            suppress,
        });
    }

    fn wake(&mut self, kind: Wake, sites: &[Site], thread: usize) {
        for &site in sites {
            let seq = self.next_seq();
            self.wakers.push(Waker {
                kind,
                site,
                thread,
                seq,
            });
        }
    }

    /// Applies one primitive's concurrency effect.
    #[allow(clippy::too_many_arguments)]
    fn prim_effect(
        &mut self,
        name: &'static str,
        info: &CallInfo,
        mut cur: Locks,
        site: Site,
        many: bool,
        visiting: &mut BTreeSet<u32>,
        thread: usize,
    ) -> Locks {
        let span = info.span;
        let arg0 = info.args.first();
        match name {
            // A constructor makes the site's *newest* instance flow to the
            // caller; any previously-held instance from the same site is a
            // different object, so the site leaves the must set (but stays
            // in may: the old instance may genuinely still be held).
            "make-mutex" | "make-semaphore" | "make-barrier" | "make-channel" | "make-ts"
            | "fleet-ts" | "make-stream" => {
                cur.must.remove(&site);
                cur
            }
            "mutex-acquire" => {
                let targets = self.sites_of(arg0, SyncKind::Mutex);
                if info.argc >= 2 {
                    // Timed acquire cannot deadlock, but holds on success.
                    for m in targets {
                        cur.may.insert(m);
                    }
                    cur
                } else {
                    self.acquire(&targets, cur, span, thread)
                }
            }
            "mutex-release" => {
                let targets = self.sites_of(arg0, SyncKind::Mutex);
                self.release(&targets, cur)
            }
            "with-mutex" => {
                let targets = self.sites_of(arg0, SyncKind::Mutex);
                let held = self.acquire(&targets, cur, span, thread);
                let mut out: Option<Locks> = None;
                for &c2 in &info.oneshot {
                    let r = self.walk_code(c2, held.clone(), many, visiting, thread);
                    join_opt(&mut out, r);
                }
                self.release(&targets, out.unwrap_or(held))
            }
            "%try" => {
                // Body runs once; the handler runs only if the body raises
                // part-way, so it enters at the join of entry and body-exit.
                let body = info.args.first().map(|a| a.closures()).unwrap_or_default();
                let mut body_out: Option<Locks> = None;
                for c2 in &body {
                    let r = self.walk_code(*c2, cur.clone(), many, visiting, thread);
                    join_opt(&mut body_out, r);
                }
                let out = body_out.unwrap_or_else(|| cur.clone());
                let handler: Vec<u32> = info.args.get(1).map(|a| a.closures()).unwrap_or_default();
                let mut h_entry = cur.clone();
                h_entry.join(&out);
                let mut result = out;
                for c2 in handler {
                    let r = self.walk_code(c2, h_entry.clone(), many, visiting, thread);
                    result.join(&r);
                }
                result
            }
            "barrier-arrive" => {
                for b in self.sites_of(arg0, SyncKind::Barrier) {
                    if info.argc >= 2 {
                        self.timed_barriers.insert(b);
                    } else {
                        let add = if many { Count::Many } else { Count::Finite(1) };
                        let cur_count = self.arrivals.get(&b).copied().unwrap_or(Count::Finite(0));
                        self.arrivals.insert(b, cur_count.add(add));
                    }
                }
                cur
            }
            "semaphore-acquire" => {
                if info.argc < 2 {
                    let sites = self.sites_of(arg0, SyncKind::Semaphore);
                    self.block("semaphore-acquire", Wake::SemRelease, sites, span, thread);
                }
                cur
            }
            "semaphore-release" => {
                let sites = self.sites_of(arg0, SyncKind::Semaphore);
                self.wake(Wake::SemRelease, &sites, thread);
                cur
            }
            "channel-recv" => {
                if info.argc < 2 {
                    let sites = self.sites_of(arg0, SyncKind::Channel);
                    self.block("channel-recv", Wake::Send, sites, span, thread);
                }
                cur
            }
            "channel-send" | "channel-close" => {
                let sites = self.sites_of(arg0, SyncKind::Channel);
                self.wake(Wake::Send, &sites, thread);
                cur
            }
            "ts-get" | "ts-rd" => {
                if info.argc < 3 {
                    let sites = self.sites_of(arg0, SyncKind::TupleSpace);
                    let op = if name == "ts-get" { "ts-get" } else { "ts-rd" };
                    self.block(op, Wake::TsPut, sites, span, thread);
                }
                cur
            }
            "ts-put" | "ts-spawn" => {
                let sites = self.sites_of(arg0, SyncKind::TupleSpace);
                self.wake(Wake::TsPut, &sites, thread);
                cur
            }
            // Cross-shard tuple ops (sting_tuple::ShardedSpace): a routed
            // blocking read parks exactly like a local one and can only be
            // woken by a deposit into the sharded space; the timed forms
            // (argc >= 3) are exempt.
            "fleet-ts-get" | "fleet-ts-rd" => {
                if info.argc < 3 {
                    let sites = self.sites_of(arg0, SyncKind::TupleSpace);
                    let op = if name == "fleet-ts-get" {
                        "fleet-ts-get"
                    } else {
                        "fleet-ts-rd"
                    };
                    self.block(op, Wake::FleetTsPut, sites, span, thread);
                }
                cur
            }
            "fleet-ts-put" => {
                let sites = self.sites_of(arg0, SyncKind::TupleSpace);
                self.wake(Wake::FleetTsPut, &sites, thread);
                cur
            }
            "cursor-hd" | "cursor-next!" => {
                let timed = name == "cursor-next!" && info.argc >= 2;
                if !timed {
                    let sites = self.sites_of(arg0, SyncKind::Stream);
                    let op = if name == "cursor-hd" {
                        "cursor-hd"
                    } else {
                        "cursor-next!"
                    };
                    self.block(op, Wake::Feed, sites, span, thread);
                }
                cur
            }
            "stream-attach!" | "stream-close!" => {
                let sites = self.sites_of(arg0, SyncKind::Stream);
                self.wake(Wake::Feed, &sites, thread);
                cur
            }
            _ => cur,
        }
    }

    fn diag(&mut self, kind: DiagnosticKind, span: Span, message: String) {
        if !self
            .diags
            .iter()
            .any(|d| d.kind == kind && d.span == span && d.message == message)
        {
            self.diags.push(Diagnostic {
                kind,
                span,
                message,
            });
        }
    }

    /// Runs the whole-program detectors over what the walks recorded.
    fn finish(&mut self) {
        self.detect_lock_cycles();
        self.detect_barrier_arity();
        self.detect_no_waker();
    }

    /// Lock-order cycles: strongly connected components of the acquire-
    /// order graph with more than one node.
    fn detect_lock_cycles(&mut self) {
        let nodes: BTreeSet<Site> = self.edges.keys().flat_map(|(a, b)| [*a, *b]).collect();
        let mut succ: BTreeMap<Site, BTreeSet<Site>> = BTreeMap::new();
        for (a, b) in self.edges.keys() {
            succ.entry(*a).or_default().insert(*b);
        }
        let reaches = |from: Site, to: Site| -> bool {
            let mut seen = BTreeSet::new();
            let mut stack = vec![from];
            while let Some(n) = stack.pop() {
                if n == to {
                    return true;
                }
                if seen.insert(n) {
                    if let Some(next) = succ.get(&n) {
                        stack.extend(next.iter().copied());
                    }
                }
            }
            false
        };
        // Group mutually-reaching nodes into components.
        let mut reported: BTreeSet<BTreeSet<Site>> = BTreeSet::new();
        for &a in &nodes {
            let comp: BTreeSet<Site> = nodes
                .iter()
                .copied()
                .filter(|&b| a != b && reaches(a, b) && reaches(b, a))
                .chain([a])
                .collect();
            if comp.len() < 2 || !reported.insert(comp.clone()) {
                continue;
            }
            let names: Vec<String> = comp
                .iter()
                .map(|s| format!("mutex created at {}", self.flow.objects[s].span))
                .collect();
            let mut detail: Vec<String> = Vec::new();
            let mut first_span = Span::NONE;
            for ((h, m), rec) in &self.edges {
                if comp.contains(h) && comp.contains(m) {
                    if first_span.is_none() {
                        first_span = rec.span;
                    }
                    detail.push(format!(
                        "{} acquires {} while holding {} at {}",
                        self.threads[rec.thread],
                        self.flow.objects[m].span,
                        self.flow.objects[h].span,
                        rec.span
                    ));
                }
            }
            self.diag(
                DiagnosticKind::LockOrderCycle,
                first_span,
                format!(
                    "potential deadlock: {} are acquired in a cycle ({})",
                    names.join(" and "),
                    detail.join("; ")
                ),
            );
        }
    }

    /// Barrier arity: a barrier with a constant party count whose total
    /// reachable untimed arrivals are finite, non-zero and different.
    fn detect_barrier_arity(&mut self) {
        let mut out = Vec::new();
        for (site, info) in &self.flow.objects {
            if info.kind != SyncKind::Barrier
                || self.flow.escaped.contains(site)
                || self.timed_barriers.contains(site)
            {
                continue;
            }
            let Some(parties) = info.ctor else { continue };
            let Some(Count::Finite(n)) = self.arrivals.get(site).copied() else {
                continue;
            };
            if n == 0 || n == parties {
                continue;
            }
            let verdict = if n < parties {
                "every arriving thread blocks forever"
            } else {
                "a later arrival joins the wrong generation"
            };
            out.push((
                info.span,
                format!(
                    "barrier created at {} expects {parties} parties but only {n} \
                     arrival(s) are reachable; {verdict}",
                    info.span
                ),
            ));
        }
        for (span, msg) in out {
            self.diag(DiagnosticKind::BarrierArity, span, msg);
        }
    }

    /// Blocking operations with no reachable waker anywhere in the
    /// program (on another thread, or earlier on the same thread).
    fn detect_no_waker(&mut self) {
        let mut out = Vec::new();
        'blockers: for b in &self.blockers {
            if b.suppress || b.sites.is_empty() {
                continue;
            }
            if b.sites.iter().any(|s| self.flow.escaped.contains(s)) {
                continue;
            }
            if b.need == Wake::SemRelease {
                // A semaphore acquire only certainly blocks when the
                // semaphore was created with zero permits.
                let all_zero = b
                    .sites
                    .iter()
                    .all(|s| self.flow.objects.get(s).and_then(|o| o.ctor) == Some(0));
                if !all_zero {
                    continue;
                }
            }
            for w in &self.wakers {
                let matches = w.kind == b.need
                    && b.sites.contains(&w.site)
                    && (w.thread != b.thread || w.seq < b.seq);
                if matches {
                    continue 'blockers;
                }
            }
            let objs: Vec<String> = b
                .sites
                .iter()
                .map(|s| {
                    let o = &self.flow.objects[s];
                    format!("{} created at {}", o.kind.noun(), o.span)
                })
                .collect();
            out.push((
                b.span,
                format!(
                    "{} blocks forever: no reachable {} for the {}",
                    b.op,
                    b.need.waker_desc(),
                    objs.join(" or ")
                ),
            ));
        }
        for (span, msg) in out {
            self.diag(DiagnosticKind::NoWaker, span, msg);
        }
    }

    fn export_edges(&self) -> Vec<LockEdge> {
        self.edges
            .iter()
            .map(|((h, m), rec)| LockEdge {
                held: self.flow.objects[h].span,
                acquired: self.flow.objects[m].span,
                at: rec.span,
                thread: self.threads[rec.thread].clone(),
            })
            .collect()
    }
}

/// Propagates `locks` into the state at `target`.
fn locks_to(states: &mut [Option<Locks>], target: usize, locks: Locks) {
    if let Some(state) = states.get_mut(target) {
        match state {
            None => *state = Some(locks),
            Some(existing) => existing.join(&locks),
        }
    }
}

/// Forward-jump target (backward jumps never occur; see the compiler).
fn forward(ip: usize, d: i32) -> Option<usize> {
    usize::try_from(ip as i64 + 1 + i64::from(d))
        .ok()
        .filter(|t| *t > ip)
}

/// Code objects on a same-thread call-graph cycle (direct recursion or
/// mutual recursion, including calls made through higher-order
/// primitives): their bodies may execute many times.
fn cyclic_codes(flow: &Flow<'_>) -> BTreeSet<u32> {
    let mut succ: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    for (site, info) in &flow.calls {
        let s = succ.entry(site.code).or_default();
        s.extend(info.callees.iter().copied());
        s.extend(info.inlined.iter().copied());
        s.extend(info.oneshot.iter().copied());
    }
    let mut cyclic = BTreeSet::new();
    for &start in succ.keys() {
        let mut seen = BTreeSet::new();
        let mut stack: Vec<u32> = succ[&start].iter().copied().collect();
        while let Some(n) = stack.pop() {
            if n == start {
                cyclic.insert(start);
                break;
            }
            if seen.insert(n) {
                if let Some(next) = succ.get(&n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
    }
    cyclic
}
