//! The abstract value domain.
//!
//! Following the abstracted abstract machine recipe (Might & Van Horn),
//! every runtime value is projected onto a small finite lattice: closures
//! collapse to their code object, synchronization objects collapse to the
//! allocation [`Site`] that created them, and everything else is either a
//! known small integer (needed for barrier/semaphore constructor
//! arguments) or [`Atom::Opaque`].  Sets of atoms are capped; past the cap
//! a value widens to [`AVal::Top`].

use std::collections::BTreeSet;
use std::fmt;
use sting_scheme::Span;

/// An allocation or call site: a code-object index plus the instruction
/// index of the `Call` that executed there.  One abstract object stands
/// for every concrete object a site ever allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Site {
    /// Code object index in the [`Program`](sting_scheme::bytecode::Program).
    pub code: u32,
    /// Instruction index within the code object.
    pub ip: u32,
}

/// The kind of synchronization object an allocation site produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SyncKind {
    /// `make-mutex` — non-reentrant exclusive lock.
    Mutex,
    /// `make-semaphore` — counting semaphore.
    Semaphore,
    /// `make-barrier` — n-party rendezvous.
    Barrier,
    /// `make-channel` — FIFO channel.
    Channel,
    /// `make-ts` — tuple space.
    TupleSpace,
    /// `make-stream` — stream with cursors.
    Stream,
}

impl SyncKind {
    /// Human-readable noun for diagnostics.
    pub fn noun(self) -> &'static str {
        match self {
            SyncKind::Mutex => "mutex",
            SyncKind::Semaphore => "semaphore",
            SyncKind::Barrier => "barrier",
            SyncKind::Channel => "channel",
            SyncKind::TupleSpace => "tuple space",
            SyncKind::Stream => "stream",
        }
    }
}

/// Statically known facts about one synchronization-object allocation site.
#[derive(Debug, Clone)]
pub struct ObjInfo {
    /// What the constructor builds.
    pub kind: SyncKind,
    /// Source position of the constructor call.
    pub span: Span,
    /// Constant integer constructor argument when statically known
    /// (barrier parties, initial semaphore permits).
    pub ctor: Option<i64>,
}

/// One abstract value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atom {
    /// A closure over the given code object.
    Closure(u32),
    /// A primitive procedure, by name.
    Prim(&'static str),
    /// A synchronization object allocated at the site.
    Obj(Site),
    /// A thread forked at the site.
    Thread(Site),
    /// A known small integer (constructor arguments).
    Int(i64),
    /// Anything the analysis does not track.
    Opaque,
}

/// A set of possible [`Atom`]s, widened to `Top` past [`AVal::CAP`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AVal {
    /// Any value at all (widened).
    Top,
    /// One of the listed atoms.
    Atoms(BTreeSet<Atom>),
}

impl AVal {
    /// Widening cap on atom-set size.
    pub const CAP: usize = 16;

    /// The empty (bottom) value: no value flows here yet.
    pub fn bot() -> AVal {
        AVal::Atoms(BTreeSet::new())
    }

    /// A singleton value.
    pub fn atom(a: Atom) -> AVal {
        AVal::Atoms(BTreeSet::from([a]))
    }

    /// The untracked-but-present value.
    pub fn opaque() -> AVal {
        AVal::atom(Atom::Opaque)
    }

    /// Whether nothing flows here.
    pub fn is_bot(&self) -> bool {
        matches!(self, AVal::Atoms(s) if s.is_empty())
    }

    /// Least upper bound; returns whether `self` changed.
    pub fn join(&mut self, other: &AVal) -> bool {
        match (&mut *self, other) {
            (AVal::Top, _) => false,
            (_, AVal::Top) => {
                *self = AVal::Top;
                true
            }
            (AVal::Atoms(a), AVal::Atoms(b)) => {
                let before = a.len();
                a.extend(b.iter().copied());
                if a.len() > AVal::CAP {
                    *self = AVal::Top;
                    return true;
                }
                a.len() != before
            }
        }
    }

    /// The closure code objects this value may be.
    pub fn closures(&self) -> Vec<u32> {
        match self {
            AVal::Top => Vec::new(),
            AVal::Atoms(s) => s
                .iter()
                .filter_map(|a| match a {
                    Atom::Closure(c) => Some(*c),
                    _ => None,
                })
                .collect(),
        }
    }

    /// The synchronization-object sites this value may be.
    pub fn obj_sites(&self) -> Vec<Site> {
        match self {
            AVal::Top => Vec::new(),
            AVal::Atoms(s) => s
                .iter()
                .filter_map(|a| match a {
                    Atom::Obj(site) => Some(*site),
                    _ => None,
                })
                .collect(),
        }
    }

    /// `Some(n)` when this value is exactly the integer `n`.
    pub fn as_const_int(&self) -> Option<i64> {
        match self {
            AVal::Atoms(s) if s.len() == 1 => match s.iter().next() {
                Some(Atom::Int(n)) => Some(*n),
                _ => None,
            },
            _ => None,
        }
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "code{}@{}", self.code, self.ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_widens_past_cap() {
        let mut v = AVal::bot();
        for i in 0..(AVal::CAP as i64 + 1) {
            v.join(&AVal::atom(Atom::Int(i)));
        }
        assert_eq!(v, AVal::Top);
    }

    #[test]
    fn join_reports_change() {
        let mut v = AVal::atom(Atom::Opaque);
        assert!(!v.join(&AVal::atom(Atom::Opaque)));
        assert!(v.join(&AVal::atom(Atom::Int(1))));
        assert_eq!(v.as_const_int(), None);
        assert_eq!(AVal::atom(Atom::Int(3)).as_const_int(), Some(3));
    }
}
