//! # sting-analyze — static concurrency analysis for STING Scheme
//!
//! A flow-sensitive abstract interpreter over compiled Scheme bytecode
//! ([`sting_scheme::bytecode`]) that models the substrate's concurrency
//! effects — `fork-thread`, mutex acquire/release, semaphores, barrier
//! arrivals, channel send/recv, tuple-space put/get and stream cursors —
//! without running the program.  The design follows the abstracted
//! abstract machine recipe (Might & Van Horn): a monovariant (0-CFA)
//! value analysis resolves the call graph and collapses every
//! synchronization object onto its allocation site, then per-abstract-
//! thread walks over the resolved graph drive four detectors:
//!
//! * **lock-order cycles** — two threads that acquire the same mutexes
//!   in opposite orders (potential deadlock);
//! * **double acquire** — a non-reentrant mutex acquired again by a
//!   thread that must already hold it (certain self-deadlock);
//! * **barrier arity mismatch** — a barrier whose statically-countable
//!   arrivals cannot match its declared party count;
//! * **no reachable waker** — an untimed blocking operation (channel
//!   recv, tuple-space get, cursor read, zero-permit semaphore acquire)
//!   with no operation anywhere in the program that could wake it.
//!
//! The detectors follow an *only-flag-when-certain* policy: objects that
//! escape into unmodeled code, widen past the atom cap, or are touched
//! with timeouts are silently skipped, so a clean report means "nothing
//! provably wrong", not "nothing wrong".  Diagnostics carry real source
//! positions ([`Span`]) threaded from the reader through the compiler.
//!
//! ```
//! let report = sting_analyze::analyze_source(
//!     "(define m (make-mutex))\n(mutex-acquire m)\n(mutex-acquire m)",
//! )
//! .unwrap();
//! assert_eq!(report.diagnostics.len(), 1);
//! assert!(report.diagnostics[0].to_string().contains("3:1"));
//! ```

#![deny(missing_docs)]

pub mod detect;
pub mod domain;
pub mod flow;

use std::fmt;
use std::path::Path;
use sting_scheme::bytecode::Program;
use sting_scheme::{compile, expand, reader, SchemeError, Span};

pub use domain::{Site, SyncKind};
pub use flow::Flow;

/// What a [`Diagnostic`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DiagnosticKind {
    /// Mutexes acquired in a cyclic order across threads.
    LockOrderCycle,
    /// A non-reentrant mutex acquired while already held.
    DoubleAcquire,
    /// Barrier party count can never be met exactly.
    BarrierArity,
    /// A blocking operation no other operation can wake.
    NoWaker,
}

impl DiagnosticKind {
    /// Short stable tag, e.g. for machine-readable output.
    pub fn tag(self) -> &'static str {
        match self {
            DiagnosticKind::LockOrderCycle => "lock-order-cycle",
            DiagnosticKind::DoubleAcquire => "double-acquire",
            DiagnosticKind::BarrierArity => "barrier-arity",
            DiagnosticKind::NoWaker => "no-waker",
        }
    }
}

/// One analyzer finding, anchored to a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Category of the finding.
    pub kind: DiagnosticKind,
    /// Source position of the offending operation.
    pub span: Span,
    /// Human-readable description (self-contained; cites related spans).
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: [{}] {}", self.span, self.kind.tag(), self.message)
    }
}

/// One edge of the static lock-order graph: some thread may hold the
/// mutex created at `held` while acquiring the one created at
/// `acquired`.  The dynamic audit (`sting-core`) rebuilds the same graph
/// from trace events, so the two can be cross-checked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Creation site of the mutex already held.
    pub held: Span,
    /// Creation site of the mutex being acquired.
    pub acquired: Span,
    /// Source position of the acquiring call.
    pub at: Span,
    /// Abstract thread performing the acquire.
    pub thread: String,
}

impl fmt::Display for LockEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} (acquired at {} on {})",
            self.held, self.acquired, self.at, self.thread
        )
    }
}

/// The analyzer's output: diagnostics plus the lock-order graph.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Findings, in detector order.
    pub diagnostics: Vec<Diagnostic>,
    /// Every recorded lock-order edge (cyclic or not).
    pub lock_edges: Vec<LockEdge>,
}

impl Report {
    /// Whether the analysis found nothing to report.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            writeln!(f, "no concurrency hazards found")?;
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        if !self.lock_edges.is_empty() {
            writeln!(f, "lock-order graph:")?;
        }
        for e in &self.lock_edges {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

/// Analyzes an already-compiled program: `tops` are the top-level code
/// objects in evaluation order (they form the main abstract thread).
pub fn analyze_program(program: &Program, tops: &[u32]) -> Report {
    let flow = Flow::analyze(program, tops);
    let (diagnostics, lock_edges) = detect::Detect::run(&flow);
    Report {
        diagnostics,
        lock_edges,
    }
}

/// Reads, expands and compiles `src` with the standard prelude prepended
/// (so programs resolve the same bindings the interpreter provides),
/// then analyzes it.
///
/// # Errors
///
/// Read, expansion or compile errors from the Scheme front end.
pub fn analyze_source(src: &str) -> Result<Report, SchemeError> {
    analyze_chunks(&[sting_scheme::PRELUDE, src])
}

/// Like [`analyze_source`] but without the prelude (for self-contained
/// programs and tests).
///
/// # Errors
///
/// Read, expansion or compile errors from the Scheme front end.
pub fn analyze_source_bare(src: &str) -> Result<Report, SchemeError> {
    analyze_chunks(&[src])
}

/// Reads and analyzes a Scheme file (with the prelude).
///
/// # Errors
///
/// I/O errors (reported as read errors) and front-end errors.
pub fn analyze_file(path: impl AsRef<Path>) -> Result<Report, SchemeError> {
    let path = path.as_ref();
    let src = std::fs::read_to_string(path)
        .map_err(|e| SchemeError::Read(format!("cannot read {}: {e}", path.display())))?;
    analyze_source(&src)
}

fn analyze_chunks(chunks: &[&str]) -> Result<Report, SchemeError> {
    let mut program = Program::default();
    let mut tops = Vec::new();
    for chunk in chunks {
        for form in reader::read_all(chunk)? {
            let core = expand::expand_top(&form)?;
            tops.push(compile::compile_top(&core, &mut program)?);
        }
    }
    Ok(analyze_program(&program, &tops))
}
