//! A policy manager written by *application code* — the paper's central
//! promise: "users are free to write their own … without requiring
//! modification to the thread controller itself".

use parking_lot::Mutex;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use sting_core::pm::{EnqueueState, PolicyManager, RunItem};
use sting_core::{tc, ThreadBuilder, Vm, VmBuilder, Vp};
use sting_value::Value;

/// An instrumented two-class policy: "interactive" threads (negative
/// priority values) always run before "batch" threads, FIFO within a
/// class; every enqueue cause is tallied.
struct TwoClass {
    interactive: VecDeque<RunItem>,
    batch: VecDeque<RunItem>,
    tallies: Arc<Mutex<HashMap<EnqueueState, usize>>>,
}

impl TwoClass {
    fn new(tallies: Arc<Mutex<HashMap<EnqueueState, usize>>>) -> TwoClass {
        TwoClass {
            interactive: VecDeque::new(),
            batch: VecDeque::new(),
            tallies,
        }
    }
}

impl PolicyManager for TwoClass {
    fn get_next_thread(&mut self, _vp: &Vp) -> Option<RunItem> {
        self.interactive
            .pop_front()
            .or_else(|| self.batch.pop_front())
    }

    fn enqueue_thread(&mut self, _vp: &Vp, item: RunItem, state: EnqueueState) {
        *self.tallies.lock().entry(state).or_insert(0) += 1;
        if item.priority() < 0 {
            self.interactive.push_back(item);
        } else {
            self.batch.push_back(item);
        }
    }

    fn len(&self) -> usize {
        self.interactive.len() + self.batch.len()
    }

    fn name(&self) -> &'static str {
        "two-class"
    }
}

fn vm_with_two_class() -> (Arc<Vm>, Arc<Mutex<HashMap<EnqueueState, usize>>>) {
    let tallies: Arc<Mutex<HashMap<EnqueueState, usize>>> = Arc::new(Mutex::new(HashMap::new()));
    let t2 = tallies.clone();
    let vm = VmBuilder::new()
        .vps(1)
        .policy(move |_| Box::new(TwoClass::new(t2.clone())))
        .build();
    (vm, tallies)
}

#[test]
fn interactive_class_preempts_batch_order() {
    let (vm, _tallies) = vm_with_two_class();
    assert_eq!(vm.vp(0).unwrap().policy_name(), "two-class");
    let order = Arc::new(Mutex::new(Vec::new()));
    // Hold the VP while we enqueue a mix of classes: the blocker must not
    // yield (a yield lets the VP dispatch whatever is enqueued so far,
    // racing the host's spawns below — flaky under system load).
    let gate = Arc::new(AtomicBool::new(false));
    let g = gate.clone();
    let blocker = vm.fork(move |cx| {
        cx.without_preemption(|| {
            while !g.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }
        });
        0i64
    });
    std::thread::sleep(std::time::Duration::from_millis(10));
    let mut all = Vec::new();
    for (prio, tag) in [
        (5, "batch-1"),
        (-1, "live-1"),
        (7, "batch-2"),
        (-2, "live-2"),
    ] {
        let o = order.clone();
        all.push(
            ThreadBuilder::new(&vm)
                .priority(prio)
                .spawn(move |_| {
                    o.lock().push(tag);
                    0i64
                })
                .unwrap(),
        );
    }
    gate.store(true, Ordering::SeqCst);
    blocker.join_blocking().unwrap();
    for t in all {
        t.join_blocking().unwrap();
    }
    assert_eq!(
        order.lock().clone(),
        vec!["live-1", "live-2", "batch-1", "batch-2"],
        "interactive class strictly first, FIFO within class"
    );
    vm.shutdown();
}

#[test]
fn enqueue_states_reach_the_policy() {
    let (vm, tallies) = vm_with_two_class();
    let r = vm.run(|cx| {
        // New: this thread + one child.
        let child = cx.fork(|cx| {
            cx.yield_now(); // Yielded
            0i64
        });
        cx.wait(&child).unwrap(); // our block; child completion unblocks us
        cx.sleep(std::time::Duration::from_millis(5)); // Resumed (timer)
        1i64
    });
    assert_eq!(r, Ok(Value::Int(1)));
    let t = tallies.lock().clone();
    assert!(
        t.get(&EnqueueState::New).copied().unwrap_or(0) >= 2,
        "{t:?}"
    );
    assert!(
        t.get(&EnqueueState::Yielded).copied().unwrap_or(0) >= 1,
        "{t:?}"
    );
    assert!(
        t.get(&EnqueueState::Unblocked).copied().unwrap_or(0) >= 1,
        "{t:?}"
    );
    vm.shutdown();
}

#[test]
fn whole_paradigm_suite_runs_on_a_user_policy() {
    // The same machinery the built-in policies get: stealing, blocking,
    // timers, termination — all through user code.
    let (vm, _) = vm_with_two_class();
    let r = vm.run(|cx| {
        let lazy = cx.delayed(|_| 20i64);
        let eager = cx.fork(|_| 22i64);
        let stolen = cx.touch(&lazy).unwrap().as_int().unwrap();
        let waited = cx.wait(&eager).unwrap().as_int().unwrap();
        stolen + waited
    });
    assert_eq!(r, Ok(Value::Int(42)));
    let loser = vm.fork(|cx| -> i64 {
        loop {
            cx.yield_now();
        }
    });
    tc::thread_terminate(&loser, Value::sym("bye")).unwrap();
    assert_eq!(loser.join_blocking(), Ok(Value::sym("bye")));
    vm.shutdown();
}
