//! Fleet integration: cross-shard calls and handoffs over the fabric,
//! fleet-wide merged trace audit, and the terminate-while-migrating
//! churn (a thread cancelled mid-handoff must leave both shards clean).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use sting_core::audit::FindingKind;
use sting_core::fleet::Fleet;
use sting_core::tc;
use sting_core::trace::EventKind;
use sting_value::Value;

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    cond()
}

/// A routed `Fabric::call` runs on the destination shard and the receiver
/// witnesses the sender's clock (the destination's clock jumps past it).
#[test]
fn fabric_call_runs_on_destination_shard() {
    let fleet = Fleet::builder().shards(2).trace(true).build();
    let fabric = fleet.fabric().unwrap().clone();
    let ran_on = Arc::new(AtomicU64::new(u64::MAX));
    let flag = ran_on.clone();
    fabric.call(
        fleet.shard(0),
        1,
        Box::new(move |vm| flag.store(vm.shard_id() as u64, Ordering::Release)),
    );
    assert!(
        wait_until(Duration::from_secs(5), || ran_on.load(Ordering::Acquire)
            == 1),
        "routed call never ran on shard 1"
    );
    // Local calls are inline: no mailbox, immediate effect.
    let inline = Arc::new(AtomicU64::new(0));
    let flag = inline.clone();
    fabric.call(
        fleet.shard(0),
        0,
        Box::new(move |vm| flag.store(vm.shard_id() as u64 + 7, Ordering::Release)),
    );
    assert_eq!(inline.load(Ordering::Acquire), 7);
    fleet.shutdown();
}

/// Work forked onto one shard spreads to the idle sibling via the
/// mailbox handoff protocol, thread ids stay fleet-unique, and the
/// merged fleet-wide replay audits clean (acceptance criterion).
#[test]
fn two_shard_fleet_hands_off_work_and_audits_clean() {
    let fleet = Fleet::builder()
        .shards(2)
        .trace(true)
        .trace_capacity(1 << 15)
        .build();
    let mut handoffs = 0usize;
    for _round in 0..50 {
        // Pile a batch onto shard 0; shard 1 has nothing and must ask.
        let threads: Vec<_> = (0..32i64)
            .map(|i| {
                fleet
                    .shard(0)
                    .fork_on(0, move |cx| {
                        let mut acc = i as u64;
                        for _ in 0..500 {
                            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                            std::hint::black_box(acc);
                        }
                        cx.checkpoint();
                        i
                    })
                    .unwrap()
            })
            .collect();
        let sum: i64 = threads
            .iter()
            .map(|t| t.join_blocking().unwrap().as_int().unwrap())
            .sum();
        assert_eq!(sum, (0..32i64).sum::<i64>());
        handoffs = fleet
            .shards()
            .iter()
            .map(|vm| vm.counters().snapshot().handoffs as usize)
            .sum();
        if handoffs > 0 {
            break;
        }
    }
    assert!(handoffs > 0, "idle shard never received a handoff");
    let events = fleet.merged_snapshot();
    assert!(
        events.iter().any(|e| e.kind == EventKind::Handoff),
        "no Handoff event in the merged stream"
    );
    // The merged stream is in (lc, ts) order.
    assert!(events
        .windows(2)
        .all(|w| (w[0].lc, w[0].ts_ns) <= (w[1].lc, w[1].ts_ns)));
    let report = fleet.trace_audit();
    assert!(!fleet.truncated(), "grow trace_capacity: ring wrapped");
    assert!(report.is_clean(), "fleet-wide audit:\n{report}");
    fleet.shutdown();
}

/// Satellite: terminate-while-migrating.  Threads are cancelled while
/// batches bounce between shards; afterwards every thread is determined
/// and neither shard shows a WaiterLeak, LostWakeup, or WakeAfterCancel
/// in the merged replay (the per-shard debug shutdown audits also run).
#[test]
fn terminate_mid_handoff_leaves_both_shards_clean() {
    let fleet = Fleet::builder()
        .shards(2)
        .trace(true)
        .trace_capacity(1 << 15)
        .build();
    let stop = Arc::new(AtomicBool::new(false));
    for _round in 0..20 {
        let threads: Vec<_> = (0..16i64)
            .map(|i| {
                let stop = stop.clone();
                fleet
                    .shard(0)
                    .fork_on(0, move |cx| {
                        while !stop.load(Ordering::Relaxed) {
                            cx.checkpoint();
                            std::thread::yield_now();
                        }
                        i
                    })
                    .unwrap()
            })
            .collect();
        // Cancel every other thread while handoffs are in flight; the
        // rest run to completion once `stop` flips.
        for t in threads.iter().step_by(2) {
            tc::thread_terminate(t, Value::sym("killed")).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for t in &threads {
            let _ = t.join_blocking();
            assert!(t.is_determined());
        }
        stop.store(false, Ordering::Relaxed);
    }
    let report = fleet.trace_audit();
    for f in &report.findings {
        assert!(
            !matches!(
                f.kind,
                FindingKind::WaiterLeak | FindingKind::LostWakeup | FindingKind::WakeAfterCancel
            ),
            "terminate-mid-handoff violation:\n{report}"
        );
    }
    // Shutdown runs each shard's debug audit (panics on hard findings).
    fleet.shutdown();
}

/// Thread ids never collide across shards: the fleet shares one id source.
#[test]
fn thread_ids_are_fleet_unique() {
    let fleet = Fleet::builder().shards(4).build();
    let mut seen = std::collections::BTreeSet::new();
    for vm in fleet.shards() {
        for _ in 0..8 {
            let t = vm.fork(|_| 0i64);
            assert!(seen.insert(t.id().0), "duplicate thread id across shards");
            t.join_blocking().unwrap();
        }
    }
    fleet.shutdown();
}
