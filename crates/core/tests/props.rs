//! Property tests over random scheduling scenarios: whatever the policy,
//! priorities and yield pattern, every thread determines exactly once with
//! its own value, and the counters stay consistent.

use proptest::prelude::*;
use sting_core::policies::{self, GlobalQueue, QueueOrder};
use sting_core::{PolicyManager, VmBuilder};

fn policy(pick: usize) -> Box<dyn PolicyManager> {
    match pick {
        0 => policies::local_fifo().boxed(),
        1 => policies::local_lifo().boxed(),
        2 => policies::local_fifo().migrating(true).boxed(),
        _ => policies::priority_high().boxed(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_thread_determines_once(
        pick in 0usize..4,
        vps in 1usize..4,
        specs in prop::collection::vec((0u8..3, -5i32..5, 1u64..50), 1..40),
    ) {
        let vm = VmBuilder::new()
            .vps(vps)
            .policy(move |_| policy(pick))
            .build();
        let before = vm.counters().snapshot();
        let threads: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(i, &(kind, prio, work))| {
                let expect = i as i64;
                let t = match kind {
                    // Plain compute.
                    0 => vm.fork(move |_cx| {
                        let mut x = 0u64;
                        for k in 0..work * 100 {
                            x = x.wrapping_add(k);
                        }
                        std::hint::black_box(x);
                        expect
                    }),
                    // Yields along the way.
                    1 => vm.fork(move |cx| {
                        for _ in 0..(work % 5) {
                            cx.yield_now();
                        }
                        expect
                    }),
                    // Forks a child and waits on it.
                    _ => vm.fork(move |cx| {
                        let c = cx.fork(move |_| expect * 1000);
                        cx.wait(&c).unwrap().as_int().unwrap() / 1000
                    }),
                };
                t.set_priority(prio);
                t
            })
            .collect();
        for (i, t) in threads.iter().enumerate() {
            let r = t.join_blocking();
            prop_assert_eq!(r.unwrap().as_int(), Some(i as i64));
            prop_assert!(t.is_determined());
        }
        let d = vm.counters().snapshot().since(&before);
        // Thread accounting: every spec thread, plus one child per kind-2.
        let children = specs.iter().filter(|s| s.0 >= 2).count() as u64;
        prop_assert_eq!(d.threads_created, specs.len() as u64 + children);
        prop_assert_eq!(d.determinations, specs.len() as u64 + children);
        vm.shutdown();
    }

    #[test]
    fn global_queue_conserves_threads(n in 1usize..60) {
        let q = GlobalQueue::shared(QueueOrder::Fifo);
        let vm = VmBuilder::new().vps(2).policy(move |_| q.policy()).build();
        let ts: Vec<_> = (0..n).map(|i| vm.fork(move |_| i as i64)).collect();
        let sum: i64 = ts.iter().map(|t| t.join_blocking().unwrap().as_int().unwrap()).sum();
        prop_assert_eq!(sum, (0..n as i64).sum());
        vm.shutdown();
    }

    #[test]
    fn touch_and_wait_agree(n in 1usize..30, steal_mask in prop::collection::vec(any::<bool>(), 30)) {
        let vm = VmBuilder::new().vps(1).build();
        let r = {
            let steal_mask = steal_mask.clone();
            vm.run(move |cx| {
                let ts: Vec<_> = (0..n).map(|i| cx.delayed(move |_| i as i64 * 3)).collect();
                let mut total = 0;
                for (i, t) in ts.iter().enumerate() {
                    let v = if steal_mask[i] { cx.touch(t) } else {
                        let _ = sting_core::tc::thread_run(t, 0);
                        cx.wait(t)
                    };
                    total += v.unwrap().as_int().unwrap();
                }
                total
            })
        };
        prop_assert_eq!(r.unwrap().as_int(), Some((0..n as i64).map(|i| i * 3).sum()));
        vm.shutdown();
    }
}
