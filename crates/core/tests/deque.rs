//! Stress and integration tests for the lock-free scheduler fast path:
//! the Chase–Lev deque and MPSC injector in `sting_core::deque`, and the
//! two-tier wiring that puts FIFO/LIFO policies on them (see DESIGN.md,
//! "Scheduler fast path").

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use sting_core::deque::{Deque, Injector, MultiDeque, Steal, BANDS};
use sting_core::trace::EventKind;
use sting_core::{policies, VmBuilder};

/// One owner pushes (and occasionally pops) 100k distinct items while
/// several thieves hammer `steal`; afterwards every item must have been
/// claimed by exactly one side — nothing lost, nothing duplicated.
#[test]
fn stress_multi_thief_no_lost_or_duplicated_items() {
    const ITEMS: u64 = 100_000;
    const THIEVES: usize = 3;
    let deque: Arc<Deque<u64>> = Arc::new(Deque::with_capacity(8)); // force growth under fire
    let done = Arc::new(AtomicBool::new(false));

    let thieves: Vec<_> = (0..THIEVES)
        .map(|_| {
            let deque = deque.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match deque.steal() {
                        Steal::Success(v) => got.push(v),
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) && deque.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                got
            })
        })
        .collect();

    let mut owner_got = Vec::new();
    for i in 0..ITEMS {
        deque.push(i);
        // Interleave owner pops so the bottom-end races the steals,
        // including the contended single-item CAS.
        if i % 3 == 0 {
            if let Some(v) = deque.pop() {
                owner_got.push(v);
            }
        }
    }
    done.store(true, Ordering::Release);

    let mut seen = vec![false; ITEMS as usize];
    let mut claim = |v: u64| {
        assert!(!seen[v as usize], "item {v} claimed twice");
        seen[v as usize] = true;
    };
    for v in owner_got {
        claim(v);
    }
    for t in thieves {
        for v in t.join().unwrap() {
            claim(v);
        }
    }
    let missing = seen.iter().filter(|s| !**s).count();
    assert_eq!(missing, 0, "{missing} items lost");
}

/// The single-item race: owner and thieves fight over a deque that never
/// holds more than one item.  Exactly one side must win each round.
#[test]
fn stress_last_item_owner_vs_thief_race() {
    const ROUNDS: u64 = 50_000;
    let deque: Arc<Deque<u64>> = Arc::new(Deque::new());
    let done = Arc::new(AtomicBool::new(false));
    let stolen = Arc::new(AtomicUsize::new(0));

    let thieves: Vec<_> = (0..2)
        .map(|_| {
            let deque = deque.clone();
            let done = done.clone();
            let stolen = stolen.clone();
            std::thread::spawn(move || {
                while !done.load(Ordering::Acquire) {
                    if matches!(deque.steal(), Steal::Success(_)) {
                        stolen.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();

    let mut popped = 0usize;
    for i in 0..ROUNDS {
        deque.push(i);
        if deque.pop().is_some() {
            popped += 1;
        }
    }
    // Anything neither popped nor yet stolen is still queued; drain it.
    let mut residue = 0usize;
    while deque.steal_retrying().is_some() {
        residue += 1;
    }
    done.store(true, Ordering::Release);
    for t in thieves {
        t.join().unwrap();
    }
    let total = popped + residue + stolen.load(Ordering::Relaxed);
    assert_eq!(
        total as u64, ROUNDS,
        "every round's item claimed exactly once"
    );
}

/// Wrap the tiny ring thousands of times while thieves race: the masked
/// indices must never alias a live slot (the ABA hazard is resolved by the
/// monotonically increasing `top` CAS).
#[test]
fn stress_wraparound_with_concurrent_thieves() {
    const BATCHES: u64 = 20_000;
    let deque: Arc<Deque<u64>> = Arc::new(Deque::with_capacity(4));
    let done = Arc::new(AtomicBool::new(false));
    let thief = {
        let deque = deque.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            let mut got = Vec::new();
            while !(done.load(Ordering::Acquire) && deque.is_empty()) {
                if let Steal::Success(v) = deque.steal() {
                    got.push(v);
                }
            }
            got
        })
    };
    let mut owner_got = Vec::new();
    let mut next = 0u64;
    for _ in 0..BATCHES {
        for _ in 0..3 {
            deque.push(next);
            next += 1;
        }
        for _ in 0..3 {
            if let Some(v) = deque.pop() {
                owner_got.push(v);
            }
        }
    }
    done.store(true, Ordering::Release);
    let mut all = owner_got;
    all.extend(thief.join().unwrap());
    all.sort_unstable();
    let expected: Vec<u64> = (0..next).collect();
    assert_eq!(all, expected, "wraparound lost or duplicated items");
}

/// Concurrent producers on the injector: every pushed item is drained
/// exactly once, and each producer's items come out in its push order.
#[test]
fn stress_injector_multi_producer() {
    const PRODUCERS: u64 = 4;
    const PER: u64 = 25_000;
    let q: Arc<Injector<u64>> = Arc::new(Injector::new());
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let q = q.clone();
            std::thread::spawn(move || {
                for i in 0..PER {
                    q.push(p * PER + i);
                }
            })
        })
        .collect();
    let mut got = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    while got.len() < (PRODUCERS * PER) as usize {
        got.extend(q.drain());
        assert!(Instant::now() < deadline, "injector drain stalled");
    }
    for p in producers {
        p.join().unwrap();
    }
    assert!(q.is_empty());
    // Exactly-once delivery…
    let mut sorted = got.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..PRODUCERS * PER).collect::<Vec<_>>());
    // …and per-producer FIFO within the drained stream.
    let mut last = vec![None::<u64>; PRODUCERS as usize];
    for v in got {
        let p = (v / PER) as usize;
        assert!(
            last[p].is_none_or(|prev| prev < v),
            "producer {p} reordered"
        );
        last[p] = Some(v);
    }
}

/// A migrating FIFO policy on 4 VPs rides the deque tier, and the
/// migrations that spread its work are the lock-free `Deque::steal` path —
/// witnessed by the flight recorder's `Migrate` events.
///
/// VP 0's owner is wedged in a non-yielding spinner, so the fresh threads
/// piled onto VP 0 can *only* complete by being stolen by VPs 1–3: their
/// determination proves the lock-free migration path end to end.
#[test]
fn four_vp_migration_rides_the_lock_free_tier() {
    const WORKERS: i64 = 32;
    let vm = VmBuilder::new()
        .vps(4)
        .processors(4)
        .policy(|_| policies::local_fifo().migrating(true).boxed())
        .trace(true)
        .build();
    for vp in vm.vps() {
        assert!(
            vp.lock_free_queue(),
            "migrating FIFO must opt into the deque tier"
        );
    }
    let gate = Arc::new(AtomicBool::new(false));
    // The spinner may itself be stolen before it first runs, so let it
    // report which VP it actually wedged and pile the workers there.
    let wedged = Arc::new(AtomicUsize::new(usize::MAX));
    let g = gate.clone();
    let w = wedged.clone();
    let spinner = vm.fork(move |cx| {
        w.store(cx.current_vp().index(), Ordering::Release);
        // Never yields: this VP dispatches nothing until the gate opens.
        while !g.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }
        0i64
    });
    let spin_deadline = Instant::now() + Duration::from_secs(30);
    while wedged.load(Ordering::Acquire) == usize::MAX {
        assert!(Instant::now() < spin_deadline, "spinner never dispatched");
        std::thread::sleep(Duration::from_millis(1));
    }
    let victim = wedged.load(Ordering::Acquire);
    let workers: Vec<_> = (0..WORKERS)
        .map(|i| vm.fork_on(victim, move |_| i).unwrap())
        .collect();
    let deadline = Instant::now() + Duration::from_secs(30);
    for t in &workers {
        while !t.is_determined() {
            assert!(
                Instant::now() < deadline,
                "worker stuck: idle VPs failed to steal from the wedged VP 0"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    gate.store(true, Ordering::Release);
    spinner.join_blocking().unwrap();
    let sum: i64 = workers
        .iter()
        .map(|t| t.join_blocking().unwrap().as_int().unwrap())
        .sum();
    assert_eq!(sum, (0..WORKERS).sum::<i64>());
    let migrations = vm.counters().snapshot().migrations;
    assert!(
        migrations >= WORKERS as u64,
        "every worker must have migrated off wedged VP {victim} (migrations={migrations})"
    );
    let events = vm.tracer().snapshot();
    assert!(
        events.iter().any(|e| e.kind == EventKind::Migrate),
        "migrations must be trace-recorded from the lock-free path"
    );
    assert!(
        events.iter().any(|e| e.kind == EventKind::Enqueue)
            && events.iter().any(|e| e.kind == EventKind::Dispatch),
        "enqueue/dispatch events must still flow from the fast path"
    );
    vm.shutdown();
}

/// `.locked(true)` pins an otherwise deque-able policy to the reference
/// locked tier — the A/B escape hatch the steal-throughput bench uses.
#[test]
fn locked_escape_hatch_stays_on_policy_tier() {
    let vm = VmBuilder::new()
        .vps(2)
        .processors(2)
        .policy(|_| policies::local_fifo().migrating(true).locked(true).boxed())
        .build();
    for vp in vm.vps() {
        assert!(
            !vp.lock_free_queue(),
            ".locked(true) must force the locked tier"
        );
    }
    let total = vm
        .run(|cx| {
            let ts: Vec<_> = (0..32i64).map(|i| cx.fork(move |_| i)).collect();
            ts.iter()
                .map(|t| cx.wait(t).unwrap().as_int().unwrap())
                .sum::<i64>()
        })
        .unwrap();
    assert_eq!(total.as_int(), Some((0..32).sum::<i64>()));
    vm.shutdown();
}

/// Priority policies ride the banded deque tier by default, and stay
/// fully functional there; `.locked(true)` remains the policy-tier
/// opt-out (the heap reference path the bench A/Bs against).
#[test]
fn priority_policies_ride_the_deque_tier() {
    let vm = VmBuilder::new()
        .vps(1)
        .processors(1)
        .policy(|_| policies::priority_high().boxed())
        .build();
    assert!(
        vm.vp(0).unwrap().lock_free_queue(),
        "priority policies must opt into the banded deque tier"
    );
    let v = vm.run(|cx| {
        let t = cx.fork(|_| 21i64);
        cx.wait(&t).unwrap().as_int().unwrap() * 2
    });
    assert_eq!(v.unwrap().as_int(), Some(42));
    vm.shutdown();

    let vm = VmBuilder::new()
        .vps(1)
        .processors(1)
        .policy(|_| policies::priority_high().locked(true).boxed())
        .build();
    assert!(
        !vm.vp(0).unwrap().lock_free_queue(),
        ".locked(true) must keep the heap-backed policy tier"
    );
    let v = vm.run(|cx| {
        let t = cx.fork(|_| 21i64);
        cx.wait(&t).unwrap().as_int().unwrap() * 2
    });
    assert_eq!(v.unwrap().as_int(), Some(42));
    vm.shutdown();
}

/// 4 bands × 4 thieves over one `MultiDeque`: every item is claimed by
/// exactly one side, no matter which band it sat in or how the occupancy
/// bits churned.
#[test]
fn stress_multi_band_exactly_once_across_thieves() {
    const ITEMS: u64 = 80_000;
    const THIEVES: usize = 4;
    let md: Arc<MultiDeque<u64>> = Arc::new(MultiDeque::with_capacity(8));
    let done = Arc::new(AtomicBool::new(false));

    let thieves: Vec<_> = (0..THIEVES)
        .map(|_| {
            let md = md.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match md.steal(false) {
                        Steal::Success(v) => got.push(v),
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) && md.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                got
            })
        })
        .collect();

    let mut owner_got = Vec::new();
    for i in 0..ITEMS {
        md.push((i % BANDS as u64) as usize, i);
        // Owner pops race the thieves across all bands (alternate the
        // within-band discipline to cover both ends).
        if i % 3 == 0 {
            if let Some(v) = md.pop(i % 2 == 0) {
                owner_got.push(v);
            }
        }
    }
    done.store(true, Ordering::Release);

    let mut seen = vec![false; ITEMS as usize];
    let mut claim = |v: u64| {
        assert!(!seen[v as usize], "item {v} claimed twice");
        seen[v as usize] = true;
    };
    for v in owner_got {
        claim(v);
    }
    for t in thieves {
        for v in t.join().unwrap() {
            claim(v);
        }
    }
    let missing = seen.iter().filter(|s| !**s).count();
    assert_eq!(missing, 0, "{missing} items lost across bands");
}

/// Band starvation order: with all bands populated, a quiesced drain
/// serves bands strictly highest-first — the low band moves only once
/// every higher band is empty — and FIFO within each band.
#[test]
fn low_band_drains_only_after_high_bands_empty() {
    let md: MultiDeque<u64> = MultiDeque::new();
    // Interleave pushes so every band fills while others are non-empty.
    const PER_BAND: u64 = 25;
    for i in 0..PER_BAND {
        for band in 0..BANDS as u64 {
            md.push(band as usize, band * PER_BAND + i);
        }
    }
    let mut out = Vec::new();
    while let Some(v) = md.pop(true) {
        out.push(v);
    }
    assert_eq!(out.len(), (PER_BAND as usize) * BANDS);
    let bands: Vec<u64> = out.iter().map(|v| v / PER_BAND).collect();
    assert!(
        bands.windows(2).all(|w| w[0] >= w[1]),
        "a lower band was served while a higher one still held items: {bands:?}"
    );
    // FIFO within each band.
    for band in 0..BANDS as u64 {
        let in_band: Vec<u64> = out
            .iter()
            .copied()
            .filter(|v| v / PER_BAND == band)
            .collect();
        let expected: Vec<u64> = (band * PER_BAND..(band + 1) * PER_BAND).collect();
        assert_eq!(in_band, expected, "band {band} reordered");
    }
    assert!(md.is_empty());
}

/// A `WaitList::wake_all` sweep publishes all woken threads with one
/// batched injector CAS; on a single FIFO VP they must then run in their
/// wake (registration) order — the batched wake's FIFO-within-band
/// property, observed end to end through thread joins.
#[test]
fn batched_wake_preserves_fifo_order_within_band() {
    const WAITERS: i64 = 8;
    let vm = VmBuilder::new()
        .vps(1)
        .processors(1)
        .policy(|_| policies::local_fifo().boxed())
        .build();
    let release = Arc::new(AtomicBool::new(false));
    let order: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
    let r = release.clone();
    // The gate cooperatively spins so the waiters get dispatched, then
    // completes; its determination wakes every joiner in one sweep.
    let gate = vm.fork(move |cx| {
        while !r.load(Ordering::Acquire) {
            cx.yield_now();
        }
        0i64
    });
    let waiters: Vec<_> = (0..WAITERS)
        .map(|i| {
            let g = gate.clone();
            let order = order.clone();
            vm.fork(move |cx| {
                cx.wait(&g).unwrap();
                order.lock().unwrap().push(i);
                i
            })
        })
        .collect();
    // Let every waiter park on the gate's wait list (in fork order, since
    // the single FIFO VP dispatches them in order).
    let deadline = Instant::now() + Duration::from_secs(30);
    while vm.counters().snapshot().blocks < WAITERS as u64 {
        assert!(Instant::now() < deadline, "waiters never parked");
        std::thread::sleep(Duration::from_millis(1));
    }
    release.store(true, Ordering::Release);
    for w in &waiters {
        w.join_blocking().unwrap();
    }
    gate.join_blocking().unwrap();
    let got = order.lock().unwrap().clone();
    assert_eq!(
        got,
        (0..WAITERS).collect::<Vec<_>>(),
        "batched wake must preserve FIFO order within the band"
    );
    vm.shutdown();
}

/// `len`/`is_empty` under concurrent push/steal: the relaxed snapshots may
/// lag, but `len` must never exceed the number of pushes issued, and once
/// the deque quiesces both must be exact.
#[test]
fn stress_len_is_empty_under_concurrent_push_steal() {
    const ITEMS: u64 = 20_000;
    let deque: Arc<Deque<u64>> = Arc::new(Deque::with_capacity(4));
    let pushes = Arc::new(AtomicUsize::new(0));
    let claimed = Arc::new(AtomicUsize::new(0));
    let done = Arc::new(AtomicBool::new(false));

    // Thieves claim until told to stop (they do NOT drain, so a remainder
    // is left for the quiescent exactness check).
    let thieves: Vec<_> = (0..2)
        .map(|_| {
            let (d, c, stop) = (deque.clone(), claimed.clone(), done.clone());
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    match d.steal() {
                        Steal::Success(_) => {
                            c.fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => std::thread::yield_now(),
                    }
                }
            })
        })
        .collect();
    // A sampler validating the snapshot upper bound while the race runs:
    // a push is counted before it lands, so any `len` read afterwards can
    // never exceed the count read after it.
    let sampler = {
        let (d, p, stop) = (deque.clone(), pushes.clone(), done.clone());
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                let len = d.len();
                let issued = p.load(Ordering::Relaxed);
                assert!(len <= issued, "len {len} exceeds {issued} pushes issued");
                // No two-read consistency assertion here: any second read
                // of `len`/`is_empty` races with the producer, so reads
                // can only be compared once the deque has quiesced (below).
                let _ = d.is_empty();
            }
        })
    };

    for i in 0..ITEMS {
        pushes.fetch_add(1, Ordering::Relaxed);
        deque.push(i);
        if i % 5 == 0 && deque.pop().is_some() {
            claimed.fetch_add(1, Ordering::Relaxed);
        }
    }
    done.store(true, Ordering::Release);
    for t in thieves {
        t.join().unwrap();
    }
    sampler.join().unwrap();

    // Quiesced: the snapshots are exact.
    let remainder = ITEMS - claimed.load(Ordering::Relaxed) as u64;
    assert_eq!(deque.len() as u64, remainder);
    assert_eq!(deque.is_empty(), remainder == 0);
    let mut drained = 0u64;
    while deque.steal_retrying().is_some() {
        drained += 1;
    }
    assert_eq!(drained, remainder);
    assert!(deque.is_empty());
    assert_eq!(deque.len(), 0);
}
