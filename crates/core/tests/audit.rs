//! Tests for the trace invariant linter (`sting_core::audit`): synthetic
//! event streams seeded with each violation class must be flagged, and a
//! real steal-heavy multi-VP run must audit clean.

use sting_core::audit::{audit, FindingKind};
use sting_core::trace::{EventKind, TraceEvent};
use sting_core::{policies, VmBuilder};

/// Shorthand for building synthetic streams: timestamps advance with the
/// slice index so the stream is sorted the way `Tracer::snapshot` sorts.
fn ev(ts: u64, vp: u32, kind: EventKind, thread: u64, a: u32, b: u32) -> TraceEvent {
    TraceEvent {
        ts_ns: ts * 100,
        vp,
        kind,
        thread,
        a,
        b,
        lc: ts,
    }
}

#[test]
fn clean_synthetic_lifecycle_has_no_findings() {
    let events = [
        ev(1, 0, EventKind::Fork, 7, 0, 0),
        ev(2, 0, EventKind::Enqueue, 7, 0, 0),
        ev(3, 0, EventKind::Dispatch, 7, 0, 0),
        ev(4, 0, EventKind::Switch, 7, 0, 0), // yields
        ev(5, 0, EventKind::Enqueue, 7, 1, 0),
        ev(6, 0, EventKind::Dispatch, 7, 1, 0),
        ev(7, 0, EventKind::Switch, 7, 4, 0), // returns
        ev(8, 0, EventKind::Determine, 7, 0, 0),
    ];
    let report = audit(&events, false);
    assert!(report.is_clean(), "unexpected findings: {report}");
    assert_eq!(report.events, 8);
}

/// A seeded double dispatch — two `Dispatch` events with no intervening
/// `Switch` — must be flagged (acceptance criterion for `Vm::trace_audit`).
#[test]
fn seeded_double_dispatch_is_flagged() {
    let events = [
        ev(1, 0, EventKind::Fork, 7, 0, 0),
        ev(2, 0, EventKind::Enqueue, 7, 0, 0),
        ev(3, 0, EventKind::Dispatch, 7, 0, 0),
        ev(4, 1, EventKind::Dispatch, 7, 1, 0), // still running on vp 0!
        ev(5, 0, EventKind::Switch, 7, 4, 0),
        ev(6, 1, EventKind::Switch, 7, 4, 0),
        ev(7, 0, EventKind::Determine, 7, 0, 0),
    ];
    let report = audit(&events, false);
    let f = report
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::DoubleDispatch)
        .expect("double dispatch flagged");
    assert_eq!(f.thread, 7);
    assert_eq!(f.ts_ns, 400);
    // The vector clock pinpoints how far each lane had advanced.
    assert_eq!(f.clock, [3, 1]);
}

#[test]
fn dispatch_after_determine_is_flagged() {
    let events = [
        ev(1, 0, EventKind::Fork, 7, 0, 0),
        ev(2, 0, EventKind::Enqueue, 7, 0, 0),
        ev(3, 0, EventKind::Dispatch, 7, 0, 0),
        ev(4, 0, EventKind::Switch, 7, 4, 0),
        ev(5, 0, EventKind::Determine, 7, 0, 0),
        ev(6, 0, EventKind::Enqueue, 7, 0, 0),
        ev(7, 0, EventKind::Dispatch, 7, 1, 0), // the TCB is gone
        ev(8, 0, EventKind::Switch, 7, 0, 0),
    ];
    let report = audit(&events, false);
    assert!(report
        .findings
        .iter()
        .any(|f| f.kind == FindingKind::DispatchAfterDetermine && f.thread == 7));
}

#[test]
fn steal_without_enqueue_is_flagged() {
    let events = [
        ev(1, 0, EventKind::Fork, 7, 0, 0),
        // Migrate with no unconsumed Enqueue: the thief claimed
        // unpublished work.
        ev(2, 1, EventKind::Migrate, 7, 0, 1),
        ev(3, 1, EventKind::Dispatch, 7, 0, 0),
        ev(4, 1, EventKind::Switch, 7, 4, 0),
        ev(5, 1, EventKind::Determine, 7, 0, 0),
    ];
    let report = audit(&events, false);
    assert!(report
        .findings
        .iter()
        .any(|f| f.kind == FindingKind::StealWithoutEnqueue && f.thread == 7));
    // A matching enqueue first makes the same stream clean.
    let mut fixed = events.to_vec();
    fixed.insert(1, ev(1, 0, EventKind::Enqueue, 7, 0, 0));
    assert!(audit(&fixed, false).is_clean());
}

#[test]
fn lost_wakeup_is_flagged_only_with_complete_history() {
    let events = [
        ev(1, 0, EventKind::Fork, 7, 0, 0),
        ev(2, 0, EventKind::Enqueue, 7, 0, 3),
        // ... and then nothing: never dispatched, never determined.
    ];
    let report = audit(&events, false);
    let f = report
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::LostWakeup)
        .expect("lost wakeup flagged");
    assert_eq!(f.thread, 7);
    assert!(f.detail.contains("vp 3"), "detail: {}", f.detail);
    // With a lapped ring the missing dispatch may simply be missing from
    // the stream, so the check must stand down.
    let truncated = audit(&events, true);
    assert!(truncated.truncated);
    assert!(truncated.is_clean(), "{truncated}");
}

/// Threads whose `Fork` predates the recording (tracing enabled mid-run)
/// are exempt from the absence checks — their enqueues may have been
/// recorded without the dispatch that consumed them, or vice versa.
#[test]
fn unforked_threads_are_exempt_from_absence_checks() {
    let events = [
        ev(1, 0, EventKind::Enqueue, 7, 0, 0),
        ev(2, 1, EventKind::Migrate, 9, 0, 1), // enqueue predates recording
    ];
    assert!(audit(&events, false).is_clean());
}

/// Acceptance criterion: a real 4-VP steal-heavy run audits clean.  This
/// is the same shape as the migration stress in `tests/deque.rs` — work
/// forked onto one VP, spread by lock-free steals — plus blocking traffic
/// (`wait`) so enqueue/dispatch/switch/unblock all appear in the stream.
#[test]
fn clean_four_vp_steal_heavy_run_audits_clean() {
    let vm = VmBuilder::new()
        .vps(4)
        .processors(4)
        .policy(|_| policies::local_fifo().migrating(true).boxed())
        .trace(true)
        .build();
    let threads: Vec<_> = (0..64i64)
        .map(|i| {
            let target = (i % 2) as usize; // pile onto two VPs so the others must steal
            vm.fork_on(target, move |cx| {
                let inner = cx.fork(move |_| i);
                i + cx.wait(&inner).unwrap().as_int().unwrap()
            })
            .unwrap()
        })
        .collect();
    let sum: i64 = threads
        .iter()
        .map(|t| t.join_blocking().unwrap().as_int().unwrap())
        .sum();
    assert_eq!(sum, 2 * (0..64i64).sum::<i64>());
    vm.shutdown();
    let report = vm.trace_audit();
    assert!(
        !report.truncated,
        "ring wrapped; grow trace_capacity so the audit sees everything"
    );
    assert!(
        report.events > 64,
        "expected a busy stream, got {} events",
        report.events
    );
    let migrated = vm.counters().snapshot().migrations;
    assert!(
        report.is_clean(),
        "audit of a clean run (migrations={migrated}):\n{report}"
    );
}

/// A claimed wake-up (`Unblock` with a nonzero episode generation) after
/// that generation was cancelled must be flagged: the claim CAS and the
/// cancel CAS are mutually exclusive, so both appearing is a protocol
/// breach.  Presence-based, so it fires even on a truncated stream.
#[test]
fn wake_after_cancel_is_flagged() {
    let events = [
        ev(1, 0, EventKind::Fork, 7, 0, 0),
        ev(2, 0, EventKind::Enqueue, 7, 0, 0),
        ev(3, 0, EventKind::Dispatch, 7, 0, 0),
        ev(4, 0, EventKind::Block, 7, 0, 0),
        ev(5, 0, EventKind::Switch, 7, 2, 0),
        // Episode gen 3 cancelled by a state request...
        ev(6, 1, EventKind::WaiterCancelled, 7, 0, 3),
        // ...yet a structure still delivers a claimed wake for gen 3.
        ev(7, 1, EventKind::Unblock, 7, 0, 3),
    ];
    let report = audit(&events, true);
    assert_eq!(report.findings.len(), 1, "unexpected report: {report}");
    assert_eq!(report.findings[0].kind, FindingKind::WakeAfterCancel);
    assert_eq!(report.findings[0].thread, 7);
}

/// The same claimed wake-up after the episode *timed out* is the same
/// violation (the timeout CAS consumed the episode first).
#[test]
fn wake_after_timeout_is_flagged() {
    let events = [
        ev(1, 0, EventKind::BlockTimeout, 7, 0, 5),
        ev(2, 0, EventKind::Unblock, 7, 0, 5),
    ];
    let report = audit(&events, true);
    assert_eq!(report.findings.len(), 1, "unexpected report: {report}");
    assert_eq!(report.findings[0].kind, FindingKind::WakeAfterCancel);
}

/// Unclaimed wake-ups (`Unblock` with generation 0: resumes, join
/// completions) and claimed wakes on *other* generations are not flagged.
#[test]
fn unrelated_wakes_are_not_flagged() {
    let events = [
        ev(1, 0, EventKind::WaiterCancelled, 7, 1, 3),
        ev(2, 0, EventKind::Unblock, 7, 0, 0), // unclaimed: fine
        ev(3, 0, EventKind::Unblock, 7, 0, 4), // a later episode: fine
    ];
    let report = audit(&events, true);
    assert!(report.is_clean(), "unexpected findings: {report}");
}

/// An episode still registered when its thread determines (the
/// `WaiterCancelled` leak-check origin emitted by `Thread::complete`)
/// must be flagged as a waiter leak.
#[test]
fn waiter_leak_at_determine_is_flagged() {
    let events = [
        ev(1, 0, EventKind::Fork, 7, 0, 0),
        ev(2, 0, EventKind::Determine, 7, 0, 0),
        // Origin 2 = "leaked at determine".
        ev(3, 0, EventKind::WaiterCancelled, 7, 2, 6),
    ];
    let report = audit(&events, true);
    assert_eq!(report.findings.len(), 1, "unexpected report: {report}");
    assert_eq!(report.findings[0].kind, FindingKind::WaiterLeak);
    assert_eq!(report.findings[0].thread, 7);
}

/// Cancellations with the benign origins (state request, park unwind) are
/// clean on their own — only origin 2 is a leak.
#[test]
fn benign_cancel_origins_are_not_leaks() {
    let events = [
        ev(1, 0, EventKind::WaiterCancelled, 7, 0, 1),
        ev(2, 0, EventKind::WaiterCancelled, 7, 1, 2),
    ];
    let report = audit(&events, true);
    assert!(report.is_clean(), "unexpected findings: {report}");
}
