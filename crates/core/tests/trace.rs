//! Integration tests for the scheduler flight recorder and the
//! MAX_STEAL_DEPTH fallback: long dependency chains of delayed futures
//! must complete with bounded steal nesting, and a multi-VP stealing run
//! must export well-formed chrome://tracing JSON containing the
//! scheduler events the run provoked.

use std::sync::Arc;
use std::time::Duration;
use sting_core::tc::MAX_STEAL_DEPTH;
use sting_core::trace::EventKind;
use sting_core::{policies, Vm, VmBuilder};

/// Chains `n` delayed threads, each touching its predecessor, and touches
/// the head.  Under §4.1.1 every link is stolen onto the toucher's TCB,
/// so without the depth cap a long chain nests `n` stack frames deep.
fn touch_chain(vm: &Arc<Vm>, n: i64) -> i64 {
    vm.run(move |cx| {
        let mut prev = cx.delayed(|_| 0i64);
        for _ in 0..n {
            let p = prev.clone();
            prev = cx.delayed(move |cx| cx.touch(&p).unwrap().as_int().unwrap() + 1);
        }
        cx.touch(&prev).unwrap()
    })
    .unwrap()
    .as_int()
    .unwrap()
}

#[test]
fn steal_chain_deeper_than_max_depth_completes() {
    // Far more chained delayed futures than MAX_STEAL_DEPTH (32): the
    // toucher must bottom out at the cap and fall back to scheduling the
    // remainder instead of overflowing its machine stack.
    let chain = i64::from(MAX_STEAL_DEPTH) * 6 + 10;
    let vm = VmBuilder::new()
        .vps(1)
        .processors(1)
        .trace(true)
        .trace_capacity(64 * 1024)
        .build();
    assert_eq!(touch_chain(&vm, chain), chain);
    let snap = vm.counters().snapshot();
    assert!(
        snap.steals >= u64::from(MAX_STEAL_DEPTH),
        "the chain should be absorbed by stealing up to the cap (steals={})",
        snap.steals
    );
    // The flight recorder saw every steal; none may nest past the cap.
    let events = vm.tracer().snapshot();
    let max_depth = events
        .iter()
        .filter(|e| e.kind == EventKind::Steal)
        .map(|e| e.a)
        .max()
        .expect("steal events recorded");
    assert!(
        max_depth < MAX_STEAL_DEPTH,
        "steal nesting must stay below MAX_STEAL_DEPTH, saw depth {max_depth}"
    );
    vm.shutdown();
}

#[test]
fn tracing_is_off_by_default() {
    let vm = VmBuilder::new().vps(1).build();
    assert_eq!(touch_chain(&vm, 50), 50);
    assert_eq!(vm.tracer().recorded(), 0);
    assert_eq!(vm.tracer().snapshot().len(), 0);
    vm.shutdown();
}

#[test]
fn four_vp_stealing_run_exports_valid_chrome_json() {
    let vm = VmBuilder::new()
        .vps(4)
        .processors(4)
        .policy(|_| policies::local_lifo().migrating(true).boxed())
        .tick(Duration::from_micros(200))
        .trace(true)
        .build();
    // Forked + delayed work across 4 VPs: dispatches, switches, steals.
    let total = vm
        .run(|cx| {
            let parts: Vec<_> = (0..4)
                .map(|i| {
                    cx.fork(move |cx| {
                        let mut acc = 0i64;
                        for j in 0..64 {
                            let d = cx.delayed(move |_| i * 64 + j);
                            acc += cx.touch(&d).unwrap().as_int().unwrap();
                        }
                        acc
                    })
                })
                .collect();
            parts
                .iter()
                .map(|t| cx.touch(t).unwrap().as_int().unwrap())
                .sum::<i64>()
        })
        .unwrap();
    assert_eq!(total.as_int(), Some((0..256).sum::<i64>()));
    // Let the timekeeper tick a few times so Preempt events are present.
    std::thread::sleep(Duration::from_millis(5));
    let events = vm.tracer().snapshot();
    let json = vm.trace_export();
    vm.shutdown();

    assert!(
        events.iter().any(|e| e.kind == EventKind::Steal),
        "delayed futures should be stolen"
    );
    assert!(
        events.iter().any(|e| e.kind == EventKind::Preempt),
        "timekeeper ticks should be recorded"
    );
    assert!(
        events.iter().any(|e| e.kind == EventKind::Dispatch),
        "forked threads should be dispatched"
    );
    let seen: Vec<u32> = events.iter().map(|e| e.vp).collect();
    assert!(
        (0..4).all(|vp| seen.contains(&vp)),
        "all four VP lanes should carry events"
    );

    // The export must be a syntactically valid JSON array mentioning the
    // provoked event kinds.
    json_check(&json);
    assert!(json.contains("\"steal"), "steal instants in export");
    assert!(json.contains("\"preempt"), "preempt instants in export");
    assert!(json.contains("\"ph\":\"M\""), "metadata events in export");
}

/// Minimal recursive-descent JSON syntax check (no external crates):
/// panics with a position on the first syntax error.
fn json_check(s: &str) {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    value(b, &mut i);
    skip_ws(b, &mut i);
    assert!(i == b.len(), "trailing garbage at byte {i}");

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }
    fn value(b: &[u8], i: &mut usize) {
        assert!(*i < b.len(), "unexpected end of input");
        match b[*i] {
            b'{' => composite(b, i, b'}', true),
            b'[' => composite(b, i, b']', false),
            b'"' => string(b, i),
            b't' => literal(b, i, b"true"),
            b'f' => literal(b, i, b"false"),
            b'n' => literal(b, i, b"null"),
            b'-' | b'0'..=b'9' => number(b, i),
            c => panic!("unexpected byte {c:?} at {i:?}"),
        }
    }
    fn composite(b: &[u8], i: &mut usize, close: u8, keyed: bool) {
        *i += 1; // opener
        skip_ws(b, i);
        if *i < b.len() && b[*i] == close {
            *i += 1;
            return;
        }
        loop {
            skip_ws(b, i);
            if keyed {
                string(b, i);
                skip_ws(b, i);
                assert!(*i < b.len() && b[*i] == b':', "expected ':' at {i:?}");
                *i += 1;
                skip_ws(b, i);
            }
            value(b, i);
            skip_ws(b, i);
            assert!(*i < b.len(), "unterminated composite");
            match b[*i] {
                b',' => *i += 1,
                c if c == close => {
                    *i += 1;
                    return;
                }
                c => panic!("expected ',' or closer, got {c:?} at {i:?}"),
            }
        }
    }
    fn string(b: &[u8], i: &mut usize) {
        assert!(*i < b.len() && b[*i] == b'"', "expected string at {i:?}");
        *i += 1;
        while *i < b.len() {
            match b[*i] {
                b'"' => {
                    *i += 1;
                    return;
                }
                b'\\' => {
                    *i += 2;
                }
                0x00..=0x1f => panic!("unescaped control char at {i:?}"),
                _ => *i += 1,
            }
        }
        panic!("unterminated string");
    }
    fn number(b: &[u8], i: &mut usize) {
        if b[*i] == b'-' {
            *i += 1;
        }
        let start = *i;
        while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
            *i += 1;
        }
        assert!(*i > start, "empty number at {start:?}");
    }
    fn literal(b: &[u8], i: &mut usize, lit: &[u8]) {
        assert!(b[*i..].starts_with(lit), "bad literal at {i:?}");
        *i += lit.len();
    }
}
