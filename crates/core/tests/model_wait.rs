//! Model-checked scenarios over the *production* blocking protocol —
//! `sting_core::wait::ClaimState`, the generation-tagged claim token at
//! the heart of every park/wake/cancel race.
//!
//! This test crate only compiles under `RUSTFLAGS="--cfg sting_check"`
//! (`./ci.sh check`), which switches `wait.rs` onto the sting-check shim
//! atomics so every interleaving and weak-memory load result is explored.
//! The mutation tests proving these scenarios have teeth — the claim CAS
//! weakened to a load+store, the claim's Release half dropped — live in
//! `crates/check/tests/litmus.rs` (`claim_token_*`), since weakening the
//! production source would require patching it.
#![cfg(sting_check)]

use std::sync::Arc;
use sting_check::atomic::{AtomicU64, Ordering};
use sting_check::{model, model_bounded, thread};
use sting_core::wait::{ClaimState, Finish, WakeReason};

/// Two concurrent wakers race to claim one armed episode: exactly one
/// `claim` may succeed (wake-ups are one-shot tokens), and the owner's
/// `finish` must observe the claim.
#[test]
fn two_wakers_claim_exactly_once() {
    let explored = model(|| {
        let st = Arc::new(ClaimState::new());
        let gen = st.arm();
        let (a, b) = (st.clone(), st.clone());
        let w1 = thread::spawn(move || a.claim(gen));
        let w2 = thread::spawn(move || b.claim(gen));
        let (c1, c2) = (w1.join(), w2.join());
        assert!(
            c1 ^ c2,
            "one armed episode absorbed {} claims",
            usize::from(c1) + usize::from(c2)
        );
        assert_eq!(st.finish(gen), Finish::Claimed);
    });
    assert!(explored.executions > 1);
}

/// A waker's `claim` races the owner's cancellation (`cancel_current`, the
/// terminate-while-blocked path): the two CASes target the same packed
/// word, so exactly one side wins and `finish` reports the winner.
#[test]
fn claim_and_cancel_are_exclusive() {
    model(|| {
        let st = Arc::new(ClaimState::new());
        let gen = st.arm();
        let waker = st.clone();
        let t = thread::spawn(move || waker.claim(gen));
        let cancelled = st.cancel_current().is_some();
        let claimed = t.join();
        assert!(
            claimed ^ cancelled,
            "claim and cancel both {} on one episode",
            if claimed { "succeeded" } else { "failed" }
        );
        let fin = st.finish(gen);
        match (claimed, cancelled) {
            (true, false) => assert_eq!(fin, Finish::Claimed),
            (false, true) => assert_eq!(fin, Finish::Cancelled),
            _ => unreachable!(),
        }
    });
}

/// A waker's `claim` races the timer wheel's `timeout` on the same
/// generation: mutually exclusive, and the non-consuming
/// `snapshot_reason` agrees with the consuming `finish`.
#[test]
fn claim_and_timeout_are_exclusive() {
    model(|| {
        let st = Arc::new(ClaimState::new());
        let gen = st.arm();
        let timer = st.clone();
        let t = thread::spawn(move || timer.timeout(gen));
        let claimed = st.claim(gen);
        let timed_out = t.join();
        assert!(claimed ^ timed_out, "claim and timeout must be exclusive");
        if timed_out {
            assert_eq!(st.snapshot_reason(), WakeReason::TimedOut);
            assert_eq!(st.finish(gen), Finish::TimedOut);
        } else {
            assert_eq!(st.finish(gen), Finish::Claimed);
        }
    });
}

/// A waker holding a stale handle (the previous episode's generation)
/// races the owner re-arming and being woken on the *new* episode: the
/// stale claim must never succeed — this is the ABA guard that makes
/// handle clones safe to leave behind in wait lists.
#[test]
fn stale_generation_never_claims() {
    model_bounded(3, || {
        let st = Arc::new(ClaimState::new());
        let old = st.arm();
        assert_eq!(st.finish(old), Finish::Spurious);
        let stale = st.clone();
        let t = thread::spawn(move || stale.claim(old));
        let fresh = st.arm();
        let fresh_claimed = st.claim(fresh);
        assert!(!t.join(), "a finished episode's generation was re-claimed");
        assert!(fresh_claimed);
        assert_eq!(st.finish(fresh), Finish::Claimed);
    });
}

/// The claim CAS is the *only* synchronization between a waker and the
/// condition it signalled: data written before `claim` (Release) must be
/// visible after the owner's `finish` observes `Claimed` (Acquire), even
/// with Relaxed data accesses.
#[test]
fn claim_release_pairs_with_finish_acquire() {
    model(|| {
        let st = Arc::new(ClaimState::new());
        let data = Arc::new(AtomicU64::new(0));
        let gen = st.arm();
        let (st2, data2) = (st.clone(), data.clone());
        let t = thread::spawn(move || {
            data2.store(42, Ordering::Relaxed);
            st2.claim(gen)
        });
        if st.finish(gen) == Finish::Claimed {
            assert_eq!(
                data.load(Ordering::Relaxed),
                42,
                "claimed wake-up delivered without its payload"
            );
        }
        t.join();
    });
}
