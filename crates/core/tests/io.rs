//! Offload lifecycle regressions: terminate-mid-offload, completion after
//! VM shutdown, and pool-growth under pressure.  Companion to the unit
//! tests in `src/io.rs` (panic propagation, deadline) — these run with
//! tracing on and assert a clean audit, in the style of
//! `crates/sync/tests/cancel.rs`.
//!
//! Each test runs once per reactor backend (epoll always; io_uring when
//! the kernel has it).  The offload pool itself is reactor-independent,
//! but the matrix pins VM construction, driver teardown, and the
//! offload/driver shutdown ordering under both backends.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};
use std::time::{Duration, Instant};
use sting_core::reactor::IoBackend;
use sting_core::state::ThreadState;
use sting_core::vm::Vm;
use sting_core::{io, tc, VmBuilder};
use sting_value::Value;

/// The backends to matrix over: epoll unconditionally, io_uring when the
/// kernel supports it (graceful skip otherwise).
fn backends() -> Vec<IoBackend> {
    let mut v = vec![IoBackend::Epoll];
    if sting_core::uring::uring_supported() {
        v.push(IoBackend::IoUring);
    } else {
        eprintln!("io_uring unavailable on this kernel: epoll-only matrix");
    }
    v
}

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn finish(vm: &Arc<Vm>) {
    let report = vm.trace_audit();
    assert!(report.is_clean(), "audit found violations:\n{report}");
    vm.shutdown();
}

/// A latch the pool workers (plain OS threads) can block on until the
/// test decides to release them.
struct Gate {
    open: StdMutex<bool>,
    cv: StdCondvar,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            open: StdMutex::new(false),
            cv: StdCondvar::new(),
        })
    }

    fn wait(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

/// Terminating a thread parked in `offload` unwinds it cleanly, and the
/// worker's completion wake-up dies against the cancelled episode instead
/// of `unblock`ing a recycled TCB (the pre-PR-4 bare-spin `offload` had no
/// cancellation story at all).
#[test]
fn terminate_mid_offload_leaves_no_dangling_wake() {
    for backend in backends() {
        terminate_mid_offload_leaves_no_dangling_wake_on(backend);
    }
}

fn terminate_mid_offload_leaves_no_dangling_wake_on(backend: IoBackend) {
    let vm = VmBuilder::new()
        .vps(1)
        .trace(true)
        .trace_capacity(1 << 14)
        .io_backend(backend)
        .build();
    let gate = Gate::new();
    let started = Arc::new(AtomicUsize::new(0));
    let victim = {
        let gate = gate.clone();
        let started = started.clone();
        vm.fork(move |_cx| {
            io::offload(move || {
                started.fetch_add(1, Ordering::SeqCst);
                gate.wait();
                7i64
            })
        })
    };
    wait_until("job to start on the worker", || {
        started.load(Ordering::SeqCst) == 1
    });
    wait_until("caller to park", || victim.state() == ThreadState::Blocked);
    tc::thread_terminate(&victim, Value::sym("killed")).unwrap();
    assert_eq!(victim.join_blocking(), Ok(Value::sym("killed")));
    // Now let the job complete: its wake-up must fail the episode's claim
    // CAS (audited as clean below — a delivered wake would be
    // WakeAfterCancel, a leaked registration WaiterLeak).
    gate.open();
    // Fresh offloads after the terminate still work on the same pool.
    let after = vm.fork(|_cx| io::offload(|| 5i64));
    assert_eq!(after.join_blocking().unwrap().as_int(), Some(5));
    // Give the completion wake a moment to land before auditing.
    std::thread::sleep(Duration::from_millis(20));
    finish(&vm);
}

/// A job still in flight when `Vm::shutdown` runs completes on the worker
/// *after* the VM's threads are gone; its wake-up must evaporate rather
/// than `tc::unblock` into a dead VM (the old process-global pool's
/// lifetime bug).  Shutdown joins the worker, so returning at all is the
/// assertion; debug builds re-audit the trace during `shutdown`.
#[test]
fn offload_completing_during_shutdown_is_harmless() {
    for backend in backends() {
        offload_completing_during_shutdown_is_harmless_on(backend);
    }
}

fn offload_completing_during_shutdown_is_harmless_on(backend: IoBackend) {
    let vm = VmBuilder::new()
        .vps(1)
        .trace(true)
        .trace_capacity(1 << 14)
        .io_backend(backend)
        .build();
    let started = Arc::new(AtomicUsize::new(0));
    let s = started.clone();
    let _t = vm.fork(move |_cx| {
        io::offload(move || {
            s.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(100));
            1i64
        })
    });
    wait_until("job to start on the worker", || {
        started.load(Ordering::SeqCst) == 1
    });
    // Caller is parked (or about to park); the drain unwinds it, then the
    // pool join waits out the sleeping job, whose completion finds only a
    // finished episode.
    vm.shutdown();
}

/// More concurrent offloads than twice the pool cap: all complete, and a
/// full complement of deliberately-stuck jobs never head-of-line blocks a
/// quick one (the old pool's `Mutex<Receiver>` serialized pickup across
/// `recv()`, and its fixed worker count had no headroom to grow).
#[test]
fn stress_offloads_past_pool_cap_without_head_of_line_stall() {
    for backend in backends() {
        stress_offloads_past_pool_cap_on(backend);
    }
}

fn stress_offloads_past_pool_cap_on(backend: IoBackend) {
    const CAP: usize = 4;
    let vm = VmBuilder::new()
        .vps(1)
        .io_workers(CAP * 2)
        .trace(true)
        .trace_capacity(1 << 16)
        .io_backend(backend)
        .build();

    // Phase 1: occupy CAP workers with jobs that hold until released.
    let gate = Gate::new();
    let stuck_started = Arc::new(AtomicUsize::new(0));
    let stuck: Vec<_> = (0..CAP)
        .map(|_| {
            let gate = gate.clone();
            let started = stuck_started.clone();
            vm.fork(move |_cx| {
                io::offload(move || {
                    started.fetch_add(1, Ordering::SeqCst);
                    gate.wait();
                    1i64
                })
            })
        })
        .collect();
    wait_until("all stuck jobs to occupy workers", || {
        stuck_started.load(Ordering::SeqCst) == CAP
    });

    // Phase 2: with every started worker busy, quick offloads must still
    // get picked up (pool grows) — bounded wait, while the gate is shut.
    let quick: Vec<_> = (0..CAP as i64)
        .map(|i| {
            vm.fork(move |_cx| {
                io::offload_deadline(move || i * 10, Instant::now() + Duration::from_secs(10))
                    .expect("quick offload head-of-line stalled behind stuck jobs")
            })
        })
        .collect();
    for (i, t) in quick.into_iter().enumerate() {
        assert_eq!(t.join_blocking().unwrap().as_int(), Some(i as i64 * 10));
    }

    gate.open();
    for t in stuck {
        assert_eq!(t.join_blocking().unwrap().as_int(), Some(1));
    }

    // Phase 3: a plain >2×-cap wave on the now-warm pool.
    let wave: Vec<_> = (0..(CAP * 2 + 1) as i64)
        .map(|i| vm.fork(move |_cx| io::offload(move || i * i)))
        .collect();
    let sum: i64 = wave
        .iter()
        .map(|t| t.join_blocking().unwrap().as_int().unwrap())
        .sum();
    assert_eq!(sum, (0..(CAP * 2 + 1) as i64).map(|i| i * i).sum());
    finish(&vm);
}
