//! Chaos test: a storm of asynchronous state-change requests (block,
//! suspend, resume, raise, terminate) against a pool of running threads.
//! Whatever the interleaving, the machine must stay consistent: every
//! thread eventually determines exactly once, and the VM shuts down clean.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use sting_core::{tc, StateRequest, ThreadState, Vm, VmBuilder};
use sting_value::Value;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn run_storm(vm: &Arc<Vm>, seed: u64, victims: usize, requests: usize) {
    let stop = Arc::new(AtomicBool::new(false));
    let pool: Vec<_> = (0..victims)
        .map(|i| {
            let stop = stop.clone();
            vm.fork(move |cx| {
                let mut n = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    n = n.wrapping_add(i as u64);
                    cx.checkpoint();
                    if n.is_multiple_of(7) {
                        cx.yield_now();
                    }
                }
                n as i64
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(10));
    let mut rng = seed | 1;
    for _ in 0..requests {
        let t = &pool[(xorshift(&mut rng) as usize) % pool.len()];
        // Random request; transition errors are expected and fine — the
        // invariant under test is "never a wedge, never a double result".
        let _ = match xorshift(&mut rng) % 5 {
            0 => t.request(StateRequest::Block),
            1 => t.request(StateRequest::Suspend(Some(Duration::from_micros(
                xorshift(&mut rng) % 500,
            )))),
            2 => t.request(StateRequest::Resume),
            3 => tc::thread_raise(t, Value::sym("chaos-raise")).map(|_| ()),
            _ => {
                // Occasionally yield the storm itself.
                std::thread::yield_now();
                Ok(())
            }
        };
        if xorshift(&mut rng).is_multiple_of(13) {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    // Quiesce: resume everything still parked, then stop the survivors.
    for t in &pool {
        let _ = t.request(StateRequest::Resume);
    }
    stop.store(true, Ordering::SeqCst);
    for t in &pool {
        // Threads raised at may have determined with the chaos exception;
        // both outcomes are legal.  What is not legal is hanging.
        let r = t
            .join_blocking_timeout(Duration::from_secs(20))
            .expect("thread must determine, not hang");
        match r {
            Ok(v) => assert!(v.as_int().is_some(), "normal exit carries the count: {v}"),
            Err(e) => assert_eq!(e, Value::sym("chaos-raise")),
        }
        assert_eq!(t.state(), ThreadState::Determined);
    }
}

#[test]
fn request_storm_single_vp() {
    let vm = VmBuilder::new()
        .vps(1)
        .tick(Duration::from_micros(200))
        .build();
    run_storm(&vm, 0xDEADBEEF, 6, 400);
    vm.shutdown();
}

#[test]
fn request_storm_multi_vp() {
    let vm = VmBuilder::new()
        .vps(3)
        .processors(2)
        .tick(Duration::from_micros(200))
        .build();
    run_storm(&vm, 0x12345678, 10, 600);
    vm.shutdown();
}

#[test]
fn request_storm_different_seeds() {
    let vm = VmBuilder::new().vps(2).build();
    for seed in [1u64, 42, 0xABCDEF, 999_999_937] {
        run_storm(&vm, seed, 4, 150);
    }
    vm.shutdown();
}
