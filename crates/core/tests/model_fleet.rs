//! Model-checked scenarios over the *production* cross-shard mailbox
//! (`sting_core::fleet::Mailbox`) — the SPSC ring every TCB handoff,
//! routed tuple operation, and work request crosses.
//!
//! Compiles only under `RUSTFLAGS="--cfg sting_check"` (`./ci.sh check`
//! / `./ci.sh shard`), which switches the mailbox onto the sting-check
//! shim atomics so every interleaving and weak-memory load result is
//! explored.  The expect-failure mutation proving the tail publish
//! ordering is load-bearing uses a mini-mailbox with atomic slots (the
//! same pattern as `crates/check/tests/litmus.rs`), since weakening the
//! production source would require patching it.

#![cfg(sting_check)]

use std::sync::Arc;
use sting_check::atomic::{AtomicBool, AtomicUsize, Ordering};
use sting_check::{model, model_bounded, model_expect_failure, thread};
use sting_core::fleet::Mailbox;

/// Exactly-once, in-order TCB handoff: a producer races the consumer's
/// drains; any drain sees a *prefix* of the pushes, and once the producer
/// quiesces both messages have arrived exactly once, in order.
#[test]
fn mailbox_exactly_once_in_order() {
    model_bounded(3, || {
        let m: Arc<Mailbox<u64>> = Arc::new(Mailbox::new(4));
        let m2 = m.clone();
        let producer = thread::spawn(move || {
            m2.push(1);
            m2.push(2);
        });
        let mut got: Vec<u64> = Vec::new();
        m.drain(|v| got.push(v));
        assert!(
            got.is_empty() || got == [1] || got == [1, 2],
            "drain saw a non-prefix: {got:?}"
        );
        producer.join();
        m.drain(|v| got.push(v));
        assert_eq!(got, [1, 2], "handoff lost, duplicated, or reordered");
    });
}

/// No lost remote wake: the producer pushes, then raises the wake signal
/// (standing in for `Vm::signal_work`).  Any consumer that observes the
/// signal must also observe the message — the ring's Release publish
/// happens-before the signal's Release/Acquire edge.
#[test]
fn mailbox_wake_signal_implies_message_visible() {
    model(|| {
        let m: Arc<Mailbox<u64>> = Arc::new(Mailbox::new(4));
        let signal = Arc::new(AtomicBool::new(false));
        let (m2, s2) = (m.clone(), signal.clone());
        let producer = thread::spawn(move || {
            m2.push(7);
            s2.store(true, Ordering::Release);
        });
        if signal.load(Ordering::Acquire) {
            let mut got: Vec<u64> = Vec::new();
            m.drain(|v| got.push(v));
            assert_eq!(got, [7], "woken consumer found an empty mailbox");
        }
        producer.join();
    });
}

// Not modeled: two same-shard VPs racing the *producer claim*.  The claim
// is a swap-based spinlock, and a spin is a livelock under the checker's
// unfair schedules (the holder can be starved forever) — the checker
// correctly refuses to explore it.  Its correctness is plain mutual
// exclusion (swap returns the prior value to exactly one winner); the
// protocols worth exploring are the SPSC ring core and the wake edge,
// covered above.

/// The mini-mailbox core: one slot, a tail publish with `publish`
/// ordering, a consumer that trusts the published tail.  With `Release`
/// this is exactly the production protocol; with `Relaxed` the consumer
/// can see the tail increment before the slot write — a lost handoff.
fn mini_mailbox(publish: Ordering) {
    let slot = Arc::new(AtomicUsize::new(0));
    let tail = Arc::new(AtomicUsize::new(0));
    let (s2, t2) = (slot.clone(), tail.clone());
    let producer = thread::spawn(move || {
        s2.store(42, Ordering::Relaxed); // the slot write (production: UnsafeCell)
        t2.store(1, publish); // the publish
    });
    if tail.load(Ordering::Acquire) == 1 {
        assert_eq!(
            slot.load(Ordering::Relaxed),
            42,
            "published handoff not visible"
        );
    }
    producer.join();
}

/// The production ordering (Release publish) admits no lost handoff.
#[test]
fn mini_mailbox_release_publish_is_sound() {
    model(|| mini_mailbox(Ordering::Release));
}

/// Expect-failure mutation: a `Relaxed` tail publish loses the handoff —
/// proof the `Release` in `Mailbox::push` is load-bearing.
#[test]
fn mini_mailbox_relaxed_publish_loses_handoff() {
    let report = model_expect_failure(|| mini_mailbox(Ordering::Relaxed));
    assert!(
        report.contains("published handoff not visible"),
        "unexpected report:\n{report}"
    );
}
