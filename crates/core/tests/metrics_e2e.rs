//! End-to-end tests for the scheduler latency metrics: real VMs, real
//! threads, sampling period 1 so every eligible event is stamped.

use std::sync::Arc;
use sting_core::{tc, Vm, VmBuilder};

fn metered_vm(vps: usize) -> Arc<Vm> {
    VmBuilder::new()
        .vps(vps)
        .metrics(true)
        .metrics_sample(1)
        .build()
}

#[test]
fn dispatch_histogram_fills_from_yields() {
    let vm = metered_vm(1);
    vm.run(|cx| {
        for _ in 0..200 {
            cx.yield_now();
        }
        0i64
    })
    .unwrap();
    let snap = vm.metrics().snapshot();
    // Every yield re-enqueues the thread and dispatches it again; with
    // period 1 each round trip must produce one dispatch sample.
    assert!(
        snap.dispatch.count >= 200,
        "expected >=200 dispatch samples, got {}",
        snap.dispatch.count
    );
    assert!(snap.dispatch.min >= 1, "latencies are clamped to >=1 ns");
    assert!(snap.dispatch.p50() >= snap.dispatch.min);
    assert!(snap.dispatch.p99() <= snap.dispatch.max);
    vm.shutdown();
}

#[test]
fn wake_histogram_fills_from_block_resume() {
    let vm = metered_vm(1);
    let rounds = 50u64;
    vm.run(move |cx| {
        let me = cx.current_thread();
        let partner = cx.fork(move |cx2| {
            tc::unblock(&me);
            for _ in 0..rounds {
                cx2.block(None);
                tc::unblock(&me);
            }
            0i64
        });
        cx.block(None);
        for _ in 0..rounds {
            tc::unblock(&partner);
            cx.block(None);
        }
        let _ = cx.wait(&partner);
        0i64
    })
    .unwrap();
    let snap = vm.metrics().snapshot();
    assert!(
        snap.wake.count >= rounds,
        "expected >={rounds} block->wake samples, got {}",
        snap.wake.count
    );
    assert!(
        snap.wake.sum >= snap.wake.count,
        "sum aggregates >=1 ns samples"
    );
    vm.shutdown();
}

#[test]
fn per_vp_snapshots_merge_into_totals() {
    let vm = metered_vm(2);
    let ts: Vec<_> = (0..20)
        .map(|_| {
            vm.fork(|cx| {
                for _ in 0..20 {
                    cx.yield_now();
                }
                0i64
            })
        })
        .collect();
    for t in ts {
        t.join_blocking().unwrap();
    }
    let snap = vm.metrics().snapshot();
    let per_vp_total: u64 = snap.per_vp.iter().map(|v| v.dispatch.count).sum();
    assert_eq!(
        per_vp_total, snap.dispatch.count,
        "merged dispatch count must equal the sum of per-VP counts"
    );
    assert_eq!(snap.per_vp.len(), 2);
    vm.shutdown();
}

#[test]
fn disabled_metrics_record_nothing() {
    let vm = VmBuilder::new()
        .vps(1)
        .metrics(false)
        .metrics_sample(1)
        .build();
    vm.run(|cx| {
        for _ in 0..100 {
            cx.yield_now();
        }
        0i64
    })
    .unwrap();
    let snap = vm.metrics().snapshot();
    assert_eq!(snap.dispatch.count, 0);
    assert_eq!(snap.wake.count, 0);
    assert_eq!(snap.steal.count, 0);
    vm.shutdown();
}

#[test]
fn stacks_recycled_counter_matches_pool_stats() {
    // The counter must agree with the pools' own recycled-hit tallies —
    // it used to count pool occupancy instead of actual recycling hits.
    let vm = metered_vm(1);
    // Sequential threads: each one's stack returns to the pool before the
    // next is born, so recycling must actually occur.
    for _ in 0..30 {
        vm.fork(|_| 0i64).join_blocking().unwrap();
    }
    let counted = vm.counters().snapshot().stacks_recycled;
    let pool_recycled: u64 = (0..vm.vp_count())
        .map(|i| vm.vp(i).expect("vp exists").stack_pool_stats().1)
        .sum();
    assert_eq!(
        counted, pool_recycled,
        "stacks_recycled counter must reconcile with the stack pools' hit counts"
    );
    assert!(pool_recycled > 0, "sequential threads must recycle stacks");
    vm.shutdown();
}
