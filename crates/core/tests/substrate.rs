//! Behavioural tests for the STING substrate: thread lifecycle, stealing,
//! preemption, policies, groups, genealogy, timers and migration.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use sting_core::policies::{self, GlobalQueue, QueueOrder};
use sting_core::{
    tc, CoreError, PhysicalMachine, StateRequest, ThreadBuilder, ThreadState, Topology, Vm,
    VmBuilder,
};
use sting_value::Value;

fn vm1() -> Arc<Vm> {
    VmBuilder::new().vps(1).build()
}

fn vm(n: usize) -> Arc<Vm> {
    VmBuilder::new().vps(n).build()
}

#[test]
fn fork_and_join() {
    let vm = vm1();
    let t = vm.fork(|_cx| 41i64 + 1);
    assert_eq!(t.join_blocking(), Ok(Value::Int(42)));
    assert!(t.is_determined());
    assert_eq!(t.state(), ThreadState::Determined);
    vm.shutdown();
}

#[test]
fn fork_many_and_join_all() {
    let vm = vm(2);
    let threads: Vec<_> = (0..200i64).map(|i| vm.fork(move |_cx| i * i)).collect();
    for (i, t) in threads.iter().enumerate() {
        let i = i as i64;
        assert_eq!(t.join_blocking(), Ok(Value::Int(i * i)));
    }
    vm.shutdown();
}

#[test]
fn nested_forks_with_wait() {
    let vm = vm(2);
    let r = vm.run(|cx| {
        let ts: Vec<_> = (0..10i64).map(|i| cx.fork(move |_| i)).collect();
        ts.iter()
            .map(|t| cx.wait(t).unwrap().as_int().unwrap())
            .sum::<i64>()
    });
    assert_eq!(r, Ok(Value::Int(45)));
    vm.shutdown();
}

#[test]
fn deep_fork_chain() {
    // Each thread forks the next; depth beyond any single stack.
    let vm = vm1();
    fn chain(cx: &sting_core::Cx, n: i64) -> i64 {
        if n == 0 {
            0
        } else {
            let t = cx.fork(move |cx| chain(cx, n - 1));
            1 + cx.wait(&t).unwrap().as_int().unwrap()
        }
    }
    let r = vm.run(|cx| chain(cx, 300));
    assert_eq!(r, Ok(Value::Int(300)));
    vm.shutdown();
}

#[test]
fn delayed_thread_never_runs_unless_demanded() {
    let vm = vm1();
    let ran = Arc::new(AtomicBool::new(false));
    let r = ran.clone();
    let t = vm.delayed(move |_cx| {
        r.store(true, Ordering::SeqCst);
        1i64
    });
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(t.state(), ThreadState::Delayed);
    assert!(!ran.load(Ordering::SeqCst));
    // Demand it.
    tc::thread_run(&t, 0).unwrap();
    assert_eq!(t.join_blocking(), Ok(Value::Int(1)));
    assert!(ran.load(Ordering::SeqCst));
    vm.shutdown();
}

#[test]
fn touch_steals_delayed_thread() {
    let vm = vm1();
    let before = vm.counters().snapshot();
    let r = vm.run(|cx| {
        let lazy = cx.delayed(|_cx| 7i64);
        // Stealing runs the thunk on our own TCB: no context switch.
        let v = cx.touch(&lazy).unwrap().as_int().unwrap();
        assert_eq!(lazy.state(), ThreadState::Determined);
        v
    });
    assert_eq!(r, Ok(Value::Int(7)));
    let delta = vm.counters().snapshot().since(&before);
    assert_eq!(delta.steals, 1);
    // Only the toucher got a TCB.
    assert_eq!(delta.tcbs_allocated, 1);
    vm.shutdown();
}

#[test]
fn touch_does_not_steal_unstealable() {
    let vm = vm1();
    let r = vm.run(|cx| {
        let lazy = ThreadBuilder::new(&cx.vm())
            .stealable(false)
            .delayed(|_cx| 9i64);
        assert!(!lazy.is_stealable());
        // Not stealable and delayed: demand by scheduling, then wait.
        tc::thread_run(&lazy, 0).unwrap();
        cx.wait(&lazy).unwrap().as_int().unwrap()
    });
    assert_eq!(r, Ok(Value::Int(9)));
    assert_eq!(vm.counters().snapshot().steals, 0);
    vm.shutdown();
}

#[test]
fn touch_falls_back_to_wait_on_evaluating() {
    let vm = vm(1);
    let r = vm.run(|cx| {
        let t = cx.fork(|cx| {
            cx.yield_now();
            5i64
        });
        // Give it a chance to start evaluating; then touch must block.
        cx.yield_now();
        cx.touch(&t).unwrap().as_int().unwrap()
    });
    assert_eq!(r, Ok(Value::Int(5)));
    vm.shutdown();
}

#[test]
fn steal_of_scheduled_thread_prevents_double_run() {
    let vm = vm1();
    let runs = Arc::new(AtomicUsize::new(0));
    let runs2 = runs.clone();
    let r = vm.run(move |cx| {
        let t = cx.fork(move |_cx| {
            runs2.fetch_add(1, Ordering::SeqCst);
            1i64
        });
        // The fork is scheduled but we haven't yielded, so it cannot have
        // started: touching steals it.
        let v = cx.touch(&t).unwrap().as_int().unwrap();
        cx.yield_now(); // let the queue drain; the stale entry must be skipped
        v
    });
    assert_eq!(r, Ok(Value::Int(1)));
    std::thread::sleep(Duration::from_millis(20));
    assert_eq!(runs.load(Ordering::SeqCst), 1, "thunk ran exactly once");
    vm.shutdown();
}

#[test]
fn exception_crosses_thread_boundary() {
    let vm = vm1();
    let r = vm.run(|cx| {
        let t = cx.fork(|cx| -> i64 { cx.raise(Value::sym("boom")) });
        match cx.wait(&t) {
            Err(e) => {
                assert_eq!(e, Value::sym("boom"));
                1i64
            }
            Ok(_) => 0i64,
        }
    });
    assert_eq!(r, Ok(Value::Int(1)));
    assert_eq!(vm.counters().snapshot().exceptions, 1);
    vm.shutdown();
}

#[test]
fn rust_panic_becomes_exception_result() {
    let vm = vm1();
    let t = vm.fork(|_cx| -> i64 { panic!("native failure") });
    let err = t.join_blocking().unwrap_err();
    assert!(err.to_string().contains("native failure"));
    vm.shutdown();
}

#[test]
fn terminate_scheduled_thread() {
    let vm = vm1();
    // Keep the VP busy so the victim stays queued.
    let gate = Arc::new(AtomicBool::new(false));
    let g = gate.clone();
    let _busy = vm.fork(move |cx| {
        while !g.load(Ordering::SeqCst) {
            cx.yield_now();
        }
        0i64
    });
    let victim = vm.fork(|_cx| 1i64);
    // Terminate while delayed/scheduled.
    tc::thread_terminate(&victim, Value::sym("killed")).unwrap();
    assert_eq!(victim.join_blocking(), Ok(Value::sym("killed")));
    gate.store(true, Ordering::SeqCst);
    vm.shutdown();
}

#[test]
fn terminate_evaluating_thread_runs_destructors() {
    let vm = vm1();
    struct Marker(Arc<AtomicBool>);
    impl Drop for Marker {
        fn drop(&mut self) {
            self.0.store(true, Ordering::SeqCst);
        }
    }
    let dropped = Arc::new(AtomicBool::new(false));
    let d = dropped.clone();
    let spinner = vm.fork(move |cx| -> i64 {
        let _m = Marker(d);
        loop {
            cx.checkpoint();
            cx.yield_now();
        }
    });
    // Let it start.
    std::thread::sleep(Duration::from_millis(20));
    tc::thread_terminate(&spinner, Value::Int(99)).unwrap();
    assert_eq!(spinner.join_blocking(), Ok(Value::Int(99)));
    assert!(
        dropped.load(Ordering::SeqCst),
        "destructor ran on terminate"
    );
    vm.shutdown();
}

#[test]
fn terminating_determined_thread_fails() {
    let vm = vm1();
    let t = vm.fork(|_cx| 1i64);
    t.join_blocking().unwrap();
    let err = tc::thread_terminate(&t, Value::Unit).unwrap_err();
    assert!(matches!(err, CoreError::InvalidTransition { .. }));
    vm.shutdown();
}

#[test]
fn suspend_with_quantum_resumes_automatically() {
    let vm = vm1();
    let r = vm.run(|cx| {
        let start = std::time::Instant::now();
        cx.sleep(Duration::from_millis(20));
        i64::from(start.elapsed() >= Duration::from_millis(15))
    });
    assert_eq!(r, Ok(Value::Int(1)));
    vm.shutdown();
}

#[test]
fn suspend_indefinitely_until_thread_run() {
    let vm = vm1();
    let t = vm.fork(|cx| {
        cx.suspend(None);
        123i64
    });
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(t.state(), ThreadState::Suspended);
    tc::thread_run(&t, 0).unwrap();
    assert_eq!(t.join_blocking(), Ok(Value::Int(123)));
    vm.shutdown();
}

#[test]
fn block_and_unblock_via_thread_run() {
    let vm = vm1();
    let t = vm.fork(|cx| {
        cx.block(Some(Value::sym("test-blocker")));
        7i64
    });
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(t.state(), ThreadState::Blocked);
    assert_eq!(t.blocker(), Some(Value::sym("test-blocker")));
    tc::thread_run(&t, 0).unwrap();
    assert_eq!(t.join_blocking(), Ok(Value::Int(7)));
    vm.shutdown();
}

#[test]
fn thread_run_rejects_bad_states() {
    let vm = vm1();
    let t = vm.fork(|_cx| 0i64);
    t.join_blocking().unwrap();
    assert!(matches!(
        tc::thread_run(&t, 0),
        Err(CoreError::InvalidTransition { .. })
    ));
    let d = vm.delayed(|_cx| 0i64);
    assert!(matches!(
        tc::thread_run(&d, 17),
        Err(CoreError::VpOutOfRange { .. })
    ));
    vm.shutdown();
}

#[test]
fn block_request_applied_at_next_controller_entry() {
    let vm = vm1();
    let progressed = Arc::new(AtomicUsize::new(0));
    let p = progressed.clone();
    let t = vm.fork(move |cx| {
        for _ in 0..1_000_000 {
            p.fetch_add(1, Ordering::SeqCst);
            cx.checkpoint();
            cx.yield_now();
        }
        1i64
    });
    std::thread::sleep(Duration::from_millis(10));
    t.request(StateRequest::Block).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(t.state(), ThreadState::Blocked);
    let at_block = progressed.load(Ordering::SeqCst);
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(
        progressed.load(Ordering::SeqCst),
        at_block,
        "no progress while blocked"
    );
    tc::thread_run(&t, 0).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    assert!(
        progressed.load(Ordering::SeqCst) > at_block,
        "progress after resume"
    );
    tc::thread_terminate(&t, Value::Int(0)).unwrap();
    t.join_blocking().unwrap();
    vm.shutdown();
}

#[test]
fn preemption_interleaves_non_yielding_threads() {
    // Two spinning threads on one VP, neither yields voluntarily; the
    // timekeeper's preemption must interleave them.
    let vm = VmBuilder::new()
        .vps(1)
        .tick(Duration::from_micros(200))
        .build();
    let a = Arc::new(AtomicUsize::new(0));
    let b = Arc::new(AtomicUsize::new(0));
    let (a2, b2) = (a.clone(), b.clone());
    let stop = Arc::new(AtomicBool::new(false));
    let (s1, s2) = (stop.clone(), stop.clone());
    let t1 = vm.fork(move |cx| {
        while !s1.load(Ordering::SeqCst) {
            a2.fetch_add(1, Ordering::SeqCst);
            cx.checkpoint();
        }
        0i64
    });
    let t2 = vm.fork(move |cx| {
        while !s2.load(Ordering::SeqCst) {
            b2.fetch_add(1, Ordering::SeqCst);
            cx.checkpoint();
        }
        0i64
    });
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::SeqCst);
    t1.join_blocking().unwrap();
    t2.join_blocking().unwrap();
    assert!(a.load(Ordering::SeqCst) > 0, "thread 1 ran");
    assert!(
        b.load(Ordering::SeqCst) > 0,
        "thread 2 ran (preemption works)"
    );
    assert!(vm.counters().snapshot().preemptions > 0);
    vm.shutdown();
}

#[test]
fn without_preemption_defers_preemption() {
    let vm = VmBuilder::new()
        .vps(1)
        .tick(Duration::from_micros(100))
        .build();
    let r = vm.run(|cx| {
        let mut deferred_worked = true;
        cx.without_preemption(|| {
            // Spin long enough for several ticks; checkpoints must not
            // switch us out (there is nobody else, but the preempt counter
            // must stay untouched by us).
            let start = std::time::Instant::now();
            while start.elapsed() < Duration::from_millis(2) {
                cx.checkpoint();
            }
            deferred_worked = true;
        });
        i64::from(deferred_worked)
    });
    assert_eq!(r, Ok(Value::Int(1)));
    vm.shutdown();
}

#[test]
fn yield_round_robins_same_vp() {
    let vm = vm1();
    let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let gate = Arc::new(AtomicBool::new(false));
    let mk = |tag: i64, log: Arc<parking_lot::Mutex<Vec<i64>>>, gate: Arc<AtomicBool>| {
        move |cx: &sting_core::Cx| {
            // Wait for both threads to be forked before logging starts.
            while !gate.load(Ordering::SeqCst) {
                cx.yield_now();
            }
            for _ in 0..3 {
                log.lock().push(tag);
                cx.yield_now();
            }
            tag
        }
    };
    let t1 = vm.fork(mk(1, log.clone(), gate.clone()));
    let t2 = vm.fork(mk(2, log.clone(), gate.clone()));
    std::thread::sleep(Duration::from_millis(20));
    gate.store(true, Ordering::SeqCst);
    t1.join_blocking().unwrap();
    t2.join_blocking().unwrap();
    let l = log.lock().clone();
    // FIFO + yields must interleave strictly (either thread may start).
    assert!(
        l == vec![1, 2, 1, 2, 1, 2] || l == vec![2, 1, 2, 1, 2, 1],
        "expected strict alternation, got {l:?}"
    );
    vm.shutdown();
}

#[test]
fn priorities_respected_by_priority_policy() {
    let vm = VmBuilder::new()
        .vps(1)
        .policy(|_| policies::priority_high().boxed())
        .build();
    let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
    // Occupy the VP so all forks enqueue before any runs.
    let gate = Arc::new(AtomicBool::new(false));
    let g = gate.clone();
    let blocker = vm.fork(move |cx| {
        while !g.load(Ordering::SeqCst) {
            cx.yield_now();
        }
        0i64
    });
    std::thread::sleep(Duration::from_millis(10));
    let mut ts = Vec::new();
    for (prio, tag) in [(1, "low"), (5, "high"), (3, "mid")] {
        let o = order.clone();
        let t = ThreadBuilder::new(&vm)
            .priority(prio)
            .spawn(move |_cx| {
                o.lock().push(tag);
                0i64
            })
            .unwrap();
        ts.push(t);
    }
    gate.store(true, Ordering::SeqCst);
    blocker.join_blocking().unwrap();
    for t in ts {
        t.join_blocking().unwrap();
    }
    assert_eq!(order.lock().clone(), vec!["high", "mid", "low"]);
    vm.shutdown();
}

#[test]
fn different_vps_can_run_different_policies() {
    let vm = VmBuilder::new()
        .vps(2)
        .policy(|i| {
            if i == 0 {
                policies::local_fifo().boxed()
            } else {
                policies::local_lifo().boxed()
            }
        })
        .build();
    assert_eq!(vm.vp(0).unwrap().policy_name(), "local-fifo");
    assert_eq!(vm.vp(1).unwrap().policy_name(), "local-lifo");
    let a = vm.fork_on(0, |_cx| 1i64).unwrap();
    let b = vm.fork_on(1, |_cx| 2i64).unwrap();
    assert_eq!(a.join_blocking(), Ok(Value::Int(1)));
    assert_eq!(b.join_blocking(), Ok(Value::Int(2)));
    vm.shutdown();
}

#[test]
fn global_queue_shares_work_across_vps() {
    let q = GlobalQueue::shared(QueueOrder::Fifo);
    let vm = VmBuilder::new()
        .vps(4)
        .processors(2)
        .policy(move |_| q.policy())
        .build();
    let ts: Vec<_> = (0..50i64).map(|i| vm.fork(move |_cx| i)).collect();
    let sum: i64 = ts
        .iter()
        .map(|t| t.join_blocking().unwrap().as_int().unwrap())
        .sum();
    assert_eq!(sum, 49 * 50 / 2);
    vm.shutdown();
}

#[test]
fn migration_moves_work_to_idle_vps() {
    let vm = VmBuilder::new()
        .vps(2)
        .processors(2)
        .policy(|_| {
            policies::local_fifo()
                .migrating(true)
                .place_round_robin(false)
                .boxed()
        })
        .build();
    // Pile everything on VP 0; VP 1 must pull via migration.
    let ts: Vec<_> = (0..40i64)
        .map(|i| {
            vm.fork_on(0, move |cx| {
                cx.yield_now();
                i
            })
            .unwrap()
        })
        .collect();
    for t in ts {
        t.join_blocking().unwrap();
    }
    vm.shutdown();
}

#[test]
fn groups_collect_and_kill() {
    let vm = vm1();
    let r = vm.run(|cx| {
        let vmref = cx.vm();
        let group = vmref.root_group().subgroup(Some("workers".into()));
        let mut spinners = Vec::new();
        for _ in 0..5 {
            let t = ThreadBuilder::new(&vmref)
                .group(group.clone())
                .spawn(|cx: &sting_core::Cx| -> i64 {
                    loop {
                        cx.yield_now();
                    }
                })
                .unwrap();
            spinners.push(t);
        }
        cx.yield_now();
        assert_eq!(group.len(), 5);
        group.terminate_all(Value::sym("group-killed"));
        for t in &spinners {
            assert_eq!(cx.wait(t), Ok(Value::sym("group-killed")));
        }
        1i64
    });
    assert_eq!(r, Ok(Value::Int(1)));
    vm.shutdown();
}

#[test]
fn children_inherit_group_and_genealogy() {
    let vm = vm1();
    let r = vm.run(|cx| {
        let me = cx.current_thread();
        let child = cx.fork(|cx| {
            let grandchild = cx.fork(|_cx| 0i64);
            cx.wait(&grandchild).unwrap();
            0i64
        });
        cx.wait(&child).unwrap();
        let kids = me.children();
        assert_eq!(kids.len(), 1);
        assert_eq!(kids[0].id(), child.id());
        assert!(std::sync::Arc::ptr_eq(child.group(), me.group()));
        let tree = sting_core::ThreadGroup::genealogy(&me);
        assert!(tree.lines().count() >= 2);
        1i64
    });
    assert_eq!(r, Ok(Value::Int(1)));
    vm.shutdown();
}

#[test]
fn two_vms_share_one_physical_machine() {
    let machine = PhysicalMachine::new(1);
    let vm_a = VmBuilder::new().vps(1).machine(machine.clone()).build();
    let vm_b = VmBuilder::new().vps(1).machine(machine.clone()).build();
    let a = vm_a.fork(|_cx| 1i64);
    let b = vm_b.fork(|_cx| 2i64);
    assert_eq!(a.join_blocking(), Ok(Value::Int(1)));
    assert_eq!(b.join_blocking(), Ok(Value::Int(2)));
    vm_a.shutdown();
    // vm_b still works after vm_a is gone.
    let b2 = vm_b.fork(|_cx| 3i64);
    assert_eq!(b2.join_blocking(), Ok(Value::Int(3)));
    vm_b.shutdown();
    let _ = b;
}

#[test]
fn shutdown_completes_stragglers_with_exception() {
    let vm = vm1();
    let blocked = vm.fork(|cx| {
        cx.block(None);
        0i64
    });
    let delayed = vm.delayed(|_cx| 0i64);
    std::thread::sleep(Duration::from_millis(30));
    vm.shutdown();
    assert_eq!(blocked.join_blocking(), Err(Value::sym("vm-shutdown")));
    assert_eq!(delayed.join_blocking(), Err(Value::sym("vm-shutdown")));
}

#[test]
fn stack_recycling_counts() {
    let vm = vm1();
    for _ in 0..20 {
        vm.fork(|_cx| 0i64).join_blocking().unwrap();
    }
    let snap = vm.counters().snapshot();
    assert!(
        snap.stacks_recycled >= 10,
        "expected stack reuse, got {}",
        snap.stacks_recycled
    );
    vm.shutdown();
}

#[test]
fn current_thread_identity_during_steal() {
    let vm = vm1();
    let r = vm.run(|cx| {
        let outer_id = cx.current_thread().id();
        let lazy = cx.delayed(move |cx| {
            // Inside the stolen thunk, current-thread is the stolen thread.
            i64::from(cx.current_thread().id() != outer_id)
        });
        let lazy_id = lazy.id();
        assert_ne!(lazy_id, outer_id);
        let v = cx.touch(&lazy).unwrap().as_int().unwrap();
        // Identity restored after the steal.
        assert_eq!(cx.current_thread().id(), outer_id);
        v
    });
    assert_eq!(r, Ok(Value::Int(1)));
    vm.shutdown();
}

#[test]
fn wait_from_plain_os_thread_falls_back_to_join() {
    let vm = vm1();
    let t = vm.fork(|_cx| 11i64);
    // tc::wait off-thread should not panic.
    assert_eq!(tc::wait(&t), Ok(Value::Int(11)));
    vm.shutdown();
}

#[test]
fn topology_addressing_with_vps() {
    let vm = vm(4);
    let topo = Topology::ring(vm.vp_count());
    let r = vm.run(move |cx| {
        let here = cx.current_vp().index();
        let right = topo.right(here).unwrap();
        let t = cx
            .fork_on(right, |cx| cx.current_vp().index() as i64)
            .unwrap();
        cx.wait(&t).unwrap().as_int().unwrap()
    });
    let got = r.unwrap().as_int().unwrap();
    assert!((got as usize) < vm.vp_count());
    vm.shutdown();
}

#[test]
fn counters_track_lifecycle() {
    let vm = vm1();
    let before = vm.counters().snapshot();
    let t = vm.fork(|cx| {
        cx.yield_now();
        0i64
    });
    t.join_blocking().unwrap();
    let d = vm.counters().snapshot().since(&before);
    assert_eq!(d.threads_created, 1);
    assert_eq!(d.tcbs_allocated, 1);
    assert_eq!(d.determinations, 1);
    assert!(d.yields >= 1);
    assert!(d.context_switches >= 2);
    vm.shutdown();
}

#[test]
fn thread_raise_into_evaluating_thread() {
    let vm = vm1();
    let spinner = vm.fork(|cx| -> i64 {
        loop {
            cx.checkpoint();
            cx.yield_now();
        }
    });
    std::thread::sleep(Duration::from_millis(20));
    tc::thread_raise(&spinner, Value::sym("interrupted")).unwrap();
    assert_eq!(spinner.join_blocking(), Err(Value::sym("interrupted")));
    vm.shutdown();
}

#[test]
fn thread_raise_into_passive_thread() {
    let vm = vm1();
    let d = vm.delayed(|_cx| 0i64);
    tc::thread_raise(&d, Value::sym("never-ran")).unwrap();
    assert_eq!(d.join_blocking(), Err(Value::sym("never-ran")));
    vm.shutdown();
}

#[test]
fn io_offload_from_nested_thread() {
    let vm = vm1();
    let r = vm.run(|cx| {
        let t = cx.fork(|_cx| sting_core::io::offload(|| 7i64));
        cx.wait(&t).unwrap().as_int().unwrap()
    });
    assert_eq!(r, Ok(Value::Int(7)));
    vm.shutdown();
}

#[test]
fn tcb_migration_when_enabled() {
    // With migrate_tcbs, even evaluating (parked-between-quanta) threads
    // move to idle VPs; the counter proves migration happened.
    let vm = VmBuilder::new()
        .vps(2)
        .processors(1)
        .policy(|_| {
            sting_core::policies::local_fifo()
                .migrating(true)
                .migrate_tcbs(true)
                .place_round_robin(false)
                .boxed()
        })
        .build();
    // Pile yieldy threads onto VP 0 only.  They spin-yield until released,
    // so VP 0's queue stays populated and VP 1's idle probes are guaranteed
    // to find something to pull.  (A fixed yield count is not enough: the
    // worker drains each fork as fast as this thread creates it, so the
    // victim queue can be empty at every probe and the migrations counter —
    // which counts only *committed* hand-offs — would legitimately stay 0.)
    let gate = Arc::new(AtomicBool::new(false));
    let ts: Vec<_> = (0..20)
        .map(|i| {
            let gate = gate.clone();
            vm.fork_on(0, move |cx| {
                while !gate.load(Ordering::Acquire) {
                    cx.yield_now();
                }
                i as i64
            })
            .unwrap()
        })
        .collect();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while vm.counters().snapshot().migrations == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "idle VP 1 should have pulled TCBs from VP 0"
        );
        std::thread::yield_now();
    }
    gate.store(true, Ordering::Release);
    for t in ts {
        t.join_blocking().unwrap();
    }
    vm.shutdown();
}

#[test]
fn touch_demands_unstealable_delayed_thread() {
    // Touch is the demand: even with stealing forbidden, touching a
    // delayed thread must schedule it rather than wait forever.
    let vm = vm1();
    let r = vm.run(|cx| {
        let lazy = ThreadBuilder::new(&cx.vm())
            .stealable(false)
            .delayed(|_| 64i64);
        cx.touch(&lazy).unwrap().as_int().unwrap()
    });
    assert_eq!(r, Ok(Value::Int(64)));
    assert_eq!(vm.counters().snapshot().steals, 0);
    vm.shutdown();
}
