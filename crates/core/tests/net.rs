//! Reactor-backed TCP on STING threads: blocking a thread in
//! `accept`/`read`/`write` parks only that thread, deadlines work, and a
//! terminate delivered while parked on fd readiness unwinds cleanly (the
//! registration is torn down, the pending readiness dies against the
//! finished episode).  Every test runs with tracing and asserts a clean
//! audit — and runs once per reactor backend (epoll always; io_uring when
//! the kernel has it, with a printed skip otherwise), so both backends
//! face the same suite.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use sting_core::net::{TcpListener, TcpStream, LOCALHOST};
use sting_core::reactor::IoBackend;
use sting_core::state::ThreadState;
use sting_core::vm::Vm;
use sting_core::{tc, ThreadBuilder, VmBuilder};
use sting_value::Value;

/// The backends to matrix over: epoll unconditionally, io_uring when the
/// kernel supports it (graceful skip, like `ci.sh miri` without nightly).
fn backends() -> Vec<IoBackend> {
    let mut v = vec![IoBackend::Epoll];
    if sting_core::uring::uring_supported() {
        v.push(IoBackend::IoUring);
    } else {
        eprintln!("io_uring unavailable on this kernel: epoll-only matrix");
    }
    v
}

fn vm_on(backend: IoBackend) -> Arc<Vm> {
    VmBuilder::new()
        .vps(1)
        .trace(true)
        .trace_capacity(1 << 16)
        .io_backend(backend)
        .build()
}

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn finish(vm: &Arc<Vm>) {
    let report = vm.trace_audit();
    assert!(report.is_clean(), "audit found violations:\n{report}");
    vm.shutdown();
}

/// Server and client are both STING threads on the same single VP: each
/// park on readiness must release the VP to the other side, or the
/// round-trip deadlocks.
#[test]
fn sting_threads_echo_round_trip_on_one_vp() {
    for backend in backends() {
        sting_threads_echo_round_trip_on_one_vp_on(backend);
    }
}

fn sting_threads_echo_round_trip_on_one_vp_on(backend: IoBackend) {
    let vm = vm_on(backend);
    let listener = TcpListener::bind(LOCALHOST, 0).unwrap();
    let port = listener.local_port().unwrap();
    let server = vm.fork(move |_cx| {
        let s = listener.accept().unwrap();
        let mut buf = [0u8; 32];
        loop {
            let n = s.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            s.write_all(&buf[..n]).unwrap();
        }
        1i64
    });
    let client = vm.fork(move |_cx| {
        let c = TcpStream::connect(LOCALHOST, port).unwrap();
        for i in 0..8u8 {
            let msg = [i; 5];
            c.write_all(&msg).unwrap();
            let mut buf = [0u8; 5];
            let mut got = 0;
            while got < buf.len() {
                let n = c.read(&mut buf[got..]).unwrap();
                assert_ne!(n, 0, "peer hung up early");
                got += n;
            }
            assert_eq!(buf, msg);
        }
        c.shutdown_write();
        1i64
    });
    assert_eq!(client.join_blocking().unwrap().as_int(), Some(1));
    assert_eq!(server.join_blocking().unwrap().as_int(), Some(1));
    // The driver resolved to the requested backend, did real kernel work,
    // and delivered real wakes — the counters behind `(vm-io-stats)`.
    let stats = vm.io_driver().stats();
    let expected = match backend {
        IoBackend::Epoll => "epoll",
        _ => "uring",
    };
    assert_eq!(stats.backend, expected);
    assert!(stats.syscalls > 0, "backend made no syscalls? {stats:?}");
    assert!(stats.wakes > 0, "driver delivered no wakes? {stats:?}");
    finish(&vm);
}

/// The trailing-deadline variants on STING threads: an `accept` with no
/// client and a `read` with no data both time out through the same timed
/// wait episode as every other blocking op.
#[test]
fn accept_and_read_deadlines_time_out_on_sting_threads() {
    for backend in backends() {
        accept_and_read_deadlines_time_out_on(backend);
    }
}

fn accept_and_read_deadlines_time_out_on(backend: IoBackend) {
    let vm = vm_on(backend);
    let t = vm.fork(|_cx| {
        let listener = TcpListener::bind(LOCALHOST, 0).unwrap();
        let port = listener.local_port().unwrap();
        let start = Instant::now();
        let r = listener.accept_deadline(start + Duration::from_millis(30));
        assert!(r.unwrap_err().is_timeout());
        assert!(start.elapsed() >= Duration::from_millis(25));

        let c = TcpStream::connect(LOCALHOST, port).unwrap();
        let s = listener.accept().unwrap();
        let mut buf = [0u8; 8];
        assert!(s
            .read_deadline(&mut buf, Instant::now() + Duration::from_millis(20))
            .unwrap_err()
            .is_timeout());
        // And after the timeout the stream still delivers.
        c.write_all(b"late").unwrap();
        let n = s
            .read_deadline(&mut buf, Instant::now() + Duration::from_secs(2))
            .unwrap();
        assert_eq!(&buf[..n], b"late");
        1i64
    });
    assert_eq!(t.join_blocking().unwrap().as_int(), Some(1));
    finish(&vm);
}

/// Terminating a thread parked in `accept` unwinds it: the drop guard
/// deregisters its readiness slot, and a connection arriving afterwards
/// wakes nobody stale (clean audit) while a fresh acceptor still works.
#[test]
fn terminate_thread_blocked_in_accept() {
    for backend in backends() {
        terminate_thread_blocked_in_accept_on(backend);
    }
}

fn terminate_thread_blocked_in_accept_on(backend: IoBackend) {
    let vm = vm_on(backend);
    let listener = Arc::new(TcpListener::bind(LOCALHOST, 0).unwrap());
    let port = listener.local_port().unwrap();
    let victim = {
        let listener = listener.clone();
        vm.fork(move |_cx| {
            let _ = listener.accept();
            1i64
        })
    };
    wait_until("victim to park in accept", || {
        victim.state() == ThreadState::Blocked
    });
    tc::thread_terminate(&victim, Value::sym("killed")).unwrap();
    assert_eq!(victim.join_blocking(), Ok(Value::sym("killed")));
    // The listener must still be usable from a fresh thread.
    let acceptor = {
        let listener = listener.clone();
        vm.fork(move |_cx| {
            let s = listener.accept().unwrap();
            let mut b = [0u8; 4];
            let n = s.read(&mut b).unwrap();
            i64::from(b[..n] == *b"ping")
        })
    };
    let client = TcpStream::connect(LOCALHOST, port).unwrap();
    client.write_all(b"ping").unwrap();
    assert_eq!(acceptor.join_blocking().unwrap().as_int(), Some(1));
    finish(&vm);
}

/// A small fleet of connection threads under policy-managed priorities
/// (the echo-server shape): every connection is a first-class STING
/// thread, all multiplexed on one VP with 32 KiB stacks.
#[test]
fn connection_per_thread_fleet_under_priorities() {
    for backend in backends() {
        connection_per_thread_fleet_under_priorities_on(backend);
    }
}

fn connection_per_thread_fleet_under_priorities_on(backend: IoBackend) {
    const CONNS: usize = 32;
    let vm = VmBuilder::new()
        .vps(1)
        .stack_size(32 * 1024)
        .trace(true)
        .trace_capacity(1 << 16)
        .io_backend(backend)
        .build();
    let listener = Arc::new(TcpListener::bind(LOCALHOST, 0).unwrap());
    let port = listener.local_port().unwrap();
    let served = Arc::new(AtomicUsize::new(0));

    let acceptor = {
        let listener = listener.clone();
        let vm2 = vm.clone();
        let served = served.clone();
        vm.fork(move |_cx| {
            for i in 0..CONNS {
                let s = listener.accept().unwrap();
                let served = served.clone();
                // Alternate priorities: the policy manager orders the
                // ready connection threads, not the reactor.
                ThreadBuilder::new(&vm2)
                    .name(&format!("conn-{i}"))
                    .priority((i % 3) as i32)
                    .spawn(move |_cx| {
                        let mut buf = [0u8; 16];
                        loop {
                            let n = s.read(&mut buf).unwrap();
                            if n == 0 {
                                break;
                            }
                            s.write_all(&buf[..n]).unwrap();
                        }
                        served.fetch_add(1, Ordering::SeqCst);
                        0i64
                    })
                    .unwrap();
            }
            0i64
        })
    };

    let clients: Vec<_> = (0..CONNS)
        .map(|i| {
            vm.fork(move |_cx| {
                let c = TcpStream::connect(LOCALHOST, port).unwrap();
                let msg = [i as u8; 8];
                c.write_all(&msg).unwrap();
                let mut buf = [0u8; 8];
                let mut got = 0;
                while got < buf.len() {
                    let n = c.read(&mut buf[got..]).unwrap();
                    assert_ne!(n, 0);
                    got += n;
                }
                assert_eq!(buf, msg);
                c.shutdown_write();
                1i64
            })
        })
        .collect();

    for c in clients {
        assert_eq!(c.join_blocking().unwrap().as_int(), Some(1));
    }
    acceptor.join_blocking().unwrap();
    wait_until("all connection threads to finish", || {
        served.load(Ordering::SeqCst) == CONNS
    });
    finish(&vm);
}
