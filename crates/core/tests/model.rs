//! Model-checked scenarios over the *production* `sting_core::deque` and
//! `sting_core::trace` sources.
//!
//! This test crate only compiles under `RUSTFLAGS="--cfg sting_check"`
//! (`./ci.sh check`), which switches those modules onto the sting-check
//! shim atomics so every interleaving and weak-memory load result is
//! explored.  The mutation tests proving each scenario has teeth — the same
//! protocol with a required ordering weakened, shown failing — live in
//! `crates/check/tests/litmus.rs` (mini-deque and seqlock litmus tests),
//! since weakening the production source would require patching it.
#![cfg(sting_check)]

use std::sync::Arc;
use sting_check::{model, model_bounded, thread};
use sting_core::deque::{BandedInjector, Deque, Injector, MultiDeque, Steal, BANDS};
use sting_core::trace::{EventKind, Tracer};

/// The pop/steal last-item race (deque.rs `pop`, `t == b` arm): with one
/// item and one thief, exactly one side may claim it — every interleaving,
/// every weak load result.
#[test]
fn deque_last_item_claimed_exactly_once() {
    let explored = model(|| {
        let d = Arc::new(Deque::with_capacity(2));
        d.push(1u64);
        let d2 = d.clone();
        let thief = thread::spawn(move || match d2.steal() {
            Steal::Success(v) => Some(v),
            Steal::Empty | Steal::Retry => None,
        });
        let popped = d.pop();
        let stolen = thief.join();
        let claims = usize::from(popped.is_some()) + usize::from(stolen.is_some());
        assert_eq!(claims, 1, "last item claimed {claims} times");
        assert_eq!(popped.or(stolen), Some(1));
    });
    assert!(explored.executions > 1);
}

/// Two items, a popping owner and a stealing thief: no item is lost and no
/// item is dispatched twice.  The thief is spawned *before* the pushes so
/// it shares no happens-before edge with them — every ordering the owner
/// side relies on must come from the deque protocol itself.  This is the
/// scenario that exposes the pre-PR `Relaxed` bottom store in `pop`: under
/// C++20 release sequences a thief acquiring that store got no
/// synchronization and could claim a slot whose contents it never saw.
#[test]
fn deque_pop_steal_no_loss_no_dup() {
    model_bounded(3, || {
        let d = Arc::new(Deque::with_capacity(2));
        let d2 = d.clone();
        let thief = thread::spawn(move || d2.steal_retrying());
        d.push(1u64);
        d.push(2u64);
        let mut claimed = Vec::new();
        claimed.extend(d.pop());
        claimed.extend(d.pop());
        claimed.extend(thief.join());
        // Once both sides quiesce, drain the leftovers: between the claims
        // and the remainder, each item appears exactly once.
        while let Some(v) = d.pop() {
            claimed.push(v);
        }
        claimed.sort_unstable();
        assert_eq!(claimed, [1, 2], "lost or duplicated an item: {claimed:?}");
    });
}

/// `steal_tagged` staleness re-validation (deque.rs `steal_inner`,
/// `tagged_only` arm): while the owner replaces an untagged item with a
/// tagged one, a tag-only thief must never claim the untagged item, and the
/// tagged item must still be dispatched exactly once.
#[test]
fn deque_steal_tagged_never_claims_untagged() {
    model_bounded(3, || {
        let d = Arc::new(Deque::with_capacity(2));
        d.push_tagged(1u64, false);
        let d2 = d.clone();
        let thief = thread::spawn(move || loop {
            match d2.steal_tagged() {
                Steal::Success(v) => return Some(v),
                Steal::Empty => return None,
                Steal::Retry => {}
            }
        });
        // The untagged item is invisible to the tag-only thief: pop always
        // gets it.
        assert_eq!(d.pop(), Some(1), "tag-only thief claimed an untagged item");
        d.push_tagged(2u64, true);
        let stolen = thief.join();
        let popped = d.pop();
        match stolen {
            Some(v) => {
                assert_eq!(v, 2, "thief claimed the untagged item");
                assert_eq!(popped, None, "tagged item dispatched twice");
            }
            None => assert_eq!(popped, Some(2), "tagged item lost"),
        }
    });
}

/// Push racing a thief across a buffer growth (capacity 2, third push
/// doubles the buffer): the thief may hold the retired buffer mid-steal,
/// yet every item is still dispatched exactly once.
#[test]
fn deque_push_vs_steal_across_grow() {
    model_bounded(2, || {
        let d = Arc::new(Deque::with_capacity(2));
        let d2 = d.clone();
        let thief = thread::spawn(move || d2.steal_retrying());
        d.push(1u64);
        d.push(2u64);
        d.push(3u64); // grows 2 -> 4, retiring the buffer mid-race
        let mut claimed = Vec::new();
        claimed.extend(thief.join());
        while let Some(v) = d.pop() {
            claimed.push(v);
        }
        claimed.sort_unstable();
        assert_eq!(claimed, [1, 2, 3], "lost or duplicated an item across grow");
    });
}

/// Injector MPSC ordering: two producers racing `push` against a concurrent
/// `drain`.  Nothing is lost or duplicated, and a drain never reorders one
/// producer's submissions (arrival order is restored per drain).
#[test]
fn injector_mpsc_no_loss_no_dup() {
    model_bounded(2, || {
        let q = Arc::new(Injector::new());
        let (qa, qb) = (q.clone(), q.clone());
        let pa = thread::spawn(move || qa.push(1u64));
        let pb = thread::spawn(move || qb.push(2u64));
        // Rescue drain racing the producers (the idle-VP rescue path).
        let mut claimed = q.drain();
        pa.join();
        pb.join();
        claimed.extend(q.drain());
        let mut sorted = claimed.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, [1, 2], "injector lost or duplicated an item");
        assert!(q.is_empty());
    });
}

/// A single producer's submissions come back out in arrival order even when
/// a drain races the pushes: any drain observes a *prefix* of the pushes,
/// never a later item without an earlier one.
#[test]
fn injector_drain_preserves_arrival_order() {
    model_bounded(3, || {
        let q = Arc::new(Injector::new());
        let q2 = q.clone();
        let producer = thread::spawn(move || {
            q2.push(1u64);
            q2.push(2u64);
        });
        let first = q.drain();
        assert!(
            first.is_empty() || first == [1] || first == [1, 2],
            "drain saw a non-prefix: {first:?}"
        );
        producer.join();
        let mut all = first;
        all.extend(q.drain());
        assert_eq!(all, [1, 2], "arrival order lost");
    });
}

/// Two bands, an owner pushing into both while a thief steals: every item
/// is claimed exactly once no matter how the occupancy bits interleave
/// with the per-band Chase–Lev protocols.  The thief is spawned before
/// the pushes, so the only happens-before edges are the ones the deque
/// and bitmask protocols provide.
#[test]
fn multi_deque_two_band_exactly_once() {
    model_bounded(2, || {
        let md = Arc::new(MultiDeque::with_capacity(2));
        let md2 = md.clone();
        let thief = thread::spawn(move || match md2.steal(false) {
            Steal::Success(v) => Some(v),
            Steal::Empty | Steal::Retry => None,
        });
        md.push(0, 10u64);
        md.push(1, 11u64);
        let stolen = thief.join();
        // Quiesced drain (the thief has joined, so pop's bitmask re-check
        // loop sees coherent values and terminates).
        let mut claimed: Vec<u64> = stolen.into_iter().collect();
        while let Some(v) = md.pop(false) {
            claimed.push(v);
        }
        claimed.sort_unstable();
        assert_eq!(claimed, [10, 11], "lost or duplicated across bands");
    });
}

/// The band-bitmask protocol's core obligation: a thief's
/// `clear_if_empty` (fetch_and, then re-check, then fetch_or) racing an
/// owner push to the same band must never leave the band's occupancy bit
/// cleared while an item sits in the band — `pop` trusts the bitmask, so
/// a stranded item would be invisible forever.  The dropped-Release
/// mutation for this scenario lives in `crates/check/tests/litmus.rs`
/// (`banded_bitmask_*`).
#[test]
fn multi_deque_occupancy_never_strands_an_item() {
    model_bounded(2, || {
        let md = Arc::new(MultiDeque::with_capacity(2));
        // Seed band 1 so the thief's steal drains it and runs the
        // clear-then-recheck against the owner's racing second push.
        md.push(1, 1u64);
        let md2 = md.clone();
        let thief = thread::spawn(move || {
            let a = match md2.steal(false) {
                Steal::Success(v) => Some(v),
                Steal::Empty | Steal::Retry => None,
            };
            let b = match md2.steal(false) {
                Steal::Success(v) => Some(v),
                Steal::Empty | Steal::Retry => None,
            };
            (a, b)
        });
        md.push(1, 2u64);
        let (a, b) = thief.join();
        let mut claimed: Vec<u64> = [a, b].into_iter().flatten().collect();
        while let Some(v) = md.pop(true) {
            claimed.push(v);
        }
        claimed.sort_unstable();
        assert_eq!(claimed, [1, 2], "occupancy bit stranded an item");
        assert!(md.is_empty());
        assert_eq!(
            md.occupancy_bits() & ((1 << BANDS) - 1),
            0,
            "quiesced empty deque must have no occupancy bits set"
        );
    });
}

/// `BandedInjector::push_batch` publishes its whole batch with one CAS: a
/// concurrent drain sees either none of the batch or all of it, in order
/// — never a partial or reordered slice.  This is the batched-wake
/// atomicity the barrier/broadcast sweeps rely on.
#[test]
fn banded_injector_batch_publishes_atomically() {
    model_bounded(2, || {
        let q = Arc::new(BandedInjector::new());
        let q2 = q.clone();
        let producer = thread::spawn(move || q2.push_batch([(0usize, 1u64), (1usize, 2u64)]));
        let first = q.drain();
        assert!(
            first.is_empty() || first == [(0, 1), (1, 2)],
            "partial batch visible: {first:?}"
        );
        producer.join();
        let mut all = first;
        all.extend(q.drain());
        assert_eq!(all, [(0, 1), (1, 2)], "batch lost or reordered");
    });
}

/// The trace ring's ticket/seq publish protocol: a reader snapshotting
/// while a writer laps a capacity-2 ring must never surface a torn record
/// as valid.  Records are self-checking — every word carries the same tag.
#[test]
fn trace_ring_reader_never_surfaces_torn_record() {
    model_bounded(3, || {
        // 0 VPs = a single (external) lane; capacity 2 so the third record
        // wraps and overwrites mid-snapshot.
        let tracer = Arc::new(Tracer::new(0, 2, true));
        let t2 = tracer.clone();
        let writer = thread::spawn(move || {
            for i in 1..=3u64 {
                t2.record(None, EventKind::Fork, i, i as u32, i as u32);
            }
        });
        for e in tracer.snapshot() {
            assert_eq!(e.kind, EventKind::Fork);
            assert!(
                e.thread == e.a as u64 && e.a == e.b && (1..=3).contains(&e.a),
                "torn record surfaced as valid: {e:?}"
            );
        }
        writer.join();
        // After the writer finishes the newest records are all resident.
        let final_threads: Vec<u64> = tracer.snapshot().iter().map(|e| e.thread).collect();
        assert!(tracer.truncated(), "a lapped ring must report truncation");
        for e in tracer.snapshot() {
            assert!(
                e.thread == e.a as u64 && e.a == e.b && (1..=3).contains(&e.a),
                "torn record surfaced as valid: {e:?}"
            );
        }
        assert!(
            final_threads.contains(&3),
            "newest record missing from quiescent snapshot: {final_threads:?}"
        );
    });
}
