//! Trace invariant linter: replays a flight-recorder event stream (see
//! [`crate::trace`]) and flags scheduler protocol violations.
//!
//! The scheduler's correctness argument (DESIGN.md, "Scheduler fast path")
//! reduces to a handful of linear-time-checkable invariants over the event
//! stream: a TCB runs on at most one VP at a time, determination is final,
//! work is stolen only after it was published, and published work is
//! eventually dispatched.  [`audit`] checks all four over a
//! [`Tracer::snapshot`](crate::trace::Tracer::snapshot); [`Vm::trace_audit`](crate::vm::Vm::trace_audit)
//! wires it to a live machine, and debug builds run it automatically at
//! [`Vm::shutdown`](crate::vm::Vm::shutdown).
//!
//! The replay keeps a vector clock per thread — its last-observed event
//! index on every tracer lane — which each [`Finding`] carries so a report
//! pinpoints *which* cross-lane ordering went wrong, not just which thread.
//!
//! ## Multi-ring (fleet) input
//!
//! The stream need not come from a single tracer: a fleet merge
//! concatenates every shard's rings (lanes remapped to stay disjoint,
//! see [`Fleet::merged_snapshot`](crate::fleet::Fleet::merged_snapshot))
//! and re-sorts by [`sort_events`](crate::trace::sort_events) order —
//! Lamport clock first, timestamp as tiebreaker.  The per-thread checks
//! stay sound on such interleaved input because (a) thread ids are unique
//! fleet-wide, (b) each shard's clock is strictly increasing so within-lane
//! order survives the merge, and (c) the mailbox fabric witnesses the
//! sender's clock before the receiver records, so one thread's events
//! order cause-before-effect even across a shard handoff.  Lane indices
//! are taken as opaque: the replay sizes its clocks from the maximum lane
//! present rather than assuming one process's dense `0..=vps` lane set.
//!
//! ## Soundness under partial traces
//!
//! Rings overwrite their oldest events when full, and tracing can be
//! enabled mid-run, so the stream may be a suffix of history.  Checks that
//! would misfire on a missing prefix are gated: per-lane rings drop oldest
//! first and a dispatch and its matching switch share a lane, so
//! [double dispatch](FindingKind::DoubleDispatch) and
//! [dispatch-after-determine](FindingKind::DispatchAfterDetermine) stay
//! sound, while [steal-without-enqueue](FindingKind::StealWithoutEnqueue)
//! and [lost wakeups](FindingKind::LostWakeup) are reported only for
//! threads whose `Fork` is in the stream and only when no ring was lapped.

use crate::trace::{EventKind, TraceEvent};
use std::collections::HashMap;
use std::fmt;

/// A scheduler invariant violation found by [`audit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which invariant broke.
    pub kind: FindingKind,
    /// The thread involved.
    pub thread: u64,
    /// Timestamp (ns since tracer epoch) of the offending event, or of the
    /// last relevant event for end-of-stream findings.
    pub ts_ns: u64,
    /// The thread's vector clock when flagged: for each tracer lane, how
    /// many events on that lane preceded the violation.
    pub clock: Vec<u64>,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:?}] thread {} at {}ns: {} (lane clock {:?})",
            self.kind, self.thread, self.ts_ns, self.detail, self.clock
        )
    }
}

/// The invariant classes [`audit`] checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// A thread was dispatched while already dispatched — two `Dispatch`
    /// events with no intervening `Switch` (yield/preempt/block/suspend/
    /// return).  One TCB running on two VPs corrupts its stack.
    DoubleDispatch,
    /// A thread was dispatched after its `Determine` event.  Determination
    /// is final (paper §2.2); the TCB was already recycled.
    DispatchAfterDetermine,
    /// A `Migrate` (deque steal) of a thread with no prior unconsumed
    /// `Enqueue`: the thief claimed work that was never published.
    StealWithoutEnqueue,
    /// A thread was enqueued but neither dispatched nor determined by the
    /// end of the stream: the wake-up was lost.  Only meaningful for a
    /// quiesced machine (e.g. after [`Vm::shutdown`](crate::vm::Vm::shutdown)
    /// drains, which determines everything still queued).
    LostWakeup,
    /// A claimed wake-up (`Unblock` carrying an episode generation) was
    /// delivered for a wait episode that had already been cancelled or
    /// timed out: the claim CAS was bypassed, so a structure woke a
    /// deregistered waiter.  Presence-based (a cancel followed by a
    /// claimed wake on the same generation), so it needs no truncation
    /// gating.
    WakeAfterCancel,
    /// A wait episode was still armed when its thread determined
    /// (`WaiterCancelled` with origin "leaked at determine"): some park
    /// path failed to deregister, so a structure may still count — or try
    /// to wake — a recycled thread.
    WaiterLeak,
    /// Two (or more) mutexes were acquired in a cyclic order across
    /// threads: the per-thread acquire-order graph rebuilt from
    /// `LockAcquire`/`LockRelease` events contains a cycle.  The observed
    /// run survived by luck of interleaving, but an adversarial schedule
    /// deadlocks.  Presence-based, so it needs no truncation gating: a
    /// missing prefix can only hide held locks and under-report edges,
    /// never fabricate one.
    LockOrderInversion,
}

/// The outcome of [`audit`]: the findings plus how much evidence they rest
/// on.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Invariant violations, in stream order.
    pub findings: Vec<Finding>,
    /// Number of events replayed.
    pub events: usize,
    /// Whether a ring had overwritten events (checks needing a complete
    /// history were skipped; see module docs).
    pub truncated: bool,
}

impl AuditReport {
    /// Whether the replay found no violations.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace audit: {} finding(s) over {} event(s){}",
            self.findings.len(),
            self.events,
            if self.truncated {
                " (truncated history: absence checks skipped)"
            } else {
                ""
            }
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// Per-thread replay state.
#[derive(Default)]
struct ThreadAudit {
    /// `Fork` observed — the stream covers this thread's whole lifetime.
    forked: bool,
    /// Timestamp of the `Dispatch` that put it on a VP, while it is there.
    running_since: Option<u64>,
    /// Enqueues published but not yet consumed by a dispatch.
    pending_enqueues: u64,
    /// Target VP and timestamp of the most recent pending enqueue.
    last_enqueue: Option<(u32, u64)>,
    determined_at: Option<u64>,
    /// Wait-episode generations (low 32 bits) seen cancelled or timed
    /// out; a later claimed wake-up on one of them is a violation.
    dead_episodes: std::collections::HashSet<u32>,
    /// Mutex ids this thread currently holds (acquire order preserved).
    held_locks: Vec<u32>,
    /// Lane vector clock: events seen per lane up to this thread's last
    /// involvement.
    clock: Vec<u64>,
}

/// Replays `events` (which must be in [`sort_events`](crate::trace::sort_events)
/// order — Lamport clock then timestamp, as [`Tracer::snapshot`](crate::trace::Tracer::snapshot)
/// and fleet merges return them) and checks every [`FindingKind`]
/// invariant.  `truncated` is whether any ring was lapped (see
/// [`Tracer::truncated`](crate::trace::Tracer::truncated)); for merged
/// multi-shard input, pass the OR across every shard's tracer.  It gates
/// the checks that reason about event *absence*.
pub fn audit(events: &[TraceEvent], truncated: bool) -> AuditReport {
    let lanes = events.iter().map(|e| e.vp as usize + 1).max().unwrap_or(1);
    let mut lane_clock = vec![0u64; lanes];
    let mut threads: HashMap<u64, ThreadAudit> = HashMap::new();
    let mut findings = Vec::new();
    // Acquire-order edges: (held, acquired) -> first observation.
    let mut lock_edges: std::collections::BTreeMap<(u32, u32), (u64, u64, Vec<u64>)> =
        std::collections::BTreeMap::new();

    for e in events {
        lane_clock[e.vp as usize] += 1;
        if e.thread == 0 {
            continue; // Preempt ticks etc.: no thread involved.
        }
        let st = threads.entry(e.thread).or_default();
        if st.clock.len() < lanes {
            st.clock.resize(lanes, 0);
        }
        st.clock.clone_from_slice(&lane_clock);
        match e.kind {
            EventKind::Fork => st.forked = true,
            EventKind::Enqueue => {
                st.pending_enqueues += 1;
                st.last_enqueue = Some((e.b, e.ts_ns));
            }
            EventKind::Dispatch => {
                if let Some(det_ts) = st.determined_at {
                    findings.push(Finding {
                        kind: FindingKind::DispatchAfterDetermine,
                        thread: e.thread,
                        ts_ns: e.ts_ns,
                        clock: st.clock.clone(),
                        detail: format!("dispatched on vp {} but determined at {det_ts}ns", e.vp),
                    });
                }
                if let Some(since) = st.running_since {
                    findings.push(Finding {
                        kind: FindingKind::DoubleDispatch,
                        thread: e.thread,
                        ts_ns: e.ts_ns,
                        clock: st.clock.clone(),
                        detail: format!(
                            "dispatched on vp {} while still dispatched since {since}ns \
                             (no intervening switch)",
                            e.vp
                        ),
                    });
                }
                st.running_since = Some(e.ts_ns);
                st.pending_enqueues = st.pending_enqueues.saturating_sub(1);
            }
            EventKind::Switch => st.running_since = None,
            EventKind::Migrate => {
                // A deque steal moves a published item between VPs; the
                // pending enqueue travels with it, so the count is not
                // consumed here.
                if st.pending_enqueues == 0 && st.forked && !truncated {
                    findings.push(Finding {
                        kind: FindingKind::StealWithoutEnqueue,
                        thread: e.thread,
                        ts_ns: e.ts_ns,
                        clock: st.clock.clone(),
                        detail: format!(
                            "stolen from vp {} by vp {} with no unconsumed enqueue",
                            e.a, e.b
                        ),
                    });
                }
            }
            EventKind::Determine => st.determined_at = Some(e.ts_ns),
            EventKind::Unblock => {
                // `b != 0` marks a *claimed* wake-up (generations start at
                // 1): a waker won the claim CAS on episode `b`.  The CAS
                // is mutually exclusive with cancellation/timeout on the
                // same generation, so seeing both is a protocol breach.
                if e.b != 0 && st.dead_episodes.contains(&e.b) {
                    findings.push(Finding {
                        kind: FindingKind::WakeAfterCancel,
                        thread: e.thread,
                        ts_ns: e.ts_ns,
                        clock: st.clock.clone(),
                        detail: format!(
                            "claimed wake-up for wait episode gen {} after it was \
                             cancelled or timed out",
                            e.b
                        ),
                    });
                }
            }
            EventKind::BlockTimeout => {
                st.dead_episodes.insert(e.b);
            }
            EventKind::WaiterCancelled => {
                st.dead_episodes.insert(e.b);
                if e.a == 2 {
                    findings.push(Finding {
                        kind: FindingKind::WaiterLeak,
                        thread: e.thread,
                        ts_ns: e.ts_ns,
                        clock: st.clock.clone(),
                        detail: format!(
                            "wait episode gen {} was still registered when the \
                             thread determined",
                            e.b
                        ),
                    });
                }
            }
            EventKind::LockAcquire => {
                for &held in &st.held_locks {
                    if held != e.a {
                        lock_edges
                            .entry((held, e.a))
                            .or_insert_with(|| (e.thread, e.ts_ns, st.clock.clone()));
                    }
                }
                st.held_locks.push(e.a);
            }
            EventKind::LockRelease => {
                if let Some(pos) = st.held_locks.iter().rposition(|&id| id == e.a) {
                    st.held_locks.remove(pos);
                }
            }
            EventKind::Handoff => {
                // A cross-shard handoff consumes the source shard's
                // pending enqueue — the item left that shard's queues for
                // the mailbox — and the destination re-publishes it with
                // its own Enqueue before dispatching.  Without consuming
                // here, every handoff would read as one enqueue too many
                // and surface as a phantom LostWakeup at end of stream.
                if st.pending_enqueues == 0 && st.forked && !truncated {
                    findings.push(Finding {
                        kind: FindingKind::StealWithoutEnqueue,
                        thread: e.thread,
                        ts_ns: e.ts_ns,
                        clock: st.clock.clone(),
                        detail: format!(
                            "handed off from shard {} to shard {} with no unconsumed enqueue",
                            e.a, e.b
                        ),
                    });
                }
                st.pending_enqueues = st.pending_enqueues.saturating_sub(1);
            }
            EventKind::Steal
            | EventKind::Block
            | EventKind::Suspend
            | EventKind::Resume
            | EventKind::Preempt
            | EventKind::StateRequest
            | EventKind::IoWait
            | EventKind::IoReady
            | EventKind::IoError => {}
        }
    }

    if !truncated {
        let mut lost: Vec<(u64, &ThreadAudit)> = threads
            .iter()
            .filter(|(_, st)| st.pending_enqueues > 0 && st.determined_at.is_none() && st.forked)
            .map(|(id, st)| (*id, st))
            .collect();
        lost.sort_by_key(|(_, st)| st.last_enqueue);
        for (thread, st) in lost {
            let (vp, ts) = st.last_enqueue.unwrap_or_default();
            findings.push(Finding {
                kind: FindingKind::LostWakeup,
                thread,
                ts_ns: ts,
                clock: st.clock.clone(),
                detail: format!(
                    "enqueued onto vp {vp} but never dispatched or determined \
                     ({} enqueue(s) outstanding)",
                    st.pending_enqueues
                ),
            });
        }
    }

    // Lock-order inversion: cycles in the observed acquire-order graph.
    // Presence-based, so it runs even on truncated histories.
    let mut succ: std::collections::BTreeMap<u32, Vec<u32>> = std::collections::BTreeMap::new();
    for &(h, a) in lock_edges.keys() {
        succ.entry(h).or_default().push(a);
    }
    let reaches = |from: u32, to: u32| -> bool {
        let mut seen = std::collections::BTreeSet::new();
        let mut work = vec![from];
        while let Some(n) = work.pop() {
            if n == to {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = succ.get(&n) {
                    work.extend(next.iter().copied());
                }
            }
        }
        false
    };
    let mut in_cycle: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    let mut components: Vec<Vec<u32>> = Vec::new();
    for &node in succ.keys() {
        if in_cycle.contains(&node)
            || !succ
                .get(&node)
                .is_some_and(|s| s.iter().any(|&n| reaches(n, node)))
        {
            continue;
        }
        // All mutexes mutually reachable with `node` form one component.
        let comp: Vec<u32> = succ
            .keys()
            .copied()
            .filter(|&m| reaches(node, m) && reaches(m, node))
            .collect();
        in_cycle.extend(comp.iter().copied());
        components.push(comp);
    }
    for comp in components {
        // Cite the earliest edge inside the component as the witness.
        let witness = lock_edges
            .iter()
            .filter(|((h, a), _)| comp.contains(h) && comp.contains(a))
            .min_by_key(|(_, (_, ts, _))| *ts);
        let (&(h, a), &(thread, ts_ns, ref clock)) =
            witness.expect("a cycle component has at least one internal edge");
        let mutexes = comp
            .iter()
            .map(|id| id.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        findings.push(Finding {
            kind: FindingKind::LockOrderInversion,
            thread,
            ts_ns,
            clock: clock.clone(),
            detail: format!(
                "mutexes {{{mutexes}}} were acquired in inconsistent orders across \
                 threads (first witnessed: thread {thread} acquired mutex {a} while \
                 holding mutex {h})"
            ),
        });
    }

    AuditReport {
        findings,
        events: events.len(),
        truncated,
    }
}
