//! The io_uring reactor backend: batched one-shot polls over shared rings.
//!
//! [`UringReactor`] is the second [`Reactor`]
//! backend, sitting on the raw `io_uring_setup`/`io_uring_enter` bindings
//! in [`crate::sys`] the same way [`EpollReactor`](crate::reactor::EpollReactor)
//! sits on the epoll family.  The mapping onto the substrate's wait
//! protocol is deliberately identical: every registration is a **one-shot**
//! `IORING_OP_POLL_ADD` (the io_uring spelling of `EPOLLONESHOT`), so
//! arm ↔ park and completion ↔ wake stay 1:1 with wait episodes and the
//! driver above needs no backend-specific logic.
//!
//! What io_uring buys over epoll is *submission batching*: an
//! [`arm`](UringReactor::arm) writes a submission-queue entry into the
//! shared ring and returns without entering the kernel.  All SQEs queued
//! since the last pass — every re-arm the driver's dispatch loop produced,
//! plus any registrations from parking threads — are submitted by the
//! **single** `io_uring_enter` at the top of the next
//! [`wait`](UringReactor::wait), where epoll pays one `epoll_ctl` per arm.
//! When the driver is currently blocked in the kernel, the arming thread
//! submits the pending batch itself with a *non-blocking*
//! `io_uring_enter(n, 0, 0)` — at most one syscall, exactly epoll's
//! per-arm cost, and usually less because one flush covers every SQE
//! queued behind the submit lock.  Crucially the driver is **not** woken:
//! like an `epoll_ctl` against a blocked `epoll_wait`, a poll for a
//! not-yet-ready fd leaves the waiter asleep until real readiness posts a
//! completion, so wait passes amortize over whole readiness batches
//! instead of being forced per-arm.
//!
//! Concurrency discipline, kept boring on purpose:
//! * SQ writes (slot + indirection array + tail) happen only under the
//!   `submit` mutex; the tail store is `Release` so the kernel's `Acquire`
//!   read sees completed slots.  When the ring is full, SQEs spill to an
//!   overflow queue flushed by the next wait pass.
//! * CQ reads happen only under the `wait` mutex (one waiter at a time —
//!   in the substrate that is always the driver thread); the head store is
//!   `Release` against the kernel's reuse of the slot.
//! * Stale one-shot polls are harmless by the same argument as a stale
//!   epoll event: waiters tolerate spurious wakes and retry the syscall,
//!   which is what decides.  [`forget`](UringReactor::forget) queues a
//!   best-effort `POLL_REMOVE` so a timed-out registration's poll does not
//!   pin the file until ring teardown.
//!
//! The wait-side timeout is an `IORING_OP_TIMEOUT` SQE submitted with the
//! same batch (kernels ≥ 5.4; `io_uring_setup` itself needs ≥ 5.1) — no
//! `EXT_ARG` dependence, so the backend runs on every kernel that can
//! create a ring.  Kernels without io_uring (or seccomp filters that deny
//! it) fail [`UringReactor::new`] with the raw errno, which is exactly the
//! probe backend [`IoBackend::Auto`](crate::reactor::IoBackend) keys on.

use crate::reactor::{Reactor, ReadyEvent, ERROR, READ, WRITE};
use crate::sys::{self, RawFd};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// Token for the internal eventfd poll (never surfaced as an event).
const WAKE_TOKEN: u64 = u64::MAX;
/// Token for the wait-pass timeout op (never surfaced).
const TIMEOUT_TOKEN: u64 = u64::MAX - 1;
/// Token for best-effort poll cancellations (never surfaced).
const REMOVE_TOKEN: u64 = u64::MAX - 2;

/// SQ slots requested at setup (the kernel grants a power of two ≥ this).
/// Arms past a full ring spill to the overflow queue, so this bounds the
/// per-`io_uring_enter` batch, not the number of registrations.
const SQ_ENTRIES: u32 = 256;
/// CQ slots requested via `IORING_SETUP_CQSIZE`; sized for a C10k wake
/// herd so completion bursts stay on the ring even on kernels without
/// `IORING_FEAT_NODROP` overflow buffering.
const CQ_ENTRIES: u32 = 4096;

/// One mmapped ring region (pointer + length, for `munmap` on drop).
struct Mapping {
    ptr: *mut u8,
    len: usize,
}

impl Mapping {
    fn new(fd: RawFd, offset: usize, len: usize) -> sys::Result<Mapping> {
        sys::mmap_rings(fd, offset, len).map(|ptr| Mapping { ptr, len })
    }

    /// A typed pointer `at` bytes into the mapping.
    fn at<T>(&self, at: u32) -> *mut T {
        // Callers only use offsets the kernel reported for this mapping.
        self.ptr.wrapping_add(at as usize).cast()
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: `ptr..ptr+len` is exactly the live mapping created in
        // `Mapping::new`, and the owning reactor is being dropped, so no
        // further access follows.
        let _ = unsafe { sys::munmap(self.ptr, self.len) };
    }
}

/// Producer state for the submission ring: everything mutated when
/// queueing an SQE, guarded by one mutex.
struct Submit {
    /// Next tail value to publish (mirrors `*ktail`; kept here so slot
    /// writes never need to re-read the shared word).
    tail: u32,
    /// SQEs that did not fit in the ring, flushed by the next wait pass.
    overflow: VecDeque<sys::IoUringSqe>,
}

/// The io_uring backend: shared SQ/CQ rings plus an eventfd for
/// [`Reactor::notify`] kicks.  See the module docs for the protocol.
pub struct UringReactor {
    ring: RawFd,
    wake: RawFd,
    sq_ring: Mapping,
    cq_ring: Mapping,
    sqes: Mapping,
    /// Cached ring geometry (kernel-reported offsets resolved to pointers
    /// would dangle if `Mapping` moved; offsets are stable, resolve lazily).
    sq_off: sys::SqringOffsets,
    cq_off: sys::CqringOffsets,
    sq_mask: u32,
    cq_mask: u32,
    submit: Mutex<Submit>,
    /// Serializes [`Reactor::wait`] (CQ consumption); uncontended in the
    /// substrate, where only the driver thread waits.
    wait: Mutex<WaitState>,
    /// True while a waiter is blocked in `io_uring_enter(GETEVENTS)`;
    /// tells [`arm`](UringReactor::arm) whether it must submit its own
    /// SQE (the blocked waiter will not re-read the SQ) or can let it
    /// ride the next pass's batch for free.
    waiting: AtomicBool,
    syscalls: AtomicU64,
}

/// State owned by the single waiter: the stable timespec the in-flight
/// `TIMEOUT` SQE points at, and whether the eventfd poll needs re-arming.
struct WaitState {
    /// Heap-stable storage for the timeout op's timespec: the kernel
    /// copies it during submission, which can happen one `enter` later
    /// than the pass that queued it (ring-full spill), so it must outlive
    /// the queueing frame.
    timeout: Box<sys::UringTimespec>,
    /// The eventfd's one-shot poll fired (or was never armed) and must be
    /// re-queued before the next block.
    rearm_wake: bool,
}

// SAFETY: the raw ring pointers are shared memory the kernel owns half
// of; all user-side accesses go through atomics or the `submit`/`wait`
// mutexes per the module-level protocol, so cross-thread use is sound.
unsafe impl Send for UringReactor {}
// SAFETY: as above — interior mutability is mediated by mutexes/atomics.
unsafe impl Sync for UringReactor {}

impl UringReactor {
    /// Creates the ring (probing kernel support — pre-5.1 kernels and
    /// seccomp deny-lists surface here as the raw errno) and its wake-up
    /// eventfd, and queues the eventfd's first poll.
    pub fn new() -> sys::Result<UringReactor> {
        let mut params = sys::IoUringParams {
            cq_entries: CQ_ENTRIES,
            flags: sys::IORING_SETUP_CQSIZE,
            ..Default::default()
        };
        let ring = match sys::io_uring_setup(SQ_ENTRIES, &mut params) {
            Ok(fd) => fd,
            // CQSIZE needs ≥ 5.5; retry plain for 5.1–5.4 (CQ = 2×SQ).
            Err(sys::Errno(sys::EINVAL)) => {
                params = sys::IoUringParams::default();
                sys::io_uring_setup(SQ_ENTRIES, &mut params)?
            }
            Err(e) => return Err(e),
        };
        let close_ring = |e: sys::Errno| {
            let _ = sys::close(ring);
            e
        };
        let sq_len = params.sq_off.array as usize + params.sq_entries as usize * 4;
        let cq_len =
            params.cq_off.cqes as usize + params.cq_entries as usize * size_of::<sys::IoUringCqe>();
        let sqe_len = params.sq_entries as usize * size_of::<sys::IoUringSqe>();
        let sq_ring = Mapping::new(ring, sys::IORING_OFF_SQ_RING, sq_len).map_err(close_ring)?;
        let cq_ring = Mapping::new(ring, sys::IORING_OFF_CQ_RING, cq_len).map_err(close_ring)?;
        let sqes = Mapping::new(ring, sys::IORING_OFF_SQES, sqe_len).map_err(close_ring)?;
        let wake = sys::eventfd().map_err(close_ring)?;
        let reactor = UringReactor {
            ring,
            wake,
            sq_mask: params.sq_entries - 1,
            cq_mask: params.cq_entries - 1,
            sq_off: params.sq_off,
            cq_off: params.cq_off,
            sq_ring,
            cq_ring,
            sqes,
            submit: Mutex::new(Submit {
                tail: 0,
                overflow: VecDeque::new(),
            }),
            wait: Mutex::new(WaitState {
                timeout: Box::default(),
                rearm_wake: true,
            }),
            waiting: AtomicBool::new(false),
            syscalls: AtomicU64::new(0),
        };
        Ok(reactor)
    }

    /// The shared-ring word at `off` in `map`, as an atomic.
    fn ring_word<'a>(&self, map: &'a Mapping, off: u32) -> &'a AtomicU32 {
        // SAFETY: `off` is a kernel-reported field offset inside the live
        // mapping; the word is concurrently accessed by the kernel, which
        // is exactly what the atomic type expresses.
        unsafe { &*map.at::<AtomicU32>(off) }
    }

    /// Queues one SQE: into the ring if a slot is free (slot + array write,
    /// then a `Release` tail publish), else onto the overflow queue.
    fn push_sqe(&self, sub: &mut Submit, sqe: sys::IoUringSqe) {
        let head = self
            .ring_word(&self.sq_ring, self.sq_off.head)
            .load(Ordering::Acquire);
        if sub.tail.wrapping_sub(head) > self.sq_mask {
            sub.overflow.push_back(sqe);
            return;
        }
        let idx = sub.tail & self.sq_mask;
        // SAFETY: `idx` ≤ sq_mask indexes inside the SQE mapping, and the
        // head check above proves the kernel is done with this slot; the
        // `submit` lock (held by the caller) excludes other producers.
        unsafe {
            *self
                .sqes
                .at::<sys::IoUringSqe>(idx * size_of::<sys::IoUringSqe>() as u32) = sqe;
            *self
                .sq_ring
                .at::<u32>(self.sq_off.array + idx * 4)
                .cast::<u32>() = idx;
        }
        sub.tail = sub.tail.wrapping_add(1);
        self.ring_word(&self.sq_ring, self.sq_off.tail)
            .store(sub.tail, Ordering::Release);
    }

    /// Moves spilled SQEs into freed ring slots, then returns how many
    /// queued submissions the next `io_uring_enter` should consume.
    fn flush_overflow(&self) -> u32 {
        let mut sub = self.submit.lock();
        while let Some(sqe) = sub.overflow.pop_front() {
            let head = self
                .ring_word(&self.sq_ring, self.sq_off.head)
                .load(Ordering::Acquire);
            if sub.tail.wrapping_sub(head) > self.sq_mask {
                sub.overflow.push_front(sqe);
                break;
            }
            self.push_sqe(&mut sub, sqe);
        }
        let head = self
            .ring_word(&self.sq_ring, self.sq_off.head)
            .load(Ordering::Acquire);
        sub.tail.wrapping_sub(head)
    }

    fn poll_sqe(fd: RawFd, mask: u8, token: u64) -> sys::IoUringSqe {
        let mut events = (sys::POLLERR | sys::POLLHUP) as u16;
        if mask & READ != 0 {
            events |= sys::POLLIN as u16;
        }
        if mask & WRITE != 0 {
            events |= sys::POLLOUT as u16;
        }
        sys::IoUringSqe {
            opcode: sys::IORING_OP_POLL_ADD,
            fd,
            op_flags: events as u32,
            user_data: token,
            ..Default::default()
        }
    }

    fn enter(&self, to_submit: u32, min_complete: u32, flags: u32) -> sys::Result<usize> {
        self.syscalls.fetch_add(1, Ordering::Relaxed);
        sys::io_uring_enter(self.ring, to_submit, min_complete, flags)
    }
}

impl Reactor for UringReactor {
    fn arm(&self, fd: RawFd, mask: u8, token: u64) -> sys::Result<()> {
        self.push_sqe(&mut self.submit.lock(), Self::poll_sqe(fd, mask, token));
        // A blocked waiter would not see this SQE until its timeout
        // backstop, so submit it ourselves — non-blocking, and without
        // waking the driver: if the fd is already ready the completion
        // wakes the waiter the normal way, and if not, the waiter keeps
        // sleeping (exactly epoll_ctl's interaction with a blocked
        // epoll_wait).  One flush covers every SQE queued behind the
        // submit lock, so concurrent arms coalesce into one enter.  When
        // the driver itself is arming (its dispatch loop between waits),
        // the flag is false and the SQE rides the next pass for free —
        // that is the N-re-arms-one-enter batching this backend exists
        // for.  A stale `true` costs one redundant non-blocking enter; a
        // stale `false` is benign because the driver's flush follows its
        // SeqCst store of `waiting`, so it sees this SQE.
        if self.waiting.load(Ordering::SeqCst) {
            let to_submit = self.flush_overflow();
            if to_submit > 0 {
                let _ = self.enter(to_submit, 0, 0);
            }
        }
        Ok(())
    }

    fn forget(&self, fd: RawFd) {
        // Best effort, like epoll's DEL: cancel one outstanding poll whose
        // user word matches this fd, so an abandoned registration (timeout
        // or cancellation with no event in flight) does not pin the file
        // until ring teardown.  Rides the next batch; never blocks.
        let sqe = sys::IoUringSqe {
            opcode: sys::IORING_OP_POLL_REMOVE,
            fd: -1,
            addr: fd as u64,
            user_data: REMOVE_TOKEN,
            ..Default::default()
        };
        self.push_sqe(&mut self.submit.lock(), sqe);
    }

    fn wait(&self, out: &mut Vec<ReadyEvent>, timeout_ms: i32) -> sys::Result<()> {
        let mut ws = self.wait.lock();
        // Publish "blocked" before flushing, so an arm that misses the
        // flush sees the flag and kicks; an arm that beats the flush is
        // simply included in this pass's batch.
        self.waiting.store(true, Ordering::SeqCst);
        {
            let mut sub = self.submit.lock();
            if ws.rearm_wake {
                self.push_sqe(&mut sub, Self::poll_sqe(self.wake, READ, WAKE_TOKEN));
                ws.rearm_wake = false;
            }
            if timeout_ms >= 0 {
                *ws.timeout = sys::UringTimespec {
                    sec: i64::from(timeout_ms) / 1000,
                    nsec: i64::from(timeout_ms) % 1000 * 1_000_000,
                };
                self.push_sqe(
                    &mut sub,
                    sys::IoUringSqe {
                        opcode: sys::IORING_OP_TIMEOUT,
                        fd: -1,
                        addr: std::ptr::from_ref::<sys::UringTimespec>(&*ws.timeout) as u64,
                        len: 1,
                        user_data: TIMEOUT_TOKEN,
                        ..Default::default()
                    },
                );
            }
        }
        let to_submit = self.flush_overflow();
        // One syscall submits the whole batch and blocks for completions.
        let entered = self.enter(to_submit, 1, sys::IORING_ENTER_GETEVENTS);
        self.waiting.store(false, Ordering::SeqCst);
        match entered {
            // EINTR: spurious wake.  EBUSY: CQ backlog must drain first —
            // which is exactly what the loop below does.
            Ok(_) | Err(sys::Errno(sys::EINTR)) | Err(sys::Errno(sys::EBUSY)) => {}
            Err(e) => return Err(e),
        }
        // Drain the completion ring.
        let khead = self.ring_word(&self.cq_ring, self.cq_off.head);
        let ktail = self.ring_word(&self.cq_ring, self.cq_off.tail);
        let mut head = khead.load(Ordering::Relaxed);
        let tail = ktail.load(Ordering::Acquire);
        while head != tail {
            let idx = head & self.cq_mask;
            // SAFETY: `idx` indexes inside the CQE array of the live CQ
            // mapping, and head != tail (Acquire) proves the kernel
            // published this slot.
            let cqe = unsafe {
                *self.cq_ring.at::<sys::IoUringCqe>(
                    self.cq_off.cqes + idx * size_of::<sys::IoUringCqe>() as u32,
                )
            };
            head = head.wrapping_add(1);
            match cqe.user_data {
                WAKE_TOKEN => {
                    // Drain the counter, then re-arm on the next pass; a
                    // notify landing in between leaves the counter > 0, so
                    // the re-armed poll completes immediately — no lost
                    // kicks.
                    let mut count = [0u8; 8];
                    self.syscalls.fetch_add(1, Ordering::Relaxed);
                    let _ = sys::read(self.wake, &mut count);
                    ws.rearm_wake = true;
                }
                TIMEOUT_TOKEN | REMOVE_TOKEN => {}
                // A forget()-cancelled poll: not readiness, swallow it
                // (epoll's DEL produces no event either).
                _ if cqe.res == -sys::ECANCELED => {}
                token => {
                    let mask = if cqe.res < 0 {
                        ERROR
                    } else {
                        let bits = cqe.res as i16;
                        (if bits & sys::POLLIN != 0 { READ } else { 0 })
                            | (if bits & sys::POLLOUT != 0 { WRITE } else { 0 })
                            | (if bits & (sys::POLLERR | sys::POLLHUP) != 0 {
                                ERROR
                            } else {
                                0
                            })
                    };
                    out.push(ReadyEvent { token, mask });
                }
            }
        }
        khead.store(head, Ordering::Release);
        Ok(())
    }

    fn notify(&self) {
        self.syscalls.fetch_add(1, Ordering::Relaxed);
        let _ = sys::write(self.wake, &1u64.to_ne_bytes());
    }

    fn syscalls(&self) -> u64 {
        self.syscalls.load(Ordering::Relaxed)
    }
}

impl Drop for UringReactor {
    fn drop(&mut self) {
        let _ = sys::close(self.wake);
        let _ = sys::close(self.ring);
    }
}

/// Whether this kernel can create an io_uring (the probe behind
/// [`IoBackend::Auto`](crate::reactor::IoBackend) and the test matrix's
/// graceful skip).
pub fn uring_supported() -> bool {
    UringReactor::new().is_ok()
}

#[cfg(all(test, not(sting_check)))]
mod tests {
    use super::*;

    /// CI probe, not a test: `ci.sh io` runs it with `--ignored` to decide
    /// whether the `STING_IO_BACKEND=uring` leg can run at all.  Unlike the
    /// real tests below it *fails* (rather than skips) on kernels without
    /// io_uring — that failure is the probe's "no" answer.
    #[test]
    #[ignore = "kernel-support probe for ci.sh, not a test"]
    fn uring_supported_probe() {
        assert!(uring_supported(), "io_uring unavailable on this kernel");
    }

    /// Mirrors `epoll_reactor_round_trip`: arm, no premature event, real
    /// readiness delivers the token, notify interrupts an idle wait.
    #[test]
    fn uring_reactor_round_trip() {
        let Ok(reactor) = UringReactor::new() else {
            eprintln!("skipping: io_uring unavailable on this kernel");
            return;
        };
        let (a, b) = sys::socketpair_stream().unwrap();
        reactor.arm(b, READ, 42).unwrap();
        let mut out = Vec::new();
        reactor.wait(&mut out, 0).unwrap();
        assert!(out.is_empty());
        sys::write(a, b"hi").unwrap();
        reactor.wait(&mut out, 1000).unwrap();
        assert_eq!(
            out,
            vec![ReadyEvent {
                token: 42,
                mask: READ,
            }]
        );
        // One-shot: the poll is consumed; an idle wait sees nothing even
        // though the data is still unread.
        out.clear();
        reactor.wait(&mut out, 0).unwrap();
        assert!(out.is_empty());
        // notify() interrupts a wait with no fd events.
        reactor.notify();
        reactor.wait(&mut out, 1000).unwrap();
        assert!(out.is_empty());
        for fd in [a, b] {
            let _ = sys::close(fd);
        }
    }

    /// More arms than SQ slots in one batch: the overflow queue must carry
    /// the excess and the next wait pass must deliver every token.
    #[test]
    fn uring_overflow_queue_survives_a_burst() {
        let Ok(reactor) = UringReactor::new() else {
            eprintln!("skipping: io_uring unavailable on this kernel");
            return;
        };
        let pairs: Vec<_> = (0..8).map(|_| sys::socketpair_stream().unwrap()).collect();
        // 40 arms per fd on 8 fds = 320 SQEs > the 256-slot ring.
        for (_, b) in &pairs {
            for _ in 0..40 {
                reactor.arm(*b, READ, *b as u64).unwrap();
            }
        }
        for (a, _) in &pairs {
            sys::write(*a, b"x").unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while seen.len() < pairs.len() && std::time::Instant::now() < deadline {
            out.clear();
            reactor.wait(&mut out, 100).unwrap();
            for ev in &out {
                assert_ne!(ev.mask & (READ | ERROR), 0);
                seen.insert(ev.token);
            }
        }
        assert_eq!(seen.len(), pairs.len(), "every armed fd must report in");
        for (a, b) in pairs {
            let _ = sys::close(a);
            let _ = sys::close(b);
        }
    }

    /// forget() cancels an outstanding poll: after the cancel, readiness
    /// on the fd produces no event.  Cancellation matches on the poll's
    /// user word, so this relies on the driver convention token == fd —
    /// same as epoll's DEL-by-fd.
    #[test]
    fn uring_forget_cancels_outstanding_poll() {
        let Ok(reactor) = UringReactor::new() else {
            eprintln!("skipping: io_uring unavailable on this kernel");
            return;
        };
        let (a, b) = sys::socketpair_stream().unwrap();
        reactor.arm(b, READ, b as u64).unwrap();
        let mut out = Vec::new();
        reactor.wait(&mut out, 0).unwrap(); // submit the poll
        assert!(out.is_empty());
        reactor.forget(b);
        reactor.wait(&mut out, 0).unwrap(); // submit the cancel
        sys::write(a, b"late").unwrap();
        reactor.wait(&mut out, 50).unwrap();
        assert!(out.is_empty(), "cancelled poll must not fire: {out:?}");
        for fd in [a, b] {
            let _ = sys::close(fd);
        }
    }
}
