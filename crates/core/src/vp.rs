//! Virtual processors.
//!
//! A [`Vp`] is the paper's first-class virtual processor: it is closed over
//! a thread controller (the `run_slice` state machine,
//! identical for all VPs) and a [`PolicyManager`] (replaceable per VP).
//! VPs also own the TCB/stack recycling pool, so thread dynamic state is
//! "cached on VPs and recycled for immediate reuse".
//!
//! VPs are multiplexed on physical processors
//! ([`crate::machine::PhysicalMachine`] worker OS threads) the same way
//! threads are multiplexed on VPs.
//!
//! ## The two-tier ready queue
//!
//! The VP's ready queue is served by one of two tiers, chosen at
//! construction from [`PolicyManager::queue_kind`]:
//!
//! * **Deque tier** (FIFO/LIFO *and* priority/deadline policies): a
//!   lock-free banded [`MultiDeque`] the owning worker pushes and pops
//!   without locks, plus a [`BandedInjector`] for submissions from other
//!   threads.  Items are banded once at enqueue time by the policy's
//!   [`BandMap`](crate::pm::BandMap); pop and steal serve the highest
//!   non-empty band first (one atomic bitmask read), FIFO or LIFO within
//!   a band.  Idle sibling VPs steal from a band's cold end with one CAS
//!   — the paper's §3.3 "lock-free queue of evaluating threads".  The
//!   policy manager is still consulted for placement (`choose_vp`) and
//!   the idle hook (`vp_idle`); it just no longer sees per-item traffic.
//! * **Policy tier** (global queues, custom policies, or any policy built
//!   with `.locked(true)`): every operation goes through the policy
//!   manager under the VP's policy lock — the fully general path, and the
//!   pre-deque behaviour.
//!
//! See DESIGN.md, "Scheduler fast path", for the memory-ordering argument
//! and the paper-operation-to-tier mapping.

use crate::counters::Counters;
use crate::deque::{BandedInjector, MultiDeque, Steal};
use crate::pm::{DequeCaps, EnqueueState, PolicyManager, QueueKind, RunItem};
use crate::tc;
use crate::tcb::{Disposition, Tcb, TcbShared, ThreadFiber, Wakeup};
use crate::thread::{Thread, TryThunk};
use crate::tls;
use crate::vm::Vm;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use sting_context::fiber::FiberResult;
use sting_context::{Fiber, StackPool};

/// The lock-free tier of a VP's ready queue (see DESIGN.md, "Scheduler
/// fast path").  Present iff the VP's policy opted in via
/// [`PolicyManager::queue_kind`].
///
/// The [`MultiDeque`] is owner-operated: only the worker driving this VP
/// (the holder of `owner`) pushes and pops it.  Every other thread — host
/// forks, cross-VP wake-ups, the timekeeper — submits through the
/// [`BandedInjector`]; the owner folds the injector into the deque at
/// each dequeue, which restores arrival order within each band and makes
/// the items stealable.  An item's band is computed exactly once, at
/// submission, from the policy's [`BandMap`](crate::pm::BandMap) — the
/// same moment the locked tier's heap computes its sort key.
///
/// Policies that declared [`BandMap::Single`](crate::pm::BandMap) bypass
/// the banded machinery entirely: every operation runs on the band-0
/// [`Deque`](crate::deque::Deque) via [`MultiDeque::band0`], so FIFO/LIFO
/// queues never read a priority or touch the occupancy word.
struct FastQueue {
    caps: DequeCaps,
    deque: MultiDeque<RunItem>,
    injector: BandedInjector<RunItem>,
    /// Slice-scoped owner role.  The machine drives each VP from exactly
    /// one worker (index modulo processor count), but `PhysicalMachine::attach`
    /// is public, so two machines *can* be pointed at one VM; the guard
    /// downgrades that misconfiguration from a correctness hazard to a
    /// skipped slice.
    owner: AtomicBool,
}

impl FastQueue {
    fn new(caps: DequeCaps) -> FastQueue {
        FastQueue {
            caps,
            deque: MultiDeque::new(),
            injector: BandedInjector::new(),
            owner: AtomicBool::new(false),
        }
    }

    /// Whether the policy declared a single band, in which case every
    /// queue operation bypasses the occupancy word and runs on the plain
    /// band-0 Chase–Lev deque — byte for byte the pre-banded fast path.
    /// A single-band policy pays nothing for the bands it does not use.
    fn single(&self) -> bool {
        matches!(self.caps.bands, crate::pm::BandMap::Single)
    }

    /// The band this item dispatches from, per the policy's declared map.
    /// Single-band policies (FIFO/LIFO) never read the thread's priority.
    fn band_of(&self, item: &RunItem) -> usize {
        match self.caps.bands {
            crate::pm::BandMap::Single => 0,
            map => map.band(item.priority()),
        }
    }

    /// Owner-side push.  Fresh threads are tagged so thieves of a
    /// no-TCB-migration policy can decline parked items without claiming
    /// them (see [`MultiDeque::steal`]).
    fn push(&self, item: RunItem) {
        let fresh = item.is_fresh();
        if self.single() {
            self.deque.band0().push_tagged(item, fresh);
        } else {
            let band = self.caps.bands.band(item.priority());
            self.deque.push_tagged(band, item, fresh);
        }
    }

    /// Owner-side dequeue: fold in remote submissions, then take from the
    /// highest non-empty band, at the end the policy's discipline
    /// dictates.
    fn pop(&self) -> Option<RunItem> {
        if self.single() {
            for (_, item) in self.injector.drain() {
                let fresh = item.is_fresh();
                self.deque.band0().push_tagged(item, fresh);
            }
            if self.caps.fifo {
                self.deque.band0().steal_retrying()
            } else {
                self.deque.band0().pop()
            }
        } else {
            for (band, item) in self.injector.drain() {
                let fresh = item.is_fresh();
                self.deque.push_tagged(band, item, fresh);
            }
            self.deque.pop(self.caps.fifo)
        }
    }

    /// Thief-side steal, dispatching to the band-aware scan or the plain
    /// band-0 deque per the policy's declared band map.
    fn steal(&self, tagged_only: bool) -> Steal<RunItem> {
        if self.single() {
            if tagged_only {
                self.deque.band0().steal_tagged()
            } else {
                self.deque.band0().steal()
            }
        } else {
            self.deque.steal(tagged_only)
        }
    }

    /// [`FastQueue::steal`], retried until it yields an item or observes
    /// the queue empty.
    fn steal_retrying(&self) -> Option<RunItem> {
        if self.single() {
            self.deque.band0().steal_retrying()
        } else {
            self.deque.steal_retrying(false)
        }
    }
}

/// Holds the owner role of a [`FastQueue`] for the duration of one slice.
struct OwnerGuard<'a>(&'a FastQueue);

impl<'a> OwnerGuard<'a> {
    fn acquire(fq: &'a FastQueue) -> Option<OwnerGuard<'a>> {
        fq.owner
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .ok()?;
        Some(OwnerGuard(fq))
    }
}

impl Drop for OwnerGuard<'_> {
    fn drop(&mut self) {
        self.0.owner.store(false, Ordering::Release);
    }
}

/// A first-class virtual processor.
pub struct Vp {
    index: usize,
    vm: Weak<Vm>,
    pub(crate) pm: Mutex<Box<dyn PolicyManager>>,
    /// Lock-free ready queue; `None` for policies on the locked tier.
    fast: Option<FastQueue>,
    /// Set by the machine's timekeeper each preemption tick; polled by the
    /// running thread at checkpoints.
    pub(crate) preempt_flag: AtomicBool,
    stack_pool: Mutex<StackPool>,
}

impl std::fmt::Debug for Vp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vp")
            .field("index", &self.index)
            .field("policy", &self.policy_name())
            .finish()
    }
}

impl Vp {
    pub(crate) fn new(
        index: usize,
        vm: Weak<Vm>,
        pm: Box<dyn PolicyManager>,
        stack_size: usize,
        pool_capacity: usize,
    ) -> Vp {
        let fast = match pm.queue_kind() {
            QueueKind::Deque(caps) => Some(FastQueue::new(caps)),
            QueueKind::Policy => None,
        };
        Vp {
            index,
            vm,
            pm: Mutex::new(pm),
            fast,
            preempt_flag: AtomicBool::new(false),
            stack_pool: Mutex::new(StackPool::new(stack_size, pool_capacity)),
        }
    }

    /// This VP's index within its virtual machine (VPs are enumerable, so
    /// programs can map work onto specific processors).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The owning virtual machine.
    ///
    /// # Panics
    ///
    /// Panics if the machine has been dropped.
    pub fn vm(&self) -> Arc<Vm> {
        self.vm.upgrade().expect("virtual machine dropped")
    }

    pub(crate) fn vm_weak(&self) -> &Weak<Vm> {
        &self.vm
    }

    /// Name of the installed scheduling policy.
    pub fn policy_name(&self) -> &'static str {
        self.pm.lock().name()
    }

    /// Number of items in this VP's ready set.
    pub fn queue_len(&self) -> usize {
        match &self.fast {
            Some(fq) => fq.deque.len() + fq.injector.len(),
            None => self.pm.lock().len(),
        }
    }

    /// Whether this VP's ready queue is served by the lock-free deque tier
    /// (see [`PolicyManager::queue_kind`]) rather than the locked policy
    /// path.
    pub fn lock_free_queue(&self) -> bool {
        self.fast.is_some()
    }

    /// This VP's stack-pool statistics: `(stacks handed out, hand-outs
    /// satisfied from the recycling cache)`.  The second component is the
    /// pool's own ground truth for the VM-level `stacks_recycled` counter.
    pub fn stack_pool_stats(&self) -> (u64, u64) {
        self.stack_pool.lock().stats()
    }

    /// Victim side of thread migration: surrenders an item to `thief`, or
    /// declines.  Returns `None` on contention, when the policy declines,
    /// or when asked to migrate to itself.
    ///
    /// On the deque tier this is one lock-free [`MultiDeque::steal`] from
    /// the cold (oldest) end of the highest non-empty band — no lock is
    /// taken on the victim at all; a lost CAS race counts as contention.
    /// When the policy forbids TCB migration, a parked item at a band's
    /// top is declined *without claiming it*, and the scan falls through
    /// to lower bands.  On the locked tier the policy's
    /// [`PolicyManager::offer_migration`] is asked under `try_lock`, so
    /// concurrent idle VPs never deadlock on each other's policy locks.
    ///
    /// On success the surrendered thread's home VP is re-pointed at the
    /// thief — it has irrevocably left this VP's queue, and any wake-up
    /// racing with the hand-off should target where it is about to run.
    /// The migrations counter is bumped only at that commit point, never
    /// for declined or self-directed offers.
    pub fn try_offer_migration(self: &Arc<Vp>, thief: &Vp) -> Option<RunItem> {
        if self.index == thief.index() {
            return None;
        }
        let vm = self.vm.upgrade();
        // Steal latency covers the whole successful offer (queue CAS or
        // policy consultation + hand-off bookkeeping), timed on the thief.
        let steal_t0 = vm
            .as_ref()
            .and_then(|vm| vm.metrics().steal_begin(thief.index()));
        let item = if let Some(fq) = &self.fast {
            if !fq.caps.steal {
                return None;
            }
            // When TCBs must stay home, only a fresh-tagged top item may
            // be taken; the tag check needs no claim, so declining a
            // parked item leaves the victim's queue untouched (and the
            // scan moves on to the next lower band).
            match fq.steal(!fq.caps.steal_tcbs) {
                Steal::Success(item) => item,
                Steal::Empty | Steal::Retry => {
                    // The deque gave nothing — but remote submissions may
                    // be backed up in the injector, and the owner could be
                    // stuck in a long quantum, never folding them in.  The
                    // locked tier could always surrender such work, so
                    // rescue it here: take the highest-band eligible item
                    // (oldest within its band — the same order the owner
                    // would dispatch), re-inject the rest in one CAS.
                    let backlog = fq.injector.drain();
                    if backlog.is_empty() {
                        return None;
                    }
                    // First occurrence at a strictly-higher band wins, so
                    // ties keep arrival (FIFO-within-band) order.  The
                    // eligibility check is band-aware by construction: a
                    // high-band parked TCB never loses to a low-band fresh
                    // thread when the policy allows TCB migration.
                    let mut best: Option<(usize, usize)> = None; // (index, band)
                    for (i, (band, it)) in backlog.iter().enumerate() {
                        if (fq.caps.steal_tcbs || it.is_fresh())
                            && best.is_none_or(|(_, b)| *band > b)
                        {
                            best = Some((i, *band));
                        }
                    }
                    let chosen_at = best.map(|(i, _)| i);
                    let mut chosen = None;
                    let mut rest = Vec::with_capacity(backlog.len());
                    for (i, entry) in backlog.into_iter().enumerate() {
                        if Some(i) == chosen_at {
                            chosen = Some(entry.1);
                        } else {
                            rest.push(entry);
                        }
                    }
                    if !rest.is_empty() {
                        fq.injector.push_batch(rest);
                        // The original submission signals were consumed;
                        // re-arm so the returned work is not stranded.
                        if let Some(vm) = &vm {
                            vm.signal_work();
                        }
                    }
                    chosen?
                }
            }
        } else {
            let mut pm = self.pm.try_lock()?;
            pm.offer_migration(self)?
        };
        let thread = match &item {
            RunItem::Fresh(t) => t.clone(),
            RunItem::Parked(tcb) => tcb.thread().clone(),
        };
        thread.home_vp.store(thief.index(), Ordering::Relaxed);
        if let Some(vm) = vm {
            if let Some(t0) = steal_t0 {
                vm.metrics().note_steal(thief.index(), t0);
            }
            Counters::bump(&vm.counters().migrations);
            crate::trace_event!(
                vm.tracer(),
                Some(thief.index()),
                crate::trace::EventKind::Migrate,
                thread.id().0,
                self.index,
                thief.index()
            );
        }
        Some(item)
    }

    /// Enqueues `item` on this VP's ready queue and signals the machine.
    ///
    /// Deque tier: if the calling OS thread is this VP's driving worker
    /// (detected via the scheduler TLS — `Arc` identity, since VP indices
    /// collide across VMs), the item goes straight onto the deque; any
    /// other thread submits through the injector.  Locked tier: the
    /// policy's [`PolicyManager::enqueue_thread`] under the policy lock.
    pub(crate) fn enqueue(self: &Arc<Vp>, item: RunItem, state: EnqueueState) {
        let owner = self.fast.is_some() && tls::is_current_vp(self);
        self.enqueue_from(item, state, owner);
    }

    /// [`Vp::enqueue`] with the owner role already decided.  `owner` may
    /// only be `true` on the worker currently holding this VP's
    /// [`OwnerGuard`] (the TC run loop passes it for re-enqueues that
    /// happen after the TLS slot is cleared).
    fn enqueue_from(self: &Arc<Vp>, item: RunItem, state: EnqueueState, owner: bool) {
        let thread_id = match &item {
            RunItem::Fresh(t) => t.id().0,
            RunItem::Parked(tcb) => tcb.thread().id().0,
        };
        let vm = self.vm.upgrade();
        // Trace the enqueue *before* the item becomes visible: the instant
        // the push lands, a thief may steal it and record its Migrate, and
        // the trace audit (see [`crate::audit`]) relies on every steal
        // being preceded by its enqueue in timestamp order.
        if let Some(vm) = &vm {
            let thread = match &item {
                RunItem::Fresh(t) => t.as_ref(),
                RunItem::Parked(tcb) => tcb.thread().as_ref(),
            };
            vm.metrics().stamp_enqueue(self.index, thread);
            crate::trace_event!(
                vm.tracer(),
                tls::current().map(|c| c.vp.index()),
                crate::trace::EventKind::Enqueue,
                thread_id,
                state as u32,
                self.index
            );
        }
        let owner_push = if let Some(fq) = &self.fast {
            if owner {
                fq.push(item);
            } else {
                let band = fq.band_of(&item);
                fq.injector.push(band, item);
            }
            owner
        } else {
            let mut pm = self.pm.lock();
            pm.enqueue_thread(self, item, state);
            false
        };
        if let Some(vm) = vm {
            // An owner push needs no wake-up: the pusher *is* the consumer
            // and is mid-slice.  Sibling thieves discover the backlog at
            // their idle-timeout tick.  Everything else may target a
            // sleeping worker and must signal.
            if !owner_push {
                vm.signal_work();
            }
        }
    }

    /// Enqueues many items at once — the batched-wake fast path used by
    /// [`WaitList::wake_all`](crate::wait::WaitList) sweeps (broadcast,
    /// barrier release).  Deque tier: all items are published with a
    /// *single* injector CAS ([`BandedInjector::push_batch`]), preserving
    /// arrival order within each band; locked tier: one policy-lock
    /// acquisition covers the whole batch.  Either way the machine is
    /// signalled once, not `n` times.
    ///
    /// Every item's Enqueue is traced *before* the batch becomes visible,
    /// for the same audit-ordering reason as [`Vp::enqueue_from`].
    pub(crate) fn enqueue_batch(self: &Arc<Vp>, items: Vec<RunItem>, state: EnqueueState) {
        if items.is_empty() {
            return;
        }
        let vm = self.vm.upgrade();
        if let Some(vm) = &vm {
            for item in &items {
                let thread = item.thread();
                vm.metrics().stamp_enqueue(self.index, thread);
                crate::trace_event!(
                    vm.tracer(),
                    tls::current().map(|c| c.vp.index()),
                    crate::trace::EventKind::Enqueue,
                    thread.id().0,
                    state as u32,
                    self.index
                );
            }
        }
        if let Some(fq) = &self.fast {
            fq.injector
                .push_batch(items.into_iter().map(|it| (fq.band_of(&it), it)));
        } else {
            let mut pm = self.pm.lock();
            for item in items {
                pm.enqueue_thread(self, item, state);
            }
        }
        if let Some(vm) = vm {
            vm.signal_work();
        }
    }

    /// Returns the next item to run, consulting the fast tier first and
    /// falling back to the policy's idle hook (work migration).
    fn next_item(self: &Arc<Vp>) -> Option<RunItem> {
        if let Some(fq) = &self.fast {
            if let Some(item) = fq.pop() {
                return Some(item);
            }
            // Empty: the *policy* still decides whether and where to go
            // raiding (`pm-vp-idle`); the lock is uncontended here because
            // routine traffic no longer takes it.
            self.pm.lock().vp_idle(self)
        } else {
            let mut pm = self.pm.lock();
            pm.get_next_thread(self).or_else(|| pm.vp_idle(self))
        }
    }

    /// Runs up to `budget` scheduling decisions on this VP.  Returns `true`
    /// if any thread was run.  Called by physical-processor workers.
    pub(crate) fn run_slice(self: &Arc<Vp>, budget: usize) -> bool {
        let Some(vm) = self.vm.upgrade() else {
            return false;
        };
        // Claim the deque-owner role for the whole slice; if another
        // worker somehow drives this VP right now, skip the slice.
        let _owner = match &self.fast {
            Some(fq) => match OwnerGuard::acquire(fq) {
                Some(g) => Some(g),
                None => return false,
            },
            None => None,
        };
        // Cross-shard fabric: drain inbound handoffs/calls once per slice
        // and, when the slice ends empty-handed, ask a sibling shard for
        // work.  Standalone VMs pay one acquire load for the `None`.
        let fabric = vm.fabric().cloned();
        if let Some(fabric) = &fabric {
            fabric.pump(&vm, self);
        }
        let mut ran = false;
        for _ in 0..budget {
            if vm.is_stopped() {
                break;
            }
            let Some(item) = self.next_item() else { break };
            match item {
                RunItem::Fresh(thread) => {
                    // Revalidate: the thread may have been stolen or
                    // terminated while sitting in the ready queue.
                    if let Some(thunk) = thread.claim(crate::state::ThreadState::Evaluating) {
                        vm.metrics().note_dispatch(self.index, &thread);
                        crate::trace_event!(
                            vm.tracer(),
                            Some(self.index),
                            crate::trace::EventKind::Dispatch,
                            thread.id().0,
                            0
                        );
                        let tcb = self.make_tcb(&vm, thread, thunk);
                        self.run_tcb(&vm, tcb);
                        ran = true;
                    }
                }
                RunItem::Parked(tcb) => {
                    // A determined thread's TCB is recycled at its final
                    // switch and must never reappear in a ready queue; a
                    // dispatch here would resume a dead fiber.
                    debug_assert!(
                        !tcb.thread().is_determined(),
                        "dispatching a determined thread's TCB (thread {:?})",
                        tcb.thread().id()
                    );
                    vm.metrics().note_dispatch(self.index, tcb.thread());
                    crate::trace_event!(
                        vm.tracer(),
                        Some(self.index),
                        crate::trace::EventKind::Dispatch,
                        tcb.thread().id().0,
                        1
                    );
                    self.run_tcb(&vm, tcb);
                    ran = true;
                }
            }
        }
        if !ran {
            if let Some(fabric) = &fabric {
                fabric.request_work(&vm);
            }
        }
        ran
    }

    /// Pops one migratable item from this VP's own ready queue for a
    /// cross-shard handoff (see [`crate::fleet`]).  Uses the thief-side
    /// steal protocol on the VP's own deque — claiming from the cold end,
    /// exactly the item an in-shard thief would take, so the owner/thief
    /// CASes arbitrate correctly even though the caller is the owning
    /// worker.  Locked-tier VPs never surrender.
    pub(crate) fn surrender_for_fleet(&self) -> Option<RunItem> {
        let fq = self.fast.as_ref()?;
        if !fq.caps.steal {
            return None;
        }
        match fq.steal(!fq.caps.steal_tcbs) {
            Steal::Success(item) => Some(item),
            Steal::Empty | Steal::Retry => None,
        }
    }

    /// Empties both queue tiers, returning everything that was ready.
    /// Used by [`Vm::drain`](crate::vm::Vm) at shutdown, after the machine
    /// has quiesced — so no owner or thieves race us (and the deque is
    /// emptied thief-side, which is safe from any thread regardless).
    pub(crate) fn drain_ready(&self) -> Vec<RunItem> {
        let mut out = Vec::new();
        if let Some(fq) = &self.fast {
            out.extend(fq.injector.drain().into_iter().map(|(_, it)| it));
            while let Some(item) = fq.steal_retrying() {
                out.push(item);
            }
        }
        let mut pm = self.pm.lock();
        while let Some(item) = pm.get_next_thread(self) {
            out.push(item);
        }
        out
    }

    /// Allocates a TCB (stack from the recycling pool + fiber) for a
    /// freshly claimed thread.
    fn make_tcb(self: &Arc<Vp>, vm: &Arc<Vm>, thread: Arc<Thread>, thunk: TryThunk) -> Tcb {
        let stack = {
            let mut pool = self.stack_pool.lock();
            // Count *hand-outs the pool satisfied from its cache*, not pool
            // occupancy before the take: the pool's own hit statistic is
            // the ground truth (see the reconciliation test).
            let recycled_before = pool.stats().1;
            let stack = pool.take();
            if pool.stats().1 > recycled_before {
                Counters::bump(&vm.counters().stacks_recycled);
            }
            stack
        };
        Counters::bump(&vm.counters().tcbs_allocated);
        let shared = TcbShared::new(thread, self.index);
        let shared_in = shared.clone();
        let fiber: ThreadFiber = Fiber::new(stack, move |sus, first: Wakeup| {
            debug_assert_eq!(first, Wakeup::Run);
            shared_in
                .suspender
                .store(sus as *mut _ as usize, Ordering::Release);
            tc::thread_main(thunk)
        });
        Tcb { fiber, shared }
    }

    /// Context-switches into `tcb` and handles its next disposition.
    fn run_tcb(self: &Arc<Vp>, vm: &Arc<Vm>, mut tcb: Tcb) {
        let shared = tcb.shared.clone();
        shared.vp_index.store(self.index, Ordering::Relaxed);
        shared.thread.home_vp.store(self.index, Ordering::Relaxed);
        shared.reset_ticks();
        self.preempt_flag.store(false, Ordering::Relaxed);
        tls::set_current(self.clone(), shared.clone());
        Counters::bump(&vm.counters().context_switches);
        let outcome = tcb.fiber.resume(Wakeup::Run);
        tls::clear_current();
        let thread = shared.thread.clone();
        let disposition_code = match &outcome {
            FiberResult::Yield(Disposition::Yielded { preempted: false }) => 0,
            FiberResult::Yield(Disposition::Yielded { preempted: true }) => 1,
            FiberResult::Yield(Disposition::Blocked) => 2,
            FiberResult::Yield(Disposition::Suspended) => 3,
            FiberResult::Return(_) => 4,
        };
        crate::trace_event!(
            vm.tracer(),
            Some(self.index),
            crate::trace::EventKind::Switch,
            thread.id().0,
            disposition_code
        );
        match outcome {
            FiberResult::Yield(Disposition::Yielded { preempted }) => {
                if preempted {
                    Counters::bump(&vm.counters().preemptions);
                } else {
                    Counters::bump(&vm.counters().yields);
                }
                let state = if preempted {
                    EnqueueState::Preempted
                } else {
                    EnqueueState::Yielded
                };
                // Owner push: run_tcb only runs under this VP's slice (and
                // its OwnerGuard); the TLS slot is already cleared, so the
                // role is passed explicitly.
                self.enqueue_from(RunItem::Parked(tcb), state, true);
            }
            FiberResult::Yield(d @ (Disposition::Blocked | Disposition::Suspended)) => {
                let suspended = d == Disposition::Suspended;
                let requeue: Option<Tcb> = {
                    let mut core = thread.core.lock();
                    if core.wake_pending {
                        // A wake-up raced ahead of the park: skip parking.
                        core.wake_pending = false;
                        Some(tcb)
                    } else {
                        thread.set_state(if suspended {
                            crate::state::ThreadState::Suspended
                        } else {
                            crate::state::ThreadState::Blocked
                        });
                        core.parked = Some(tcb);
                        // Stamp under `core`: the waker takes the same lock
                        // before it can consume the parked TCB, so a
                        // stamped park is always visible to its wake.
                        vm.metrics().stamp_block(self.index, &thread);
                        Counters::bump(if suspended {
                            &vm.counters().suspends
                        } else {
                            &vm.counters().blocks
                        });
                        None
                    }
                };
                if let Some(tcb) = requeue {
                    self.enqueue_from(RunItem::Parked(tcb), EnqueueState::Unblocked, true);
                }
            }
            FiberResult::Return(result) => {
                let stack = tcb.fiber.into_stack();
                self.stack_pool.lock().put(stack);
                thread.complete(result);
            }
        }
    }
}
