//! Virtual processors.
//!
//! A [`Vp`] is the paper's first-class virtual processor: it is closed over
//! a thread controller (the `run_slice` state machine,
//! identical for all VPs) and a [`PolicyManager`] (replaceable per VP).
//! VPs also own the TCB/stack recycling pool, so thread dynamic state is
//! "cached on VPs and recycled for immediate reuse".
//!
//! VPs are multiplexed on physical processors
//! ([`crate::machine::PhysicalMachine`] worker OS threads) the same way
//! threads are multiplexed on VPs.

use crate::counters::Counters;
use crate::pm::{EnqueueState, PolicyManager, RunItem};
use crate::tc;
use crate::tcb::{Disposition, Tcb, TcbShared, ThreadFiber, Wakeup};
use crate::thread::{Thread, TryThunk};
use crate::tls;
use crate::vm::Vm;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use sting_context::fiber::FiberResult;
use sting_context::{Fiber, StackPool};

/// A first-class virtual processor.
pub struct Vp {
    index: usize,
    vm: Weak<Vm>,
    pub(crate) pm: Mutex<Box<dyn PolicyManager>>,
    /// Set by the machine's timekeeper each preemption tick; polled by the
    /// running thread at checkpoints.
    pub(crate) preempt_flag: AtomicBool,
    stack_pool: Mutex<StackPool>,
}

impl std::fmt::Debug for Vp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vp")
            .field("index", &self.index)
            .field("policy", &self.policy_name())
            .finish()
    }
}

impl Vp {
    pub(crate) fn new(
        index: usize,
        vm: Weak<Vm>,
        pm: Box<dyn PolicyManager>,
        stack_size: usize,
        pool_capacity: usize,
    ) -> Vp {
        Vp {
            index,
            vm,
            pm: Mutex::new(pm),
            preempt_flag: AtomicBool::new(false),
            stack_pool: Mutex::new(StackPool::new(stack_size, pool_capacity)),
        }
    }

    /// This VP's index within its virtual machine (VPs are enumerable, so
    /// programs can map work onto specific processors).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The owning virtual machine.
    ///
    /// # Panics
    ///
    /// Panics if the machine has been dropped.
    pub fn vm(&self) -> Arc<Vm> {
        self.vm.upgrade().expect("virtual machine dropped")
    }

    pub(crate) fn vm_weak(&self) -> &Weak<Vm> {
        &self.vm
    }

    /// Name of the installed scheduling policy.
    pub fn policy_name(&self) -> &'static str {
        self.pm.lock().name()
    }

    /// Number of items in this VP's ready set.
    pub fn queue_len(&self) -> usize {
        self.pm.lock().len()
    }

    /// Victim side of thread migration: asks this VP's policy to surrender
    /// an item to `thief`.  Uses `try_lock`, so concurrent idle VPs never
    /// deadlock on each other's policy locks; returns `None` on contention,
    /// when the policy declines, or when asked to migrate to itself.
    ///
    /// On success the surrendered thread's home VP is re-pointed at the
    /// thief — it has irrevocably left this VP's queue, and any wake-up
    /// racing with the hand-off should target where it is about to run.
    /// The migrations counter is bumped only at that commit point, never
    /// for declined or self-directed offers.
    pub fn try_offer_migration(self: &Arc<Vp>, thief: &Vp) -> Option<RunItem> {
        if self.index == thief.index() {
            return None;
        }
        let item = {
            let mut pm = self.pm.try_lock()?;
            pm.offer_migration(self)?
        };
        let thread = match &item {
            RunItem::Fresh(t) => t.clone(),
            RunItem::Parked(tcb) => tcb.thread().clone(),
        };
        thread.home_vp.store(thief.index(), Ordering::Relaxed);
        if let Some(vm) = self.vm.upgrade() {
            Counters::bump(&vm.counters().migrations);
            crate::trace_event!(
                vm.tracer(),
                Some(thief.index()),
                crate::trace::EventKind::Migrate,
                thread.id().0,
                self.index,
                thief.index()
            );
        }
        Some(item)
    }

    /// Enqueues `item` on this VP's policy manager and signals the machine.
    pub(crate) fn enqueue(self: &Arc<Vp>, item: RunItem, state: EnqueueState) {
        let thread_id = match &item {
            RunItem::Fresh(t) => t.id().0,
            RunItem::Parked(tcb) => tcb.thread().id().0,
        };
        {
            let mut pm = self.pm.lock();
            pm.enqueue_thread(self, item, state);
        }
        if let Some(vm) = self.vm.upgrade() {
            crate::trace_event!(
                vm.tracer(),
                tls::current().map(|c| c.vp.index()),
                crate::trace::EventKind::Enqueue,
                thread_id,
                state as u32,
                self.index
            );
            vm.signal_work();
        }
    }

    /// Runs up to `budget` scheduling decisions on this VP.  Returns `true`
    /// if any thread was run.  Called by physical-processor workers.
    pub(crate) fn run_slice(self: &Arc<Vp>, budget: usize) -> bool {
        let Some(vm) = self.vm.upgrade() else {
            return false;
        };
        let mut ran = false;
        for _ in 0..budget {
            if vm.is_stopped() {
                break;
            }
            let item = {
                let mut pm = self.pm.lock();
                pm.get_next_thread(self).or_else(|| pm.vp_idle(self))
            };
            let Some(item) = item else { break };
            match item {
                RunItem::Fresh(thread) => {
                    // Revalidate: the thread may have been stolen or
                    // terminated while sitting in the ready queue.
                    if let Some(thunk) = thread.claim(crate::state::ThreadState::Evaluating) {
                        crate::trace_event!(
                            vm.tracer(),
                            Some(self.index),
                            crate::trace::EventKind::Dispatch,
                            thread.id().0,
                            0
                        );
                        let tcb = self.make_tcb(&vm, thread, thunk);
                        self.run_tcb(&vm, tcb);
                        ran = true;
                    }
                }
                RunItem::Parked(tcb) => {
                    crate::trace_event!(
                        vm.tracer(),
                        Some(self.index),
                        crate::trace::EventKind::Dispatch,
                        tcb.thread().id().0,
                        1
                    );
                    self.run_tcb(&vm, tcb);
                    ran = true;
                }
            }
        }
        ran
    }

    /// Allocates a TCB (stack from the recycling pool + fiber) for a
    /// freshly claimed thread.
    fn make_tcb(self: &Arc<Vp>, vm: &Arc<Vm>, thread: Arc<Thread>, thunk: TryThunk) -> Tcb {
        let stack = {
            let mut pool = self.stack_pool.lock();
            let reused = pool.cached() > 0;
            if reused {
                Counters::bump(&vm.counters().stacks_recycled);
            }
            pool.take()
        };
        Counters::bump(&vm.counters().tcbs_allocated);
        let shared = TcbShared::new(thread, self.index);
        let shared_in = shared.clone();
        let fiber: ThreadFiber = Fiber::new(stack, move |sus, first: Wakeup| {
            debug_assert_eq!(first, Wakeup::Run);
            shared_in
                .suspender
                .store(sus as *mut _ as usize, Ordering::Release);
            tc::thread_main(thunk)
        });
        Tcb { fiber, shared }
    }

    /// Context-switches into `tcb` and handles its next disposition.
    fn run_tcb(self: &Arc<Vp>, vm: &Arc<Vm>, mut tcb: Tcb) {
        let shared = tcb.shared.clone();
        shared.vp_index.store(self.index, Ordering::Relaxed);
        shared.thread.home_vp.store(self.index, Ordering::Relaxed);
        shared.reset_ticks();
        self.preempt_flag.store(false, Ordering::Relaxed);
        tls::set_current(self.clone(), shared.clone());
        Counters::bump(&vm.counters().context_switches);
        let outcome = tcb.fiber.resume(Wakeup::Run);
        tls::clear_current();
        let thread = shared.thread.clone();
        let disposition_code = match &outcome {
            FiberResult::Yield(Disposition::Yielded { preempted: false }) => 0,
            FiberResult::Yield(Disposition::Yielded { preempted: true }) => 1,
            FiberResult::Yield(Disposition::Blocked) => 2,
            FiberResult::Yield(Disposition::Suspended) => 3,
            FiberResult::Return(_) => 4,
        };
        crate::trace_event!(
            vm.tracer(),
            Some(self.index),
            crate::trace::EventKind::Switch,
            thread.id().0,
            disposition_code
        );
        match outcome {
            FiberResult::Yield(Disposition::Yielded { preempted }) => {
                if preempted {
                    Counters::bump(&vm.counters().preemptions);
                } else {
                    Counters::bump(&vm.counters().yields);
                }
                let state = if preempted {
                    EnqueueState::Preempted
                } else {
                    EnqueueState::Yielded
                };
                self.enqueue(RunItem::Parked(tcb), state);
            }
            FiberResult::Yield(d @ (Disposition::Blocked | Disposition::Suspended)) => {
                let suspended = d == Disposition::Suspended;
                let requeue: Option<Tcb> = {
                    let mut core = thread.core.lock();
                    if core.wake_pending {
                        // A wake-up raced ahead of the park: skip parking.
                        core.wake_pending = false;
                        Some(tcb)
                    } else {
                        thread.set_state(if suspended {
                            crate::state::ThreadState::Suspended
                        } else {
                            crate::state::ThreadState::Blocked
                        });
                        core.parked = Some(tcb);
                        Counters::bump(if suspended {
                            &vm.counters().suspends
                        } else {
                            &vm.counters().blocks
                        });
                        None
                    }
                };
                if let Some(tcb) = requeue {
                    self.enqueue(RunItem::Parked(tcb), EnqueueState::Unblocked);
                }
            }
            FiberResult::Return(result) => {
                let stack = tcb.fiber.into_stack();
                self.stack_pool.lock().put(stack);
                thread.complete(result);
            }
        }
    }
}
