//! Thread-local plumbing: which VP and TCB the current OS thread is driving.
//!
//! The VP run loop installs the current VP + TCB before resuming a fiber and
//! clears them when the fiber yields back; thread-controller operations in
//! [`crate::tc`] consult this to find "the current thread".

use crate::tcb::TcbShared;
use crate::vp::Vp;
use std::cell::RefCell;
use std::sync::Arc;

#[derive(Clone)]
pub(crate) struct Current {
    pub(crate) vp: Arc<Vp>,
    pub(crate) shared: Arc<TcbShared>,
}

thread_local! {
    static CURRENT: RefCell<Option<Current>> = const { RefCell::new(None) };
}

/// Installs the current VP/TCB for this OS thread (scheduler side).
pub(crate) fn set_current(vp: Arc<Vp>, shared: Arc<TcbShared>) {
    CURRENT.with(|c| *c.borrow_mut() = Some(Current { vp, shared }));
}

/// Clears the current VP/TCB (scheduler side, after the fiber yields).
pub(crate) fn clear_current() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Snapshot of the current VP/TCB, if the caller runs on a STING thread.
pub(crate) fn current() -> Option<Current> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Whether the calling OS thread is currently driving `vp` (by `Arc`
/// identity — VP indices collide across VMs).  Cheaper than [`current`]:
/// no `Arc` clones on this hot scheduler path.
pub(crate) fn is_current_vp(vp: &std::sync::Arc<Vp>) -> bool {
    CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .is_some_and(|cur| Arc::ptr_eq(&cur.vp, vp))
    })
}

/// Whether the calling OS thread is currently executing a STING thread.
pub(crate) fn on_thread() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}
