//! Policy managers shipped with the substrate.
//!
//! Section 3.3 classifies scheduling policies along four dimensions —
//! *locality* (per-VP vs. global queues), *granularity* (are TCBs and fresh
//! threads distinguished?), *structure* (FIFO / LIFO / priority / realtime)
//! and *serialization* (what is locked).  The two types here cover the
//! whole space the paper discusses:
//!
//! * [`LocalQueue`] — a per-VP queue in any [`QueueOrder`], optionally
//!   migrating (idle VPs pull from siblings; only fresh threads move unless
//!   [`LocalQueue::migrate_tcbs`] is enabled — the paper's example of keeping
//!   the evaluating-thread queue lock-free while the scheduled queue is a
//!   migration target).
//! * [`GlobalQueue`] — one queue shared by every VP of the machine (the
//!   master/slave configuration: workers "rarely block", so the contention
//!   cost buys perfect load sharing).
//!
//! Priority orders double as the realtime structure: with
//! [`QueueOrder::PriorityLow`] and priorities set to deadlines, the queue
//! is earliest-deadline-first.
//!
//! The *serialization* dimension is decided by
//! [`PolicyManager::queue_kind`]: every [`LocalQueue`] order is served by
//! the lock-free [`crate::deque`] tier — FIFO/LIFO on a single band,
//! priority and deadline orders on the banded
//! [`MultiDeque`](crate::deque::MultiDeque) via a
//! [`BandMap`] (opt out with [`LocalQueue::locked`]);
//! [`GlobalQueue`] and custom policies run under the VP's policy lock.
//! See DESIGN.md, "Scheduler fast path".
//!
//! All of these are ordinary implementations of
//! [`crate::pm::PolicyManager`] — applications are free to
//! write their own (see `tests/custom_policy.rs` in the repository).

use crate::pm::{BandMap, DequeCaps, EnqueueState, PolicyManager, QueueKind, RunItem};
use crate::vp::Vp;
use parking_lot::Mutex;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Queue discipline for a policy manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOrder {
    /// First-in first-out (fair; round-robin under preemption).
    Fifo,
    /// Last-in first-out (depth-first; best for tree-structured
    /// result-parallel programs — and it maximizes stealing, §4.1.1).
    Lifo,
    /// Highest [`priority`](crate::thread::Thread::priority) first
    /// (speculative scheduling: favour promising tasks).
    PriorityHigh,
    /// Lowest priority value first (with priority = deadline this is EDF,
    /// the realtime structure).
    PriorityLow,
}

struct Ranked {
    key: i64,
    seq: u64,
    item: RunItem,
}

impl PartialEq for Ranked {
    fn eq(&self, other: &Ranked) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for Ranked {}
impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Ranked) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ranked {
    fn cmp(&self, other: &Ranked) -> std::cmp::Ordering {
        // Max-heap on key, FIFO (lowest seq first) among equals.
        (self.key, std::cmp::Reverse(self.seq)).cmp(&(other.key, std::cmp::Reverse(other.seq)))
    }
}

enum Store {
    Deque(VecDeque<RunItem>),
    Heap(BinaryHeap<Ranked>),
}

impl Store {
    fn new(order: QueueOrder) -> Store {
        match order {
            QueueOrder::Fifo | QueueOrder::Lifo => Store::Deque(VecDeque::new()),
            _ => Store::Heap(BinaryHeap::new()),
        }
    }

    fn len(&self) -> usize {
        match self {
            Store::Deque(d) => d.len(),
            Store::Heap(h) => h.len(),
        }
    }

    fn push(&mut self, order: QueueOrder, seq: u64, item: RunItem) {
        match self {
            Store::Deque(d) => d.push_back(item),
            Store::Heap(h) => {
                let p = i64::from(item.priority());
                let key = match order {
                    QueueOrder::PriorityHigh => p,
                    _ => -p,
                };
                h.push(Ranked { key, seq, item });
            }
        }
    }

    fn pop(&mut self, order: QueueOrder) -> Option<RunItem> {
        match self {
            Store::Deque(d) => match order {
                QueueOrder::Fifo => d.pop_front(),
                _ => d.pop_back(),
            },
            Store::Heap(h) => h.pop().map(|r| r.item),
        }
    }

    /// Removes a migration candidate from the "cold" end: the opposite end
    /// of the owner's pop for deques, the top for heaps.  Only fresh
    /// threads are taken unless `tcbs_ok`.
    fn steal(&mut self, order: QueueOrder, tcbs_ok: bool) -> Option<RunItem> {
        match self {
            Store::Deque(d) => {
                let idx = match order {
                    // Owner pops front; thief scans from the back.
                    QueueOrder::Fifo => (0..d.len()).rev().find(|&i| tcbs_ok || d[i].is_fresh()),
                    // Owner pops back; thief scans from the front.
                    _ => (0..d.len()).find(|&i| tcbs_ok || d[i].is_fresh()),
                }?;
                d.remove(idx)
            }
            Store::Heap(h) => {
                if !tcbs_ok && !h.peek().map(|r| r.item.is_fresh()).unwrap_or(false) {
                    return None;
                }
                h.pop().map(|r| r.item)
            }
        }
    }
}

/// A per-VP ready queue (the *local* locality class).
pub struct LocalQueue {
    order: QueueOrder,
    store: Store,
    seq: u64,
    migrating: bool,
    migrate_tcbs: bool,
    place_round_robin: bool,
    next_place: usize,
    locked: bool,
}

impl std::fmt::Debug for LocalQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalQueue")
            .field("order", &self.order)
            .field("len", &self.store.len())
            .field("migrating", &self.migrating)
            .finish()
    }
}

impl LocalQueue {
    /// Creates a local queue with the given discipline.
    pub fn new(order: QueueOrder) -> LocalQueue {
        LocalQueue {
            order,
            store: Store::new(order),
            seq: 0,
            migrating: false,
            migrate_tcbs: false,
            place_round_robin: false,
            next_place: 0,
            locked: false,
        }
    }

    /// Enables pulling work from sibling VPs when idle, and offering work
    /// to idle siblings.  Also turns on round-robin initial placement.
    pub fn migrating(mut self, yes: bool) -> LocalQueue {
        self.migrating = yes;
        self.place_round_robin = yes;
        self
    }

    /// Allows parked TCBs (evaluating threads) to migrate, not just fresh
    /// threads.  Costs locality; see the policy shape experiment.
    pub fn migrate_tcbs(mut self, yes: bool) -> LocalQueue {
        self.migrate_tcbs = yes;
        self
    }

    /// Forked threads are placed round-robin over the machine's VPs rather
    /// than on the forking VP.
    pub fn place_round_robin(mut self, yes: bool) -> LocalQueue {
        self.place_round_robin = yes;
        self
    }

    /// Forces this queue onto the locked policy tier even when its order
    /// is deque-able (see [`PolicyManager::queue_kind`]).  Useful for A/B
    /// comparison (the steal-throughput shape bench) and for debugging the
    /// fast path against the reference implementation.
    pub fn locked(mut self, yes: bool) -> LocalQueue {
        self.locked = yes;
        self
    }

    /// Boxes the policy for [`VmBuilder::policy`](crate::builder::VmBuilder::policy).
    pub fn boxed(self) -> Box<dyn PolicyManager> {
        Box::new(self)
    }
}

impl PolicyManager for LocalQueue {
    fn get_next_thread(&mut self, _vp: &Vp) -> Option<RunItem> {
        self.store.pop(self.order)
    }

    fn enqueue_thread(&mut self, _vp: &Vp, item: RunItem, _state: EnqueueState) {
        self.seq += 1;
        self.store.push(self.order, self.seq, item);
    }

    fn choose_vp(&mut self, vp: &Vp) -> usize {
        if self.place_round_robin {
            let n = vp.vm().vp_count();
            self.next_place = (self.next_place + 1) % n.max(1);
            self.next_place
        } else {
            vp.index()
        }
    }

    fn vp_idle(&mut self, vp: &Vp) -> Option<RunItem> {
        if !self.migrating {
            return None;
        }
        let vm = vp.vm();
        let me = vp.index();
        let n = vm.vp_count();
        for d in 1..n {
            let victim = &vm.vps()[(me + d) % n];
            if let Some(item) = victim.try_offer_migration(vp) {
                return Some(item);
            }
        }
        None
    }

    fn offer_migration(&mut self, _vp: &Vp) -> Option<RunItem> {
        if !self.migrating {
            return None;
        }
        self.store.steal(self.order, self.migrate_tcbs)
    }

    fn queue_kind(&self) -> QueueKind {
        // `.locked(true)` is the explicit opt-out for A/B comparison.
        if self.locked {
            return QueueKind::Policy;
        }
        QueueKind::Deque(DequeCaps {
            // Priority orders dispatch FIFO within a band, matching the
            // heap's FIFO-among-equals tie-break.
            fifo: self.order != QueueOrder::Lifo,
            steal: self.migrating,
            steal_tcbs: self.migrate_tcbs,
            bands: match self.order {
                QueueOrder::Fifo | QueueOrder::Lifo => BandMap::Single,
                QueueOrder::PriorityHigh => BandMap::PriorityHigh,
                QueueOrder::PriorityLow => BandMap::Deadline,
            },
        })
    }

    fn len(&self) -> usize {
        self.store.len()
    }

    fn name(&self) -> &'static str {
        match (self.order, self.migrating) {
            (QueueOrder::Fifo, false) => "local-fifo",
            (QueueOrder::Fifo, true) => "migrating-fifo",
            (QueueOrder::Lifo, false) => "local-lifo",
            (QueueOrder::Lifo, true) => "migrating-lifo",
            (QueueOrder::PriorityHigh, _) => "priority-high",
            (QueueOrder::PriorityLow, _) => "priority-low",
        }
    }
}

/// A queue shared by all VPs of a machine (the *global* locality class).
///
/// Clone one handle per VP via [`GlobalQueue::policy`]:
///
/// ```
/// use sting_core::policies::{GlobalQueue, QueueOrder};
/// use sting_core::VmBuilder;
///
/// let q = GlobalQueue::shared(QueueOrder::Fifo);
/// let vm = VmBuilder::new()
///     .vps(2)
///     .policy(move |_vp| q.policy())
///     .build();
/// assert_eq!(vm.vp(0).unwrap().policy_name(), "global-fifo");
/// vm.shutdown();
/// ```
pub struct GlobalQueue {
    order: QueueOrder,
    inner: Arc<Mutex<(Store, u64)>>,
    next_place: Arc<AtomicUsize>,
}

impl Clone for GlobalQueue {
    fn clone(&self) -> GlobalQueue {
        GlobalQueue {
            order: self.order,
            inner: self.inner.clone(),
            next_place: self.next_place.clone(),
        }
    }
}

impl std::fmt::Debug for GlobalQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalQueue")
            .field("order", &self.order)
            .field("len", &self.inner.lock().0.len())
            .finish()
    }
}

impl GlobalQueue {
    /// Creates the shared queue; clone the handle into each VP's policy.
    pub fn shared(order: QueueOrder) -> GlobalQueue {
        GlobalQueue {
            order,
            inner: Arc::new(Mutex::new((Store::new(order), 0))),
            next_place: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// A boxed per-VP policy backed by this shared queue.
    pub fn policy(&self) -> Box<dyn PolicyManager> {
        Box::new(self.clone())
    }
}

impl PolicyManager for GlobalQueue {
    fn get_next_thread(&mut self, _vp: &Vp) -> Option<RunItem> {
        let mut g = self.inner.lock();
        g.0.pop(self.order)
    }

    fn enqueue_thread(&mut self, _vp: &Vp, item: RunItem, _state: EnqueueState) {
        let mut g = self.inner.lock();
        g.1 += 1;
        let seq = g.1;
        g.0.push(self.order, seq, item);
    }

    fn choose_vp(&mut self, vp: &Vp) -> usize {
        // Spread forks: any VP will pull from the shared queue anyway, but
        // the wake-up target matters for locality.
        let n = vp.vm().vp_count().max(1);
        self.next_place.fetch_add(1, Ordering::Relaxed) % n
    }

    fn len(&self) -> usize {
        self.inner.lock().0.len()
    }

    fn name(&self) -> &'static str {
        match self.order {
            QueueOrder::Fifo => "global-fifo",
            QueueOrder::Lifo => "global-lifo",
            QueueOrder::PriorityHigh => "global-priority-high",
            QueueOrder::PriorityLow => "global-priority-low",
        }
    }
}

/// A per-VP FIFO queue (fair round-robin under preemption).
pub fn local_fifo() -> LocalQueue {
    LocalQueue::new(QueueOrder::Fifo)
}

/// A per-VP LIFO queue (depth-first; maximizes stealing).
pub fn local_lifo() -> LocalQueue {
    LocalQueue::new(QueueOrder::Lifo)
}

/// A per-VP highest-priority-first queue (speculative scheduling).
///
/// Rides the lock-free banded deque tier: priorities are clamped into
/// [`BANDS`](crate::deque::BANDS) bands ([`BandMap::PriorityHigh`]) and
/// the highest non-empty band is dispatched first, FIFO within a band.
///
/// ```
/// use sting_core::policies;
/// use sting_core::{ThreadBuilder, VmBuilder};
///
/// let vm = VmBuilder::new()
///     .vps(1)
///     .policy(|_| policies::priority_high().boxed())
///     .build();
/// assert!(vm.vp(0).unwrap().lock_free_queue());
///
/// // Priority 3 lands in the top band; band 0 work waits behind it.
/// let hi = ThreadBuilder::new(&vm).priority(3).spawn(|_| 9i64).unwrap();
/// assert_eq!(hi.join_blocking().unwrap().as_int(), Some(9));
/// vm.shutdown();
/// ```
pub fn priority_high() -> LocalQueue {
    LocalQueue::new(QueueOrder::PriorityHigh)
}

/// A per-VP lowest-value-first queue (EDF when priority = deadline).
///
/// Also rides the banded deque tier: deadlines are quantized into bands
/// [`DEADLINE_BAND_SPAN`](crate::pm::DEADLINE_BAND_SPAN) wide
/// ([`BandMap::Deadline`]), so the nearest-deadline window is dispatched
/// first and overdue work is maximally urgent.
///
/// ```
/// use sting_core::pm::BandMap;
/// use sting_core::policies;
/// use sting_core::{ThreadBuilder, VmBuilder};
///
/// let vm = VmBuilder::new()
///     .vps(1)
///     .policy(|_| policies::priority_low().boxed())
///     .build();
/// assert_eq!(vm.vp(0).unwrap().policy_name(), "priority-low");
///
/// // priority = deadline: a due-now task lands in the top band …
/// assert_eq!(BandMap::Deadline.band(0), sting_core::deque::BANDS - 1);
/// // … and a far-future one in the bottom band.
/// assert_eq!(BandMap::Deadline.band(1 << 20), 0);
///
/// let soon = ThreadBuilder::new(&vm).priority(10).spawn(|_| 1i64).unwrap();
/// assert_eq!(soon.join_blocking().unwrap().as_int(), Some(1));
/// vm.shutdown();
/// ```
pub fn priority_low() -> LocalQueue {
    LocalQueue::new(QueueOrder::PriorityLow)
}
