//! The policy manager interface.
//!
//! The thread controller "defines a thread state transition procedure, but
//! does not define a priori scheduling or migration policies" — those live
//! in a [`PolicyManager`], one per virtual processor, entirely replaceable
//! by applications.  The trait mirrors the paper's six-procedure interface:
//!
//! | paper                  | here                                   |
//! |------------------------|----------------------------------------|
//! | `pm-get-next-thread`   | [`PolicyManager::get_next_thread`]     |
//! | `pm-enqueue-thread`    | [`PolicyManager::enqueue_thread`]      |
//! | `pm-priority`          | [`PolicyManager::set_priority`]        |
//! | `pm-quantum`           | [`PolicyManager::set_quantum`]         |
//! | `pm-allocate-vp`       | [`PolicyManager::choose_vp`]           |
//! | `pm-vp-idle`           | [`PolicyManager::vp_idle`]             |
//!
//! `get_next_thread` returns either a fresh thread (no TCB — "a new TCB
//! must be allocated for it") or a parked TCB ("its associated thread is
//! evaluating"), exactly the distinction the paper draws.  Migration is
//! two-sided: an idle VP's `vp_idle` may pull work that a victim VP's
//! [`PolicyManager::offer_migration`] is willing to give up.

use crate::tcb::Tcb;
use crate::thread::Thread;
use crate::vp::Vp;
use std::sync::Arc;

/// A unit of runnable work handed between the scheduler and a policy
/// manager.
#[derive(Debug)]
pub enum RunItem {
    /// A thread that has not started evaluating; the VP that picks it up
    /// allocates a TCB for it.
    Fresh(Arc<Thread>),
    /// A thread mid-evaluation (between quanta, or just woken); resuming it
    /// is a context switch onto its existing TCB.
    Parked(Tcb),
}

impl RunItem {
    /// The thread this item will run.
    pub fn thread(&self) -> &Arc<Thread> {
        match self {
            RunItem::Fresh(t) => t,
            RunItem::Parked(tcb) => tcb.thread(),
        }
    }

    /// Scheduling priority of the underlying thread at this moment.
    pub fn priority(&self) -> i32 {
        self.thread().priority()
    }

    /// Whether this is a fresh (never-run) thread.
    pub fn is_fresh(&self) -> bool {
        matches!(self, RunItem::Fresh(_))
    }
}

/// What a deque-tier VP may do with its [`Deque`](crate::deque::Deque),
/// as declared by [`PolicyManager::queue_kind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DequeCaps {
    /// Owner dequeues oldest-first (FIFO, via a top-end CAS) instead of
    /// newest-first (LIFO, the wait-free bottom-end pop).
    pub fifo: bool,
    /// Sibling VPs may steal from this queue when idle.
    pub steal: bool,
    /// Thieves may take parked TCBs, not just fresh threads.
    pub steal_tcbs: bool,
}

/// Which tier of the two-tier scheduler serves a VP's ready queue (see
/// DESIGN.md, "Scheduler fast path").
///
/// Policies whose order is FIFO or LIFO and whose migration choices can be
/// expressed as [`DequeCaps`] opt into the lock-free
/// [`Deque`](crate::deque::Deque) tier; everything else — priority orders,
/// global queues, custom policies — keeps the fully general locked
/// [`PolicyManager`] path.  The choice is made once, when the
/// [`crate::vp::Vp`] is constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Every enqueue/dequeue goes through the policy manager under the
    /// VP's policy lock (the fully general path; the default).
    Policy,
    /// Enqueues/dequeues use the per-VP Chase–Lev deque; the policy
    /// manager is consulted only for placement (`choose_vp`) and hints.
    Deque(DequeCaps),
}

/// The state in which a thread is handed to
/// [`PolicyManager::enqueue_thread`] (the paper's `state` argument to
/// `pm-enqueue-thread`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnqueueState {
    /// Newly forked, or a delayed thread demanded via `thread-run`.
    New,
    /// Voluntarily yielded (`yield-processor`).
    Yielded,
    /// Preempted at quantum expiry.
    Preempted,
    /// Woken from a block (the paper's kernel-/user-block re-entry).
    Unblocked,
    /// Resumed from suspension (timer expiry or explicit `thread-run`).
    Resumed,
    /// Migrated in from another VP.
    Migrated,
}

/// A scheduling and migration policy for one virtual processor.
///
/// Implementations are ordinary user code; see [`crate::policies`] for the
/// ones shipped with the substrate and the classification (locality,
/// granularity, structure, serialization) they cover.  The thread
/// controller is the only caller — "user applications need not be aware of
/// the policy/thread manager interface".
pub trait PolicyManager: Send {
    /// Returns the next item to run on `vp`, or `None` if the VP has no
    /// local work.
    fn get_next_thread(&mut self, vp: &Vp) -> Option<RunItem>;

    /// Accepts `item` into the ready set of `vp`; `state` says why the item
    /// is being enqueued so priorities can differ per cause.
    fn enqueue_thread(&mut self, vp: &Vp, item: RunItem, state: EnqueueState);

    /// Priority hint for the currently running thread (`pm-priority`).
    fn set_priority(&mut self, _vp: &Vp, _priority: i32) {}

    /// Quantum hint for the currently running thread (`pm-quantum`).
    fn set_quantum(&mut self, _vp: &Vp, _quantum: u32) {}

    /// Chooses the VP on which a newly forked thread should first run
    /// (`pm-allocate-vp` / initial load balancing).  Defaults to `vp`
    /// itself.
    fn choose_vp(&mut self, vp: &Vp) -> usize {
        vp.index()
    }

    /// Called when `vp` found no local work; may produce migrated work
    /// (e.g. by pulling from sibling VPs via [`Vp::try_offer_migration`]),
    /// perform bookkeeping, or return `None` to let the processor move on.
    fn vp_idle(&mut self, _vp: &Vp) -> Option<RunItem> {
        None
    }

    /// Victim side of migration: surrender an item this VP is willing to
    /// lose, if any.  Policies that forbid migration keep the default.
    fn offer_migration(&mut self, _vp: &Vp) -> Option<RunItem> {
        None
    }

    /// Declares which scheduler tier should serve this policy's ready
    /// queue.  Consulted once, when the VP is built; the default keeps the
    /// fully general locked path, so existing policies are unaffected.
    ///
    /// A policy that returns [`QueueKind::Deque`] gives up per-item
    /// control: `get_next_thread`, `enqueue_thread` and `offer_migration`
    /// are no longer called for routine traffic (only `choose_vp`,
    /// `vp_idle` fallbacks and the hint methods still are).
    fn queue_kind(&self) -> QueueKind {
        QueueKind::Policy
    }

    /// Number of items currently queued (for introspection and tests).
    fn len(&self) -> usize;

    /// Whether the ready set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short policy name for diagnostics.
    fn name(&self) -> &'static str;
}
