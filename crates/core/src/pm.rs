//! The policy manager interface.
//!
//! The thread controller "defines a thread state transition procedure, but
//! does not define a priori scheduling or migration policies" — those live
//! in a [`PolicyManager`], one per virtual processor, entirely replaceable
//! by applications.  The trait mirrors the paper's six-procedure interface:
//!
//! | paper                  | here                                   |
//! |------------------------|----------------------------------------|
//! | `pm-get-next-thread`   | [`PolicyManager::get_next_thread`]     |
//! | `pm-enqueue-thread`    | [`PolicyManager::enqueue_thread`]      |
//! | `pm-priority`          | [`PolicyManager::set_priority`]        |
//! | `pm-quantum`           | [`PolicyManager::set_quantum`]         |
//! | `pm-allocate-vp`       | [`PolicyManager::choose_vp`]           |
//! | `pm-vp-idle`           | [`PolicyManager::vp_idle`]             |
//!
//! `get_next_thread` returns either a fresh thread (no TCB — "a new TCB
//! must be allocated for it") or a parked TCB ("its associated thread is
//! evaluating"), exactly the distinction the paper draws.  Migration is
//! two-sided: an idle VP's `vp_idle` may pull work that a victim VP's
//! [`PolicyManager::offer_migration`] is willing to give up.

use crate::tcb::Tcb;
use crate::thread::Thread;
use crate::vp::Vp;
use std::sync::Arc;

/// A unit of runnable work handed between the scheduler and a policy
/// manager.
#[derive(Debug)]
pub enum RunItem {
    /// A thread that has not started evaluating; the VP that picks it up
    /// allocates a TCB for it.
    Fresh(Arc<Thread>),
    /// A thread mid-evaluation (between quanta, or just woken); resuming it
    /// is a context switch onto its existing TCB.
    Parked(Tcb),
}

impl RunItem {
    /// The thread this item will run.
    pub fn thread(&self) -> &Arc<Thread> {
        match self {
            RunItem::Fresh(t) => t,
            RunItem::Parked(tcb) => tcb.thread(),
        }
    }

    /// Scheduling priority of the underlying thread at this moment.
    pub fn priority(&self) -> i32 {
        self.thread().priority()
    }

    /// Whether this is a fresh (never-run) thread.
    pub fn is_fresh(&self) -> bool {
        matches!(self, RunItem::Fresh(_))
    }
}

/// How a thread's [`priority`](crate::thread::Thread::priority) maps onto
/// the [`BANDS`](crate::deque::BANDS) bands of the multi-level deque tier
/// (higher band = dispatched first).
///
/// The map is declared once in [`DequeCaps`] and applied lock-free at
/// every enqueue, so the policy manager never sees per-item traffic.
///
/// # Examples
///
/// ```
/// use sting_core::deque::BANDS;
/// use sting_core::pm::BandMap;
///
/// // FIFO/LIFO policies ignore priorities: everything is band 0.
/// assert_eq!(BandMap::Single.band(7), 0);
///
/// // Speculative scheduling: higher priority value, higher band.
/// assert_eq!(BandMap::PriorityHigh.band(-5), 0);
/// assert_eq!(BandMap::PriorityHigh.band(2), 2);
/// assert_eq!(BandMap::PriorityHigh.band(100), BANDS - 1);
///
/// // EDF: priorities are deadlines, quantized 1024-ticks-per-band;
/// // an overdue deadline is maximally urgent.
/// assert_eq!(BandMap::Deadline.band(-3), BANDS - 1);
/// assert_eq!(BandMap::Deadline.band(500), BANDS - 1);
/// assert_eq!(BandMap::Deadline.band(1500), BANDS - 2);
/// assert_eq!(BandMap::Deadline.band(1 << 20), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BandMap {
    /// Every item lands in band 0 — the single-level discipline FIFO and
    /// LIFO policies use (the default).
    #[default]
    Single,
    /// Higher priority value ⇒ higher band, clamped into `0..BANDS`
    /// (speculative scheduling: favour promising tasks).
    PriorityHigh,
    /// Priorities are deadlines: *lower* value ⇒ higher band, quantized
    /// so each band covers a [`DEADLINE_BAND_SPAN`]-wide window and
    /// everything at or past the last window shares band 0.  With
    /// priority = deadline this is earliest-deadline-first, banded.
    Deadline,
}

/// Width of one [`BandMap::Deadline`] quantization window, in priority
/// units (deadlines `0..SPAN` are maximally urgent, `SPAN..2*SPAN` one
/// band lower, and so on).
pub const DEADLINE_BAND_SPAN: i32 = 1024;

impl BandMap {
    /// The band for an item of the given priority; always `< BANDS`.
    pub fn band(&self, priority: i32) -> usize {
        let top = crate::deque::BANDS - 1;
        match self {
            BandMap::Single => 0,
            BandMap::PriorityHigh => priority.clamp(0, top as i32) as usize,
            BandMap::Deadline => {
                let window = (priority.max(0) / DEADLINE_BAND_SPAN) as usize;
                top - window.min(top)
            }
        }
    }
}

/// What a deque-tier VP may do with its
/// [`MultiDeque`](crate::deque::MultiDeque), as declared by
/// [`PolicyManager::queue_kind`].
///
/// # Examples
///
/// The shipped policies translate their builder switches into caps; a
/// custom policy can hand back its own:
///
/// ```
/// use sting_core::pm::{BandMap, DequeCaps, PolicyManager, QueueKind};
/// use sting_core::policies;
///
/// // A migrating FIFO queue: single band, oldest-first, fresh-only steals.
/// let kind = policies::local_fifo().migrating(true).queue_kind();
/// assert_eq!(
///     kind,
///     QueueKind::Deque(DequeCaps {
///         fifo: true,
///         steal: true,
///         steal_tcbs: false,
///         bands: BandMap::Single,
///     })
/// );
///
/// // A priority queue rides the banded tier, FIFO within each band.
/// let QueueKind::Deque(caps) = policies::priority_high().queue_kind() else {
///     panic!("priority policies ride the deque tier");
/// };
/// assert_eq!(caps.bands, BandMap::PriorityHigh);
/// assert!(caps.fifo);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DequeCaps {
    /// Owner dequeues oldest-first (FIFO, via a top-end CAS) instead of
    /// newest-first (LIFO, the wait-free bottom-end pop).  Applies within
    /// each band; bands themselves are always served highest-first.
    pub fifo: bool,
    /// Sibling VPs may steal from this queue when idle.
    pub steal: bool,
    /// Thieves may take parked TCBs, not just fresh threads.
    pub steal_tcbs: bool,
    /// How priorities map onto the multi-level deque's bands.
    pub bands: BandMap,
}

/// Which tier of the two-tier scheduler serves a VP's ready queue (see
/// DESIGN.md, "Scheduler fast path").
///
/// Policies whose dispatch order is expressible as *bands served
/// highest-first, FIFO or LIFO within a band* — the shipped FIFO, LIFO,
/// priority and deadline policies all are, via [`BandMap`] — opt into the
/// lock-free [`MultiDeque`](crate::deque::MultiDeque) tier; everything
/// else (global queues, custom orders) keeps the fully general locked
/// [`PolicyManager`] path.  The choice is made once, when the
/// [`crate::vp::Vp`] is constructed.
///
/// # Examples
///
/// ```
/// use sting_core::policies;
/// use sting_core::VmBuilder;
///
/// // Priority policies ride the lock-free banded tier by default …
/// let vm = VmBuilder::new()
///     .vps(1)
///     .policy(|_| policies::priority_high().boxed())
///     .build();
/// assert!(vm.vp(0).unwrap().lock_free_queue());
/// vm.shutdown();
///
/// // … and `.locked(true)` is the explicit opt-out (A/B benchmarking).
/// let vm = VmBuilder::new()
///     .vps(1)
///     .policy(|_| policies::priority_high().locked(true).boxed())
///     .build();
/// assert!(!vm.vp(0).unwrap().lock_free_queue());
/// vm.shutdown();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Every enqueue/dequeue goes through the policy manager under the
    /// VP's policy lock (the fully general path; the default).
    Policy,
    /// Enqueues/dequeues use the per-VP banded Chase–Lev deques; the
    /// policy manager is consulted only for placement (`choose_vp`) and
    /// hints.
    Deque(DequeCaps),
}

/// The state in which a thread is handed to
/// [`PolicyManager::enqueue_thread`] (the paper's `state` argument to
/// `pm-enqueue-thread`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnqueueState {
    /// Newly forked, or a delayed thread demanded via `thread-run`.
    New,
    /// Voluntarily yielded (`yield-processor`).
    Yielded,
    /// Preempted at quantum expiry.
    Preempted,
    /// Woken from a block (the paper's kernel-/user-block re-entry).
    Unblocked,
    /// Resumed from suspension (timer expiry or explicit `thread-run`).
    Resumed,
    /// Migrated in from another VP.
    Migrated,
}

/// A scheduling and migration policy for one virtual processor.
///
/// Implementations are ordinary user code; see [`crate::policies`] for the
/// ones shipped with the substrate and the classification (locality,
/// granularity, structure, serialization) they cover.  The thread
/// controller is the only caller — "user applications need not be aware of
/// the policy/thread manager interface".
///
/// # Examples
///
/// A complete (if spartan) custom policy is a stack and three methods;
/// everything else has workable defaults:
///
/// ```
/// use sting_core::pm::{EnqueueState, PolicyManager, RunItem};
/// use sting_core::vp::Vp;
/// use sting_core::VmBuilder;
///
/// #[derive(Default)]
/// struct Stack(Vec<RunItem>);
///
/// impl PolicyManager for Stack {
///     fn get_next_thread(&mut self, _vp: &Vp) -> Option<RunItem> {
///         self.0.pop()
///     }
///     fn enqueue_thread(&mut self, _vp: &Vp, item: RunItem, _state: EnqueueState) {
///         self.0.push(item);
///     }
///     fn len(&self) -> usize {
///         self.0.len()
///     }
///     fn name(&self) -> &'static str {
///         "toy-stack"
///     }
/// }
///
/// let vm = VmBuilder::new()
///     .vps(1)
///     .policy(|_| Box::new(Stack::default()))
///     .build();
/// assert_eq!(vm.vp(0).unwrap().policy_name(), "toy-stack");
/// let t = vm.fork(|_| 6i64 * 7);
/// assert_eq!(t.join_blocking().unwrap().as_int(), Some(42));
/// vm.shutdown();
/// ```
pub trait PolicyManager: Send {
    /// Returns the next item to run on `vp`, or `None` if the VP has no
    /// local work.
    fn get_next_thread(&mut self, vp: &Vp) -> Option<RunItem>;

    /// Accepts `item` into the ready set of `vp`; `state` says why the item
    /// is being enqueued so priorities can differ per cause.
    fn enqueue_thread(&mut self, vp: &Vp, item: RunItem, state: EnqueueState);

    /// Priority hint for the currently running thread (`pm-priority`).
    fn set_priority(&mut self, _vp: &Vp, _priority: i32) {}

    /// Quantum hint for the currently running thread (`pm-quantum`).
    fn set_quantum(&mut self, _vp: &Vp, _quantum: u32) {}

    /// Chooses the VP on which a newly forked thread should first run
    /// (`pm-allocate-vp` / initial load balancing).  Defaults to `vp`
    /// itself.
    fn choose_vp(&mut self, vp: &Vp) -> usize {
        vp.index()
    }

    /// Called when `vp` found no local work; may produce migrated work
    /// (e.g. by pulling from sibling VPs via [`Vp::try_offer_migration`]),
    /// perform bookkeeping, or return `None` to let the processor move on.
    fn vp_idle(&mut self, _vp: &Vp) -> Option<RunItem> {
        None
    }

    /// Victim side of migration: surrender an item this VP is willing to
    /// lose, if any.  Policies that forbid migration keep the default.
    fn offer_migration(&mut self, _vp: &Vp) -> Option<RunItem> {
        None
    }

    /// Declares which scheduler tier should serve this policy's ready
    /// queue.  Consulted once, when the VP is built; the default keeps the
    /// fully general locked path, so existing policies are unaffected.
    ///
    /// A policy that returns [`QueueKind::Deque`] gives up per-item
    /// control: `get_next_thread`, `enqueue_thread` and `offer_migration`
    /// are no longer called for routine traffic (only `choose_vp`,
    /// `vp_idle` fallbacks and the hint methods still are).
    fn queue_kind(&self) -> QueueKind {
        QueueKind::Policy
    }

    /// Number of items currently queued (for introspection and tests).
    fn len(&self) -> usize;

    /// Whether the ready set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short policy name for diagnostics.
    fn name(&self) -> &'static str;
}
