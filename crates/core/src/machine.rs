//! The physical machine: OS worker threads multiplexing virtual processors.
//!
//! "Virtual processors are multiplexed on physical processors in the same
//! way that threads are multiplexed on virtual processors."  A
//! [`PhysicalMachine`] owns `n` worker OS threads (the physical processors)
//! plus a timekeeper that raises preemption flags and drains timers.  VPs
//! are assigned to workers by index modulo the worker count; several
//! virtual machines may be attached to one physical machine (they are held
//! weakly — dropping a `Vm` detaches it).

use crate::vm::Vm;
use parking_lot::{Condvar, Mutex, RwLock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

pub(crate) struct MachineShared {
    vms: RwLock<Vec<Weak<Vm>>>,
    stop: AtomicBool,
    work_epoch: Mutex<u64>,
    work_cv: Condvar,
    tick: Duration,
}

/// A set of physical processors (OS threads) driving virtual machines.
pub struct PhysicalMachine {
    shared: Arc<MachineShared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    processors: usize,
}

impl std::fmt::Debug for PhysicalMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhysicalMachine")
            .field("processors", &self.processors)
            .field("tick", &self.shared.tick)
            .finish()
    }
}

/// How many threads one VP slice may run before the worker rotates to the
/// next VP; keeps one busy VP from starving its siblings on a worker.
const SLICE_BUDGET: usize = 16;

impl PhysicalMachine {
    /// Creates a machine with `processors` workers and the default 500 µs
    /// preemption tick.
    pub fn new(processors: usize) -> Arc<PhysicalMachine> {
        PhysicalMachine::with_tick(processors, Duration::from_micros(500))
    }

    /// Creates a machine with an explicit preemption `tick`.
    pub fn with_tick(processors: usize, tick: Duration) -> Arc<PhysicalMachine> {
        crate::tc::install_quiet_panic_hook();
        let processors = processors.max(1);
        let shared = Arc::new(MachineShared {
            vms: RwLock::new(Vec::new()),
            stop: AtomicBool::new(false),
            work_epoch: Mutex::new(0),
            work_cv: Condvar::new(),
            tick,
        });
        let mut workers = Vec::with_capacity(processors + 1);
        for i in 0..processors {
            let s = shared.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("sting-pp-{i}"))
                    .spawn(move || worker_loop(&s, i, processors))
                    .expect("spawn physical processor"),
            );
        }
        let s = shared.clone();
        workers.push(
            std::thread::Builder::new()
                .name("sting-timekeeper".to_string())
                .spawn(move || timekeeper_loop(&s))
                .expect("spawn timekeeper"),
        );
        Arc::new(PhysicalMachine {
            shared,
            workers: Mutex::new(workers),
            processors,
        })
    }

    /// Number of physical processors (workers).
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// Attaches `vm` so its VPs are driven by this machine's workers.
    pub fn attach(self: &Arc<PhysicalMachine>, vm: &Arc<Vm>) {
        *vm.machine.lock() = Some(self.clone());
        self.shared.vms.write().push(Arc::downgrade(vm));
        self.signal_work();
    }

    /// Detaches `vm`; its threads stop being scheduled.
    pub fn detach(&self, vm: &Arc<Vm>) {
        let target = Arc::downgrade(vm);
        self.shared.vms.write().retain(|w| !w.ptr_eq(&target));
    }

    /// Wakes parked workers because new work was enqueued.
    pub(crate) fn signal_work(&self) {
        let mut epoch = self.shared.work_epoch.lock();
        *epoch += 1;
        self.shared.work_cv.notify_all();
    }

    /// Stops all workers and joins them.  Called automatically on drop.
    ///
    /// If the last reference to the machine is dropped *by one of its own
    /// workers* (possible when a worker holds the final `Arc<Vm>`), that
    /// worker cannot join itself; it is detached instead and exits on its
    /// own once the stop flag is visible.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.signal_work();
        let me = std::thread::current().id();
        let mut workers = self.workers.lock();
        for w in workers.drain(..) {
            if w.thread().id() == me {
                continue;
            }
            let _ = w.join();
        }
    }
}

impl Drop for PhysicalMachine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn attached_vms(shared: &MachineShared) -> Vec<Arc<Vm>> {
    shared.vms.read().iter().filter_map(Weak::upgrade).collect()
}

fn worker_loop(shared: &MachineShared, index: usize, processors: usize) {
    // Reused across passes: re-collecting the attachment list every pass
    // costs an allocation per pass per worker, and a fleet multiplies the
    // pass frequency by its shard count.
    let mut vms: Vec<Arc<Vm>> = Vec::new();
    while !shared.stop.load(Ordering::Acquire) {
        let epoch = *shared.work_epoch.lock();
        let mut did_work = false;
        vms.extend(shared.vms.read().iter().filter_map(Weak::upgrade));
        for vm in &vms {
            if vm.is_stopped() {
                continue;
            }
            vm.process_timers();
            vm.active_slices.fetch_add(1, Ordering::AcqRel);
            for vp in vm.vps() {
                if vp.index() % processors == index && !vm.is_stopped() {
                    did_work |= vp.run_slice(SLICE_BUDGET);
                }
            }
            vm.active_slices.fetch_sub(1, Ordering::AcqRel);
        }
        // Drop the strong refs before parking so a detached VM's teardown
        // is never pinned by an idle worker.
        vms.clear();
        if !did_work {
            let mut g = shared.work_epoch.lock();
            if *g == epoch && !shared.stop.load(Ordering::Acquire) {
                shared
                    .work_cv
                    .wait_for(&mut g, shared.tick.max(Duration::from_micros(200)));
            }
        }
    }
}

fn timekeeper_loop(shared: &MachineShared) {
    while !shared.stop.load(Ordering::Acquire) {
        std::thread::sleep(shared.tick);
        for vm in attached_vms(shared) {
            for vp in vm.vps() {
                vp.preempt_flag.store(true, Ordering::Relaxed);
                crate::trace_event!(
                    vm.tracer(),
                    Some(vp.index()),
                    crate::trace::EventKind::Preempt,
                    0
                );
            }
            if vm.timers().has_pending()
                && vm
                    .timers()
                    .next_deadline()
                    .is_some_and(|d| d <= std::time::Instant::now())
            {
                vm.process_timers();
            }
        }
    }
}
