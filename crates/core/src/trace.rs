//! The scheduler flight recorder: per-VP event tracing.
//!
//! Every virtual processor owns a fixed-capacity ring of timestamped
//! [`TraceEvent`]s; the hot scheduler paths record into it through the
//! [`trace_event!`](crate::trace_event) macro, which compiles down to one relaxed atomic load
//! when tracing is disabled.  A final ring collects events recorded off any
//! VP (e.g. forks from the host thread).
//!
//! Recording is lock-free: a writer claims a slot with a `fetch_add` ticket
//! on the ring head, fills the slot's fields, and publishes the ticket into
//! the slot's sequence word with `Release` ordering.  Readers
//! ([`Tracer::snapshot`]) accept a slot only when its sequence matches the
//! ticket the head implies, so a half-written or since-overwritten slot is
//! skipped rather than surfaced torn.  When the ring wraps, the oldest
//! events are overwritten — the recorder keeps the most recent window,
//! which is what post-mortem debugging wants.
//!
//! Two exporters render a snapshot: [`chrome_json`] emits the
//! `chrome://tracing` / Perfetto JSON array format (VPs appear as rows,
//! thread dispatch/switch pairs as spans, everything else as instant
//! events), and [`text_dump`] renders a human-readable log.

// Under `--cfg sting_check` the atomics are the model checker's shims, so
// the ring's publish protocol is explored against the production source
// (see crates/core/tests/model.rs).
#[cfg(not(sting_check))]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;
#[cfg(sting_check)]
use sting_check::atomic::{AtomicBool, AtomicU64, Ordering};

/// What happened.  The discriminants are stable u8s because events are
/// packed into atomic words in the ring slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A thread object was created (fork / spawn).
    Fork = 0,
    /// A thread was handed to a policy manager queue; payload `a` is the
    /// [`EnqueueState`](crate::pm::EnqueueState) discriminant, `b` the
    /// chosen VP.
    Enqueue = 1,
    /// A VP picked a thread and is about to run it; payload `a` is 1 when
    /// the dispatch resumed a parked TCB, 0 for a fresh thunk.
    Dispatch = 2,
    /// The running thread left the VP; payload `a` is the disposition
    /// (0 yield, 1 preempted-yield, 2 blocked, 3 suspended, 4 returned).
    Switch = 3,
    /// A delayed thread's thunk was absorbed by a toucher (thread
    /// stealing, §4.1.1 of the paper); payload `a` is the steal depth.
    Steal = 4,
    /// The running thread blocked; payload `a` identifies the blocker kind.
    Block = 5,
    /// A blocked thread became runnable again.
    Unblock = 6,
    /// The running thread was suspended.
    Suspend = 7,
    /// A suspended thread was resumed.
    Resume = 8,
    /// The timekeeper raised the preemption flag on a VP.
    Preempt = 9,
    /// A thread migrated between VPs; payload `a` is the victim VP,
    /// `b` the thief VP.
    Migrate = 10,
    /// A thread reached a final value (or exception); payload `a` is 1 for
    /// an exceptional determination.
    Determine = 11,
    /// An asynchronous state request was honoured; payload `a` is the
    /// request discriminant.
    StateRequest = 12,
    /// A timed park's deadline fired before a wake-up: the wait episode
    /// was consumed as a timeout.  Payload `b` is the episode generation
    /// (low 32 bits).
    BlockTimeout = 13,
    /// A blocked thread's wait episode was cancelled; payload `a` is the
    /// origin (0 terminate/raise request, 1 park unwind, 2 leaked at
    /// determine — a protocol violation the audit flags), `b` the episode
    /// generation (low 32 bits).
    WaiterCancelled = 14,
    /// A thread registered with the I/O reactor and is parking on fd
    /// readiness; payload `a` is the fd, `b` the interest mask (see
    /// [`crate::reactor`]).
    IoWait = 15,
    /// The reactor driver delivered fd readiness as a claimed wake-up;
    /// payload `a` is the fd, `b` the readiness mask.
    IoReady = 16,
    /// The running thread acquired a mutex; payload `a` is the mutex id.
    /// Together with [`EventKind::LockRelease`] this reconstructs each
    /// thread's lock-nesting order, which the audit cross-checks against
    /// the static analyzer's lock-order graph.
    LockAcquire = 17,
    /// The running thread released a mutex; payload `a` is the mutex id.
    LockRelease = 18,
    /// A ready thread was handed off between VM shards over the fleet
    /// mailbox fabric; payload `a` is the source shard, `b` the
    /// destination shard.  Recorded on the source shard at the moment the
    /// item leaves its queues; the destination's own [`EventKind::Enqueue`]
    /// re-publishes it, so the audit treats a handoff as consuming one
    /// pending enqueue (like a dispatch) rather than as a steal.
    Handoff = 19,
    /// The I/O driver's reactor backend failed fatally (`Reactor::wait`
    /// errored); payload `a` is the raw errno.  Recorded once, as the
    /// driver loop exits and drains its registry — every parked I/O
    /// thread is spuriously woken rather than left hanging.
    IoError = 20,
}

impl EventKind {
    fn from_u8(v: u8) -> Option<EventKind> {
        use EventKind::*;
        Some(match v {
            0 => Fork,
            1 => Enqueue,
            2 => Dispatch,
            3 => Switch,
            4 => Steal,
            5 => Block,
            6 => Unblock,
            7 => Suspend,
            8 => Resume,
            9 => Preempt,
            10 => Migrate,
            11 => Determine,
            12 => StateRequest,
            13 => BlockTimeout,
            14 => WaiterCancelled,
            15 => IoWait,
            16 => IoReady,
            17 => LockAcquire,
            18 => LockRelease,
            19 => Handoff,
            20 => IoError,
            _ => return None,
        })
    }

    /// Short lowercase name used by both exporters.
    pub fn name(self) -> &'static str {
        use EventKind::*;
        match self {
            Fork => "fork",
            Enqueue => "enqueue",
            Dispatch => "dispatch",
            Switch => "switch",
            Steal => "steal",
            Block => "block",
            Unblock => "unblock",
            Suspend => "suspend",
            Resume => "resume",
            Preempt => "preempt",
            Migrate => "migrate",
            Determine => "determine",
            StateRequest => "state-request",
            BlockTimeout => "block-timeout",
            WaiterCancelled => "waiter-cancelled",
            IoWait => "io-wait",
            IoReady => "io-ready",
            LockAcquire => "lock-acquire",
            LockRelease => "lock-release",
            Handoff => "handoff",
            IoError => "io-error",
        }
    }
}

/// One recorded scheduler event, as read back out of a ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the tracer was created.
    pub ts_ns: u64,
    /// Ring (VP index, or [`Tracer::external_lane`] for off-VP events) the
    /// event was recorded on.
    pub vp: u32,
    /// What happened.
    pub kind: EventKind,
    /// The thread involved (`ThreadId.0`), 0 when not applicable.
    pub thread: u64,
    /// Event-specific payload (see [`EventKind`] docs).
    pub a: u32,
    /// Second event-specific payload word.
    pub b: u32,
    /// Lamport logical clock at the moment of recording.  Within one
    /// tracer the clock is a strictly increasing counter; across tracers
    /// it is advanced by [`Tracer::witness`] whenever a cross-shard
    /// message arrives, so causally related events on different shards
    /// always compare in cause-before-effect order.  Merged snapshots
    /// sort by `(lc, ts_ns)`, which makes the ordering stable under
    /// per-shard clock drift.
    pub lc: u64,
}

/// One ring slot: a sequence word plus the packed event fields.
///
/// `seq` holds `ticket + 1` of the event occupying the slot (0 = never
/// written).  It is stored `Release` *after* the payload words, so a reader
/// that observes the expected sequence with `Acquire` sees a fully written
/// event of the expected generation.
struct Slot {
    seq: AtomicU64,
    ts: AtomicU64,
    /// kind (low 8 bits) | vp (next 24 bits) | reserved.
    meta: AtomicU64,
    thread: AtomicU64,
    /// a (low 32 bits) | b (high 32 bits).
    aux: AtomicU64,
    /// Lamport clock value.
    lc: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            ts: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            thread: AtomicU64::new(0),
            aux: AtomicU64::new(0),
            lc: AtomicU64::new(0),
        }
    }
}

/// A fixed-capacity multi-writer ring of events.
struct Ring {
    /// Total events ever recorded here; slot index is `ticket % capacity`.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn record(&self, ts_ns: u64, vp: u32, kind: EventKind, thread: u64, a: u32, b: u32, lc: u64) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        // Invalidate the slot first so a concurrent reader can't match the
        // *previous* generation against half-new payload words.
        slot.seq.store(0, Ordering::Release);
        // The payload stores are Release and the reader's payload loads are
        // Acquire: a reader that observes any new-generation payload word is
        // then guaranteed to also observe the seq=0 invalidation (or the new
        // ticket) on its re-check, so a mixed-generation record can never
        // validate.  With Relaxed payload accesses the re-check could read
        // the *old* seq value even after reading new payload words — a torn
        // record accepted as valid (exhibited by the sting-check seqlock
        // litmus test; see crates/check/tests/litmus.rs).
        slot.ts.store(ts_ns, Ordering::Release);
        slot.meta
            .store(kind as u64 | ((vp as u64) << 8), Ordering::Release);
        slot.thread.store(thread, Ordering::Release);
        slot.aux
            .store(a as u64 | ((b as u64) << 32), Ordering::Release);
        slot.lc.store(lc, Ordering::Release);
        slot.seq.store(ticket + 1, Ordering::Release);
    }

    /// Copies out every event still resident, oldest first.  Slots being
    /// concurrently rewritten are skipped.
    fn drain_into(&self, out: &mut Vec<TraceEvent>, lane: u32) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        for ticket in start..head {
            let slot = &self.slots[(ticket % cap) as usize];
            if slot.seq.load(Ordering::Acquire) != ticket + 1 {
                continue; // torn or already overwritten
            }
            // Acquire pairs with the Release payload stores in `record`: if
            // any word here came from a newer generation, the writer's
            // seq=0 invalidation is forced into view for the re-check below.
            let ts = slot.ts.load(Ordering::Acquire);
            let meta = slot.meta.load(Ordering::Acquire);
            let thread = slot.thread.load(Ordering::Acquire);
            let aux = slot.aux.load(Ordering::Acquire);
            let lc = slot.lc.load(Ordering::Acquire);
            // Re-check the sequence: if it changed, a writer lapped us and
            // the words above may mix generations.
            if slot.seq.load(Ordering::Acquire) != ticket + 1 {
                continue;
            }
            let Some(kind) = EventKind::from_u8((meta & 0xff) as u8) else {
                continue;
            };
            out.push(TraceEvent {
                ts_ns: ts,
                vp: lane,
                kind,
                thread,
                a: (aux & 0xffff_ffff) as u32,
                b: (aux >> 32) as u32,
                lc,
            });
        }
    }

    fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    fn truncated(&self) -> bool {
        self.head.load(Ordering::Relaxed) > self.slots.len() as u64
    }
}

/// Default per-VP ring capacity (events), chosen so a trace of a busy VP
/// covers a few scheduling quanta without growing unbounded.
pub const DEFAULT_CAPACITY: usize = 16 * 1024;

/// The per-VM flight recorder: one ring per VP plus an external lane.
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    rings: Box<[Ring]>,
    /// Lamport logical clock: bumped on every record, advanced past a
    /// remote peer's clock by [`Tracer::witness`] when a cross-shard
    /// message is received.
    clock: AtomicU64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("lanes", &self.rings.len())
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl Tracer {
    /// Creates a tracer with `vps + 1` lanes of `capacity` events each
    /// (the extra lane collects events recorded off any VP).
    pub fn new(vps: usize, capacity: usize, enabled: bool) -> Tracer {
        let capacity = capacity.max(2);
        Tracer {
            enabled: AtomicBool::new(enabled),
            epoch: Instant::now(),
            rings: (0..=vps).map(|_| Ring::new(capacity)).collect(),
            clock: AtomicU64::new(0),
        }
    }

    /// Whether recording is on.  This is the only cost tracing adds to the
    /// scheduler hot paths while disabled.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off.  Events already recorded are kept.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Lane index used for events recorded outside any VP.
    pub fn external_lane(&self) -> u32 {
        (self.rings.len() - 1) as u32
    }

    /// Records an event on `vp`'s lane (or the external lane when `None`).
    ///
    /// Callers normally go through [`trace_event!`](crate::trace_event), which checks
    /// [`Tracer::is_enabled`] first; `record` itself rechecks so direct
    /// calls stay correct.
    pub fn record(&self, vp: Option<usize>, kind: EventKind, thread: u64, a: u32, b: u32) {
        if !self.is_enabled() {
            return;
        }
        let lane = match vp {
            Some(i) if i < self.rings.len() - 1 => i,
            _ => self.rings.len() - 1,
        };
        let ts = self.epoch.elapsed().as_nanos() as u64;
        let lc = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        self.rings[lane].record(ts, lane as u32, kind, thread, a, b, lc);
    }

    /// Current Lamport clock value.  A cross-shard sender reads this after
    /// recording its send-side event and ships the value with the message.
    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Advances the clock past a remote peer's value (`max(local, seen)`),
    /// so every event the receiver records after draining the message is
    /// logically later than everything the sender recorded before posting
    /// it.  The merge sort in [`crate::fleet::Fleet::merged_snapshot`]
    /// depends on exactly this invariant.
    pub fn witness(&self, seen: u64) {
        let mut cur = self.clock.load(Ordering::Relaxed);
        while cur < seen {
            match self
                .clock
                .compare_exchange_weak(cur, seen, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Total events recorded since creation (including any the rings have
    /// since overwritten).
    pub fn recorded(&self) -> u64 {
        self.rings.iter().map(Ring::recorded).sum()
    }

    /// Whether any lane has wrapped, i.e. a [`Tracer::snapshot`] is missing
    /// the oldest events.  Trace consumers that reason about event *absence*
    /// (notably [`audit`](crate::audit)) should soften their conclusions
    /// when this is true.
    pub fn truncated(&self) -> bool {
        self.rings.iter().any(Ring::truncated)
    }

    /// Copies out all resident events, merged across lanes and sorted by
    /// logical clock (timestamp as the tiebreaker).  Safe to call while
    /// the VM is running (a best-effort snapshot) or after it drains
    /// (exact).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for (lane, ring) in self.rings.iter().enumerate() {
            ring.drain_into(&mut out, lane as u32);
        }
        sort_events(&mut out);
        out
    }

    /// Number of lanes (VP rings plus the external lane).
    pub fn lanes(&self) -> usize {
        self.rings.len()
    }
}

/// Sorts events into merge-stable replay order: Lamport clock first (the
/// cross-shard causal order), timestamp as the within-clock tiebreaker.
/// Fleet-wide merges concatenate per-shard snapshots and re-sort with this
/// same key, so a merged trace and a single-shard trace replay under
/// identical rules.
pub fn sort_events(events: &mut [TraceEvent]) {
    events.sort_by_key(|e| (e.lc, e.ts_ns));
}

/// Renders events in the `chrome://tracing` JSON array format (also
/// readable by Perfetto's legacy loader).
///
/// Each VP lane becomes a `tid` row under one `pid`; [`EventKind::Dispatch`]
/// / [`EventKind::Switch`] pairs become duration (`B`/`E`) spans named after
/// the thread, everything else becomes an instant (`i`) event carrying its
/// payload in `args`.
pub fn chrome_json(vm_name: &str, events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push('[');
    // Process + lane metadata so the viewer shows names instead of ids.
    push_json_event(
        &mut out,
        &format!(
            r#"{{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{{"name":"sting vm {}"}}}}"#,
            escape_json(vm_name)
        ),
    );
    let lanes: std::collections::BTreeSet<u32> = events.iter().map(|e| e.vp).collect();
    let external = lanes.iter().max().copied().unwrap_or(0);
    for lane in &lanes {
        let label = if !events.is_empty() && *lane == external && lanes.len() > 1 {
            "external".to_string()
        } else {
            format!("vp {lane}")
        };
        push_json_event(
            &mut out,
            &format!(
                r#"{{"name":"thread_name","ph":"M","pid":1,"tid":{lane},"args":{{"name":"{label}"}}}}"#
            ),
        );
    }
    for e in events {
        let us = e.ts_ns as f64 / 1000.0;
        let frag = match e.kind {
            EventKind::Dispatch => format!(
                r#"{{"name":"run t{}","cat":"sched","ph":"B","ts":{us:.3},"pid":1,"tid":{},"args":{{"thread":{},"parked":{}}}}}"#,
                e.thread, e.vp, e.thread, e.a
            ),
            EventKind::Switch => format!(
                r#"{{"name":"run t{}","cat":"sched","ph":"E","ts":{us:.3},"pid":1,"tid":{},"args":{{"thread":{},"disposition":"{}"}}}}"#,
                e.thread,
                e.vp,
                e.thread,
                switch_disposition(e.a)
            ),
            _ => format!(
                r#"{{"name":"{} t{}","cat":"sched","ph":"i","s":"t","ts":{us:.3},"pid":1,"tid":{},"args":{{"thread":{},"a":{},"b":{}}}}}"#,
                e.kind.name(),
                e.thread,
                e.vp,
                e.thread,
                e.a,
                e.b
            ),
        };
        push_json_event(&mut out, &frag);
    }
    out.push(']');
    out
}

/// Renders events as a human-readable log, one line per event.
pub fn text_dump(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 48);
    for e in events {
        let us = e.ts_ns / 1000;
        let detail = match e.kind {
            EventKind::Switch => format!(" ({})", switch_disposition(e.a)),
            EventKind::Migrate => format!(" (vp{} -> vp{})", e.a, e.b),
            EventKind::Handoff => format!(" (shard{} -> shard{})", e.a, e.b),
            EventKind::Steal => format!(" (depth {})", e.a),
            EventKind::Enqueue => format!(" (state {}, vp {})", e.a, e.b),
            EventKind::BlockTimeout => format!(" (gen {})", e.b),
            EventKind::WaiterCancelled => format!(" ({}, gen {})", cancel_origin(e.a), e.b),
            EventKind::IoError => format!(" (errno {})", e.a),
            EventKind::IoWait | EventKind::IoReady => {
                format!(" (fd {}, mask {:#b})", e.a, e.b)
            }
            EventKind::Unblock if e.b != 0 => format!(" (vp {}, claimed gen {})", e.a, e.b),
            EventKind::LockAcquire | EventKind::LockRelease => format!(" (mutex {})", e.a),
            _ if e.a != 0 || e.b != 0 => format!(" (a={}, b={})", e.a, e.b),
            _ => String::new(),
        };
        out.push_str(&format!(
            "[{:>10}us vp{:<2}] {:<13} t{}{}\n",
            us,
            e.vp,
            e.kind.name(),
            e.thread,
            detail
        ));
    }
    out
}

fn cancel_origin(a: u32) -> &'static str {
    match a {
        0 => "state request",
        1 => "park unwind",
        2 => "leaked at determine",
        _ => "unknown",
    }
}

fn switch_disposition(a: u32) -> &'static str {
    match a {
        0 => "yielded",
        1 => "preempted",
        2 => "blocked",
        3 => "suspended",
        4 => "returned",
        _ => "unknown",
    }
}

fn push_json_event(out: &mut String, frag: &str) {
    if out.len() > 1 {
        out.push(',');
        out.push('\n');
    }
    out.push_str(frag);
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Records a scheduler event through a [`Tracer`], costing one relaxed
/// atomic load when tracing is disabled.
///
/// The first operand is any expression yielding `&Tracer`; the second is
/// the recording VP (`Option<usize>`); then the [`EventKind`], the thread
/// id (`u64`), and optionally the two payload words.
#[macro_export]
macro_rules! trace_event {
    ($tracer:expr, $vp:expr, $kind:expr, $thread:expr) => {
        $crate::trace_event!($tracer, $vp, $kind, $thread, 0, 0)
    };
    ($tracer:expr, $vp:expr, $kind:expr, $thread:expr, $a:expr) => {
        $crate::trace_event!($tracer, $vp, $kind, $thread, $a, 0)
    };
    ($tracer:expr, $vp:expr, $kind:expr, $thread:expr, $a:expr, $b:expr) => {{
        let tracer: &$crate::trace::Tracer = $tracer;
        if tracer.is_enabled() {
            tracer.record($vp, $kind, $thread, $a as u32, $b as u32);
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots_in_order() {
        let t = Tracer::new(2, 64, true);
        t.record(Some(0), EventKind::Fork, 1, 0, 0);
        t.record(Some(1), EventKind::Dispatch, 1, 0, 0);
        t.record(None, EventKind::Determine, 1, 0, 0);
        let events = t.snapshot();
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert_eq!(events.iter().filter(|e| e.vp == 2).count(), 1); // external lane
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(1, 64, false);
        t.record(Some(0), EventKind::Fork, 1, 0, 0);
        trace_event!(&t, Some(0), EventKind::Steal, 7, 3);
        assert_eq!(t.recorded(), 0);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn ring_wraparound_keeps_newest() {
        let t = Tracer::new(1, 16, true);
        for i in 0..100u64 {
            t.record(Some(0), EventKind::Enqueue, i, 0, 0);
        }
        let events = t.snapshot();
        assert_eq!(events.len(), 16);
        let ids: Vec<u64> = events.iter().map(|e| e.thread).collect();
        assert_eq!(ids, (84..100).collect::<Vec<u64>>());
        assert_eq!(t.recorded(), 100);
    }

    #[test]
    fn payload_words_round_trip() {
        let t = Tracer::new(4, 64, true);
        t.record(Some(3), EventKind::Migrate, 42, 3, 1);
        let events = t.snapshot();
        assert_eq!(
            events,
            vec![TraceEvent {
                ts_ns: events[0].ts_ns,
                vp: 3,
                kind: EventKind::Migrate,
                thread: 42,
                a: 3,
                b: 1,
                lc: 1,
            }]
        );
    }

    #[test]
    fn lamport_clock_is_strictly_increasing_and_witnessable() {
        let a = Tracer::new(1, 64, true);
        let b = Tracer::new(1, 64, true);
        a.record(Some(0), EventKind::Fork, 1, 0, 0);
        a.record(Some(0), EventKind::Enqueue, 1, 0, 0);
        // Simulate a cross-shard message: b witnesses a's clock, so b's
        // next event sorts after everything a recorded before the send.
        b.witness(a.clock());
        b.record(Some(0), EventKind::Enqueue, 1, 0, 0);
        let ea = a.snapshot();
        let eb = b.snapshot();
        assert_eq!(ea.iter().map(|e| e.lc).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(eb[0].lc, 3);
        // A stale witness never moves the clock backwards.
        a.witness(0);
        assert_eq!(a.clock(), 2);
        // Merged order is cause-before-effect regardless of wall clocks.
        let mut merged = [ea, eb].concat();
        sort_events(&mut merged);
        assert_eq!(merged.last().unwrap().lc, 3);
    }

    #[test]
    fn out_of_range_vp_goes_to_external_lane() {
        let t = Tracer::new(2, 64, true);
        t.record(Some(99), EventKind::Fork, 1, 0, 0);
        assert_eq!(t.snapshot()[0].vp, t.external_lane());
    }

    #[test]
    fn chrome_export_shape() {
        let t = Tracer::new(1, 64, true);
        t.record(Some(0), EventKind::Dispatch, 5, 0, 0);
        t.record(Some(0), EventKind::Steal, 6, 2, 0);
        t.record(Some(0), EventKind::Switch, 5, 4, 0);
        let json = chrome_json("test", &t.snapshot());
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains(r#""ph":"B""#));
        assert!(json.contains(r#""ph":"E""#));
        assert!(json.contains(r#""ph":"i""#));
        assert!(json.contains(r#""name":"steal t6""#));
    }

    #[test]
    fn text_dump_mentions_each_event() {
        let t = Tracer::new(1, 64, true);
        t.record(Some(0), EventKind::Migrate, 9, 0, 1);
        let dump = text_dump(&t.snapshot());
        assert!(dump.contains("migrate"));
        assert!(dump.contains("t9"));
        assert!(dump.contains("vp0 -> vp1"));
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let t = std::sync::Arc::new(Tracer::new(1, 128, true));
        let mut handles = Vec::new();
        for w in 0..4u64 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    t.record(Some(0), EventKind::Enqueue, w * 10_000 + i, 0, 0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.recorded(), 4000);
        // Every surfaced event must be coherent (valid kind, sane id).
        for e in t.snapshot() {
            assert_eq!(e.kind, EventKind::Enqueue);
            assert!(e.thread % 10_000 < 1000);
        }
    }
}
