//! Virtual-processor topologies and self-relative addressing.
//!
//! Because VPs are first-class and enumerable, "systolic style programs can
//! be expressed by using self-relative addressing off the current VP (e.g.,
//! left-VP, right-VP, up-VP, etc.). The system provides a number of default
//! addressing modes for many common topologies (e.g., hypercubes, meshes,
//! systolic arrays...)".  A [`Topology`] maps VP indices to neighbours.
//!
//! ```
//! use sting_core::topology::Topology;
//!
//! let mesh = Topology::mesh(3, 4);
//! assert_eq!(mesh.len(), 12);
//! assert_eq!(mesh.right(0), Some(1));
//! assert_eq!(mesh.down(0), Some(4));
//! assert_eq!(mesh.up(0), None);
//!
//! let ring = Topology::ring(4);
//! assert_eq!(ring.right(3), Some(0));
//! ```

/// A logical arrangement of a machine's virtual processors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// A bidirectional ring of `n` VPs (wrap-around left/right).
    Ring {
        /// Number of VPs.
        n: usize,
    },
    /// A `rows × cols` mesh without wrap-around.
    Mesh {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// A `rows × cols` torus (mesh with wrap-around).
    Torus {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// A hypercube of dimension `dim` (`2^dim` VPs).
    Hypercube {
        /// Dimension.
        dim: u32,
    },
    /// A fleet of `shards` VM shards with `vps` VPs each (see
    /// [`crate::fleet`]).  Global VP index = `shard * vps + local`.
    /// Left/right walk the shard-local ring; up/down step to the same
    /// local index on the neighbouring shard — a `shards × vps` torus
    /// whose rows are shards.
    Sharded {
        /// Number of VM shards.
        shards: usize,
        /// VPs per shard.
        vps: usize,
    },
}

impl Topology {
    /// A ring of `n` VPs.
    pub fn ring(n: usize) -> Topology {
        Topology::Ring { n }
    }

    /// A mesh (no wrap-around).
    pub fn mesh(rows: usize, cols: usize) -> Topology {
        Topology::Mesh { rows, cols }
    }

    /// A torus (wrap-around mesh).
    pub fn torus(rows: usize, cols: usize) -> Topology {
        Topology::Torus { rows, cols }
    }

    /// A hypercube with `2^dim` corners.
    pub fn hypercube(dim: u32) -> Topology {
        Topology::Hypercube { dim }
    }

    /// A fleet topology: `shards` shards of `vps` VPs each.
    pub fn sharded(shards: usize, vps: usize) -> Topology {
        Topology::Sharded { shards, vps }
    }

    /// The shard owning global VP `vp` (fleet topologies only).
    pub fn shard_of(&self, vp: usize) -> Option<usize> {
        match *self {
            Topology::Sharded { shards, vps } if vps > 0 && vp < shards * vps => Some(vp / vps),
            _ => None,
        }
    }

    /// The shard-local index of global VP `vp` (fleet topologies only).
    pub fn local_of(&self, vp: usize) -> Option<usize> {
        match *self {
            Topology::Sharded { shards, vps } if vps > 0 && vp < shards * vps => Some(vp % vps),
            _ => None,
        }
    }

    /// Number of VPs the topology addresses.
    pub fn len(&self) -> usize {
        match *self {
            Topology::Ring { n } => n,
            Topology::Mesh { rows, cols } | Topology::Torus { rows, cols } => rows * cols,
            Topology::Hypercube { dim } => 1usize << dim,
            Topology::Sharded { shards, vps } => shards * vps,
        }
    }

    /// Whether the topology is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The VP to the "left" of `vp` (row-major previous), if any.
    pub fn left(&self, vp: usize) -> Option<usize> {
        match *self {
            Topology::Ring { n } => (n > 0).then(|| (vp + n - 1) % n),
            Topology::Mesh { cols, .. } => (!vp.is_multiple_of(cols)).then(|| vp - 1),
            Topology::Torus { cols, .. } | Topology::Sharded { vps: cols, .. } => {
                let row = vp / cols;
                Some(row * cols + (vp % cols + cols - 1) % cols)
            }
            Topology::Hypercube { .. } => self.neighbor_across(vp, 0),
        }
    }

    /// The VP to the "right" of `vp` (row-major next), if any.
    pub fn right(&self, vp: usize) -> Option<usize> {
        match *self {
            Topology::Ring { n } => (n > 0).then(|| (vp + 1) % n),
            Topology::Mesh { rows, cols } => {
                (vp % cols + 1 < cols && vp < rows * cols).then(|| vp + 1)
            }
            Topology::Torus { cols, .. } | Topology::Sharded { vps: cols, .. } => {
                let row = vp / cols;
                Some(row * cols + (vp % cols + 1) % cols)
            }
            Topology::Hypercube { .. } => self.neighbor_across(vp, 0),
        }
    }

    /// The VP "above" `vp`, if any (meshes/tori only).
    pub fn up(&self, vp: usize) -> Option<usize> {
        match *self {
            Topology::Mesh { cols, .. } => (vp >= cols).then(|| vp - cols),
            Topology::Torus { rows, cols }
            | Topology::Sharded {
                shards: rows,
                vps: cols,
            } => {
                let col = vp % cols;
                let row = vp / cols;
                Some(((row + rows - 1) % rows) * cols + col)
            }
            _ => None,
        }
    }

    /// The VP "below" `vp`, if any (meshes/tori only).
    pub fn down(&self, vp: usize) -> Option<usize> {
        match *self {
            Topology::Mesh { rows, cols } => (vp + cols < rows * cols).then(|| vp + cols),
            Topology::Torus { rows, cols }
            | Topology::Sharded {
                shards: rows,
                vps: cols,
            } => {
                let col = vp % cols;
                let row = vp / cols;
                Some(((row + 1) % rows) * cols + col)
            }
            _ => None,
        }
    }

    /// The hypercube neighbour across dimension `d`, if addressable.
    pub fn neighbor_across(&self, vp: usize, d: u32) -> Option<usize> {
        match *self {
            Topology::Hypercube { dim } if d < dim && vp < (1 << dim) => Some(vp ^ (1 << d)),
            _ => None,
        }
    }

    /// All neighbours of `vp` in the topology.
    pub fn neighbors(&self, vp: usize) -> Vec<usize> {
        match *self {
            Topology::Ring { .. } => {
                let mut v: Vec<usize> = [self.left(vp), self.right(vp)]
                    .into_iter()
                    .flatten()
                    .collect();
                v.dedup();
                v
            }
            Topology::Mesh { .. } | Topology::Torus { .. } | Topology::Sharded { .. } => {
                let mut v: Vec<usize> = [self.up(vp), self.down(vp), self.left(vp), self.right(vp)]
                    .into_iter()
                    .flatten()
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            }
            Topology::Hypercube { dim } => (0..dim)
                .filter_map(|d| self.neighbor_across(vp, d))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps() {
        let r = Topology::ring(4);
        assert_eq!(r.left(0), Some(3));
        assert_eq!(r.right(3), Some(0));
        assert_eq!(r.neighbors(1), vec![0, 2]);
    }

    #[test]
    fn ring_of_one() {
        let r = Topology::ring(1);
        assert_eq!(r.left(0), Some(0));
        assert_eq!(r.neighbors(0), vec![0]);
    }

    #[test]
    fn mesh_edges() {
        let m = Topology::mesh(2, 3);
        assert_eq!(m.len(), 6);
        assert_eq!(m.left(0), None);
        assert_eq!(m.right(2), None);
        assert_eq!(m.up(1), None);
        assert_eq!(m.down(4), None);
        assert_eq!(m.neighbors(4), vec![1, 3, 5]);
    }

    #[test]
    fn torus_wraps_both_ways() {
        let t = Topology::torus(2, 3);
        assert_eq!(t.left(0), Some(2));
        assert_eq!(t.up(0), Some(3));
        assert_eq!(t.down(3), Some(0));
        assert_eq!(t.right(5), Some(3));
    }

    #[test]
    fn hypercube_neighbors() {
        let h = Topology::hypercube(3);
        assert_eq!(h.len(), 8);
        assert_eq!(h.neighbors(0), vec![1, 2, 4]);
        assert_eq!(h.neighbor_across(5, 1), Some(7));
        assert_eq!(h.neighbor_across(5, 3), None);
    }

    #[test]
    fn all_neighbors_are_in_range() {
        for topo in [
            Topology::ring(5),
            Topology::mesh(3, 4),
            Topology::torus(3, 4),
            Topology::hypercube(4),
        ] {
            for vp in 0..topo.len() {
                for n in topo.neighbors(vp) {
                    assert!(n < topo.len(), "{topo:?} vp {vp} neighbour {n}");
                }
            }
        }
    }
}
