//! Thread control blocks: the dynamic context of an evaluating thread.
//!
//! A [`Tcb`] pairs a stackful fiber (the thread's machine stack and saved
//! registers) with the shared dynamic-state record (`TcbShared`) that the
//! paper keeps in the TCB: the current VP, the quantum, preemption bits and
//! the identity stack used by thread stealing.  TCBs move by value between
//! the VP run loop, policy-manager ready queues and the `parked` slot of a
//! blocked thread; `TcbShared` is the part that stays reachable from TLS
//! while the thread runs.

use crate::thread::{Thread, ThreadResult};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use sting_context::fiber::{Fiber, Suspender};

/// Message delivered to a thread when its fiber is resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Wakeup {
    /// Normal scheduling; the thread should continue (and re-check any
    /// condition it blocked on).
    Run,
}

/// Why a thread re-entered the thread controller (fiber yield payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Disposition {
    /// Re-enqueue me (yield-processor or preemption).
    Yielded {
        /// Whether the yield was forced by preemption.
        preempted: bool,
    },
    /// Park me; somebody holds my `Arc<Thread>` and will unblock me.
    Blocked,
    /// Park me as suspended (timer or explicit `thread-run` resumes me).
    Suspended,
}

pub(crate) type ThreadFiber = Fiber<Wakeup, Disposition, ThreadResult>;
pub(crate) type ThreadSuspender = Suspender<Wakeup, Disposition, ThreadResult>;

/// The dynamic thread state shared between the running thread (via TLS) and
/// the scheduler that owns the fiber.
pub(crate) struct TcbShared {
    /// The thread this TCB currently executes.
    pub(crate) thread: Arc<Thread>,
    /// Raw pointer to the fiber's `Suspender`, valid while the fiber is
    /// alive; written once at fiber entry.
    pub(crate) suspender: AtomicUsize,
    /// Index of the VP currently (or last) running this TCB.
    pub(crate) vp_index: AtomicUsize,
    /// Nesting depth of `without-preemption` sections.
    pub(crate) preempt_disabled: AtomicU32,
    /// Set when a preemption arrived while disabled; honoured at re-enable
    /// (the paper's "subsequent preemption should not be ignored" bit).
    pub(crate) deferred_preempt: AtomicBool,
    /// Ticks remaining in the current scheduling slice.
    pub(crate) ticks_left: AtomicU32,
    /// Nesting depth of in-progress steals on this TCB; bounded so chains
    /// of stolen thunks cannot overflow the machine stack.
    pub(crate) steal_depth: AtomicU32,
    /// Identity stack: `current-thread` is the top.  Stealing pushes the
    /// stolen thread's identity while its thunk runs on this TCB.
    pub(crate) identity: Mutex<Vec<Arc<Thread>>>,
}

impl TcbShared {
    pub(crate) fn new(thread: Arc<Thread>, vp_index: usize) -> Arc<TcbShared> {
        let quantum = thread.quantum();
        Arc::new(TcbShared {
            identity: Mutex::new(vec![thread.clone()]),
            thread,
            suspender: AtomicUsize::new(0),
            vp_index: AtomicUsize::new(vp_index),
            preempt_disabled: AtomicU32::new(0),
            deferred_preempt: AtomicBool::new(false),
            ticks_left: AtomicU32::new(quantum),
            steal_depth: AtomicU32::new(0),
        })
    }

    /// The thread whose code is currently executing on this TCB (the stolen
    /// thread during a steal, otherwise the TCB's owner).
    pub(crate) fn current_identity(&self) -> Arc<Thread> {
        self.identity
            .lock()
            .last()
            .cloned()
            .unwrap_or_else(|| self.thread.clone())
    }

    pub(crate) fn reset_ticks(&self) {
        self.ticks_left
            .store(self.thread.quantum().max(1), Ordering::Relaxed);
    }
}

impl std::fmt::Debug for TcbShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcbShared")
            .field("thread", &self.thread.id())
            .field("vp_index", &self.vp_index.load(Ordering::Relaxed))
            .finish()
    }
}

/// A thread control block: the fiber plus its shared dynamic state.
///
/// Opaque to policy managers (they move TCBs through ready queues without
/// inspecting them); the scheduler resumes the fiber.
pub struct Tcb {
    pub(crate) fiber: ThreadFiber,
    pub(crate) shared: Arc<TcbShared>,
}

impl Tcb {
    /// The thread that owns this TCB.
    pub fn thread(&self) -> &Arc<Thread> {
        &self.shared.thread
    }
}

impl std::fmt::Debug for Tcb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tcb")
            .field("thread", &self.shared.thread.id())
            .field("done", &self.fiber.is_done())
            .finish()
    }
}
