//! Non-blocking TCP for STING threads: sockets that block only the caller.
//!
//! [`TcpListener`] and [`TcpStream`] wrap the raw non-blocking sockets
//! from [`crate::sys`] with the substrate's blocking protocol: every
//! `accept`/`connect`/`read`/`write` attempts the syscall, and on `EAGAIN`
//! parks the calling STING thread on fd readiness through the VM's
//! reactor driver ([`crate::reactor::IoDriver`]) — the virtual processor
//! carries on running other threads, and the kernel's readiness event
//! wakes exactly this thread through its generation-numbered wait episode.
//! Each operation has the trailing-`deadline` variant the rest of the
//! substrate's blocking ops have, and terminating a thread parked in one
//! unwinds it cleanly (the pending readiness then dies against the
//! finished episode).
//!
//! Called from a plain OS thread (no VP to protect), the same operations
//! degrade to a per-call `ppoll` — correct, just without the
//! thread-multiplexing benefit.
//!
//! The address type is deliberately minimal (IPv4 quad + port): the
//! substrate is a concurrency testbed, not a sockets library, and
//! loopback benchmarking needs nothing more.  Share a stream across
//! threads with an `Arc`; one reader and one writer may operate
//! concurrently, but two concurrent readers (or writers) displace each
//! other's readiness registration and make no progress guarantee.

use crate::sys::{self, RawFd};
use crate::tc;
use std::fmt;
use std::time::Instant;
use sting_value::Value;

/// Why a socket operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// The operation's deadline passed before it could complete.
    TimedOut,
    /// The kernel refused with this errno.
    Os(sys::Errno),
}

impl NetError {
    /// Whether this is the deadline outcome.
    pub fn is_timeout(&self) -> bool {
        matches!(self, NetError::TimedOut)
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::TimedOut => write!(f, "operation timed out"),
            NetError::Os(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<sys::Errno> for NetError {
    fn from(e: sys::Errno) -> NetError {
        NetError::Os(e)
    }
}

/// Parks until `fd` is (probably) ready for the given direction, or the
/// deadline passes.  On a STING thread this goes through the VM's reactor
/// driver and blocks only the thread; on a plain OS thread it degrades to
/// `ppoll`.  Spurious returns are fine — the caller always retries the
/// non-blocking syscall, which is what decides.
fn await_ready(
    fd: RawFd,
    write: bool,
    blocker: &Value,
    deadline: Option<Instant>,
) -> Result<(), NetError> {
    if let Some(vm) = tc::current_owner().and_then(|t| t.vm()) {
        match vm.io_driver().wait_ready(fd, write, blocker, deadline)? {
            crate::wait::WakeReason::TimedOut => Err(NetError::TimedOut),
            // Woken: readiness (or a spurious/displaced wake) — retry.
            // Cancelled without an unwind is a defensive corner; treat it
            // as spurious and let the retry (or the pending terminate
            // request at the next park) settle it.
            _ => Ok(()),
        }
    } else {
        let timeout_ms = match deadline {
            None => -1,
            Some(d) => d
                .saturating_duration_since(Instant::now())
                .as_millis()
                .min(i32::MAX as u128) as i32,
        };
        let want = if write { sys::POLLOUT } else { sys::POLLIN };
        sys::poll_one(fd, want, timeout_ms)?;
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(NetError::TimedOut);
        }
        Ok(())
    }
}

/// A passive TCP socket whose [`accept`](TcpListener::accept) blocks only
/// the calling STING thread.
pub struct TcpListener {
    fd: RawFd,
}

impl TcpListener {
    /// Binds to `addr:port` (`port` 0 = kernel-chosen, see
    /// [`TcpListener::local_port`]) and starts listening.
    ///
    /// # Errors
    ///
    /// The raw errno for an unbindable address (in use, privileged port).
    pub fn bind(addr: [u8; 4], port: u16) -> Result<TcpListener, NetError> {
        let fd = sys::socket_tcp()?;
        let setup = (|| {
            sys::set_reuseaddr(fd)?;
            sys::bind_ipv4(fd, u32::from_be_bytes(addr), port)?;
            sys::listen(fd, 1024)
        })();
        if let Err(e) = setup {
            let _ = sys::close(fd);
            return Err(e.into());
        }
        Ok(TcpListener { fd })
    }

    /// The locally-bound port (what the kernel picked for port 0).
    ///
    /// # Errors
    ///
    /// The raw errno (only for a defunct socket).
    pub fn local_port(&self) -> Result<u16, NetError> {
        Ok(sys::local_port(self.fd)?)
    }

    /// Accepts one connection, blocking only the calling STING thread.
    ///
    /// # Errors
    ///
    /// The raw errno (e.g. fd exhaustion).
    pub fn accept(&self) -> Result<TcpStream, NetError> {
        self.accept_inner(None)
    }

    /// [`TcpListener::accept`] that gives up at `deadline`.
    ///
    /// # Errors
    ///
    /// [`NetError::TimedOut`] at the deadline, else the raw errno.
    pub fn accept_deadline(&self, deadline: Instant) -> Result<TcpStream, NetError> {
        self.accept_inner(Some(deadline))
    }

    fn accept_inner(&self, deadline: Option<Instant>) -> Result<TcpStream, NetError> {
        let blocker = Value::sym("tcp-accept");
        loop {
            match sys::accept4(self.fd) {
                Ok(fd) => {
                    // Echo-style workloads measure per-message latency;
                    // never let Nagle sit on a reply.
                    let _ = sys::set_nodelay(fd);
                    return Ok(TcpStream { fd });
                }
                Err(sys::Errno(sys::EAGAIN)) => await_ready(self.fd, false, &blocker, deadline)?,
                Err(sys::Errno(sys::EINTR)) => {}
                Err(e) => return Err(e.into()),
            }
        }
    }
}

impl Drop for TcpListener {
    fn drop(&mut self) {
        let _ = sys::close(self.fd);
    }
}

impl fmt::Debug for TcpListener {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpListener").field("fd", &self.fd).finish()
    }
}

/// A connected TCP socket whose reads and writes block only the calling
/// STING thread (see the module docs for the sharing discipline).
pub struct TcpStream {
    fd: RawFd,
}

impl TcpStream {
    /// Connects to `addr:port`, blocking only the calling STING thread.
    ///
    /// # Errors
    ///
    /// The raw errno (e.g. `ECONNREFUSED`).
    pub fn connect(addr: [u8; 4], port: u16) -> Result<TcpStream, NetError> {
        TcpStream::connect_inner(addr, port, None)
    }

    /// [`TcpStream::connect`] that gives up at `deadline`.
    ///
    /// # Errors
    ///
    /// [`NetError::TimedOut`] at the deadline, else the raw errno.
    pub fn connect_deadline(
        addr: [u8; 4],
        port: u16,
        deadline: Instant,
    ) -> Result<TcpStream, NetError> {
        TcpStream::connect_inner(addr, port, Some(deadline))
    }

    fn connect_inner(
        addr: [u8; 4],
        port: u16,
        deadline: Option<Instant>,
    ) -> Result<TcpStream, NetError> {
        let fd = sys::socket_tcp()?;
        let stream = TcpStream { fd }; // closes on early error-return
        let addr = u32::from_be_bytes(addr);
        let blocker = Value::sym("tcp-connect");
        // A retried connect() doubles as the completion check: once the
        // socket connects it reports EISCONN, and a hard failure surfaces
        // as its errno — no getsockopt(SO_ERROR) binding needed.
        loop {
            match sys::connect_ipv4(fd, addr, port) {
                Ok(()) | Err(sys::Errno(sys::EISCONN)) => break,
                Err(sys::Errno(sys::EINPROGRESS)) | Err(sys::Errno(sys::EALREADY)) => {
                    await_ready(fd, true, &blocker, deadline)?;
                }
                Err(sys::Errno(sys::EINTR)) => {}
                Err(e) => return Err(e.into()),
            }
        }
        let _ = sys::set_nodelay(fd);
        Ok(stream)
    }

    /// Reads into `buf`, blocking only the calling STING thread.
    /// `Ok(0)` is end-of-stream.
    ///
    /// # Errors
    ///
    /// The raw errno (e.g. `ECONNRESET`).
    pub fn read(&self, buf: &mut [u8]) -> Result<usize, NetError> {
        self.read_inner(buf, None)
    }

    /// [`TcpStream::read`] that gives up at `deadline`.
    ///
    /// # Errors
    ///
    /// [`NetError::TimedOut`] at the deadline, else the raw errno.
    pub fn read_deadline(&self, buf: &mut [u8], deadline: Instant) -> Result<usize, NetError> {
        self.read_inner(buf, Some(deadline))
    }

    fn read_inner(&self, buf: &mut [u8], deadline: Option<Instant>) -> Result<usize, NetError> {
        let blocker = Value::sym("tcp-read");
        loop {
            match sys::read(self.fd, buf) {
                Ok(n) => return Ok(n),
                Err(sys::Errno(sys::EAGAIN)) => await_ready(self.fd, false, &blocker, deadline)?,
                Err(sys::Errno(sys::EINTR)) => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Writes some of `buf` (possibly a short count), blocking only the
    /// calling STING thread.
    ///
    /// # Errors
    ///
    /// The raw errno (e.g. `EPIPE`).
    pub fn write(&self, buf: &[u8]) -> Result<usize, NetError> {
        self.write_inner(buf, None)
    }

    /// Writes all of `buf`, blocking only the calling STING thread.
    ///
    /// # Errors
    ///
    /// The raw errno; a partial write followed by a hard error reports
    /// the error.
    pub fn write_all(&self, buf: &[u8]) -> Result<(), NetError> {
        self.write_all_inner(buf, None)
    }

    /// [`TcpStream::write_all`] that gives up at `deadline`.
    ///
    /// # Errors
    ///
    /// [`NetError::TimedOut`] at the deadline (some bytes may already be
    /// out), else the raw errno.
    pub fn write_all_deadline(&self, buf: &[u8], deadline: Instant) -> Result<(), NetError> {
        self.write_all_inner(buf, Some(deadline))
    }

    fn write_inner(&self, buf: &[u8], deadline: Option<Instant>) -> Result<usize, NetError> {
        let blocker = Value::sym("tcp-write");
        loop {
            match sys::write(self.fd, buf) {
                Ok(n) => return Ok(n),
                Err(sys::Errno(sys::EAGAIN)) => await_ready(self.fd, true, &blocker, deadline)?,
                Err(sys::Errno(sys::EINTR)) => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn write_all_inner(&self, mut buf: &[u8], deadline: Option<Instant>) -> Result<(), NetError> {
        while !buf.is_empty() {
            let n = self.write_inner(buf, deadline)?;
            buf = &buf[n..];
        }
        Ok(())
    }

    /// Sends EOF to the peer (half-close of the write side); reads still
    /// work.
    pub fn shutdown_write(&self) {
        let _ = sys::shutdown(self.fd, sys::SHUT_WR);
    }

    /// Shuts down both directions now — an explicit close for handles
    /// whose drop is deferred (e.g. garbage-collected language bindings).
    /// The fd itself still closes when the handle drops.
    pub fn close(&self) {
        let _ = sys::shutdown(self.fd, sys::SHUT_RDWR);
    }
}

impl Drop for TcpStream {
    fn drop(&mut self) {
        let _ = sys::close(self.fd);
    }
}

impl fmt::Debug for TcpStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpStream").field("fd", &self.fd).finish()
    }
}

/// Loopback, for tests and benches.
pub const LOCALHOST: [u8; 4] = [127, 0, 0, 1];

#[cfg(all(test, not(sting_check)))]
mod tests {
    use super::*;
    use std::time::Duration;

    // These run on plain OS threads (the ppoll degradation path); the
    // STING-thread paths are covered by crates/core/tests/net.rs with
    // tracing and a shutdown audit.

    #[test]
    fn os_thread_echo_round_trip() {
        let listener = TcpListener::bind(LOCALHOST, 0).unwrap();
        let port = listener.local_port().unwrap();
        let h = std::thread::spawn(move || {
            let s = listener.accept().unwrap();
            let mut buf = [0u8; 16];
            let n = s.read(&mut buf).unwrap();
            s.write_all(&buf[..n]).unwrap();
        });
        let c = TcpStream::connect(LOCALHOST, port).unwrap();
        c.write_all(b"hello").unwrap();
        let mut buf = [0u8; 16];
        let n = c.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");
        h.join().unwrap();
    }

    #[test]
    fn accept_deadline_times_out() {
        let listener = TcpListener::bind(LOCALHOST, 0).unwrap();
        let start = Instant::now();
        let r = listener.accept_deadline(start + Duration::from_millis(30));
        assert_eq!(r.unwrap_err(), NetError::TimedOut);
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn read_deadline_times_out_then_delivers() {
        let listener = TcpListener::bind(LOCALHOST, 0).unwrap();
        let port = listener.local_port().unwrap();
        let c = TcpStream::connect(LOCALHOST, port).unwrap();
        let s = listener.accept().unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(
            s.read_deadline(&mut buf, Instant::now() + Duration::from_millis(20))
                .unwrap_err(),
            NetError::TimedOut
        );
        c.write_all(b"late").unwrap();
        let n = s
            .read_deadline(&mut buf, Instant::now() + Duration::from_secs(2))
            .unwrap();
        assert_eq!(&buf[..n], b"late");
    }

    #[test]
    fn eof_reads_as_zero() {
        let listener = TcpListener::bind(LOCALHOST, 0).unwrap();
        let port = listener.local_port().unwrap();
        let c = TcpStream::connect(LOCALHOST, port).unwrap();
        let s = listener.accept().unwrap();
        c.shutdown_write();
        let mut buf = [0u8; 8];
        assert_eq!(s.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn connect_refused_reports_errno() {
        // Bind-then-drop gives a port that is very likely unbound.
        let port = {
            let l = TcpListener::bind(LOCALHOST, 0).unwrap();
            l.local_port().unwrap()
        };
        match TcpStream::connect(LOCALHOST, port) {
            Err(NetError::Os(e)) => assert_eq!(e.name(), "ECONNREFUSED"),
            other => panic!("expected refusal, got {other:?}"),
        }
    }
}
