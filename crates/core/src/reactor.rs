//! Readiness-driven I/O: the reactor and its driver.
//!
//! The paper's substrate promises "non-blocking I/O calls with call-back"
//! (§2.3): a thread making an OS call blocks **itself**, never its virtual
//! processor.  This module supplies the mechanism for calls the kernel can
//! express as *readiness* — sockets, pipes, anything pollable:
//!
//! * [`Reactor`] — the customization point: readiness registration plus a
//!   timed wait.  The substrate ships [`EpollReactor`], a Linux epoll
//!   backend on the raw syscalls in [`crate::sys`] (one-shot
//!   registrations, an `eventfd` for cross-thread kicks).
//! * [`IoDriver`] — one per [`Vm`], the "reactor VP": a dedicated driver
//!   loop that sits in [`Reactor::wait`] and converts each readiness event
//!   into a wake-up of the STING thread parked on that fd.
//!
//! The integration with the scheduler is deliberately thin: a thread that
//! hits `EAGAIN` parks through the **same generation-numbered wait
//! episode** ([`crate::wait::Waiter`]) as every other blocking operation.
//! The driver holds nothing but `Waiter` clones, so cancellation and
//! timeouts need no deregistration round-trip — a terminated or timed-out
//! thread's episode is dead, the driver's [`Waiter::wake`] fails the claim
//! CAS, and the stale registry slot is pruned by the next event or the
//! waiter's own exit guard.  This mirrors *Minimising virtual machine
//! support for concurrency* (PAPERS.md): the kernel-facing mechanism is one
//! loop and one wake primitive; all policy stays in library code.
//!
//! Wake-ups ride the ordinary unblock path (`Waiter::wake` →
//! `Thread::unblock_claimed` → home-VP enqueue → machine signal), so the
//! [block→wake latency histograms](crate::metrics) measure reactor wakes
//! with no extra plumbing — the server benchmark rows in `sting-bench`
//! read them directly.

use crate::sys::{self, RawFd};
use crate::tls;
use crate::trace::EventKind;
use crate::vm::Vm;
use crate::wait::{Waiter, WakeReason};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::Instant;
use sting_value::Value;

/// Interest/readiness bit: the fd is (or should be watched for) readable.
pub const READ: u8 = 0b001;
/// Interest/readiness bit: the fd is (or should be watched for) writable.
pub const WRITE: u8 = 0b010;
/// Readiness bit: error or hang-up — delivered to *every* waiter on the
/// fd, so the subsequent syscall retry surfaces the real errno/EOF.
pub const ERROR: u8 = 0b100;

/// One readiness event out of [`Reactor::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadyEvent {
    /// The user word given at [`Reactor::arm`] time.
    pub token: u64,
    /// [`READ`] | [`WRITE`] | [`ERROR`] bits.
    pub mask: u8,
}

/// A source of fd readiness: registration plus a timed wait.
///
/// Registrations are **one-shot**: after an event for an fd is delivered,
/// the fd is disarmed until the next [`Reactor::arm`].  One-shot semantics
/// map 1:1 onto wait episodes (arm ↔ park, event ↔ wake) and make a
/// level-triggered backend safe against event storms for data nobody has
/// consumed yet.
pub trait Reactor: Send + Sync + 'static {
    /// Arms (or re-arms) `fd` for the interests in `mask` ([`READ`] |
    /// [`WRITE`]), tagging the eventual event with `token`.
    fn arm(&self, fd: RawFd, mask: u8, token: u64) -> sys::Result<()>;

    /// Drops `fd` from the interest set entirely (best effort — closing
    /// an fd implicitly forgets it).
    fn forget(&self, fd: RawFd);

    /// Blocks up to `timeout_ms` (< 0 = forever) for events, appending
    /// them to `out`.  Returns spuriously empty on interrupts and
    /// [`Reactor::notify`] kicks.
    fn wait(&self, out: &mut Vec<ReadyEvent>, timeout_ms: i32) -> sys::Result<()>;

    /// Kicks a concurrent [`Reactor::wait`] awake from any thread.
    fn notify(&self);

    /// Cumulative kernel round-trips this backend has made (arms, waits,
    /// kicks — the per-backend cost model the `server/syscalls-per-wake`
    /// benchmark rows divide down).  Backends that do not count return 0.
    fn syscalls(&self) -> u64 {
        0
    }
}

/// Which [`Reactor`] backend a VM's I/O driver should use.
///
/// Selected at build time via
/// [`VmBuilder::io_backend`](crate::builder::VmBuilder::io_backend); the
/// `STING_IO_BACKEND` environment variable (`auto` | `epoll` | `uring`)
/// overrides the *default* so CI can sweep the matrix without code
/// changes, but an explicit builder choice always wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoBackend {
    /// Probe io_uring at driver start and fall back to epoll when the
    /// kernel (or a seccomp filter) refuses the ring. The default.
    #[default]
    Auto,
    /// The epoll backend ([`EpollReactor`]): one `epoll_ctl` per arm.
    Epoll,
    /// The io_uring backend ([`UringReactor`](crate::uring::UringReactor)):
    /// batched arms, one `io_uring_enter` per dispatch pass.  Driver
    /// start-up fails if the kernel lacks io_uring — use [`IoBackend::Auto`]
    /// for graceful fallback.
    IoUring,
}

impl IoBackend {
    /// The default backend: `STING_IO_BACKEND` when set (unknown values
    /// are ignored), else [`IoBackend::Auto`].
    pub fn from_env() -> IoBackend {
        match std::env::var("STING_IO_BACKEND").as_deref() {
            Ok("epoll") => IoBackend::Epoll,
            Ok("uring") | Ok("io_uring") => IoBackend::IoUring,
            _ => IoBackend::Auto,
        }
    }

    /// Builds the chosen reactor, resolving [`IoBackend::Auto`] by
    /// probing io_uring first.  Returns the reactor and the resolved
    /// backend label ("epoll" / "uring") for metrics rows.
    fn build(self) -> sys::Result<(Arc<dyn Reactor>, &'static str)> {
        match self {
            IoBackend::Epoll => Ok((Arc::new(EpollReactor::new()?), "epoll")),
            IoBackend::IoUring => Ok((Arc::new(crate::uring::UringReactor::new()?), "uring")),
            IoBackend::Auto => match crate::uring::UringReactor::new() {
                Ok(r) => Ok((Arc::new(r), "uring")),
                Err(_) => Ok((Arc::new(EpollReactor::new()?), "epoll")),
            },
        }
    }
}

/// The Linux backend: an epoll instance plus an eventfd for [`Reactor::notify`].
pub struct EpollReactor {
    ep: RawFd,
    wake: RawFd,
    syscalls: std::sync::atomic::AtomicU64,
}

/// Token reserved for the internal eventfd registration.
const WAKE_TOKEN: u64 = u64::MAX;

impl EpollReactor {
    /// Creates the epoll instance and its wake-up eventfd.
    pub fn new() -> sys::Result<EpollReactor> {
        let ep = sys::epoll_create1()?;
        let wake = match sys::eventfd() {
            Ok(fd) => fd,
            Err(e) => {
                let _ = sys::close(ep);
                return Err(e);
            }
        };
        // Level-triggered and permanent: a pending notify keeps wait()
        // returning until drained.
        if let Err(e) = sys::epoll_ctl(ep, sys::EPOLL_CTL_ADD, wake, sys::EPOLLIN, WAKE_TOKEN) {
            let _ = sys::close(wake);
            let _ = sys::close(ep);
            return Err(e);
        }
        Ok(EpollReactor {
            ep,
            wake,
            syscalls: std::sync::atomic::AtomicU64::new(0),
        })
    }

    fn count(&self, n: u64) {
        self.syscalls.fetch_add(n, Ordering::Relaxed);
    }
}

impl Reactor for EpollReactor {
    fn arm(&self, fd: RawFd, mask: u8, token: u64) -> sys::Result<()> {
        let mut events = sys::EPOLLONESHOT;
        if mask & READ != 0 {
            events |= sys::EPOLLIN;
        }
        if mask & WRITE != 0 {
            events |= sys::EPOLLOUT;
        }
        self.count(1);
        match sys::epoll_ctl(self.ep, sys::EPOLL_CTL_ADD, fd, events, token) {
            Err(sys::Errno(sys::EEXIST)) => {
                self.count(1);
                sys::epoll_ctl(self.ep, sys::EPOLL_CTL_MOD, fd, events, token)
            }
            other => other,
        }
    }

    fn forget(&self, fd: RawFd) {
        self.count(1);
        let _ = sys::epoll_ctl(self.ep, sys::EPOLL_CTL_DEL, fd, 0, 0);
    }

    fn wait(&self, out: &mut Vec<ReadyEvent>, timeout_ms: i32) -> sys::Result<()> {
        let mut buf = [sys::EpollEvent::zeroed(); 64];
        self.count(1);
        let n = sys::epoll_wait(self.ep, &mut buf, timeout_ms)?;
        for ev in &buf[..n] {
            let (bits, token) = (ev.events, ev.data);
            if token == WAKE_TOKEN {
                // Drain the eventfd so the level-triggered registration
                // goes quiet until the next notify.
                let mut count = [0u8; 8];
                self.count(1);
                let _ = sys::read(self.wake, &mut count);
                continue;
            }
            let mut mask = 0u8;
            if bits & sys::EPOLLIN != 0 {
                mask |= READ;
            }
            if bits & sys::EPOLLOUT != 0 {
                mask |= WRITE;
            }
            if bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
                mask |= ERROR;
            }
            out.push(ReadyEvent { token, mask });
        }
        Ok(())
    }

    fn notify(&self) {
        self.count(1);
        let _ = sys::write(self.wake, &1u64.to_ne_bytes());
    }

    fn syscalls(&self) -> u64 {
        self.syscalls.load(Ordering::Relaxed)
    }
}

impl Drop for EpollReactor {
    fn drop(&mut self) {
        let _ = sys::close(self.wake);
        let _ = sys::close(self.ep);
    }
}

/// At most one waiter per direction per fd; the registry's whole job is
/// mapping an event back to the episode(s) to wake.
#[derive(Default)]
struct FdWaiters {
    read: Option<(u64, Waiter)>,
    write: Option<(u64, Waiter)>,
}

impl FdWaiters {
    fn mask(&self) -> u8 {
        (if self.read.is_some() { READ } else { 0 })
            | (if self.write.is_some() { WRITE } else { 0 })
    }
}

/// Waiter registry: plain data guarded by one lock, no clever atomics —
/// the blocking protocol's claim CAS (inside [`Waiter::wake`]) is the only
/// lock-free piece, and it is already model-checked in `wait.rs`.
#[derive(Default)]
struct Registry {
    fds: HashMap<RawFd, FdWaiters>,
    next_id: u64,
    /// Set (under the lock) when the driver can no longer deliver events —
    /// shutdown, or a fatal reactor error.  Checked by every registration
    /// so a `wait_ready` racing the shutdown drain fails fast instead of
    /// parking forever against a dead reactor.
    stopped: bool,
}

impl Registry {
    /// Registers `w` for one direction on `fd`; returns the registration
    /// id, the displaced waiter (a concurrent same-direction waiter loses
    /// its slot and must be spuriously woken so it can re-register) and
    /// the interest mask the fd should now be armed with.
    fn register(&mut self, fd: RawFd, write: bool, w: Waiter) -> (u64, Option<Waiter>, u8) {
        self.next_id += 1;
        let id = self.next_id;
        let entry = self.fds.entry(fd).or_default();
        let slot = if write {
            &mut entry.write
        } else {
            &mut entry.read
        };
        let displaced = slot.replace((id, w)).map(|(_, old)| old);
        let mask = entry.mask();
        (id, displaced, mask)
    }

    /// Removes registration `id` if it still owns its slot (the driver may
    /// have consumed it already).  Returns `true` if the fd has no
    /// remaining waiters.
    fn deregister(&mut self, fd: RawFd, write: bool, id: u64) -> bool {
        let Some(entry) = self.fds.get_mut(&fd) else {
            return true;
        };
        let slot = if write {
            &mut entry.write
        } else {
            &mut entry.read
        };
        if slot.as_ref().is_some_and(|(sid, _)| *sid == id) {
            *slot = None;
        }
        if entry.mask() == 0 {
            self.fds.remove(&fd);
            true
        } else {
            false
        }
    }

    /// Consumes the waiters an event for (`fd`, `mask`) should wake, and
    /// returns the interest mask to re-arm for waiters that remain (the
    /// one-shot registration was just consumed on their behalf).
    fn take_ready(&mut self, fd: RawFd, mask: u8) -> (Vec<Waiter>, u8) {
        let mut woken = Vec::new();
        let Some(entry) = self.fds.get_mut(&fd) else {
            return (woken, 0);
        };
        if mask & (READ | ERROR) != 0 {
            if let Some((_, w)) = entry.read.take() {
                woken.push(w);
            }
        }
        if mask & (WRITE | ERROR) != 0 {
            if let Some((_, w)) = entry.write.take() {
                woken.push(w);
            }
        }
        let remaining = entry.mask();
        if remaining == 0 {
            self.fds.remove(&fd);
        }
        (woken, remaining)
    }
}

/// The per-VM reactor driver ("reactor VP"): owns the [`Reactor`], the
/// waiter registry and the driver OS thread, created lazily on first use
/// and joined at [`Vm::shutdown`].
///
/// The driver is an OS thread rather than a green thread for the same
/// reason the timekeeper is: it spends its life blocked in the kernel
/// ([`Reactor::wait`]), exactly what virtual processors must never do.
/// Everything it does on an event is one claim CAS plus one ready-queue
/// push — scheduling stays with the policy manager of the woken thread's
/// home VP.
pub struct IoDriver {
    reactor: Mutex<Option<Arc<dyn Reactor>>>,
    registry: Mutex<Registry>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
    stop: AtomicBool,
    /// Requested backend; consulted once, when the reactor is first built.
    backend: Mutex<IoBackend>,
    /// Resolved backend label ("epoll" / "uring" / a test reactor's
    /// "custom"), for [`IoDriver::stats`].
    resolved: OnceLock<&'static str>,
    /// Successful waiter wake-ups delivered by dispatch — the denominator
    /// of the syscalls-per-wake benchmark rows.
    wakes: std::sync::atomic::AtomicU64,
    /// For trace events; set once by [`Vm::create`](crate::vm::Vm).
    vm: OnceLock<Weak<Vm>>,
}

/// A snapshot of [`IoDriver`] counters, surfaced to Scheme as
/// `(vm-io-stats)` and to the benchmark harness for the
/// `server/syscalls-per-wake` rows.
#[derive(Debug, Clone, Copy)]
pub struct IoStats {
    /// Resolved backend label: "epoll", "uring", or "custom" for an
    /// installed test reactor ("unstarted" before first use).
    pub backend: &'static str,
    /// Kernel round-trips the reactor backend has made so far.
    pub syscalls: u64,
    /// Parked I/O threads successfully woken by readiness dispatch.
    pub wakes: u64,
}

impl IoDriver {
    pub(crate) fn new() -> IoDriver {
        IoDriver {
            reactor: Mutex::new(None),
            registry: Mutex::new(Registry::default()),
            handle: Mutex::new(None),
            stop: AtomicBool::new(false),
            backend: Mutex::new(IoBackend::from_env()),
            resolved: OnceLock::new(),
            wakes: std::sync::atomic::AtomicU64::new(0),
            vm: OnceLock::new(),
        }
    }

    /// Selects the backend for the not-yet-built reactor.  No-op once the
    /// reactor exists (first `wait_ready` or an [`IoDriver::install_reactor`]).
    pub(crate) fn set_backend(&self, backend: IoBackend) {
        *self.backend.lock() = backend;
    }

    /// Current counters: resolved backend label, backend syscalls, wakes
    /// delivered.
    pub fn stats(&self) -> IoStats {
        let syscalls = self.reactor.lock().as_ref().map_or(0, |r| r.syscalls());
        IoStats {
            backend: self.resolved.get().copied().unwrap_or("unstarted"),
            syscalls,
            wakes: self.wakes.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn bind_vm(&self, vm: &Weak<Vm>) {
        let _ = self.vm.set(vm.clone());
    }

    /// Replaces the backend before first use (a test hook and the
    /// customization point for alternative [`Reactor`]s).  No-op once the
    /// driver has started.
    pub fn install_reactor(&self, reactor: Arc<dyn Reactor>) {
        let mut g = self.reactor.lock();
        if g.is_none() {
            *g = Some(reactor);
            let _ = self.resolved.set("custom");
        }
    }

    fn shared_reactor(&self) -> sys::Result<Arc<dyn Reactor>> {
        let mut g = self.reactor.lock();
        if let Some(r) = &*g {
            return Ok(r.clone());
        }
        let (r, label) = self.backend.lock().build()?;
        let _ = self.resolved.set(label);
        *g = Some(r.clone());
        Ok(r)
    }

    fn ensure_started(self: &Arc<IoDriver>, reactor: &Arc<dyn Reactor>) {
        let mut h = self.handle.lock();
        if h.is_some() || self.stop.load(Ordering::Acquire) {
            return;
        }
        let driver = self.clone();
        let reactor = reactor.clone();
        *h = std::thread::Builder::new()
            .name("sting-reactor".to_string())
            .spawn(move || driver.drive(reactor))
            .ok();
    }

    fn drive(self: Arc<IoDriver>, reactor: Arc<dyn Reactor>) {
        let mut events = Vec::with_capacity(64);
        while !self.stop.load(Ordering::Acquire) {
            events.clear();
            // The timeout is a liveness backstop; notify() provides the
            // prompt path for shutdown.
            match reactor.wait(&mut events, 250) {
                Ok(()) => {}
                // A signal mid-wait is not a reactor failure.
                Err(sys::Errno(sys::EINTR)) => continue,
                Err(sys::Errno(errno)) => {
                    // The reactor is dead.  Surface the errno, then fall
                    // through to the drain below — every parked waiter
                    // gets a spurious wake rather than hanging until VM
                    // shutdown, and later registrations fail fast.
                    if let Some(vm) = self.vm.get().and_then(Weak::upgrade) {
                        crate::trace_event!(
                            vm.tracer(),
                            None,
                            EventKind::IoError,
                            u64::MAX,
                            errno as u32,
                            0
                        );
                    }
                    break;
                }
            }
            for ev in events.drain(..) {
                self.dispatch(&reactor, ev.token as i64 as RawFd, ev.mask);
            }
        }
        // Loop exit — requested stop or reactor failure.  Either way no
        // further events will be delivered, so nothing may stay parked and
        // nothing new may register.
        self.drain_and_wake();
    }

    /// Marks the registry stopped and spuriously wakes every registered
    /// waiter.  Shared by [`IoDriver::stop`] and the driver loop's error
    /// exit; idempotent.
    fn drain_and_wake(&self) {
        let fds: Vec<FdWaiters> = {
            let mut reg = self.registry.lock();
            reg.stopped = true;
            reg.fds.drain().map(|(_, e)| e).collect()
        };
        for entry in fds {
            for (_, w) in [entry.read, entry.write].into_iter().flatten() {
                w.wake();
            }
        }
    }

    fn dispatch(&self, reactor: &Arc<dyn Reactor>, fd: RawFd, mask: u8) {
        let woken = {
            let mut reg = self.registry.lock();
            let (woken, remaining) = reg.take_ready(fd, mask);
            // Re-arm for the direction still waited on (the one-shot fired
            // for both) while *holding* the registry lock: a concurrent
            // `wait_ready` for the other direction serializes against this
            // critical section, so its register + arm cannot be clobbered
            // by a stale re-arm computed from the pre-registration mask.
            if remaining != 0 {
                let _ = reactor.arm(fd, remaining, fd as u64);
            }
            woken
        };
        for w in woken {
            let thread = w.thread_id();
            if w.wake() {
                self.wakes.fetch_add(1, Ordering::Relaxed);
                if let Some(vm) = self.vm.get().and_then(Weak::upgrade) {
                    crate::trace_event!(
                        vm.tracer(),
                        None,
                        EventKind::IoReady,
                        thread,
                        fd as u32,
                        mask as u32
                    );
                }
            }
        }
    }

    /// Parks the calling thread until `fd` is ready for the given
    /// direction (`write` = writability), the `deadline` passes, or the
    /// thread is cancelled.  Spurious returns are possible (e.g. a
    /// displaced registration or readiness consumed by a peer); callers
    /// retry the non-blocking syscall, which is what decides.
    ///
    /// On a STING thread this blocks only the thread — the VP carries on.
    /// The park rides a standard wait episode, so termination while
    /// parked unwinds cleanly and a late readiness event fails the claim
    /// CAS instead of waking a recycled TCB.
    ///
    /// # Errors
    ///
    /// Registration failures (e.g. the fd is closed or the process is out
    /// of fds for the epoll instance) surface as the raw errno, and a
    /// driver that has stopped — VM shutdown, or a dead reactor — reports
    /// [`ESHUTDOWN`](sys::ESHUTDOWN) so callers fail fast instead of
    /// parking against a reactor that will never deliver.
    pub fn wait_ready(
        self: &Arc<IoDriver>,
        fd: RawFd,
        write: bool,
        blocker: &Value,
        deadline: Option<Instant>,
    ) -> sys::Result<WakeReason> {
        let reactor = self.shared_reactor()?;
        self.ensure_started(&reactor);
        let w = Waiter::current();
        // Register *and* arm under one registry-lock hold: the armed
        // interest always matches the registry contents, so neither a
        // dispatch re-arm nor a concurrent registration for the other
        // direction can clobber this one (they serialize on the lock).
        // The stop check rides the same hold — after the shutdown drain
        // has flushed the registry (which set `stopped` under this lock),
        // no registration can slip in behind it.
        let (id, displaced, armed) = {
            let mut reg = self.registry.lock();
            if reg.stopped {
                drop(reg);
                let _ = w.retire();
                return Err(sys::Errno(sys::ESHUTDOWN));
            }
            let (id, displaced, mask) = reg.register(fd, write, w.clone());
            (id, displaced, reactor.arm(fd, mask, fd as u64))
        };
        if let Some(old) = displaced {
            old.wake();
        }
        if let Err(e) = armed {
            self.registry.lock().deregister(fd, write, id);
            let _ = w.retire();
            return Err(e);
        }
        // From here on every exit — wake, timeout, terminate-unwind — must
        // clear the registration; a drop guard covers them all.
        let guard = Deregister {
            driver: self,
            fd,
            write,
            id,
        };
        if let Some(vm) = self.vm.get().and_then(Weak::upgrade) {
            crate::trace_event!(
                vm.tracer(),
                tls::current().map(|c| c.vp.index()),
                EventKind::IoWait,
                w.thread_id(),
                fd as u32,
                if write { WRITE } else { READ } as u32
            );
        }
        let reason = w.park_until(blocker, deadline);
        drop(guard);
        Ok(reason)
    }

    /// Stops the driver loop and joins its thread; any still-registered
    /// waiters get a spurious wake so nothing stays parked against a dead
    /// reactor.  Idempotent.
    pub(crate) fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        let reactor = self.reactor.lock().clone();
        if let Some(r) = &reactor {
            r.notify();
        }
        let handle = self.handle.lock().take();
        if let Some(h) = handle {
            if h.thread().id() != std::thread::current().id() {
                let _ = h.join();
            }
        }
        // The driver loop drains on exit too, but a driver that was never
        // started (or is stopping itself) still needs the sweep — and the
        // `stopped` mark that makes late registrations fail fast.
        self.drain_and_wake();
    }
}

impl Drop for IoDriver {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(r) = &*self.reactor.lock() {
            r.notify();
        }
        // The driver thread holds an Arc to this driver, so by the time
        // Drop runs the thread has already exited; nothing to join.
    }
}

/// Clears a [`Registry`] slot on every exit path of
/// [`IoDriver::wait_ready`], including a terminate-request unwind out of
/// the park.
struct Deregister<'a> {
    driver: &'a IoDriver,
    fd: RawFd,
    write: bool,
    id: u64,
}

impl Drop for Deregister<'_> {
    fn drop(&mut self) {
        self.driver
            .registry
            .lock()
            .deregister(self.fd, self.write, self.id);
    }
}

#[cfg(all(test, not(sting_check)))]
mod tests {
    use super::*;

    fn os_waiter() -> Waiter {
        Waiter::current()
    }

    #[test]
    fn registry_register_take_rearm() {
        let mut reg = Registry::default();
        let (_, none, mask) = reg.register(5, false, os_waiter());
        assert!(none.is_none());
        assert_eq!(mask, READ);
        let (_, none, mask) = reg.register(5, true, os_waiter());
        assert!(none.is_none());
        assert_eq!(mask, READ | WRITE);

        // A read-only event wakes the reader and asks for a WRITE re-arm.
        let (woken, remaining) = reg.take_ready(5, READ);
        assert_eq!(woken.len(), 1);
        assert_eq!(remaining, WRITE);

        // An error event flushes everyone.
        let (woken, remaining) = reg.take_ready(5, ERROR);
        assert_eq!(woken.len(), 1);
        assert_eq!(remaining, 0);
        assert!(reg.fds.is_empty());
    }

    #[test]
    fn registry_displaces_same_direction_waiter() {
        let mut reg = Registry::default();
        let first = os_waiter();
        let (_, none, _) = reg.register(9, false, first.clone());
        assert!(none.is_none());
        let (_, displaced, _) = reg.register(9, false, os_waiter());
        // The loser comes back out so the caller can spuriously wake it.
        assert!(displaced.is_some_and(|w| w.wake()));
        assert_eq!(first.park(&Value::sym("io")), WakeReason::Woken);
    }

    #[test]
    fn registry_deregister_is_id_checked() {
        let mut reg = Registry::default();
        let (id1, _, _) = reg.register(3, false, os_waiter());
        // The driver consumed the slot and a new waiter moved in.
        let _ = reg.take_ready(3, READ);
        let (_id2, _, _) = reg.register(3, false, os_waiter());
        // The stale guard must not clobber the new registration.
        assert!(!reg.deregister(3, false, id1));
        assert_eq!(reg.fds[&3].mask(), READ);
    }

    /// A scripted reactor: readiness is injected by the test, so driver
    /// behaviour is deterministic — no real fds, no timing.
    struct ScriptedReactor {
        armed: Mutex<Vec<(RawFd, u8, u64)>>,
        queue: Mutex<Vec<ReadyEvent>>,
        kicked: std::sync::Condvar,
        lock: std::sync::Mutex<()>,
        /// Interleaving control: arms whose interest mask equals
        /// `Gate::block_mask` park until [`ScriptedReactor::open_gate`] —
        /// lets a test hold the driver mid-dispatch, in its re-arm call,
        /// and script what races against it.
        gate: std::sync::Mutex<Gate>,
        gate_cv: std::sync::Condvar,
    }

    #[derive(Default)]
    struct Gate {
        block_mask: Option<u8>,
        entered: bool,
    }

    impl ScriptedReactor {
        fn new() -> Arc<ScriptedReactor> {
            Arc::new(ScriptedReactor {
                armed: Mutex::new(Vec::new()),
                queue: Mutex::new(Vec::new()),
                kicked: std::sync::Condvar::new(),
                lock: std::sync::Mutex::new(()),
                gate: std::sync::Mutex::new(Gate::default()),
                gate_cv: std::sync::Condvar::new(),
            })
        }

        fn inject(&self, ev: ReadyEvent) {
            self.queue.lock().push(ev);
            self.notify();
        }

        /// Arms with exactly this interest mask will park at the gate.
        fn close_gate(&self, mask: u8) {
            let mut g = self.gate.lock().unwrap();
            g.block_mask = Some(mask);
            g.entered = false;
        }

        /// Blocks until some arm call has parked at the closed gate.
        fn await_gate(&self) {
            let mut g = self.gate.lock().unwrap();
            while !g.entered {
                g = self.gate_cv.wait(g).unwrap();
            }
        }

        /// Releases every arm parked at the gate.
        fn open_gate(&self) {
            let mut g = self.gate.lock().unwrap();
            g.block_mask = None;
            self.gate_cv.notify_all();
        }
    }

    impl Reactor for ScriptedReactor {
        fn arm(&self, fd: RawFd, mask: u8, token: u64) -> sys::Result<()> {
            {
                let mut g = self.gate.lock().unwrap();
                if g.block_mask == Some(mask) {
                    g.entered = true;
                    self.gate_cv.notify_all();
                    while g.block_mask == Some(mask) {
                        g = self.gate_cv.wait(g).unwrap();
                    }
                }
            }
            self.armed.lock().push((fd, mask, token));
            Ok(())
        }

        fn forget(&self, _fd: RawFd) {}

        fn wait(&self, out: &mut Vec<ReadyEvent>, timeout_ms: i32) -> sys::Result<()> {
            let mut q = self.queue.lock();
            if q.is_empty() {
                drop(q);
                let g = self.lock.lock().unwrap();
                let _ = self.kicked.wait_timeout(
                    g,
                    std::time::Duration::from_millis(timeout_ms.max(0) as u64),
                );
                q = self.queue.lock();
            }
            out.append(&mut q);
            Ok(())
        }

        fn notify(&self) {
            let _g = self.lock.lock().unwrap();
            self.kicked.notify_all();
        }
    }

    #[test]
    fn driver_wakes_on_injected_readiness() {
        let driver = Arc::new(IoDriver::new());
        let reactor = ScriptedReactor::new();
        driver.install_reactor(reactor.clone());

        let d2 = driver.clone();
        let r2 = reactor.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            r2.inject(ReadyEvent {
                token: 7,
                mask: READ,
            });
            let _ = d2; // keep the driver alive from the injector side too
        });
        let reason = driver
            .wait_ready(7, false, &Value::sym("io-read"), None)
            .unwrap();
        assert_eq!(reason, WakeReason::Woken);
        h.join().unwrap();
        // The registration was armed read-side with the fd as token.
        assert!(reactor
            .armed
            .lock()
            .iter()
            .any(|&(fd, m, tok)| { fd == 7 && m & READ != 0 && tok == 7 }));
        driver.stop();
    }

    #[test]
    fn driver_timeout_leaves_registry_clean() {
        let driver = Arc::new(IoDriver::new());
        driver.install_reactor(ScriptedReactor::new());
        let deadline = Instant::now() + std::time::Duration::from_millis(30);
        let reason = driver
            .wait_ready(11, true, &Value::sym("io-write"), Some(deadline))
            .unwrap();
        assert_eq!(reason, WakeReason::TimedOut);
        assert!(driver.registry.lock().fds.is_empty());
        driver.stop();
    }

    /// Regression: `dispatch` used to re-arm the `remaining` interest
    /// *after* releasing the registry lock, so a `wait_ready` for the
    /// other direction could register + arm in that window and have its
    /// interest clobbered by the driver's stale re-arm — the new waiter
    /// parked until a spurious wake.  The gate holds the driver inside its
    /// re-arm call to force exactly that interleaving; with the re-arm
    /// under the lock, the late reader serializes behind it and the last
    /// armed interest must include READ.
    #[test]
    fn dispatch_rearm_cannot_clobber_concurrent_registration() {
        let driver = Arc::new(IoDriver::new());
        let reactor = ScriptedReactor::new();
        driver.install_reactor(reactor.clone());

        // A writer parks; the driver arms (5, WRITE).
        let d = driver.clone();
        let writer =
            std::thread::spawn(move || d.wait_ready(5, true, &Value::sym("io-write"), None));
        while !reactor
            .armed
            .lock()
            .iter()
            .any(|&(fd, m, _)| fd == 5 && m == WRITE)
        {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        // Deliver READ readiness: nobody waits on READ, so dispatch wakes
        // no one and re-arms the remaining WRITE interest — where the
        // closed gate catches it, mid-dispatch.
        reactor.close_gate(WRITE);
        reactor.inject(ReadyEvent {
            token: 5,
            mask: READ,
        });
        reactor.await_gate();
        // While the driver is held in its re-arm, a reader arrives.  Its
        // READ|WRITE arm passes the WRITE-only gate; the fix makes it
        // queue on the registry lock instead of racing.
        let d = driver.clone();
        let reader =
            std::thread::spawn(move || d.wait_ready(5, false, &Value::sym("io-read"), None));
        std::thread::sleep(std::time::Duration::from_millis(50));
        reactor.open_gate();
        while !reactor
            .armed
            .lock()
            .iter()
            .any(|&(fd, m, _)| fd == 5 && m == READ | WRITE)
        {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        {
            let armed = reactor.armed.lock();
            let last = armed.iter().rev().find(|&&(fd, _, _)| fd == 5).unwrap();
            assert_ne!(
                last.1 & READ,
                0,
                "reader interest clobbered by stale re-arm: {:?}",
                *armed
            );
        }
        reactor.inject(ReadyEvent {
            token: 5,
            mask: READ | WRITE,
        });
        assert_eq!(reader.join().unwrap().unwrap(), WakeReason::Woken);
        assert_eq!(writer.join().unwrap().unwrap(), WakeReason::Woken);
        driver.stop();
    }

    /// Regression: a `wait_ready` racing `stop()` could register *after*
    /// the shutdown drain flushed the registry and park forever against a
    /// dead reactor (`ensure_started` silently no-ops once the stop flag
    /// is set).  Registration now checks the stop mark under the registry
    /// lock and fails fast.
    #[test]
    fn wait_ready_after_stop_fails_fast() {
        let driver = Arc::new(IoDriver::new());
        driver.install_reactor(ScriptedReactor::new());
        driver.stop();
        let err = driver
            .wait_ready(13, false, &Value::sym("io-read"), None)
            .unwrap_err();
        assert_eq!(err.0, sys::ESHUTDOWN);
        assert!(driver.registry.lock().fds.is_empty());
    }

    /// A reactor that dies on the first kick: `wait` blocks until some
    /// `arm`/`notify` arrives, then reports EBADF — modelling the backend
    /// failing underneath a running driver.
    struct DyingReactor {
        kicked: std::sync::Mutex<bool>,
        cv: std::sync::Condvar,
    }

    impl Reactor for DyingReactor {
        fn arm(&self, _fd: RawFd, _mask: u8, _token: u64) -> sys::Result<()> {
            self.notify();
            Ok(())
        }

        fn forget(&self, _fd: RawFd) {}

        fn wait(&self, _out: &mut Vec<ReadyEvent>, timeout_ms: i32) -> sys::Result<()> {
            let mut k = self.kicked.lock().unwrap();
            while !*k {
                let (g, t) = self
                    .cv
                    .wait_timeout(
                        k,
                        std::time::Duration::from_millis(timeout_ms.max(1) as u64),
                    )
                    .unwrap();
                k = g;
                if t.timed_out() {
                    break;
                }
            }
            if *k {
                Err(sys::Errno(9)) // EBADF
            } else {
                Ok(())
            }
        }

        fn notify(&self) {
            *self.kicked.lock().unwrap() = true;
            self.cv.notify_all();
        }
    }

    /// Regression: `drive()` used to break out of its loop on a
    /// `reactor.wait` error without waking registered waiters — every
    /// parked I/O thread hung until VM shutdown.  The driver now drains
    /// the registry on loop exit, so the parked waiter below gets its
    /// spurious wake, and later registrations fail fast.
    #[test]
    fn reactor_failure_wakes_parked_waiters() {
        let driver = Arc::new(IoDriver::new());
        driver.install_reactor(Arc::new(DyingReactor {
            kicked: std::sync::Mutex::new(false),
            cv: std::sync::Condvar::new(),
        }));
        // The arm kicks the driver, the driver's wait dies, the drain
        // wakes us: this returns (spuriously) instead of hanging.
        let reason = driver
            .wait_ready(21, false, &Value::sym("io-read"), None)
            .unwrap();
        assert_eq!(reason, WakeReason::Woken);
        // The failed driver marked itself stopped before waking anyone.
        let err = driver
            .wait_ready(21, false, &Value::sym("io-read"), None)
            .unwrap_err();
        assert_eq!(err.0, sys::ESHUTDOWN);
        driver.stop();
    }

    #[test]
    fn epoll_reactor_round_trip() {
        let reactor = EpollReactor::new().unwrap();
        let (a, b) = sys::socketpair_stream().unwrap();
        reactor.arm(b, READ, 42).unwrap();
        let mut out = Vec::new();
        reactor.wait(&mut out, 0).unwrap();
        assert!(out.is_empty());
        sys::write(a, b"hi").unwrap();
        reactor.wait(&mut out, 1000).unwrap();
        assert_eq!(
            out,
            vec![ReadyEvent {
                token: 42,
                mask: READ,
            }]
        );
        // notify() interrupts a wait with no fd events.
        out.clear();
        reactor.notify();
        reactor.wait(&mut out, 1000).unwrap();
        assert!(out.is_empty());
        for fd in [a, b] {
            let _ = sys::close(fd);
        }
    }
}
