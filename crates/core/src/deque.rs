//! Lock-free scheduler queues: a Chase–Lev work-stealing deque, a banded
//! multi-level variant for priority policies, and MPSC submission stacks.
//!
//! This module is the *mechanism* half of the two-tier scheduler described
//! in DESIGN.md ("Scheduler fast path").  The paper's §3.3 observes that a
//! policy manager may keep "the queue of evaluating threads locally" so
//! that accessing it "requires no locking", while policy decisions —
//! where a fork goes, which victim an idle VP raids — stay in the
//! replaceable [`PolicyManager`](crate::pm::PolicyManager).  The
//! [`Deque`] here is that lock-free local queue: the VP that owns it
//! pushes and pops without a compare-and-swap on the common path, and
//! idle sibling VPs [`steal`](Deque::steal) from the opposite end with
//! one CAS per item.
//!
//! Four structures cooperate per VP:
//!
//! * [`Deque`] — the Chase–Lev deque \[Chase & Lev, SPAA 2005\], with the
//!   memory orderings of Lê et al., *Correct and Efficient Work-Stealing
//!   for Weak Memory Models* (PPoPP 2013).  Only the VP's driving worker
//!   (the *owner*) may call [`push`](Deque::push) and [`pop`](Deque::pop);
//!   any thread may [`steal`](Deque::steal).
//! * [`MultiDeque`] — a small fixed array of [`BANDS`] Chase–Lev deques
//!   indexed by priority band, plus one `AtomicUsize` of occupancy bits so
//!   pop and steal find the highest non-empty band in O(1) without locks.
//!   This is what lets priority and deadline policies ride the lock-free
//!   tier instead of the locked policy path.
//! * [`Injector`] — a Treiber-stack MPSC queue for *remote* submissions
//!   (forks from host threads, cross-VP wake-ups, the timekeeper).  Any
//!   thread may [`push`](Injector::push); the owner periodically
//!   [`drain`](Injector::drain)s it into the deque, which restores arrival
//!   order and makes the items stealable.  [`Injector::push_batch`]
//!   publishes *n* items with **one** CAS — the batched wake-up path
//!   (`wake_all`, barrier release) uses it to amortize the slow path.
//! * [`BandedInjector`] — the banded face of the injector: every
//!   submission carries its priority band, so the owner's drain can fold
//!   each item into the right [`MultiDeque`] band and the thief-side
//!   rescue can prefer the highest band in the backlog.
//!
//! ## The occupancy-bit protocol
//!
//! Band `b`'s bit is set with `fetch_or` **after** the item is pushed
//! (Release, so a scanner that Acquires the word also sees the push), and
//! cleared with `fetch_and` only when a scan observed the band empty —
//! followed by a re-check that re-sets the bit if an item raced in.  When
//! clears can race pushes, the two RMWs serialize on the occupancy word,
//! so the re-check always sees the racing push (the `fetch_or`'s Release
//! is what carries it; the model-checker mutation in
//! `crates/check/tests/litmus.rs` shows a Relaxed publish stranding an
//! item behind a cleared bit).  A set bit for an empty band is harmless
//! (one wasted probe); a clear bit for a non-empty band would be a lost
//! item, and the protocol above makes that window close on the very next
//! scan.
//!
//! [`MultiDeque`] keeps **every occupancy write on the owner**: `push`
//! publishes, `pop` clears, and thieves treat the word as a read-only
//! hint (a stale set bit costs a thief two loads to skip; [`Deque`]'s own
//! top/bottom protocol re-validates every claim).  Single-writer
//! occupancy buys the fast path its cheapest possible shape — a push
//! whose band bit is already set (the steady state of a busy queue) skips
//! the RMW entirely, because no concurrent clear can invalidate the
//! owner's read of its own last write.  The clear itself still runs the
//! full clear/re-check protocol above, so the structure stays correct if
//! a future caller ever clears from a second thread.
//!
//! Items are boxed: a slot holds one pointer, so a torn read of a slot is
//! impossible and the ABA question reduces to the monotonically increasing
//! `top` counter, which a 64-bit process cannot wrap.  Buffers retired by
//! [`Deque::push`] growth are kept alive until the deque drops, so a thief
//! holding a stale buffer pointer reads stale *data* (discarded when its
//! CAS fails), never freed memory.
//!
//! Boxing buys one more thing: the low bit of each slot pointer carries a
//! caller-chosen **tag** ([`Deque::push_tagged`]), readable by a thief
//! *without claiming the item* ([`Deque::steal_tagged`]).  The scheduler
//! tags fresh (never-run) threads so a policy that forbids TCB migration
//! can decline a parked item with two loads instead of a
//! steal-inspect-put-back round trip.

use parking_lot::Mutex;
use std::ptr;

// Under `--cfg sting_check` the atomics are the model checker's shims, so
// `ci.sh check` explores this exact production source (see
// crates/core/tests/model.rs); in normal builds they are std's.
#[cfg(not(sting_check))]
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};
#[cfg(sting_check)]
use sting_check::atomic::{fence, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};

/// Outcome of one [`Deque::steal`] attempt.
#[derive(Debug)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Another thief (or the owner, taking the last item) won the race;
    /// the caller may retry.
    Retry,
    /// One item was removed from the top (oldest end) of the deque.
    Success(T),
}

/// Strips the tag bit, recovering the `Box` pointer.
fn untag<T>(p: *mut T) -> *mut T {
    (p as usize & !1) as *mut T
}

/// Whether the tag bit is set on a slot pointer.
fn is_tagged<T>(p: *mut T) -> bool {
    p as usize & 1 == 1
}

/// A growable ring of item pointers.  Slots are atomic so stale reads by
/// thieves racing a wrap-around are defined behaviour (the value is used
/// only after winning the `top` CAS, which a lapped thief loses).
struct Buffer<T> {
    mask: usize,
    slots: Box<[AtomicPtr<T>]>,
}

impl<T> Buffer<T> {
    fn alloc(capacity: usize) -> *mut Buffer<T> {
        debug_assert!(capacity.is_power_of_two());
        Box::into_raw(Box::new(Buffer {
            mask: capacity - 1,
            slots: (0..capacity)
                .map(|_| AtomicPtr::new(ptr::null_mut()))
                .collect(),
        }))
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn get(&self, index: isize) -> *mut T {
        self.slots[index as usize & self.mask].load(Ordering::Relaxed)
    }

    fn put(&self, index: isize, item: *mut T) {
        self.slots[index as usize & self.mask].store(item, Ordering::Relaxed);
    }
}

/// A Chase–Lev work-stealing deque.
///
/// The *owner* — by contract, one thread at a time (the VP's driving
/// worker; [`crate::vp::Vp`] enforces this with a per-slice guard) — pushes
/// and pops at the **bottom**; *thieves* on any thread steal at the **top**
/// (the oldest item).  Owner operations are wait-free except when the
/// single remaining item must be raced against thieves; steals are
/// lock-free (one CAS per item).
///
/// Calling `push`/`pop` from two threads concurrently is memory-safe (all
/// slot traffic is atomic) but can *lose or duplicate dispatch of items*;
/// it is a logic error, not UB.
#[derive(Debug)]
pub struct Deque<T> {
    /// Steal end; monotonically increasing, never decremented.
    top: AtomicIsize,
    /// Owner end; `bottom - top` is the queue length.
    bottom: AtomicIsize,
    buffer: AtomicPtr<Buffer<T>>,
    /// Buffers replaced by growth, kept until drop so racing thieves never
    /// read freed memory.  Touched only on growth (owner) and drop.
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

// SAFETY: items are owned uniquely by whichever side removes them; all
// shared state is atomic.
unsafe impl<T: Send> Send for Deque<T> {}
// SAFETY: as above — the Chase–Lev protocol hands each item to exactly one
// claimant, and the buffer pointer is only retired, never freed, while shared.
unsafe impl<T: Send> Sync for Deque<T> {}

/// Initial buffer capacity (items); grows by doubling when full.
const INITIAL_CAPACITY: usize = 64;

impl<T> Default for Deque<T> {
    fn default() -> Deque<T> {
        Deque::new()
    }
}

impl<T> Deque<T> {
    /// Creates an empty deque with the default initial capacity.
    pub fn new() -> Deque<T> {
        Deque::with_capacity(INITIAL_CAPACITY)
    }

    /// Creates an empty deque whose first buffer holds `capacity` items
    /// (rounded up to a power of two).  Small capacities are useful in
    /// tests to force growth and ring wrap-around.
    pub fn with_capacity(capacity: usize) -> Deque<T> {
        let capacity = capacity.next_power_of_two().max(2);
        Deque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Buffer::alloc(capacity)),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Number of items currently queued (a relaxed snapshot).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        b.saturating_sub(t).max(0) as usize
    }

    /// Whether the deque is observed empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `item` at the bottom.  **Owner only.**  Wait-free (amortized:
    /// a full buffer is doubled, retiring the old one).
    pub fn push(&self, item: T) {
        self.push_tagged(item, false);
    }

    /// [`Deque::push`] with a one-bit label, carried in the low bit of the
    /// slot pointer (boxes are at least word-aligned, so the bit is free).
    /// Thieves can read the label without claiming the item; see
    /// [`Deque::steal_tagged`].
    pub fn push_tagged(&self, item: T, tag: bool) {
        let item = (Box::into_raw(Box::new(item)) as usize | usize::from(tag)) as *mut T;
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        // SAFETY: the buffer pointer is always valid; old buffers are
        // retired, not freed.
        let mut buffer = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        if b - t >= buffer.capacity() as isize {
            self.grow(t, b);
            // SAFETY: buffer valid (see above); grow just stored it.
            buffer = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        }
        buffer.put(b, item);
        // Publish the slot before the new bottom: a thief that Acquires
        // `bottom` must see the item.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Removes the item at the bottom — the *newest*, LIFO order.  **Owner
    /// only.**  Wait-free except when one item remains, which is raced
    /// against thieves with a single CAS on `top`.
    pub fn pop(&self) -> Option<T> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buffer = self.buffer.load(Ordering::Relaxed);
        // Release, not Relaxed: since C++20 weakened release sequences
        // (P0982), a thief that Acquires *this* store would otherwise get no
        // synchronization at all — it could observe `bottom > top` through a
        // stale mix and claim a slot whose contents it never saw published.
        // Every owner-side `bottom` store therefore carries the slots it
        // promises.  (Found by the sting-check model, which implements the
        // post-C++20 rules; Lê et al.'s Relaxed store leans on the pre-C++20
        // same-thread release-sequence clause.)
        self.bottom.store(b, Ordering::Release);
        // The SeqCst fence orders our `bottom` store against our `top`
        // load: either a concurrent thief sees the decremented bottom and
        // keeps its hands off the last item, or we see its incremented top
        // and go through the CAS.  (This is the owner/thief race the
        // DESIGN.md fast-path section walks through.)
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Already empty; restore the canonical empty state (Release for
            // the same P0982 reason as the decrement above).
            self.bottom.store(b + 1, Ordering::Release);
            return None;
        }
        // SAFETY: buffer valid (see push); the slot at `b` was written by
        // a previous push on this same (owner) thread.
        let item = unsafe { (*buffer).get(b) };
        if t == b {
            // Last item: win it against thieves or concede it.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Release);
            if !won {
                return None;
            }
        }
        // SAFETY: we hold the unique claim to slot `b` (either b > t, so
        // no thief can reach it, or the CAS above succeeded).
        let raw = untag(item);
        debug_assert!(
            !raw.is_null(),
            "pop claimed a null slot (double claim or unpublished write)"
        );
        #[cfg(debug_assertions)]
        // Poison the claimed slot: a second claim of the same slot now trips
        // the null assertions instead of double-freeing the item.  Safe
        // because no thief can win a CAS for this index anymore (see the
        // SAFETY argument above), and a re-push overwrites the slot first.
        // SAFETY: buffer valid (see push).
        unsafe {
            (*buffer).put(b, ptr::null_mut());
        }
        // SAFETY: restoring `bottom` (or winning the last-item CAS) gave the
        // owner unique claim to slot `b`; no other path frees this Box.
        Some(unsafe { *Box::from_raw(raw) })
    }

    /// Attempts to remove the item at the top — the *oldest*, FIFO order.
    /// Safe from any thread; lock-free.  A [`Steal::Retry`] means the CAS
    /// was lost to a concurrent remover, not that the deque is empty.
    pub fn steal(&self) -> Steal<T> {
        self.steal_inner(false)
    }

    /// [`Deque::steal`] that declines — returning [`Steal::Empty`] without
    /// disturbing the queue — when the top item's tag bit (see
    /// [`Deque::push_tagged`]) is clear.
    pub fn steal_tagged(&self) -> Steal<T> {
        self.steal_inner(true)
    }

    fn steal_inner(&self, tagged_only: bool) -> Steal<T> {
        let t = self.top.load(Ordering::Acquire);
        // Order the `top` load before the `bottom` load, pairing with the
        // fence in `pop` (see DESIGN.md for the full argument).
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Read the slot BEFORE claiming it: after the CAS the owner may
        // recycle the slot for a new push.  SAFETY: buffer valid (see
        // push); a stale buffer from a concurrent growth is still
        // allocated (retired list) and the CAS below fails if the item
        // moved on.
        let buffer = unsafe { &*self.buffer.load(Ordering::Acquire) };
        let item = buffer.get(t);
        if tagged_only && !is_tagged(item) {
            // The label is only trustworthy if the slot still holds the
            // item we measured; a stale read is caught by the same check a
            // successful steal relies on.
            if self.top.load(Ordering::SeqCst) == t {
                return Steal::Empty;
            }
            return Steal::Retry;
        }
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return Steal::Retry;
        }
        let raw = untag(item);
        debug_assert!(
            !raw.is_null(),
            "steal claimed a null slot (double claim or unpublished write)"
        );
        // SAFETY: the CAS on `top` grants unique ownership of slot `t`, so
        // this is the only place that reconstitutes this Box.
        Steal::Success(unsafe { *Box::from_raw(raw) })
    }

    /// [`Deque::steal`], retried until it yields an item or observes the
    /// deque empty.
    pub fn steal_retrying(&self) -> Option<T> {
        loop {
            match self.steal() {
                Steal::Success(item) => return Some(item),
                Steal::Empty => return None,
                Steal::Retry => std::hint::spin_loop(),
            }
        }
    }

    /// Doubles the buffer, copying the live window `t..b`.  Owner only
    /// (called from [`Deque::push`]).
    fn grow(&self, t: isize, b: isize) {
        let old_ptr = self.buffer.load(Ordering::Relaxed);
        // SAFETY: buffer valid (see push).
        let old = unsafe { &*old_ptr };
        let new_ptr = Buffer::alloc(old.capacity() * 2);
        // SAFETY: freshly allocated above, not yet shared.
        let new = unsafe { &*new_ptr };
        for i in t..b {
            new.put(i, old.get(i));
        }
        // Release: a thief Acquiring the new pointer sees the copied slots.
        self.buffer.store(new_ptr, Ordering::Release);
        self.retired.lock().push(old_ptr);
    }
}

impl<T> Drop for Deque<T> {
    fn drop(&mut self) {
        // &mut self: no concurrent owner or thieves remain.
        let t = *self.top.get_mut();
        let b = *self.bottom.get_mut();
        let buffer_ptr = *self.buffer.get_mut();
        // SAFETY: exclusive access; every live item pointer in t..b was
        // Boxed by push and not yet reclaimed.
        unsafe {
            let buffer = &*buffer_ptr;
            for i in t..b {
                drop(Box::from_raw(untag(buffer.get(i))));
            }
            drop(Box::from_raw(buffer_ptr));
            for retired in self.retired.get_mut().drain(..) {
                drop(Box::from_raw(retired));
            }
        }
    }
}

/// Number of priority bands in the multi-level deque tier.
///
/// Small and fixed on purpose: the occupancy word needs one bit per band,
/// the scan is a handful of loads, and the shipped policies quantize
/// priorities (and deadlines) into this many urgency classes — see
/// [`BandMap`](crate::pm::BandMap).
pub const BANDS: usize = 4;

/// A lock-free **multi-level** work-stealing deque: [`BANDS`] Chase–Lev
/// deques indexed by priority band (higher band = more urgent), plus an
/// O(1) non-empty-band bitmask so [`pop`](MultiDeque::pop) and
/// [`steal`](MultiDeque::steal) scan highest-band-first without locks.
///
/// The owner/thief contract is the [`Deque`] one, band by band: one owner
/// pushes and pops, any thread steals.  The occupancy word is
/// single-writer: the owner publishes a band's bit after pushing into it
/// (Release — see the module docs for why that ordering is load-bearing)
/// and retires a bit when a pop scan finds the band empty, with a
/// re-check that re-sets the bit if an item is still present.  Thieves
/// only read the word, so a stale set bit costs them two loads, never a
/// cache-line invalidation.
#[derive(Debug)]
#[repr(C)]
pub struct MultiDeque<T> {
    /// Bit `b` set ⇒ band `b` *may* be non-empty.  The invariant the
    /// protocol maintains is one-sided: a non-empty band always has its
    /// bit set once its push has returned; a set bit may be stale.
    /// Written only by the owner (`repr(C)` puts it on the same cache
    /// line as band 0's `top`/`bottom`, the other words every queue
    /// operation already touches).
    occupancy: AtomicUsize,
    bands: [Deque<T>; BANDS],
}

impl<T> Default for MultiDeque<T> {
    fn default() -> MultiDeque<T> {
        MultiDeque::new()
    }
}

impl<T> MultiDeque<T> {
    /// Creates an empty multi-level deque with default per-band capacity.
    pub fn new() -> MultiDeque<T> {
        MultiDeque::with_capacity(INITIAL_CAPACITY)
    }

    /// Creates an empty multi-level deque whose bands each start with
    /// `capacity` slots (rounded up to a power of two).
    pub fn with_capacity(capacity: usize) -> MultiDeque<T> {
        MultiDeque {
            occupancy: AtomicUsize::new(0),
            bands: std::array::from_fn(|_| Deque::with_capacity(capacity)),
        }
    }

    /// Total number of items queued across all bands (a relaxed snapshot).
    pub fn len(&self) -> usize {
        self.bands.iter().map(Deque::len).sum()
    }

    /// Whether every band is observed empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of items in one band (a relaxed snapshot).
    ///
    /// # Panics
    ///
    /// Panics if `band >= BANDS`.
    pub fn band_len(&self, band: usize) -> usize {
        self.bands[band].len()
    }

    /// Snapshot of the occupancy bitmask (bit `b` = band `b` may be
    /// non-empty).  Exposed for tests and the model-checker scenarios that
    /// assert the no-stranded-item invariant.
    pub fn occupancy_bits(&self) -> usize {
        self.occupancy.load(Ordering::Acquire)
    }

    /// The band-0 deque, for callers whose policy declared a single band
    /// and who therefore bypass the occupancy word entirely — a
    /// `BandMap::Single` ready queue is the plain Chase–Lev [`Deque`],
    /// paying nothing for the bands it does not use.
    ///
    /// Mixing the two access styles on one `MultiDeque` is a logic error:
    /// banded [`pop`](MultiDeque::pop)/[`steal`](MultiDeque::steal) scans
    /// trust the occupancy bits, so an item pushed through `band0()`
    /// (which never publishes a bit) is invisible to them until some
    /// banded push of the same band publishes it.
    pub fn band0(&self) -> &Deque<T> {
        &self.bands[0]
    }

    /// Appends `item` to `band`.  **Owner only.**  Publishes the band's
    /// occupancy bit after the push (Release), so any scanner that sees
    /// the bit also sees the item.
    ///
    /// # Panics
    ///
    /// Panics if `band >= BANDS`.
    pub fn push(&self, band: usize, item: T) {
        self.push_tagged(band, item, false);
    }

    /// [`MultiDeque::push`] with the [`Deque::push_tagged`] one-bit label.
    pub fn push_tagged(&self, band: usize, item: T, tag: bool) {
        self.bands[band].push_tagged(item, tag);
        // Occupancy is single-writer (this owner), so reading our own last
        // write is exact, and a busy band — bit already set — publishes
        // with no RMW at all.  When the bit does need setting, Release
        // pairs with the Acquire occupancy load in scans, so a scanner
        // that sees the bit also sees the push.  (Were clears concurrent,
        // the publish would have to be unconditional: the clear-side
        // re-check only sees a racing push through the RMW serialization
        // on this word — the litmus pair `banded_bitmask_*` in
        // crates/check/tests/litmus.rs model-checks exactly that protocol,
        // including the Relaxed-publish mutation stranding an item.)
        if self.occupancy.load(Ordering::Relaxed) & (1 << band) == 0 {
            self.occupancy.fetch_or(1 << band, Ordering::Release);
        }
    }

    /// Removes the most urgent item: scans set occupancy bits highest
    /// band first, popping from the band's hot end (`fifo == false`, the
    /// wait-free LIFO pop) or its cold end (`fifo == true`, oldest-first
    /// via the steal CAS).  **Owner only.**
    pub fn pop(&self, fifo: bool) -> Option<T> {
        loop {
            let occ = self.occupancy.load(Ordering::Acquire);
            let band = highest_band(occ)?;
            let item = if fifo {
                self.bands[band].steal_retrying()
            } else {
                self.bands[band].pop()
            };
            match item {
                Some(item) => return Some(item),
                // The bit was stale; retire it and rescan the rest.
                None => self.clear_if_empty(band),
            }
        }
    }

    /// Attempts to steal the most urgent item.  Safe from any thread;
    /// lock-free.  With `tagged_only`, a band whose oldest item is
    /// untagged is *skipped* (not disturbed) and the scan falls through to
    /// lower bands — a parked high-band item never blocks the theft of
    /// fresh lower-band work, and with tags allowed the high band always
    /// wins.  [`Steal::Retry`] means some band's CAS was lost to a
    /// concurrent remover.
    pub fn steal(&self, tagged_only: bool) -> Steal<T> {
        let occ = self.occupancy.load(Ordering::Acquire);
        let mut contended = false;
        for band in (0..BANDS).rev() {
            if occ & (1 << band) == 0 {
                continue;
            }
            let attempt = if tagged_only {
                self.bands[band].steal_tagged()
            } else {
                self.bands[band].steal()
            };
            match attempt {
                Steal::Success(item) => return Steal::Success(item),
                Steal::Retry => contended = true,
                // A stale bit (or a tag decline) just falls through to the
                // next band.  Thieves never write the occupancy word —
                // that is what lets the owner's push skip the publish RMW
                // when its bit is already set (see `push_tagged`); the
                // owner retires stale bits on its next pop scan.
                Steal::Empty => {}
            }
        }
        if contended {
            Steal::Retry
        } else {
            Steal::Empty
        }
    }

    /// [`MultiDeque::steal`], retried until it yields an item or observes
    /// every band empty.
    pub fn steal_retrying(&self, tagged_only: bool) -> Option<T> {
        loop {
            match self.steal(tagged_only) {
                Steal::Success(item) => return Some(item),
                Steal::Empty => return None,
                Steal::Retry => std::hint::spin_loop(),
            }
        }
    }

    /// Clears `band`'s occupancy bit, then re-checks the band and re-sets
    /// the bit if an item is present after all.  Only the owner calls this
    /// (from [`MultiDeque::pop`]), so the re-check cannot race a push; it
    /// is kept because it is what makes the clear protocol safe even for
    /// a concurrent clearer — the `fetch_and`/`fetch_or` pair serialize
    /// against an unconditional publishing `fetch_or`, so a re-check is
    /// guaranteed to see any push whose bit the clear clobbered (the
    /// `banded_bitmask_*` litmus scenarios model-check that version).
    fn clear_if_empty(&self, band: usize) {
        self.occupancy.fetch_and(!(1 << band), Ordering::AcqRel);
        if !self.bands[band].is_empty() {
            self.occupancy.fetch_or(1 << band, Ordering::Release);
        }
    }
}

/// Index of the highest set bit among the low [`BANDS`] bits, if any.
fn highest_band(occ: usize) -> Option<usize> {
    let occ = occ & ((1 << BANDS) - 1);
    if occ == 0 {
        None
    } else {
        Some(usize::BITS as usize - 1 - occ.leading_zeros() as usize)
    }
}

/// A lock-free multi-producer submission queue (Treiber stack, reversed on
/// drain so items come out oldest-first).
///
/// Any thread may [`push`](Injector::push); [`drain`](Injector::drain)
/// atomically takes the whole backlog, so concurrent drains never yield the
/// same item twice.
#[derive(Debug)]
pub struct Injector<T> {
    head: AtomicPtr<Node<T>>,
    len: AtomicUsize,
}

struct Node<T> {
    item: T,
    next: *mut Node<T>,
}

// SAFETY: nodes are owned by the stack between push and drain; all shared
// state is atomic.
unsafe impl<T: Send> Send for Injector<T> {}
// SAFETY: as above — every cross-thread handoff goes through the atomic
// head, which transfers node ownership wholesale.
unsafe impl<T: Send> Sync for Injector<T> {}

impl<T> Default for Injector<T> {
    fn default() -> Injector<T> {
        Injector::new()
    }
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Injector<T> {
        Injector {
            head: AtomicPtr::new(ptr::null_mut()),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of items currently queued (a relaxed snapshot).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the injector is observed empty.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Relaxed).is_null()
    }

    /// Appends `item`.  Lock-free; callable from any thread.
    pub fn push(&self, item: T) {
        let node = Box::into_raw(Box::new(Node {
            item,
            next: ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is ours until the CAS publishes it.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(current) => head = current,
            }
        }
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Appends a whole batch with **one** CAS: the items are linked into a
    /// private chain first, then the chain head is published atomically.
    /// A subsequent [`drain`](Injector::drain) yields the batch in its
    /// original order, exactly as if each item had been
    /// [`push`](Injector::push)ed individually with no interleaving.
    ///
    /// This is the batched wake-up fast path: a `wake_all` / barrier
    /// release that makes *n* threads runnable pays one atomic publish
    /// (plus one machine signal) instead of *n* of each.
    pub fn push_batch(&self, items: impl IntoIterator<Item = T>) {
        // Link the batch back-to-front so the *last* item sits nearest the
        // stack head: drain reverses the chain, restoring batch order.
        let mut first: *mut Node<T> = ptr::null_mut();
        let mut last: *mut Node<T> = ptr::null_mut();
        let mut count = 0usize;
        for item in items {
            let node = Box::into_raw(Box::new(Node { item, next: first }));
            if first.is_null() {
                last = node;
            }
            first = node;
            count += 1;
        }
        if first.is_null() {
            return;
        }
        // `first` is the newest item (future stack head), `last` the
        // oldest; `last.next` splices onto the current head.
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: the chain is ours until the CAS publishes it.
            unsafe { (*last).next = head };
            match self
                .head
                .compare_exchange_weak(head, first, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(current) => head = current,
            }
        }
        self.len.fetch_add(count, Ordering::Relaxed);
    }

    /// Atomically takes the whole backlog, oldest first.  Returns an empty
    /// vector (no allocation) when nothing is queued.
    pub fn drain(&self) -> Vec<T> {
        if self.head.load(Ordering::Relaxed).is_null() {
            return Vec::new();
        }
        let mut head = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        let mut out = Vec::new();
        while !head.is_null() {
            // SAFETY: the swap above made this chain exclusively ours.
            let node = unsafe { Box::from_raw(head) };
            head = node.next;
            out.push(node.item);
        }
        self.len.fetch_sub(out.len(), Ordering::Relaxed);
        out.reverse(); // stack order -> arrival order
        out
    }
}

impl<T> Drop for Injector<T> {
    fn drop(&mut self) {
        drop(self.drain());
    }
}

/// The banded face of the [`Injector`]: a Treiber-stack MPSC submission
/// queue whose entries carry their priority band, pairing with
/// [`MultiDeque`] the way [`Injector`] pairs with [`Deque`].
///
/// Producers classify once at submission time (under
/// [`BandMap::band`](crate::pm::BandMap)); the owner's drain folds each
/// item into the right [`MultiDeque`] band, and the thief-side rescue can
/// pick the most urgent eligible item out of the backlog instead of the
/// merely oldest one.  [`push_batch`](BandedInjector::push_batch)
/// publishes a mixed-band batch with a single CAS.
#[derive(Debug, Default)]
pub struct BandedInjector<T> {
    inner: Injector<(usize, T)>,
}

impl<T> BandedInjector<T> {
    /// Creates an empty banded injector.
    pub fn new() -> BandedInjector<T> {
        BandedInjector {
            inner: Injector::new(),
        }
    }

    /// Number of items currently queued (a relaxed snapshot).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the injector is observed empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Appends `item` classified into `band`.  Lock-free; any thread.
    pub fn push(&self, band: usize, item: T) {
        debug_assert!(band < BANDS);
        self.inner.push((band, item));
    }

    /// Publishes a whole (possibly mixed-band) batch with one CAS; see
    /// [`Injector::push_batch`].
    pub fn push_batch(&self, items: impl IntoIterator<Item = (usize, T)>) {
        self.inner.push_batch(items);
    }

    /// Atomically takes the whole backlog in arrival order.
    pub fn drain(&self) -> Vec<(usize, T)> {
        self.inner.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_push_pop_is_lifo() {
        let d = Deque::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.len(), 3);
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn steal_takes_oldest() {
        let d = Deque::new();
        d.push(1);
        d.push(2);
        assert!(matches!(d.steal(), Steal::Success(1)));
        assert_eq!(d.pop(), Some(2));
        assert!(matches!(d.steal(), Steal::Empty));
    }

    #[test]
    fn growth_preserves_items() {
        let d = Deque::with_capacity(2);
        for i in 0..100 {
            d.push(i);
        }
        let mut stolen = Vec::new();
        while let Some(v) = d.steal_retrying() {
            stolen.push(v);
        }
        assert_eq!(stolen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn ring_reuse_after_wraparound() {
        // bottom/top advance far past the capacity; the masked ring must
        // keep items straight through thousands of reuse cycles.
        let d = Deque::with_capacity(4);
        let mut next = 0u64;
        for _ in 0..10_000 {
            for _ in 0..3 {
                d.push(next);
                next += 1;
            }
            assert!(matches!(d.steal(), Steal::Success(_)));
            assert!(d.pop().is_some());
            assert!(d.pop().is_some());
        }
        assert!(d.is_empty());
    }

    #[test]
    fn steal_tagged_declines_untagged_top() {
        let d = Deque::new();
        d.push_tagged(1, false);
        d.push_tagged(2, true);
        // Top (oldest) is untagged: a tag-only thief must leave it alone.
        assert!(matches!(d.steal_tagged(), Steal::Empty));
        assert_eq!(d.len(), 2);
        // An unrestricted thief takes it, tag or not …
        assert!(matches!(d.steal(), Steal::Success(1)));
        // … exposing the tagged item to the tag-only thief.
        assert!(matches!(d.steal_tagged(), Steal::Success(2)));
        assert!(matches!(d.steal_tagged(), Steal::Empty));
        // Tags are invisible to the owner's pop.
        d.push_tagged(3, true);
        d.push_tagged(4, false);
        assert_eq!(d.pop(), Some(4));
        assert_eq!(d.pop(), Some(3));
    }

    #[test]
    fn pop_empty_restores_state() {
        let d: Deque<u32> = Deque::new();
        assert_eq!(d.pop(), None);
        assert_eq!(d.pop(), None);
        d.push(7);
        assert_eq!(d.pop(), Some(7));
    }

    #[test]
    fn dropping_nonempty_deque_drops_items() {
        let counted = std::sync::Arc::new(());
        let d = Deque::new();
        for _ in 0..10 {
            d.push(counted.clone());
        }
        assert_eq!(std::sync::Arc::strong_count(&counted), 11);
        drop(d);
        assert_eq!(std::sync::Arc::strong_count(&counted), 1);
    }

    #[test]
    fn injector_drains_in_arrival_order() {
        let q = Injector::new();
        for i in 0..10 {
            q.push(i);
        }
        assert_eq!(q.len(), 10);
        assert_eq!(q.drain(), (0..10).collect::<Vec<_>>());
        assert!(q.is_empty());
        assert_eq!(q.drain(), Vec::<i32>::new());
    }

    #[test]
    fn injector_push_batch_is_one_publish_in_order() {
        let q = Injector::new();
        q.push(0);
        q.push_batch([1, 2, 3]);
        q.push(4);
        q.push_batch(Vec::<i32>::new()); // empty batch: no-op
        assert_eq!(q.len(), 5);
        assert_eq!(q.drain(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn multi_deque_pop_serves_highest_band_first() {
        let md = MultiDeque::new();
        md.push(0, 10u64);
        md.push(2, 30);
        md.push(1, 20);
        md.push(2, 31);
        assert_eq!(md.len(), 4);
        // FIFO within band, highest band first.
        assert_eq!(md.pop(true), Some(30));
        assert_eq!(md.pop(true), Some(31));
        assert_eq!(md.pop(true), Some(20));
        assert_eq!(md.pop(true), Some(10));
        assert_eq!(md.pop(true), None);
        assert!(md.is_empty());
        // A failed full scan retires every stale occupancy bit.
        assert_eq!(md.occupancy_bits() & ((1 << BANDS) - 1), 0);
    }

    #[test]
    fn multi_deque_lifo_pop_within_band() {
        let md = MultiDeque::new();
        md.push(1, 1u64);
        md.push(1, 2);
        md.push(3, 9);
        assert_eq!(md.pop(false), Some(9));
        assert_eq!(md.pop(false), Some(2));
        assert_eq!(md.pop(false), Some(1));
        assert_eq!(md.pop(false), None);
    }

    #[test]
    fn multi_deque_steal_prefers_high_band_and_skips_untagged() {
        let md = MultiDeque::new();
        md.push_tagged(0, 1u64, true);
        md.push_tagged(3, 2, false); // high band, parked (untagged)
                                     // Tag-only thief: the parked high-band item is skipped, the fresh
                                     // low-band one is taken — no band blocks the scan.
        assert_eq!(md.steal_retrying(true), Some(1));
        assert_eq!(md.steal_retrying(true), None);
        assert_eq!(md.band_len(3), 1);
        // An unrestricted thief takes the high-band item.
        assert_eq!(md.steal_retrying(false), Some(2));
        assert_eq!(md.steal_retrying(false), None);
    }

    #[test]
    fn multi_deque_occupancy_covers_nonempty_bands() {
        let md = MultiDeque::new();
        for band in 0..BANDS {
            md.push(band, band as u64);
            assert!(
                md.occupancy_bits() & (1 << band) != 0,
                "push must publish band {band}'s bit"
            );
        }
        for _ in 0..BANDS {
            md.pop(true);
        }
        // Quiesced and empty: every bit retires after one scan.
        assert_eq!(md.pop(true), None);
        for band in 0..BANDS {
            assert!(
                md.band_len(band) == 0,
                "band {band} must be empty after drain"
            );
        }
    }

    #[test]
    fn banded_injector_batch_keeps_arrival_order() {
        let q = BandedInjector::new();
        q.push(0, 'a');
        q.push_batch([(3, 'b'), (1, 'c'), (3, 'd')]);
        q.push(2, 'e');
        assert_eq!(q.len(), 5);
        assert_eq!(
            q.drain(),
            vec![(0, 'a'), (3, 'b'), (1, 'c'), (3, 'd'), (2, 'e')]
        );
        assert!(q.is_empty());
    }
}
