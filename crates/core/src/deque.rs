//! Lock-free scheduler queues: a Chase–Lev work-stealing deque and an
//! MPSC submission stack.
//!
//! This module is the *mechanism* half of the two-tier scheduler described
//! in DESIGN.md ("Scheduler fast path").  The paper's §3.3 observes that a
//! policy manager may keep "the queue of evaluating threads locally" so
//! that accessing it "requires no locking", while policy decisions —
//! where a fork goes, which victim an idle VP raids — stay in the
//! replaceable [`PolicyManager`](crate::pm::PolicyManager).  The
//! [`Deque`] here is that lock-free local queue: the VP that owns it
//! pushes and pops without a compare-and-swap on the common path, and
//! idle sibling VPs [`steal`](Deque::steal) from the opposite end with
//! one CAS per item.
//!
//! Two structures cooperate per VP:
//!
//! * [`Deque`] — the Chase–Lev deque \[Chase & Lev, SPAA 2005\], with the
//!   memory orderings of Lê et al., *Correct and Efficient Work-Stealing
//!   for Weak Memory Models* (PPoPP 2013).  Only the VP's driving worker
//!   (the *owner*) may call [`push`](Deque::push) and [`pop`](Deque::pop);
//!   any thread may [`steal`](Deque::steal).
//! * [`Injector`] — a Treiber-stack MPSC queue for *remote* submissions
//!   (forks from host threads, cross-VP wake-ups, the timekeeper).  Any
//!   thread may [`push`](Injector::push); the owner periodically
//!   [`drain`](Injector::drain)s it into the deque, which restores arrival
//!   order and makes the items stealable.
//!
//! Items are boxed: a slot holds one pointer, so a torn read of a slot is
//! impossible and the ABA question reduces to the monotonically increasing
//! `top` counter, which a 64-bit process cannot wrap.  Buffers retired by
//! [`Deque::push`] growth are kept alive until the deque drops, so a thief
//! holding a stale buffer pointer reads stale *data* (discarded when its
//! CAS fails), never freed memory.
//!
//! Boxing buys one more thing: the low bit of each slot pointer carries a
//! caller-chosen **tag** ([`Deque::push_tagged`]), readable by a thief
//! *without claiming the item* ([`Deque::steal_tagged`]).  The scheduler
//! tags fresh (never-run) threads so a policy that forbids TCB migration
//! can decline a parked item with two loads instead of a
//! steal-inspect-put-back round trip.

use parking_lot::Mutex;
use std::ptr;

// Under `--cfg sting_check` the atomics are the model checker's shims, so
// `ci.sh check` explores this exact production source (see
// crates/core/tests/model.rs); in normal builds they are std's.
#[cfg(not(sting_check))]
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};
#[cfg(sting_check)]
use sting_check::atomic::{fence, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};

/// Outcome of one [`Deque::steal`] attempt.
#[derive(Debug)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Another thief (or the owner, taking the last item) won the race;
    /// the caller may retry.
    Retry,
    /// One item was removed from the top (oldest end) of the deque.
    Success(T),
}

/// Strips the tag bit, recovering the `Box` pointer.
fn untag<T>(p: *mut T) -> *mut T {
    (p as usize & !1) as *mut T
}

/// Whether the tag bit is set on a slot pointer.
fn is_tagged<T>(p: *mut T) -> bool {
    p as usize & 1 == 1
}

/// A growable ring of item pointers.  Slots are atomic so stale reads by
/// thieves racing a wrap-around are defined behaviour (the value is used
/// only after winning the `top` CAS, which a lapped thief loses).
struct Buffer<T> {
    mask: usize,
    slots: Box<[AtomicPtr<T>]>,
}

impl<T> Buffer<T> {
    fn alloc(capacity: usize) -> *mut Buffer<T> {
        debug_assert!(capacity.is_power_of_two());
        Box::into_raw(Box::new(Buffer {
            mask: capacity - 1,
            slots: (0..capacity)
                .map(|_| AtomicPtr::new(ptr::null_mut()))
                .collect(),
        }))
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn get(&self, index: isize) -> *mut T {
        self.slots[index as usize & self.mask].load(Ordering::Relaxed)
    }

    fn put(&self, index: isize, item: *mut T) {
        self.slots[index as usize & self.mask].store(item, Ordering::Relaxed);
    }
}

/// A Chase–Lev work-stealing deque.
///
/// The *owner* — by contract, one thread at a time (the VP's driving
/// worker; [`crate::vp::Vp`] enforces this with a per-slice guard) — pushes
/// and pops at the **bottom**; *thieves* on any thread steal at the **top**
/// (the oldest item).  Owner operations are wait-free except when the
/// single remaining item must be raced against thieves; steals are
/// lock-free (one CAS per item).
///
/// Calling `push`/`pop` from two threads concurrently is memory-safe (all
/// slot traffic is atomic) but can *lose or duplicate dispatch of items*;
/// it is a logic error, not UB.
#[derive(Debug)]
pub struct Deque<T> {
    /// Steal end; monotonically increasing, never decremented.
    top: AtomicIsize,
    /// Owner end; `bottom - top` is the queue length.
    bottom: AtomicIsize,
    buffer: AtomicPtr<Buffer<T>>,
    /// Buffers replaced by growth, kept until drop so racing thieves never
    /// read freed memory.  Touched only on growth (owner) and drop.
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

// SAFETY: items are owned uniquely by whichever side removes them; all
// shared state is atomic.
unsafe impl<T: Send> Send for Deque<T> {}
// SAFETY: as above — the Chase–Lev protocol hands each item to exactly one
// claimant, and the buffer pointer is only retired, never freed, while shared.
unsafe impl<T: Send> Sync for Deque<T> {}

/// Initial buffer capacity (items); grows by doubling when full.
const INITIAL_CAPACITY: usize = 64;

impl<T> Default for Deque<T> {
    fn default() -> Deque<T> {
        Deque::new()
    }
}

impl<T> Deque<T> {
    /// Creates an empty deque with the default initial capacity.
    pub fn new() -> Deque<T> {
        Deque::with_capacity(INITIAL_CAPACITY)
    }

    /// Creates an empty deque whose first buffer holds `capacity` items
    /// (rounded up to a power of two).  Small capacities are useful in
    /// tests to force growth and ring wrap-around.
    pub fn with_capacity(capacity: usize) -> Deque<T> {
        let capacity = capacity.next_power_of_two().max(2);
        Deque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Buffer::alloc(capacity)),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Number of items currently queued (a relaxed snapshot).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        b.saturating_sub(t).max(0) as usize
    }

    /// Whether the deque is observed empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `item` at the bottom.  **Owner only.**  Wait-free (amortized:
    /// a full buffer is doubled, retiring the old one).
    pub fn push(&self, item: T) {
        self.push_tagged(item, false);
    }

    /// [`Deque::push`] with a one-bit label, carried in the low bit of the
    /// slot pointer (boxes are at least word-aligned, so the bit is free).
    /// Thieves can read the label without claiming the item; see
    /// [`Deque::steal_tagged`].
    pub fn push_tagged(&self, item: T, tag: bool) {
        let item = (Box::into_raw(Box::new(item)) as usize | usize::from(tag)) as *mut T;
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        // SAFETY: the buffer pointer is always valid; old buffers are
        // retired, not freed.
        let mut buffer = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        if b - t >= buffer.capacity() as isize {
            self.grow(t, b);
            // SAFETY: buffer valid (see above); grow just stored it.
            buffer = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        }
        buffer.put(b, item);
        // Publish the slot before the new bottom: a thief that Acquires
        // `bottom` must see the item.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Removes the item at the bottom — the *newest*, LIFO order.  **Owner
    /// only.**  Wait-free except when one item remains, which is raced
    /// against thieves with a single CAS on `top`.
    pub fn pop(&self) -> Option<T> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buffer = self.buffer.load(Ordering::Relaxed);
        // Release, not Relaxed: since C++20 weakened release sequences
        // (P0982), a thief that Acquires *this* store would otherwise get no
        // synchronization at all — it could observe `bottom > top` through a
        // stale mix and claim a slot whose contents it never saw published.
        // Every owner-side `bottom` store therefore carries the slots it
        // promises.  (Found by the sting-check model, which implements the
        // post-C++20 rules; Lê et al.'s Relaxed store leans on the pre-C++20
        // same-thread release-sequence clause.)
        self.bottom.store(b, Ordering::Release);
        // The SeqCst fence orders our `bottom` store against our `top`
        // load: either a concurrent thief sees the decremented bottom and
        // keeps its hands off the last item, or we see its incremented top
        // and go through the CAS.  (This is the owner/thief race the
        // DESIGN.md fast-path section walks through.)
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Already empty; restore the canonical empty state (Release for
            // the same P0982 reason as the decrement above).
            self.bottom.store(b + 1, Ordering::Release);
            return None;
        }
        // SAFETY: buffer valid (see push); the slot at `b` was written by
        // a previous push on this same (owner) thread.
        let item = unsafe { (*buffer).get(b) };
        if t == b {
            // Last item: win it against thieves or concede it.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Release);
            if !won {
                return None;
            }
        }
        // SAFETY: we hold the unique claim to slot `b` (either b > t, so
        // no thief can reach it, or the CAS above succeeded).
        let raw = untag(item);
        debug_assert!(
            !raw.is_null(),
            "pop claimed a null slot (double claim or unpublished write)"
        );
        #[cfg(debug_assertions)]
        // Poison the claimed slot: a second claim of the same slot now trips
        // the null assertions instead of double-freeing the item.  Safe
        // because no thief can win a CAS for this index anymore (see the
        // SAFETY argument above), and a re-push overwrites the slot first.
        // SAFETY: buffer valid (see push).
        unsafe {
            (*buffer).put(b, ptr::null_mut());
        }
        // SAFETY: restoring `bottom` (or winning the last-item CAS) gave the
        // owner unique claim to slot `b`; no other path frees this Box.
        Some(unsafe { *Box::from_raw(raw) })
    }

    /// Attempts to remove the item at the top — the *oldest*, FIFO order.
    /// Safe from any thread; lock-free.  A [`Steal::Retry`] means the CAS
    /// was lost to a concurrent remover, not that the deque is empty.
    pub fn steal(&self) -> Steal<T> {
        self.steal_inner(false)
    }

    /// [`Deque::steal`] that declines — returning [`Steal::Empty`] without
    /// disturbing the queue — when the top item's tag bit (see
    /// [`Deque::push_tagged`]) is clear.
    pub fn steal_tagged(&self) -> Steal<T> {
        self.steal_inner(true)
    }

    fn steal_inner(&self, tagged_only: bool) -> Steal<T> {
        let t = self.top.load(Ordering::Acquire);
        // Order the `top` load before the `bottom` load, pairing with the
        // fence in `pop` (see DESIGN.md for the full argument).
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Read the slot BEFORE claiming it: after the CAS the owner may
        // recycle the slot for a new push.  SAFETY: buffer valid (see
        // push); a stale buffer from a concurrent growth is still
        // allocated (retired list) and the CAS below fails if the item
        // moved on.
        let buffer = unsafe { &*self.buffer.load(Ordering::Acquire) };
        let item = buffer.get(t);
        if tagged_only && !is_tagged(item) {
            // The label is only trustworthy if the slot still holds the
            // item we measured; a stale read is caught by the same check a
            // successful steal relies on.
            if self.top.load(Ordering::SeqCst) == t {
                return Steal::Empty;
            }
            return Steal::Retry;
        }
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return Steal::Retry;
        }
        let raw = untag(item);
        debug_assert!(
            !raw.is_null(),
            "steal claimed a null slot (double claim or unpublished write)"
        );
        // SAFETY: the CAS on `top` grants unique ownership of slot `t`, so
        // this is the only place that reconstitutes this Box.
        Steal::Success(unsafe { *Box::from_raw(raw) })
    }

    /// [`Deque::steal`], retried until it yields an item or observes the
    /// deque empty.
    pub fn steal_retrying(&self) -> Option<T> {
        loop {
            match self.steal() {
                Steal::Success(item) => return Some(item),
                Steal::Empty => return None,
                Steal::Retry => std::hint::spin_loop(),
            }
        }
    }

    /// Doubles the buffer, copying the live window `t..b`.  Owner only
    /// (called from [`Deque::push`]).
    fn grow(&self, t: isize, b: isize) {
        let old_ptr = self.buffer.load(Ordering::Relaxed);
        // SAFETY: buffer valid (see push).
        let old = unsafe { &*old_ptr };
        let new_ptr = Buffer::alloc(old.capacity() * 2);
        // SAFETY: freshly allocated above, not yet shared.
        let new = unsafe { &*new_ptr };
        for i in t..b {
            new.put(i, old.get(i));
        }
        // Release: a thief Acquiring the new pointer sees the copied slots.
        self.buffer.store(new_ptr, Ordering::Release);
        self.retired.lock().push(old_ptr);
    }
}

impl<T> Drop for Deque<T> {
    fn drop(&mut self) {
        // &mut self: no concurrent owner or thieves remain.
        let t = *self.top.get_mut();
        let b = *self.bottom.get_mut();
        let buffer_ptr = *self.buffer.get_mut();
        // SAFETY: exclusive access; every live item pointer in t..b was
        // Boxed by push and not yet reclaimed.
        unsafe {
            let buffer = &*buffer_ptr;
            for i in t..b {
                drop(Box::from_raw(untag(buffer.get(i))));
            }
            drop(Box::from_raw(buffer_ptr));
            for retired in self.retired.get_mut().drain(..) {
                drop(Box::from_raw(retired));
            }
        }
    }
}

/// A lock-free multi-producer submission queue (Treiber stack, reversed on
/// drain so items come out oldest-first).
///
/// Any thread may [`push`](Injector::push); [`drain`](Injector::drain)
/// atomically takes the whole backlog, so concurrent drains never yield the
/// same item twice.
#[derive(Debug)]
pub struct Injector<T> {
    head: AtomicPtr<Node<T>>,
    len: AtomicUsize,
}

struct Node<T> {
    item: T,
    next: *mut Node<T>,
}

// SAFETY: nodes are owned by the stack between push and drain; all shared
// state is atomic.
unsafe impl<T: Send> Send for Injector<T> {}
// SAFETY: as above — every cross-thread handoff goes through the atomic
// head, which transfers node ownership wholesale.
unsafe impl<T: Send> Sync for Injector<T> {}

impl<T> Default for Injector<T> {
    fn default() -> Injector<T> {
        Injector::new()
    }
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Injector<T> {
        Injector {
            head: AtomicPtr::new(ptr::null_mut()),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of items currently queued (a relaxed snapshot).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the injector is observed empty.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Relaxed).is_null()
    }

    /// Appends `item`.  Lock-free; callable from any thread.
    pub fn push(&self, item: T) {
        let node = Box::into_raw(Box::new(Node {
            item,
            next: ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is ours until the CAS publishes it.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(current) => head = current,
            }
        }
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Atomically takes the whole backlog, oldest first.  Returns an empty
    /// vector (no allocation) when nothing is queued.
    pub fn drain(&self) -> Vec<T> {
        if self.head.load(Ordering::Relaxed).is_null() {
            return Vec::new();
        }
        let mut head = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        let mut out = Vec::new();
        while !head.is_null() {
            // SAFETY: the swap above made this chain exclusively ours.
            let node = unsafe { Box::from_raw(head) };
            head = node.next;
            out.push(node.item);
        }
        self.len.fetch_sub(out.len(), Ordering::Relaxed);
        out.reverse(); // stack order -> arrival order
        out
    }
}

impl<T> Drop for Injector<T> {
    fn drop(&mut self) {
        drop(self.drain());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_push_pop_is_lifo() {
        let d = Deque::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.len(), 3);
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn steal_takes_oldest() {
        let d = Deque::new();
        d.push(1);
        d.push(2);
        assert!(matches!(d.steal(), Steal::Success(1)));
        assert_eq!(d.pop(), Some(2));
        assert!(matches!(d.steal(), Steal::Empty));
    }

    #[test]
    fn growth_preserves_items() {
        let d = Deque::with_capacity(2);
        for i in 0..100 {
            d.push(i);
        }
        let mut stolen = Vec::new();
        while let Some(v) = d.steal_retrying() {
            stolen.push(v);
        }
        assert_eq!(stolen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn ring_reuse_after_wraparound() {
        // bottom/top advance far past the capacity; the masked ring must
        // keep items straight through thousands of reuse cycles.
        let d = Deque::with_capacity(4);
        let mut next = 0u64;
        for _ in 0..10_000 {
            for _ in 0..3 {
                d.push(next);
                next += 1;
            }
            assert!(matches!(d.steal(), Steal::Success(_)));
            assert!(d.pop().is_some());
            assert!(d.pop().is_some());
        }
        assert!(d.is_empty());
    }

    #[test]
    fn steal_tagged_declines_untagged_top() {
        let d = Deque::new();
        d.push_tagged(1, false);
        d.push_tagged(2, true);
        // Top (oldest) is untagged: a tag-only thief must leave it alone.
        assert!(matches!(d.steal_tagged(), Steal::Empty));
        assert_eq!(d.len(), 2);
        // An unrestricted thief takes it, tag or not …
        assert!(matches!(d.steal(), Steal::Success(1)));
        // … exposing the tagged item to the tag-only thief.
        assert!(matches!(d.steal_tagged(), Steal::Success(2)));
        assert!(matches!(d.steal_tagged(), Steal::Empty));
        // Tags are invisible to the owner's pop.
        d.push_tagged(3, true);
        d.push_tagged(4, false);
        assert_eq!(d.pop(), Some(4));
        assert_eq!(d.pop(), Some(3));
    }

    #[test]
    fn pop_empty_restores_state() {
        let d: Deque<u32> = Deque::new();
        assert_eq!(d.pop(), None);
        assert_eq!(d.pop(), None);
        d.push(7);
        assert_eq!(d.pop(), Some(7));
    }

    #[test]
    fn dropping_nonempty_deque_drops_items() {
        let counted = std::sync::Arc::new(());
        let d = Deque::new();
        for _ in 0..10 {
            d.push(counted.clone());
        }
        assert_eq!(std::sync::Arc::strong_count(&counted), 11);
        drop(d);
        assert_eq!(std::sync::Arc::strong_count(&counted), 1);
    }

    #[test]
    fn injector_drains_in_arrival_order() {
        let q = Injector::new();
        for i in 0..10 {
            q.push(i);
        }
        assert_eq!(q.len(), 10);
        assert_eq!(q.drain(), (0..10).collect::<Vec<_>>());
        assert!(q.is_empty());
        assert_eq!(q.drain(), Vec::<i32>::new());
    }
}
