//! First-class threads.
//!
//! A [`Thread`] is the paper's passive thread object: a thunk, a state word,
//! waiters, genealogy and scheduling hints.  It is deliberately small — the
//! expensive dynamic context (stack, machine state) lives in a
//! `Tcb` (see [`crate::tcb`]) that exists only while the thread is evaluating
//! and is recycled when it determines.
//!
//! Threads are manipulated through `Arc<Thread>` and may be stored in data
//! structures, returned from procedures and outlive their creators — they
//! are bona fide data objects (they also convert to
//! [`sting_value::Value`] via [`Thread::to_value`]).

use crate::counters::Counters;
use crate::error::CoreError;
use crate::group::ThreadGroup;
use crate::state::{StateRequest, ThreadState};
use crate::tc::Cx;
use crate::tcb::Tcb;
use crate::vm::Vm;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{
    AtomicBool, AtomicI32, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
};
use std::sync::{Arc, Weak};
use std::time::Duration;
use sting_value::Value;

/// The code a thread runs: a nullary procedure over the thread context.
pub type Thunk = Box<dyn FnOnce(&Cx) -> Value + Send + 'static>;

/// A thread body that produces a [`ThreadResult`] directly: `Err` is an
/// exception value, delivered to waiters without unwinding.  Language
/// runtimes use this so raised exceptions cross threads without panics.
pub type TryThunk = Box<dyn FnOnce(&Cx) -> ThreadResult + Send + 'static>;

/// A thread's final outcome: `Ok` is the value of its thunk (or the value
/// supplied to `thread-terminate`); `Err` is an uncaught exception value.
pub type ThreadResult = Result<Value, Value>;

/// Unique thread identifier within a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u64);

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A node linking a waiting thread to one of the threads it waits on.
///
/// This is the paper's *thread barrier* (TB) record from Figure 5: the
/// waiter's wait-count is decremented whenever a watched thread determines;
/// at zero the waiter is rescheduled.  `wait-for-one` uses a count of 1
/// over n nodes, `wait-for-all` a count of n.
///
/// (Not to be confused with [`crate::wait::WaitNode`], the blocking
/// protocol's parking spot — a `JoinNode` only counts determinations.)
#[derive(Debug)]
pub struct JoinNode {
    waiter: Arc<Thread>,
    remaining: AtomicUsize,
}

impl JoinNode {
    /// Creates a node that will wake `waiter` after `count` completions.
    pub fn new(waiter: Arc<Thread>, count: usize) -> Arc<JoinNode> {
        Arc::new(JoinNode {
            waiter,
            remaining: AtomicUsize::new(count),
        })
    }

    /// Records one completion; wakes the waiter when the count hits zero.
    /// Completions beyond the count are ignored (a group may contain more
    /// threads than the count requires).
    pub fn complete_one(&self) {
        let mut cur = self.remaining.load(Ordering::Acquire);
        loop {
            if cur == 0 {
                return;
            }
            match self.remaining.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
        if cur == 1 {
            self.waiter.unblock();
        }
    }

    /// Remaining completions before the waiter wakes.
    pub fn remaining(&self) -> usize {
        self.remaining.load(Ordering::Acquire)
    }

    /// Deactivates the node: later completions are ignored and never wake
    /// the (abandoning or dying) waiter.  Used by the timed/cancellable
    /// join paths so watched threads never count a dead waiter.
    pub fn cancel(&self) {
        self.remaining.swap(0, Ordering::AcqRel);
    }
}

pub(crate) struct ThreadCore {
    pub(crate) thunk: Option<TryThunk>,
    pub(crate) result: Option<ThreadResult>,
    pub(crate) parked: Option<Tcb>,
    pub(crate) wake_pending: bool,
    pub(crate) requests: Vec<StateRequest>,
    pub(crate) waiters: Vec<Arc<JoinNode>>,
    /// Next `waiters` length at which satisfied nodes are swept (amortized
    /// pruning, see [`Thread::add_wait_node`]).
    waiters_sweep_at: usize,
    /// The condition this thread is blocked on (paper's `blocker`); purely
    /// informational, for debugging and group listings.
    pub(crate) blocker: Option<Value>,
}

/// A first-class lightweight thread.
///
/// Create threads with [`crate::vm::Vm::fork`], [`crate::vm::Vm::delayed`],
/// the [`ThreadBuilder`](crate::builder::ThreadBuilder), or from inside a
/// running thread with [`crate::tc`] operations.
pub struct Thread {
    id: ThreadId,
    name: Option<String>,
    state: AtomicU8,
    stealable: AtomicBool,
    priority: AtomicI32,
    quantum: AtomicU32,
    pub(crate) core: Mutex<ThreadCore>,
    pub(crate) determined_cv: Condvar,
    group: Arc<ThreadGroup>,
    parent: Weak<Thread>,
    children: Mutex<Vec<Weak<Thread>>>,
    /// Owning VM (shard).  Interior-mutable so a cross-shard handoff can
    /// re-home the thread while it is quiescent (owned by exactly one
    /// mailbox, neither queued nor running); every reader goes through
    /// [`Thread::vm`], so a re-home is a single uncontended lock.
    vm: Mutex<Weak<Vm>>,
    /// VP the thread last ran on (or was scheduled on); wake-ups go here.
    pub(crate) home_vp: AtomicUsize,
    /// Metrics stamp: [`Metrics::now_ns`](crate::metrics::Metrics) at the
    /// last *sampled* ready-enqueue, 0 when unstamped.  Written by the
    /// enqueuer, consumed (reset to 0) by the dispatching VP.
    pub(crate) enqueued_at_ns: AtomicU64,
    /// Metrics stamp: time of the last *sampled* park commit, 0 when
    /// unstamped.  Written under `core` by the parking VP, consumed by the
    /// waker.
    pub(crate) blocked_at_ns: AtomicU64,
    /// The thread's parking spot for the blocking protocol: one node for
    /// the thread's whole lifetime, episodes distinguished by generation
    /// (see [`crate::wait`]).
    wait_node: Arc<crate::wait::WaitNode>,
}

impl std::fmt::Debug for Thread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Thread")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("state", &self.state())
            .finish()
    }
}

impl Thread {
    // Internal constructor: the spawn paths collect these from SpawnOpts;
    // a params struct here would only mirror that type.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        vm: &Arc<Vm>,
        thunk: TryThunk,
        state: ThreadState,
        group: Arc<ThreadGroup>,
        parent: Weak<Thread>,
        name: Option<String>,
        stealable: bool,
        priority: i32,
        quantum: u32,
    ) -> Arc<Thread> {
        debug_assert!(matches!(
            state,
            ThreadState::Delayed | ThreadState::Scheduled
        ));
        let t = Arc::new_cyclic(|weak: &Weak<Thread>| Thread {
            id: ThreadId(vm.next_thread_id()),
            name,
            state: AtomicU8::new(state as u8),
            stealable: AtomicBool::new(stealable),
            priority: AtomicI32::new(priority),
            quantum: AtomicU32::new(quantum),
            core: Mutex::new(ThreadCore {
                thunk: Some(thunk),
                result: None,
                parked: None,
                wake_pending: false,
                requests: Vec::new(),
                waiters: Vec::new(),
                waiters_sweep_at: 32,
                blocker: None,
            }),
            determined_cv: Condvar::new(),
            group: group.clone(),
            parent: parent.clone(),
            children: Mutex::new(Vec::new()),
            vm: Mutex::new(Arc::downgrade(vm)),
            home_vp: AtomicUsize::new(0),
            enqueued_at_ns: AtomicU64::new(0),
            blocked_at_ns: AtomicU64::new(0),
            wait_node: Arc::new(crate::wait::WaitNode::green(weak.clone())),
        });
        group.add(&t);
        if let Some(p) = parent.upgrade() {
            p.children.lock().push(Arc::downgrade(&t));
        }
        Counters::bump(&vm.counters().threads_created);
        crate::trace_event!(
            vm.tracer(),
            crate::tls::current().map(|c| c.vp.index()),
            crate::trace::EventKind::Fork,
            t.id.0
        );
        t
    }

    /// The thread's process-unique id.
    pub fn id(&self) -> ThreadId {
        self.id
    }

    /// Optional debug name.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Current observable state (a racy snapshot, as in the paper).
    pub fn state(&self) -> ThreadState {
        ThreadState::from_u8(self.state.load(Ordering::Acquire))
    }

    pub(crate) fn set_state(&self, s: ThreadState) {
        self.state.store(s as u8, Ordering::Release);
    }

    /// Atomically claims a delayed/scheduled thread for execution or
    /// stealing, moving it to `next`.  Returns the thunk on success.
    pub(crate) fn claim(&self, next: ThreadState) -> Option<TryThunk> {
        let mut core = self.core.lock();
        if self.state().is_claimable() {
            self.set_state(next);
            core.thunk.take()
        } else {
            None
        }
    }

    /// Whether this thread has determined (its result is available).
    pub fn is_determined(&self) -> bool {
        self.state().is_determined()
    }

    /// The thread's result, if determined.
    pub fn result(&self) -> Option<ThreadResult> {
        if !self.is_determined() {
            return None;
        }
        self.core.lock().result.clone()
    }

    /// Whether a toucher may absorb this thread's thunk (see
    /// [`crate::tc::touch`]).
    pub fn is_stealable(&self) -> bool {
        self.stealable.load(Ordering::Acquire)
    }

    /// Allows or forbids stealing of this thread ("users can parametrize
    /// thread state to inform the TC if a thread can steal or not").
    pub fn set_stealable(&self, stealable: bool) {
        self.stealable.store(stealable, Ordering::Release);
    }

    /// Scheduling priority hint, interpreted by the policy manager.
    pub fn priority(&self) -> i32 {
        self.priority.load(Ordering::Acquire)
    }

    /// Sets the scheduling priority hint.
    pub fn set_priority(&self, priority: i32) {
        self.priority.store(priority, Ordering::Release);
    }

    /// Quantum, in preemption ticks, granted per scheduling slice.
    pub fn quantum(&self) -> u32 {
        self.quantum.load(Ordering::Acquire)
    }

    /// Sets the per-slice quantum in preemption ticks (minimum 1).
    pub fn set_quantum(&self, ticks: u32) {
        self.quantum.store(ticks.max(1), Ordering::Release);
    }

    /// The thread group this thread belongs to.
    pub fn group(&self) -> &Arc<ThreadGroup> {
        &self.group
    }

    /// The thread's parent, if still alive (genealogy).
    pub fn parent(&self) -> Option<Arc<Thread>> {
        self.parent.upgrade()
    }

    /// The thread's live children (genealogy).
    pub fn children(&self) -> Vec<Arc<Thread>> {
        self.children
            .lock()
            .iter()
            .filter_map(Weak::upgrade)
            .collect()
    }

    /// The condition value this thread is blocked on, if any.
    pub fn blocker(&self) -> Option<Value> {
        self.core.lock().blocker.clone()
    }

    /// Wraps this thread as a substrate [`Value`] (threads are data).
    pub fn to_value(self: &Arc<Thread>) -> Value {
        Value::native("thread", self.clone())
    }

    /// The thread's blocking-protocol parking node (see [`crate::wait`]).
    pub(crate) fn wait_node(&self) -> &Arc<crate::wait::WaitNode> {
        &self.wait_node
    }

    /// Registers `node` to be completed when this thread determines.
    ///
    /// Returns `false` (without registering) if the thread has already
    /// determined; the caller should then count the completion itself.
    pub fn add_wait_node(&self, node: &Arc<JoinNode>) -> bool {
        let mut core = self.core.lock();
        if self.is_determined() {
            false
        } else {
            // Amortized sweep of satisfied nodes: a waiter woken through
            // *another* watched thread (wait-for-one) leaves its node here
            // with `remaining == 0`; on a long-lived thread those would
            // otherwise accumulate until it determines.  Sweeping only when
            // the list doubles past the previous sweep's survivors keeps
            // registration O(1) amortized.
            if core.waiters.len() >= core.waiters_sweep_at {
                core.waiters.retain(|w| w.remaining() > 0);
                core.waiters_sweep_at = (core.waiters.len() * 2).max(32);
            }
            core.waiters.push(node.clone());
            true
        }
    }

    /// Blocks the **calling OS thread** until this thread determines.
    ///
    /// This is how code outside the virtual machine (e.g. `main`) joins a
    /// thread; STING threads must use [`crate::tc::wait`] instead, which
    /// blocks only the green thread.
    pub fn join_blocking(&self) -> ThreadResult {
        let mut core = self.core.lock();
        while !self.is_determined() {
            self.determined_cv.wait(&mut core);
        }
        core.result.clone().expect("determined thread has a result")
    }

    /// Like [`Thread::join_blocking`] with a timeout; `None` on timeout.
    pub fn join_blocking_timeout(&self, timeout: Duration) -> Option<ThreadResult> {
        let deadline = std::time::Instant::now() + timeout;
        let mut core = self.core.lock();
        while !self.is_determined() {
            if self
                .determined_cv
                .wait_until(&mut core, deadline)
                .timed_out()
            {
                return None;
            }
        }
        Some(core.result.clone().expect("determined thread has a result"))
    }

    /// Waits for this thread to determine, for at most `timeout`; `None`
    /// on timeout.  On a STING thread this parks only the green thread
    /// (with the deadline routed through the timer wheel, see
    /// [`crate::tc::wait_timeout`]); on a plain OS thread it falls back to
    /// [`Thread::join_blocking_timeout`].
    pub fn wait_timeout(self: &Arc<Thread>, timeout: Duration) -> Option<ThreadResult> {
        crate::tc::wait_timeout(self, timeout)
    }

    /// Records an asynchronous state-change request (the paper's
    /// `thread-block` / `thread-suspend` / `thread-terminate` applied to
    /// *another* thread).  Evaluating targets honour it at their next
    /// thread-controller entry; passive targets are transitioned directly.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidTransition`] if the target's current state does
    /// not admit the request.
    pub fn request(self: &Arc<Thread>, request: StateRequest) -> Result<(), CoreError> {
        let mut core = self.core.lock();
        let state = self.state();
        if !state.can_request(&request) {
            return Err(CoreError::InvalidTransition {
                detail: "request not permitted in the target's current state",
            });
        }
        match (&request, state) {
            // A passive thread can be terminated right here: it has no TCB
            // whose owner must cooperate.
            (StateRequest::Terminate(v), ThreadState::Delayed | ThreadState::Scheduled) => {
                core.thunk = None;
                drop(core);
                self.complete(Ok(v.clone()));
                Ok(())
            }
            (StateRequest::Raise(v), ThreadState::Delayed | ThreadState::Scheduled) => {
                core.thunk = None;
                drop(core);
                self.complete(Err(v.clone()));
                Ok(())
            }
            (StateRequest::Resume, ThreadState::Delayed) => {
                drop(core);
                let vm = self.vm().ok_or(CoreError::Shutdown)?;
                let vp = self.home_vp.load(Ordering::Relaxed) % vm.vp_count();
                vm.schedule_fresh(self, vp)
            }
            (StateRequest::Resume, ThreadState::Blocked | ThreadState::Suspended) => {
                drop(core);
                self.unblock();
                Ok(())
            }
            // Requests against an evaluating (or parked) thread are queued
            // and applied by the thread itself; parked targets are woken so
            // they notice promptly.
            _ => {
                let lethal = matches!(request, StateRequest::Terminate(_) | StateRequest::Raise(_));
                core.requests.push(request);
                let parked = state.has_tcb() && state != ThreadState::Evaluating;
                drop(core);
                if lethal {
                    // The target will unwind at its next controller entry:
                    // cancel its wait episode *now* so no structure spends
                    // a wake-up on (or counts) the dying waiter.
                    if let Some(gen) = self.wait_node.state().cancel_current() {
                        if let Some(vm) = self.vm() {
                            crate::trace_event!(
                                vm.tracer(),
                                crate::tls::current().map(|c| c.vp.index()),
                                crate::trace::EventKind::WaiterCancelled,
                                self.id.0,
                                0, // origin: state request
                                gen as u32
                            );
                        }
                    }
                }
                if parked {
                    self.unblock();
                }
                Ok(())
            }
        }
    }

    /// Makes a blocked/suspended thread runnable again (or records a
    /// pending wake-up if it has not finished parking yet).  Idempotent;
    /// spurious wake-ups are allowed and synchronization structures must
    /// re-check their condition.
    pub(crate) fn unblock(self: &Arc<Thread>) {
        self.unblock_inner(0);
    }

    /// [`Thread::unblock`] for a wake-up that consumed wait episode `gen`
    /// via the claim token ([`crate::wait::Waiter::wake`]).  The trace
    /// event carries the generation (its low 32 bits; generations start at
    /// 1, so `b != 0` distinguishes claimed wake-ups from plain ones) for
    /// the audit's wake-after-cancel check.
    pub(crate) fn unblock_claimed(self: &Arc<Thread>, gen: u64) {
        self.unblock_inner(gen as u32);
    }

    fn unblock_inner(self: &Arc<Thread>, claimed_gen: u32) {
        if let Some(tcb) = self.take_parked_tcb() {
            if let Some(vm) = self.vm() {
                let vp = self.note_unblock(&vm, claimed_gen);
                vm.enqueue_parked(tcb, vp, crate::pm::EnqueueState::Unblocked);
            }
        }
    }

    /// [`Thread::unblock_claimed`], but the ready-queue publication is
    /// deferred into `batch` (see [`crate::wait::WakeBatch`]).  The state
    /// transition, wake-up counter and Unblock trace all happen here; only
    /// the enqueue waits for the batch to publish.
    pub(crate) fn unblock_deferred(
        self: &Arc<Thread>,
        gen: u64,
        batch: &mut crate::wait::WakeBatch,
    ) {
        if let Some(tcb) = self.take_parked_tcb() {
            if let Some(vm) = self.vm() {
                let vp = self.note_unblock(&vm, gen as u32);
                batch.add(vm, vp, tcb);
            }
        }
    }

    /// Claims the parked TCB if this thread is blocked/suspended with one,
    /// transitioning it to `Evaluating`; records a pending wake-up
    /// otherwise.
    fn take_parked_tcb(&self) -> Option<Tcb> {
        let mut core = self.core.lock();
        match self.state() {
            ThreadState::Blocked | ThreadState::Suspended => match core.parked.take() {
                Some(tcb) => {
                    core.blocker = None;
                    self.set_state(ThreadState::Evaluating);
                    Some(tcb)
                }
                None => {
                    // Raced with the parking VP: it will see the flag.
                    core.wake_pending = true;
                    None
                }
            },
            ThreadState::Evaluating => {
                // Woken before it even parked.
                core.wake_pending = true;
                None
            }
            _ => None,
        }
    }

    /// Wake-side bookkeeping for a taken TCB: counter, metrics stamp and
    /// the Unblock trace event.  Returns the destination VP.
    fn note_unblock(&self, vm: &Arc<Vm>, claimed_gen: u32) -> usize {
        Counters::bump(&vm.counters().wakeups);
        let vp = self.home_vp.load(Ordering::Relaxed) % vm.vp_count();
        vm.metrics().note_wake(vp, self);
        crate::trace_event!(
            vm.tracer(),
            crate::tls::current().map(|c| c.vp.index()),
            crate::trace::EventKind::Unblock,
            self.id.0,
            vp as u32,
            claimed_gen
        );
        vp
    }

    /// Finalizes the thread with `result`: sets `Determined`, publishes the
    /// value, and wakes every waiter (the paper's `wakeup-waiters`).
    pub(crate) fn complete(self: &Arc<Thread>, result: ThreadResult) {
        // A wait episode still armed at determination is a protocol leak:
        // every park path (normal return, unwind guard, request
        // cancellation) must have closed it.  Kill it so no structure can
        // wake a recycled thread, and trace it for the audit's
        // waiter-leak invariant.
        if let Some(gen) = self.wait_node.state().cancel_current() {
            if let Some(vm) = self.vm() {
                crate::trace_event!(
                    vm.tracer(),
                    crate::tls::current().map(|c| c.vp.index()),
                    crate::trace::EventKind::WaiterCancelled,
                    self.id.0,
                    2, // origin: leaked at determine
                    gen as u32
                );
            }
        }
        let waiters = {
            let mut core = self.core.lock();
            if self.is_determined() {
                return;
            }
            let failed = result.is_err();
            core.result = Some(result);
            self.set_state(ThreadState::Determined);
            if let Some(vm) = self.vm() {
                Counters::bump(&vm.counters().determinations);
                if failed {
                    Counters::bump(&vm.counters().exceptions);
                }
                crate::trace_event!(
                    vm.tracer(),
                    crate::tls::current().map(|c| c.vp.index()),
                    crate::trace::EventKind::Determine,
                    self.id.0,
                    u32::from(failed)
                );
            }
            self.determined_cv.notify_all();
            std::mem::take(&mut core.waiters)
        };
        for w in waiters {
            w.complete_one();
        }
    }

    pub(crate) fn vm(&self) -> Option<Arc<Vm>> {
        self.vm.lock().upgrade()
    }

    /// Whether this thread belongs to `vm` (same shard).
    pub(crate) fn belongs_to(&self, vm: &Arc<Vm>) -> bool {
        self.vm.lock().ptr_eq(&Arc::downgrade(vm))
    }

    /// Re-points the thread at a new owning shard.  Caller must hold the
    /// only reference to the thread's run state (a handed-off `RunItem`):
    /// the thread is neither queued, running, nor parked on the source
    /// shard when this runs, so readers racing `vm()` see either shard
    /// coherently and both are valid wake targets during the handoff.
    pub(crate) fn rehome(&self, vm: &Arc<Vm>) {
        *self.vm.lock() = Arc::downgrade(vm);
    }

    /// Drains pending asynchronous requests (called by the owning thread at
    /// thread-controller entries).
    pub(crate) fn take_requests(&self) -> Vec<StateRequest> {
        std::mem::take(&mut self.core.lock().requests)
    }
}
