//! Sharded virtual machines: a [`Fleet`] of cooperating [`Vm`]s joined by
//! a cross-shard message fabric.
//!
//! The paper's §3.2 virtual-machine abstraction deliberately hides
//! physical topology so one substrate can span several memory domains.  A
//! `Fleet` realises that: it owns N VM **shards** — each a complete [`Vm`]
//! with its own VPs, policy managers, reactor, and flight-recorder rings —
//! multiplexed onto one shared [`PhysicalMachine`].  Shards exchange work
//! and requests over a matrix of per-shard-pair SPSC [`Mailbox`]es (the
//! [`Fabric`]):
//!
//! ```text
//!   shard 0  ── mailbox[0→1] ──▶  shard 1
//!      ▲  ◀── mailbox[1→0] ──┘      │
//!      │                            ▼
//!   mailbox[2→0] ...           mailbox[1→2] ...
//! ```
//!
//! Three message kinds flow over the fabric:
//!
//! * **`Handoff`** — a ready [`RunItem`] migrating between shards.  The
//!   victim pops it with the thief-side steal protocol (cold end of its
//!   own deque), re-homes nothing itself; the *receiver* re-points the
//!   thread's owning VM and home VP before enqueueing, so a wake-up racing
//!   the handoff targets whichever shard currently owns the thread.  Wait
//!   episodes live in the thread's [`WaitNode`](crate::wait::WaitNode) and
//!   cross shards untouched — generations are preserved.
//! * **`Call`** — a boxed closure run on the destination shard's VP.
//!   `sting-tuple` routes remote tuple-space partition operations this
//!   way without `sting-core` knowing anything about tuples.
//! * **`WorkRequest`** — an idle shard asking a sibling for work
//!   (cross-shard extension of the §4.1.1 steal protocol); deduplicated
//!   per (requester, victim) pair so an idle shard posts at most one
//!   outstanding request per victim.
//!
//! ## Trace merging
//!
//! Every shard stamps its flight-recorder events with a per-shard Lamport
//! clock ([`Tracer::clock`](crate::trace::Tracer::clock)).  Each fabric message carries the sender's
//! clock reading; the receiver [`Tracer::witness`](crate::trace::Tracer::witness)es it before recording,
//! so any event causally after a handoff sorts after it.
//! [`Fleet::merged_snapshot`] remaps each shard's recorder lanes into one
//! disjoint lane space and merge-sorts by `(lc, ts_ns)`, giving
//! [`Fleet::trace_audit`] a single fleet-wide replay that the
//! [`audit`](crate::audit) linter can check with the same rules as a
//! single-shard stream.
//!
//! ## Zero cost when unsharded
//!
//! [`Fleet::single`] wraps one standalone [`Vm`] with **no fabric
//! installed**: the only new cost on the hot paths is one acquire load per
//! VP slice (the `Vm`'s empty fabric slot), which the bench gate holds
//! within noise of the pre-fleet baseline.

use crate::machine::PhysicalMachine;
use crate::pm::{EnqueueState, PolicyManager, RunItem};
use crate::policies;
use crate::thread::ThreadResult;
use crate::topology::Topology;
use crate::trace::{sort_events, EventKind, TraceEvent};
use crate::vm::Vm;
use crate::vp::Vp;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;
use sting_value::Value;

mod mailbox {
    //! The per-shard-pair mailbox: a bounded SPSC ring with claim flags
    //! that serialize the (possibly several) VPs on each side.
    //!
    //! Protocol — the classic single-producer/single-consumer ring:
    //! the producer writes the slot, *then* publishes it with a `Release`
    //! store of `tail`; the consumer `Acquire`-loads `tail`, so every slot
    //! write it observes is fully initialised.  The `Release` on the tail
    //! store is load-bearing: `crates/core/tests/model_fleet.rs`
    //! model-checks the production ring for exactly-once in-order delivery
    //! and proves (by an expect-failure mutation with a `Relaxed` publish)
    //! that weakening it loses messages.

    // Under `--cfg sting_check` the atomics are the model checker's shims,
    // so `./ci.sh check` explores the ring protocol exhaustively.
    use std::cell::UnsafeCell;
    #[cfg(not(sting_check))]
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    #[cfg(sting_check)]
    use sting_check::atomic::{AtomicBool, AtomicUsize, Ordering};

    /// A bounded SPSC ring carrying cross-shard messages.
    ///
    /// "Single producer" is the *source shard* and "single consumer" the
    /// *destination shard*; because a shard has several VPs, each side is
    /// serialized by a claim flag (`prod`/`cons`).  The producer claim is
    /// a short spin (the holder only writes one slot — it never blocks or
    /// allocates while claimed); the consumer claim is try-only, so a VP
    /// that loses it simply skips the drain and a sibling does the work.
    ///
    /// A full ring overflows into a mutex-protected side queue rather than
    /// blocking: with shards multiplexed on one worker, a producer spinning
    /// for ring space could be holding the very OS thread the consumer
    /// needs.  While spilled messages wait, every later push joins them in
    /// the side queue and `drain` empties the ring before taking it, so
    /// delivery stays FIFO across a spill.  The overflow path is never
    /// taken by the model tests and is compiled out under `sting_check`.
    pub struct Mailbox<T> {
        mask: usize,
        slots: Box<[UnsafeCell<Option<T>>]>,
        /// Next slot to consume; written only by the consumer.
        head: AtomicUsize,
        /// Next free slot / publish count; written only by the producer.
        tail: AtomicUsize,
        /// Producer-side claim serializing same-shard VPs.
        prod: AtomicBool,
        /// Consumer-side claim serializing same-shard VPs.
        cons: AtomicBool,
        #[cfg(not(sting_check))]
        overflow: parking_lot::Mutex<std::collections::VecDeque<T>>,
        /// Whether `overflow` holds spilled messages.  While set, `push`
        /// routes *every* message through the overflow queue — a newer
        /// message slotted into freed ring space would otherwise be
        /// drained (ring first) ahead of older spilled ones, breaking the
        /// FIFO contract.  Set by the producer and cleared by the
        /// consumer, each under the `overflow` mutex.
        #[cfg(not(sting_check))]
        spilled: AtomicBool,
    }

    // SAFETY: the ring hands each `T` from exactly one thread to exactly
    // one other; the claim flags plus the head/tail protocol make the
    // slot accesses data-race-free (model-checked in model_fleet.rs).
    unsafe impl<T: Send> Sync for Mailbox<T> {}
    // SAFETY: moving the whole mailbox moves only owned slots; `T: Send`
    // is required, so the contained messages may change threads with it.
    unsafe impl<T: Send> Send for Mailbox<T> {}

    impl<T> Mailbox<T> {
        /// An empty mailbox holding up to `capacity` (rounded up to a
        /// power of two) messages in the lock-free ring.
        pub fn new(capacity: usize) -> Mailbox<T> {
            let cap = capacity.next_power_of_two().max(2);
            Mailbox {
                mask: cap - 1,
                slots: (0..cap).map(|_| UnsafeCell::new(None)).collect(),
                head: AtomicUsize::new(0),
                tail: AtomicUsize::new(0),
                prod: AtomicBool::new(false),
                cons: AtomicBool::new(false),
                #[cfg(not(sting_check))]
                overflow: parking_lot::Mutex::new(std::collections::VecDeque::new()),
                #[cfg(not(sting_check))]
                spilled: AtomicBool::new(false),
            }
        }

        /// Whether both the ring and the overflow queue look empty (a
        /// cheap pre-check before claiming the consumer role).
        pub fn is_empty(&self) -> bool {
            if self.head.load(Ordering::Acquire) != self.tail.load(Ordering::Acquire) {
                return false;
            }
            #[cfg(not(sting_check))]
            if !self.overflow.lock().is_empty() {
                return false;
            }
            true
        }

        /// Delivers `value` to the consumer side.  Never blocks and never
        /// drops: a full ring spills to the overflow queue, and while
        /// spilled messages wait, later pushes follow them there so
        /// arrival order survives the spill.
        pub fn push(&self, value: T) {
            // Claim the producer role.  Contention is only between VPs of
            // the same shard and the critical section is a handful of
            // stores, so a spin is bounded and short.
            while self.prod.swap(true, Ordering::Acquire) {
                std::hint::spin_loop();
            }
            let tail = self.tail.load(Ordering::Relaxed);
            let head = self.head.load(Ordering::Acquire);
            // A stale `spilled` read is safe in both directions: producers
            // are serialized by `prod` (Release/Acquire), so a set flag is
            // always visible, and racing the consumer's clear at worst
            // routes one more message through the overflow queue — still
            // in order, since the queue it joins was (or just was) the
            // tail of the line.
            #[cfg(not(sting_check))]
            let to_ring =
                tail.wrapping_sub(head) <= self.mask && !self.spilled.load(Ordering::Relaxed);
            #[cfg(sting_check)]
            let to_ring = tail.wrapping_sub(head) <= self.mask;
            if to_ring {
                // SAFETY: slot `tail` is unpublished (only this claimed
                // producer writes it; the consumer reads slots only below
                // the published tail).
                unsafe { *self.slots[tail & self.mask].get() = Some(value) };
                // The publish: everything written above becomes visible
                // to the consumer's Acquire load of `tail`.
                self.tail.store(tail.wrapping_add(1), Ordering::Release);
            } else {
                #[cfg(not(sting_check))]
                {
                    let mut overflow = self.overflow.lock();
                    overflow.push_back(value);
                    self.spilled.store(true, Ordering::Relaxed);
                }
                #[cfg(sting_check)]
                panic!("mailbox ring overflow under model check");
            }
            self.prod.store(false, Ordering::Release);
        }

        /// Drains every currently-published message, in arrival order,
        /// into `f`.  Returns how many were delivered.  If another VP of
        /// the destination shard holds the consumer claim, returns 0 — the
        /// holder will see the messages.
        pub fn drain(&self, mut f: impl FnMut(T)) -> usize {
            // Try-claim the consumer role; a sibling VP already draining
            // will deliver anything we would have seen.
            if self.cons.swap(true, Ordering::Acquire) {
                return 0;
            }
            let mut n = 0;
            let mut head = self.head.load(Ordering::Relaxed);
            // Exhaust the ring (re-reading `tail`) before touching the
            // overflow queue: everything spilled is newer than everything
            // in the ring (while `spilled` is set no push lands in the
            // ring), so ring-then-overflow is arrival order only if the
            // ring is empty when the overflow is taken.
            loop {
                let tail = self.tail.load(Ordering::Acquire);
                if head == tail {
                    break;
                }
                while head != tail {
                    // SAFETY: `head` is published (< tail) and only this
                    // claimed consumer takes from it.
                    let v = unsafe { (*self.slots[head & self.mask].get()).take() };
                    head = head.wrapping_add(1);
                    // Release so the producer's Acquire of `head` sees the
                    // slot vacated before it reuses it.
                    self.head.store(head, Ordering::Release);
                    if let Some(v) = v {
                        f(v);
                        n += 1;
                    }
                }
            }
            #[cfg(not(sting_check))]
            {
                // Take and clear under one lock hold so a producer that
                // sees `spilled` unset also sees the queue empty.
                let spilled = {
                    let mut overflow = self.overflow.lock();
                    self.spilled.store(false, Ordering::Relaxed);
                    std::mem::take(&mut *overflow)
                };
                for v in spilled {
                    f(v);
                    n += 1;
                }
            }
            self.cons.store(false, Ordering::Release);
            n
        }
    }
}

pub use mailbox::Mailbox;

/// A closure routed to another shard, run on that shard's VP.
type RoutedCall = Box<dyn FnOnce(&Arc<Vm>) + Send>;

/// A message crossing the shard fabric.
enum FabricMsg {
    /// A ready thread (or parked TCB) migrating to the destination shard.
    Handoff(RunItem),
    /// Run this closure on the destination shard (routed tuple-space
    /// partition operations, remote administrative work).
    Call {
        /// The closure to run on the destination shard.
        f: RoutedCall,
        /// Whether the shutdown sweep must still run the closure.  State
        /// transfers (routed tuple deposits) set this — dropping one
        /// would silently lose the tuple; reply-side closures clear it,
        /// since their waiters were already completed by the home
        /// shard's drain.
        apply_at_shutdown: bool,
    },
    /// The shard `from` is idle and asks the destination for work.
    WorkRequest {
        /// Requesting (idle) shard.
        from: usize,
    },
}

/// A fabric message plus the sender's Lamport-clock reading at send time;
/// the receiver witnesses `lc` before acting so causally-later events sort
/// later in the merged trace.
struct Stamped {
    lc: u64,
    msg: FabricMsg,
}

/// The cross-shard interconnect: an N×N matrix of [`Mailbox`]es plus the
/// steal-request dedup flags.  One `Fabric` is shared by every shard of a
/// [`Fleet`] (standalone VMs have none).
pub struct Fabric {
    /// Shard VMs, weakly — the [`Fleet`] holds the strong references, and
    /// each `Vm` holds an `Arc<Fabric>`, so strong back-references here
    /// would leak the whole fleet.
    shards: Vec<Weak<Vm>>,
    /// `boxes[from * n + to]` carries messages from shard `from` to `to`.
    boxes: Vec<Mailbox<Stamped>>,
    /// `want_work[requester * n + victim]`: a work request from
    /// `requester` is already in flight to `victim`.
    want_work: Vec<std::sync::atomic::AtomicBool>,
    /// Per-shard round-robin cursor over steal victims.
    next_victim: Vec<AtomicUsize>,
}

impl Fabric {
    fn new(shards: Vec<Weak<Vm>>) -> Fabric {
        let n = shards.len();
        Fabric {
            shards,
            boxes: (0..n * n).map(|_| Mailbox::new(MAILBOX_CAPACITY)).collect(),
            want_work: (0..n * n)
                .map(|_| std::sync::atomic::AtomicBool::new(false))
                .collect(),
            next_victim: (0..n).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Number of shards on this fabric.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `index`'s VM, if the fleet is still alive.
    pub fn shard_vm(&self, index: usize) -> Option<Arc<Vm>> {
        self.shards.get(index).and_then(Weak::upgrade)
    }

    /// Runs `f` on shard `to`.  If the caller is already on that shard the
    /// call is inline (the local fast path costs nothing); otherwise it is
    /// posted over the mailbox, stamped with the sender's clock, and the
    /// destination machine is signalled.
    ///
    /// A call still in a mailbox when the fleet shuts down is **dropped**
    /// by the sweep — correct for reply-side closures, whose waiters the
    /// home shard's drain already completed.  Calls that transfer state
    /// the fabric must not lose go through [`Fabric::call_durable`].
    pub fn call(&self, from: &Arc<Vm>, to: usize, f: RoutedCall) {
        self.post_call(from, to, f, false);
    }

    /// [`Fabric::call`], but the closure is still applied by the shutdown
    /// sweep if it is in flight when the fleet stops: routed tuple-space
    /// deposits use this so a `put` posted just before shutdown is never
    /// silently lost.
    pub fn call_durable(&self, from: &Arc<Vm>, to: usize, f: RoutedCall) {
        self.post_call(from, to, f, true);
    }

    fn post_call(&self, from: &Arc<Vm>, to: usize, f: RoutedCall, apply_at_shutdown: bool) {
        let me = from.shard_id();
        if me == to {
            f(from);
            return;
        }
        crate::counters::Counters::bump(&from.counters().routed_ops);
        let lc = from.tracer().clock();
        self.boxes[me * self.shards.len() + to].push(Stamped {
            lc,
            msg: FabricMsg::Call {
                f,
                apply_at_shutdown,
            },
        });
        if let Some(dest) = self.shard_vm(to) {
            dest.signal_work();
        }
    }

    /// Drains this shard's inbound mailboxes: enqueues handed-off work,
    /// runs routed calls, and serves siblings' work requests.  Called once
    /// per VP slice (under the deque [`OwnerGuard`](crate::vp)); returns
    /// whether anything was delivered.
    pub(crate) fn pump(&self, vm: &Arc<Vm>, vp: &Arc<Vp>) -> bool {
        if vm.is_stopped() {
            return false;
        }
        let me = vm.shard_id();
        let n = self.shards.len();
        let mut delivered = false;
        for from in 0..n {
            if from == me {
                continue;
            }
            let mbx = &self.boxes[from * n + me];
            if mbx.is_empty() {
                continue;
            }
            mbx.drain(|stamped| {
                vm.tracer().witness(stamped.lc);
                match stamped.msg {
                    FabricMsg::Handoff(item) => {
                        // Receiver-side re-home: the item is quiescent
                        // (owned solely by this drain), so both the owning
                        // VM and the wake target flip together before the
                        // thread becomes runnable here.
                        let thread = item.thread().clone();
                        thread.rehome(vm);
                        thread.home_vp.store(vp.index(), Ordering::Relaxed);
                        vp.enqueue(item, EnqueueState::Migrated);
                        delivered = true;
                    }
                    FabricMsg::Call { f, .. } => {
                        f(vm);
                        delivered = true;
                    }
                    FabricMsg::WorkRequest { from: requester } => {
                        self.want_work[requester * n + me]
                            .store(false, std::sync::atomic::Ordering::Release);
                        if let Some(item) = vp.surrender_for_fleet() {
                            self.post_handoff(vm, vp, item, requester);
                        }
                    }
                }
            });
        }
        delivered
    }

    /// Posts `item` to shard `dest`, recording the [`EventKind::Handoff`]
    /// on the source lane first so the merged audit sees the source
    /// shard's enqueue consumed before the destination's re-publish.
    fn post_handoff(&self, vm: &Arc<Vm>, vp: &Arc<Vp>, item: RunItem, dest: usize) {
        let me = vm.shard_id();
        crate::counters::Counters::bump(&vm.counters().handoffs);
        crate::trace_event!(
            vm.tracer(),
            Some(vp.index()),
            EventKind::Handoff,
            item.thread().id().0,
            me as u32,
            dest as u32
        );
        let lc = vm.tracer().clock();
        self.boxes[me * self.shards.len() + dest].push(Stamped {
            lc,
            msg: FabricMsg::Handoff(item),
        });
        if let Some(dvm) = self.shard_vm(dest) {
            dvm.signal_work();
        }
    }

    /// An idle shard asks the next victim (round-robin) for work; at most
    /// one request per (requester, victim) pair is ever in flight.
    pub(crate) fn request_work(&self, vm: &Arc<Vm>) {
        let n = self.shards.len();
        if n < 2 || vm.is_stopped() {
            return;
        }
        let me = vm.shard_id();
        let victim = {
            let v = self.next_victim[me].fetch_add(1, Ordering::Relaxed) % (n - 1);
            if v >= me {
                v + 1
            } else {
                v
            }
        };
        if self.want_work[me * n + victim]
            .compare_exchange(
                false,
                true,
                std::sync::atomic::Ordering::AcqRel,
                std::sync::atomic::Ordering::Relaxed,
            )
            .is_err()
        {
            return;
        }
        let lc = vm.tracer().clock();
        self.boxes[me * n + victim].push(Stamped {
            lc,
            msg: FabricMsg::WorkRequest { from: me },
        });
        if let Some(vvm) = self.shard_vm(victim) {
            vvm.signal_work();
        }
    }

    /// Shutdown sweep: empties every mailbox, completing in-flight
    /// handed-off threads with the same `vm-shutdown` error
    /// [`Vm::drain`](crate::vm::Vm) uses, **applying** durable calls
    /// (routed deposits — dropping one would lose its tuple), and
    /// dropping plain calls (their waiters were already completed by
    /// their home shard's drain).
    fn sweep(&self) {
        let n = self.shards.len();
        let shutdown_err: ThreadResult = Err(Value::sym("vm-shutdown"));
        for (idx, mbx) in self.boxes.iter().enumerate() {
            // `boxes[from * n + to]`: the destination shard owns the
            // state a durable call mutates.
            let dest = self.shard_vm(idx % n);
            mbx.drain(|stamped| match stamped.msg {
                FabricMsg::Handoff(item) => match item {
                    RunItem::Fresh(t) => t.complete(shutdown_err.clone()),
                    RunItem::Parked(tcb) => {
                        let t = tcb.thread().clone();
                        drop(tcb); // force-unwinds the fiber
                        if !t.is_determined() {
                            t.complete(shutdown_err.clone());
                        }
                    }
                },
                FabricMsg::Call {
                    f,
                    apply_at_shutdown: true,
                } => {
                    // The shard VM is stopped but the shared structures
                    // the closure touches are intact; a wake it attempts
                    // lands on an already-cancelled episode and is a
                    // harmless no-op.
                    if let Some(vm) = &dest {
                        f(vm);
                    }
                }
                FabricMsg::Call {
                    apply_at_shutdown: false,
                    ..
                }
                | FabricMsg::WorkRequest { .. } => {}
            });
        }
    }
}

/// Ring capacity per shard-pair mailbox; beyond this, messages spill to
/// the mutex-protected overflow queue (never dropped, never blocking).
const MAILBOX_CAPACITY: usize = 256;

/// A set of cooperating VM shards sharing one [`PhysicalMachine`] and a
/// cross-shard [`Fabric`].  Build one with [`Fleet::builder`], or wrap an
/// existing standalone VM with [`Fleet::single`] (zero fabric, zero cost).
pub struct Fleet {
    shards: Vec<Arc<Vm>>,
    fabric: Option<Arc<Fabric>>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl Fleet {
    /// Starts building a multi-shard fleet.
    pub fn builder() -> FleetBuilder {
        FleetBuilder::new()
    }

    /// Wraps one standalone VM as a single-shard fleet.  No fabric is
    /// installed, so the VM's hot paths are byte-for-byte the standalone
    /// ones — the bench gate (`shard/*-1shard` vs the pre-fleet baseline)
    /// enforces this stays true.
    pub fn single(vm: Arc<Vm>) -> Fleet {
        Fleet {
            shards: vec![vm],
            fabric: None,
        }
    }

    /// The shard VMs, in shard-index order.
    pub fn shards(&self) -> &[Arc<Vm>] {
        &self.shards
    }

    /// Shard `index`'s VM (panics if out of range).
    pub fn shard(&self, index: usize) -> &Arc<Vm> {
        &self.shards[index]
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the fleet has no shards (never true for built fleets).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The cross-shard fabric (`None` for [`Fleet::single`]).
    pub fn fabric(&self) -> Option<&Arc<Fabric>> {
        self.fabric.as_ref()
    }

    /// Routes a key hash to its owning shard (the tuple-space partition
    /// map and any other sharded structure use the same rule).
    pub fn shard_for_hash(&self, hash: u64) -> usize {
        (hash % self.shards.len() as u64) as usize
    }

    /// The fleet's two-level topology: shard-local VP rings linked
    /// across shards (see [`Topology::sharded`]).
    pub fn topology(&self) -> Topology {
        let vps = self.shards.first().map_or(0, |vm| vm.vp_count());
        Topology::sharded(self.shards.len(), vps)
    }

    /// One fleet-wide trace: every shard's rings, lanes remapped into a
    /// disjoint global lane space (shard 0's lanes first, then shard 1's,
    /// …), merge-sorted by `(lc, ts_ns)` — the Lamport order the mailbox
    /// witnesses make consistent with cross-shard causality.
    pub fn merged_snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        let mut lane_base = 0u32;
        for vm in &self.shards {
            let lanes = vm.tracer().lanes() as u32;
            for mut e in vm.tracer().snapshot() {
                e.vp += lane_base;
                out.push(e);
            }
            lane_base += lanes;
        }
        sort_events(&mut out);
        out
    }

    /// Whether any shard's recorder wrapped (the merged stream is then
    /// incomplete and absence-based audit checks stand down).
    pub fn truncated(&self) -> bool {
        self.shards.iter().any(|vm| vm.tracer().truncated())
    }

    /// Runs the [`audit`](crate::audit) linter over the merged fleet-wide
    /// stream — one replay covering every shard, with handoffs stitched by
    /// the Lamport clock.
    pub fn trace_audit(&self) -> crate::audit::AuditReport {
        crate::audit::audit(&self.merged_snapshot(), self.truncated())
    }

    /// Shuts every shard down (completing live threads with the
    /// `vm-shutdown` error), then sweeps the fabric for in-flight
    /// handoffs so no thread is left undetermined in a mailbox.
    pub fn shutdown(&self) {
        for vm in &self.shards {
            vm.shutdown();
        }
        if let Some(fabric) = &self.fabric {
            fabric.sweep();
        }
    }
}

/// Builds a [`Fleet`]: N identical shards on one shared machine.
pub struct FleetBuilder {
    name: String,
    shards: usize,
    vps_per_shard: usize,
    policy: Arc<dyn Fn(usize, usize) -> Box<dyn PolicyManager> + Send + Sync>,
    processors: Option<usize>,
    tick: Duration,
    trace: bool,
    trace_capacity: Option<usize>,
    metrics: bool,
}

impl std::fmt::Debug for FleetBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetBuilder")
            .field("shards", &self.shards)
            .field("vps_per_shard", &self.vps_per_shard)
            .finish()
    }
}

impl Default for FleetBuilder {
    fn default() -> FleetBuilder {
        FleetBuilder::new()
    }
}

impl FleetBuilder {
    /// Defaults: 2 shards × 1 VP, migrating FIFO policy on the lock-free
    /// tier (cross-shard handoffs need a stealable queue), 500 µs tick.
    pub fn new() -> FleetBuilder {
        FleetBuilder {
            name: "fleet".to_string(),
            shards: 2,
            vps_per_shard: 1,
            policy: Arc::new(|_, _| policies::local_fifo().migrating(true).boxed()),
            processors: None,
            tick: Duration::from_micros(500),
            trace: false,
            trace_capacity: None,
            metrics: true,
        }
    }

    /// Fleet name; shards are named `{name}/s{index}`.
    pub fn name(mut self, name: &str) -> FleetBuilder {
        self.name = name.to_string();
        self
    }

    /// Number of shards (at least 1).
    pub fn shards(mut self, shards: usize) -> FleetBuilder {
        self.shards = shards.max(1);
        self
    }

    /// Virtual processors per shard.
    pub fn vps_per_shard(mut self, vps: usize) -> FleetBuilder {
        self.vps_per_shard = vps.max(1);
        self
    }

    /// Policy factory, called with `(shard, vp)` for every VP.
    pub fn policy(
        mut self,
        f: impl Fn(usize, usize) -> Box<dyn PolicyManager> + Send + Sync + 'static,
    ) -> FleetBuilder {
        self.policy = Arc::new(f);
        self
    }

    /// Worker OS threads on the shared machine (default: one per CPU,
    /// capped at the fleet's total VP count).
    pub fn processors(mut self, processors: usize) -> FleetBuilder {
        self.processors = Some(processors.max(1));
        self
    }

    /// Preemption tick for the shared machine.
    pub fn tick(mut self, tick: Duration) -> FleetBuilder {
        self.tick = tick;
        self
    }

    /// Enables the flight recorder on every shard.
    pub fn trace(mut self, on: bool) -> FleetBuilder {
        self.trace = on;
        self
    }

    /// Per-lane recorder capacity (see [`crate::trace::DEFAULT_CAPACITY`]).
    pub fn trace_capacity(mut self, events: usize) -> FleetBuilder {
        self.trace_capacity = Some(events);
        self
    }

    /// Enables/disables metrics on every shard.
    pub fn metrics(mut self, on: bool) -> FleetBuilder {
        self.metrics = on;
        self
    }

    /// Builds the shards on one shared machine, installs the fabric, and
    /// returns the running fleet.
    pub fn build(self) -> Fleet {
        let total_vps = self.shards * self.vps_per_shard;
        let cpus = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let machine = PhysicalMachine::with_tick(
            self.processors.unwrap_or(cpus.min(total_vps)).max(1),
            self.tick,
        );
        // One thread-id source for the whole fleet: merged traces rely on
        // fleet-unique ids to never conflate threads from two shards.
        let tid_source = Arc::new(AtomicU64::new(1));
        let shards: Vec<Arc<Vm>> = (0..self.shards)
            .map(|s| {
                let policy = self.policy.clone();
                let mut vb = Vm::builder()
                    .name(&format!("{}/s{s}", self.name))
                    .vps(self.vps_per_shard)
                    .machine(machine.clone())
                    .shard_identity(s, tid_source.clone())
                    .policy(move |vp| policy(s, vp))
                    .trace(self.trace)
                    .metrics(self.metrics);
                if let Some(cap) = self.trace_capacity {
                    vb = vb.trace_capacity(cap);
                }
                vb.build()
            })
            .collect();
        if self.shards > 1 {
            let fabric = Arc::new(Fabric::new(shards.iter().map(Arc::downgrade).collect()));
            for vm in &shards {
                vm.install_fabric(fabric.clone());
            }
            Fleet {
                shards,
                fabric: Some(fabric),
            }
        } else {
            // A 1-shard fleet is a standalone VM: no fabric, no new cost.
            Fleet {
                shards,
                fabric: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mailbox_delivers_in_order() {
        let m: Mailbox<u64> = Mailbox::new(8);
        assert!(m.is_empty());
        for i in 0..5 {
            m.push(i);
        }
        let mut got = Vec::new();
        assert_eq!(m.drain(|v| got.push(v)), 5);
        assert_eq!(got, [0, 1, 2, 3, 4]);
        assert!(m.is_empty());
    }

    #[test]
    fn mailbox_overflow_spills_without_loss() {
        let m: Mailbox<u64> = Mailbox::new(2);
        for i in 0..10 {
            m.push(i);
        }
        let mut got = Vec::new();
        m.drain(|v| got.push(v));
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    /// Pushes racing a drain while older messages sit spilled must not
    /// jump the queue through freed ring slots: the reentrant pushes here
    /// land while the consumer has already vacated ring space, which the
    /// pre-fix code let the *next* spill overtake.
    #[test]
    fn mailbox_stays_fifo_across_an_overflow_spill() {
        let m = Mailbox::new(4);
        let m = &m;
        for i in 0..5u64 {
            m.push(i); // 0..=3 fill the ring, 4 spills
        }
        let got = std::cell::RefCell::new(Vec::new());
        m.drain(|v: u64| {
            if v == 0 {
                // Concurrent producer: ring slots are free again, but 4
                // is still spilled — these must be delivered after it.
                for i in 5..9 {
                    m.push(i);
                }
            }
            got.borrow_mut().push(v);
        });
        m.push(9); // spill drained: back to the ring
        m.drain(|v| got.borrow_mut().push(v));
        assert_eq!(got.into_inner(), (0..10).collect::<Vec<_>>());
    }

    /// An in-flight durable call (a routed deposit) survives shutdown —
    /// the sweep applies it — while a plain call is dropped.
    #[test]
    fn shutdown_sweep_applies_durable_calls_and_drops_plain_ones() {
        use std::sync::atomic::AtomicBool;
        let fleet = Fleet::builder().shards(2).build();
        let fabric = fleet.fabric().unwrap().clone();
        // Stop the shards first: pump no longer drains, so both calls
        // are still sitting in the mailbox when the sweep runs.
        for vm in fleet.shards() {
            vm.shutdown();
        }
        let durable = Arc::new(AtomicBool::new(false));
        let flag = durable.clone();
        fabric.call_durable(
            fleet.shard(0),
            1,
            Box::new(move |_vm| flag.store(true, Ordering::Release)),
        );
        let plain = Arc::new(AtomicBool::new(false));
        let flag = plain.clone();
        fabric.call(
            fleet.shard(0),
            1,
            Box::new(move |_vm| flag.store(true, Ordering::Release)),
        );
        fleet.shutdown();
        assert!(
            durable.load(Ordering::Acquire),
            "the sweep must apply in-flight durable calls"
        );
        assert!(
            !plain.load(Ordering::Acquire),
            "plain calls are dropped at shutdown"
        );
    }

    #[test]
    fn single_fleet_has_no_fabric() {
        let vm = Vm::builder().vps(1).processors(1).build();
        let fleet = Fleet::single(vm.clone());
        assert_eq!(fleet.len(), 1);
        assert!(fleet.fabric().is_none());
        assert!(vm.fabric().is_none());
        let t = fleet.shard(0).fork(|_| 42i64);
        assert_eq!(t.join_blocking().unwrap().as_int(), Some(42));
        fleet.shutdown();
    }

    #[test]
    fn builder_shapes_the_fleet() {
        let fleet = Fleet::builder()
            .name("t")
            .shards(3)
            .vps_per_shard(2)
            .processors(1)
            .build();
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet.topology(), Topology::sharded(3, 2));
        assert_eq!(fleet.shard(1).shard_id(), 1);
        assert_eq!(fleet.shard(2).name(), "t/s2");
        assert!(fleet.fabric().is_some());
        assert_eq!(fleet.fabric().unwrap().shard_count(), 3);
        // The routing rule covers every shard.
        let hit: std::collections::BTreeSet<usize> =
            (0..64u64).map(|h| fleet.shard_for_hash(h)).collect();
        assert_eq!(hit.len(), 3);
        fleet.shutdown();
    }
}
