//! The thread state machine.
//!
//! The paper's Section 3.1 names five "static" states — *delayed*,
//! *scheduled*, *evaluating*, *stolen* and *determined* — plus the dynamic
//! TCB-level conditions *blocked* and *suspended* that an evaluating thread
//! may be in.  We flatten both levels into one observable [`ThreadState`];
//! the TCB is present exactly in the `Evaluating`/`Blocked`/`Suspended`
//! states.
//!
//! State changes requested by *other* threads are not applied directly:
//! they are recorded as [`StateRequest`]s and honoured by the target at its
//! next thread-controller entry — "only threads can actually effect a
//! change to their own state", which is what lets a TCB transition without
//! acquiring locks in the paper.  Requests that would violate the
//! transition relation (checked by [`ThreadState::can_request`]) are
//! rejected at record time.

use sting_value::Value;

/// Observable state of a STING thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ThreadState {
    /// Created lazily (`create-thread`); runs only if demanded.
    Delayed = 0,
    /// Placed in some policy manager's ready queue; no TCB yet.
    Scheduled = 1,
    /// Running (has a TCB); includes being in a ready queue between quanta.
    Evaluating = 2,
    /// Blocked on another thread or synchronization object (TCB parked).
    Blocked = 3,
    /// Suspended, possibly with a wake-up time (TCB parked).
    Suspended = 4,
    /// Thunk was absorbed by another thread's TCB (see `steal`).
    Stolen = 5,
    /// Completed; the result value (or exception) is available.
    Determined = 6,
}

impl ThreadState {
    /// Decodes the `u8` representation used in the thread's atomic state
    /// word.
    ///
    /// # Panics
    ///
    /// Panics on a byte that is not a valid state.
    pub fn from_u8(b: u8) -> ThreadState {
        match b {
            0 => ThreadState::Delayed,
            1 => ThreadState::Scheduled,
            2 => ThreadState::Evaluating,
            3 => ThreadState::Blocked,
            4 => ThreadState::Suspended,
            5 => ThreadState::Stolen,
            6 => ThreadState::Determined,
            other => panic!("invalid thread state byte {other}"),
        }
    }

    /// Whether the thread has finished (its value is available).
    pub fn is_determined(self) -> bool {
        self == ThreadState::Determined
    }

    /// Whether a TCB exists in this state.
    pub fn has_tcb(self) -> bool {
        matches!(
            self,
            ThreadState::Evaluating | ThreadState::Blocked | ThreadState::Suspended
        )
    }

    /// Whether this thread can still be claimed for fresh execution or
    /// stealing (no TCB allocated yet).
    pub fn is_claimable(self) -> bool {
        matches!(self, ThreadState::Delayed | ThreadState::Scheduled)
    }

    /// Validates an *asynchronous* request against the paper's transition
    /// semantics ("state changes are recorded only if they do not violate
    /// the state transition semantics").
    pub fn can_request(self, request: &StateRequest) -> bool {
        match self {
            // Determined and stolen threads accept no further requests.
            ThreadState::Determined | ThreadState::Stolen => false,
            ThreadState::Delayed | ThreadState::Scheduled => match request {
                // A thread with no TCB can be terminated or scheduled, but
                // "evaluating threads cannot be subsequently scheduled" and
                // blocking needs a TCB to park.
                StateRequest::Terminate(_) | StateRequest::Raise(_) => true,
                StateRequest::Block | StateRequest::Suspend(_) => false,
                StateRequest::Resume => matches!(self, ThreadState::Delayed),
            },
            ThreadState::Evaluating => !matches!(request, StateRequest::Resume),
            ThreadState::Blocked | ThreadState::Suspended => true,
        }
    }
}

/// An asynchronous state-change request made by another thread, honoured at
/// the target's next thread-controller entry.
#[derive(Debug, Clone, PartialEq)]
pub enum StateRequest {
    /// Terminate with the given result value (`thread-terminate`).
    Terminate(Value),
    /// Raise an exception in the target (`thread-raise!`): the target
    /// unwinds (running its cleanups) and determines with `Err(value)`
    /// unless a handler on its stack catches the exception.
    Raise(Value),
    /// Block indefinitely (`thread-block`).
    Block,
    /// Suspend; `Some(d)` resumes automatically after roughly `d`
    /// (`thread-suspend` with a quantum argument).
    Suspend(Option<std::time::Duration>),
    /// Resume a blocked/suspended/delayed thread (`thread-run`).
    Resume,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_u8() {
        for s in [
            ThreadState::Delayed,
            ThreadState::Scheduled,
            ThreadState::Evaluating,
            ThreadState::Blocked,
            ThreadState::Suspended,
            ThreadState::Stolen,
            ThreadState::Determined,
        ] {
            assert_eq!(ThreadState::from_u8(s as u8), s);
        }
    }

    #[test]
    #[should_panic(expected = "invalid thread state byte")]
    fn rejects_bad_byte() {
        let _ = ThreadState::from_u8(99);
    }

    #[test]
    fn predicates() {
        assert!(ThreadState::Determined.is_determined());
        assert!(!ThreadState::Evaluating.is_determined());
        assert!(ThreadState::Blocked.has_tcb());
        assert!(!ThreadState::Scheduled.has_tcb());
        assert!(ThreadState::Delayed.is_claimable());
        assert!(ThreadState::Scheduled.is_claimable());
        assert!(!ThreadState::Evaluating.is_claimable());
    }

    #[test]
    fn request_legality_matches_paper() {
        // "terminated threads cannot become subsequently blocked"
        assert!(!ThreadState::Determined.can_request(&StateRequest::Block));
        // "evaluating threads cannot be subsequently scheduled"
        assert!(!ThreadState::Evaluating.can_request(&StateRequest::Resume));
        // Evaluating threads can be asked to block, suspend, terminate.
        assert!(ThreadState::Evaluating.can_request(&StateRequest::Block));
        assert!(ThreadState::Evaluating.can_request(&StateRequest::Suspend(None)));
        assert!(ThreadState::Evaluating.can_request(&StateRequest::Terminate(Value::Unit)));
        // Delayed threads can be demanded (resume == thread-run).
        assert!(ThreadState::Delayed.can_request(&StateRequest::Resume));
        // Scheduled threads are already on a queue.
        assert!(!ThreadState::Scheduled.can_request(&StateRequest::Resume));
        // Blocked threads can be resumed or killed.
        assert!(ThreadState::Blocked.can_request(&StateRequest::Resume));
        assert!(ThreadState::Blocked.can_request(&StateRequest::Terminate(Value::Unit)));
        // Threads without a TCB cannot park.
        assert!(!ThreadState::Delayed.can_request(&StateRequest::Block));
    }
}
