//! Virtual machines: a set of virtual processors closed over shared state.
//!
//! A [`Vm`] owns its VPs, a timer wheel, event counters and a root thread
//! group.  Multiple VMs can execute on one
//! [`crate::machine::PhysicalMachine`] — the machine holds
//! the VMs weakly and multiplexes their VPs over its worker OS threads.

use crate::builder::{SpawnOpts, VmConfig};
use crate::counters::Counters;
use crate::error::CoreError;
use crate::group::ThreadGroup;
use crate::io::IoPool;
use crate::machine::PhysicalMachine;
use crate::metrics::Metrics;
use crate::pm::{EnqueueState, RunItem};
use crate::reactor::IoDriver;
use crate::state::ThreadState;
use crate::tc::{self, Cx};
use crate::thread::{Thread, ThreadResult, Thunk, TryThunk};
use crate::timers::Timers;
use crate::tls;
use crate::trace::{self, Tracer};
use crate::vp::Vp;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use sting_value::Value;

/// A virtual machine: virtual processors plus the state they share.
///
/// Build one with [`Vm::builder`](crate::builder::VmBuilder).
pub struct Vm {
    name: String,
    vps: Vec<Arc<Vp>>,
    counters: Counters,
    metrics: Metrics,
    timers: Timers,
    tracer: Tracer,
    root_group: Arc<ThreadGroup>,
    io_pool: IoPool,
    io_driver: Arc<IoDriver>,
    all_threads: Mutex<(Vec<Weak<Thread>>, usize)>,
    stop: AtomicBool,
    /// Thread-id source.  Shared across every shard of a fleet so ids are
    /// unique fleet-wide (merged traces must never conflate two threads).
    next_tid: Arc<AtomicU64>,
    next_fork_vp: AtomicUsize,
    /// This VM's index within its fleet (0 for a standalone VM).
    shard: usize,
    /// Cross-shard fabric, installed once by [`crate::fleet::Fleet`].
    /// Standalone VMs never set it, so the hot-path check is a single
    /// acquire load that stays `None`.
    fabric: std::sync::OnceLock<Arc<crate::fleet::Fabric>>,
    /// Number of VP slices currently executing on machine workers; used to
    /// quiesce before draining at shutdown.
    pub(crate) active_slices: AtomicUsize,
    pub(crate) machine: Mutex<Option<Arc<PhysicalMachine>>>,
}

impl std::fmt::Debug for Vm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("name", &self.name)
            .field("vps", &self.vps.len())
            .field("stopped", &self.is_stopped())
            .finish()
    }
}

impl Vm {
    /// Starts building a virtual machine.
    pub fn builder() -> crate::builder::VmBuilder {
        crate::builder::VmBuilder::new()
    }

    pub(crate) fn create(
        policies: Vec<Box<dyn crate::pm::PolicyManager>>,
        config: VmConfig,
    ) -> Arc<Vm> {
        let vp_count = policies.len();
        Arc::new_cyclic(|weak: &Weak<Vm>| {
            let vps = policies
                .into_iter()
                .enumerate()
                .map(|(i, pm)| {
                    Arc::new(Vp::new(
                        i,
                        weak.clone(),
                        pm,
                        config.stack_size,
                        config.pool_capacity,
                    ))
                })
                .collect();
            let io_driver = Arc::new(IoDriver::new());
            io_driver.set_backend(config.io_backend);
            io_driver.bind_vm(weak);
            Vm {
                name: config.name,
                vps,
                counters: Counters::default(),
                metrics: Metrics::new(vp_count, config.metrics, config.metrics_sample),
                timers: Timers::new(),
                tracer: Tracer::new(vp_count, config.trace_capacity, config.trace),
                root_group: ThreadGroup::root(Some("root".to_string())),
                io_pool: IoPool::new(config.io_workers),
                io_driver,
                all_threads: Mutex::new((Vec::new(), 0)),
                stop: AtomicBool::new(false),
                next_tid: config
                    .tid_source
                    .unwrap_or_else(|| Arc::new(AtomicU64::new(1))),
                next_fork_vp: AtomicUsize::new(0),
                shard: config.shard,
                fabric: std::sync::OnceLock::new(),
                active_slices: AtomicUsize::new(0),
                machine: Mutex::new(None),
            }
        })
    }

    /// The machine's name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of virtual processors.
    pub fn vp_count(&self) -> usize {
        self.vps.len()
    }

    /// The virtual processors (enumerable, as in the paper).
    pub fn vps(&self) -> &[Arc<Vp>] {
        &self.vps
    }

    /// The `index`-th virtual processor.
    ///
    /// # Errors
    ///
    /// [`CoreError::VpOutOfRange`] if `index >= vp_count()`.
    pub fn vp(&self, index: usize) -> Result<&Arc<Vp>, CoreError> {
        self.vps.get(index).ok_or(CoreError::VpOutOfRange {
            index,
            len: self.vps.len(),
        })
    }

    /// Substrate event counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Latency metrics: per-VP dispatch/steal/wake histograms plus GC
    /// pauses (see [`crate::metrics`]).  Snapshot with
    /// [`Metrics::snapshot`]; toggle stamping with
    /// [`Metrics::set_enabled`] or the
    /// [`VmBuilder`](crate::builder::VmBuilder) metrics knobs.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The timer wheel (suspensions with a quantum, sleeps).
    pub fn timers(&self) -> &Timers {
        &self.timers
    }

    /// The blocking-call worker pool (see [`crate::io::offload`]).
    pub(crate) fn io_pool(&self) -> &IoPool {
        &self.io_pool
    }

    /// The reactor driver parking STING threads on fd readiness (see
    /// [`crate::reactor`] and [`crate::net`]).  The driver thread starts
    /// lazily on first use and is joined at [`Vm::shutdown`].
    pub fn io_driver(&self) -> &Arc<IoDriver> {
        &self.io_driver
    }

    /// The scheduler flight recorder.  Use
    /// [`Tracer::set_enabled`] to start/stop recording at runtime, or the
    /// [`VmBuilder`](crate::builder::VmBuilder) trace knobs to record from
    /// the first instruction.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Exports the recorded scheduler events as `chrome://tracing` JSON
    /// (load the string via a `.json` file in `chrome://tracing` or
    /// Perfetto).  Safe to call while the VM is running; the snapshot is
    /// then best-effort.
    pub fn trace_export(&self) -> String {
        trace::chrome_json(&self.name, &self.tracer.snapshot())
    }

    /// Renders the recorded scheduler events as a human-readable log.
    pub fn trace_dump(&self) -> String {
        trace::text_dump(&self.tracer.snapshot())
    }

    /// Replays the recorded scheduler events through the invariant linter
    /// (see [`crate::audit`]): double dispatches, dispatches after
    /// determination, steals of unpublished work, lost wakeups.
    ///
    /// The lost-wakeup check reasons about what *never* happened, so call
    /// this on a quiesced machine (after [`Vm::shutdown`]) for a
    /// trustworthy report; debug builds do so automatically at shutdown.
    pub fn trace_audit(&self) -> crate::audit::AuditReport {
        crate::audit::audit(&self.tracer.snapshot(), self.tracer.truncated())
    }

    /// The root thread group; threads forked from outside the VM land here.
    pub fn root_group(&self) -> &Arc<ThreadGroup> {
        &self.root_group
    }

    /// All live threads created on this VM.
    pub fn threads(&self) -> Vec<Arc<Thread>> {
        let mut all = self.all_threads.lock();
        all.0.retain(|w| w.strong_count() > 0);
        all.1 = all.0.len() * 2;
        all.0.iter().filter_map(Weak::upgrade).collect()
    }

    /// Whether [`Vm::shutdown`] has been initiated.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    pub(crate) fn next_thread_id(&self) -> u64 {
        self.next_tid.fetch_add(1, Ordering::Relaxed)
    }

    /// This VM's shard index within its fleet (0 when standalone).
    pub fn shard_id(&self) -> usize {
        self.shard
    }

    /// The cross-shard fabric, if this VM is part of a [`crate::fleet::Fleet`].
    pub(crate) fn fabric(&self) -> Option<&Arc<crate::fleet::Fabric>> {
        self.fabric.get()
    }

    /// Installs the fleet fabric.  Called once per shard by the fleet
    /// builder, before any cross-shard traffic exists.
    pub(crate) fn install_fabric(&self, fabric: Arc<crate::fleet::Fabric>) {
        if self.fabric.set(fabric).is_err() {
            panic!("fabric installed twice on shard {}", self.shard);
        }
    }

    /// Forks `f` as a scheduled thread on a VP chosen round-robin.
    pub fn fork<F, V>(self: &Arc<Vm>, f: F) -> Arc<Thread>
    where
        F: FnOnce(&Cx) -> V + Send + 'static,
        V: Into<Value>,
    {
        let vp = self.next_fork_vp.fetch_add(1, Ordering::Relaxed) % self.vp_count();
        self.spawn_with(tc::erase(f), ThreadState::Scheduled, Some(vp), None)
    }

    /// Forks `f` on virtual processor `vp` (`fork-thread expr vp`).
    ///
    /// # Errors
    ///
    /// [`CoreError::VpOutOfRange`] for a bad index.
    pub fn fork_on<F, V>(self: &Arc<Vm>, vp: usize, f: F) -> Result<Arc<Thread>, CoreError>
    where
        F: FnOnce(&Cx) -> V + Send + 'static,
        V: Into<Value>,
    {
        if vp >= self.vp_count() {
            return Err(CoreError::VpOutOfRange {
                index: vp,
                len: self.vp_count(),
            });
        }
        Ok(self.spawn_with(tc::erase(f), ThreadState::Scheduled, Some(vp), None))
    }

    /// Forks a pre-boxed thunk (for libraries that traffic in [`Thunk`]s,
    /// e.g. tuple-space `spawn`); equivalent to [`Vm::fork`].
    pub fn fork_thunk(self: &Arc<Vm>, thunk: Thunk) -> Arc<Thread> {
        let vp = self.next_fork_vp.fetch_add(1, Ordering::Relaxed) % self.vp_count();
        self.spawn_with(tc::lift(thunk), ThreadState::Scheduled, Some(vp), None)
    }

    /// Forks a `Result`-producing body: `Err` becomes the thread's
    /// exception outcome without unwinding.
    pub fn fork_try<F, V>(self: &Arc<Vm>, f: F) -> Arc<Thread>
    where
        F: FnOnce(&Cx) -> Result<V, Value> + Send + 'static,
        V: Into<Value>,
    {
        let vp = self.next_fork_vp.fetch_add(1, Ordering::Relaxed) % self.vp_count();
        self.spawn_with(tc::erase_try(f), ThreadState::Scheduled, Some(vp), None)
    }

    /// Creates a delayed `Result`-producing thread.
    pub fn delayed_try<F, V>(self: &Arc<Vm>, f: F) -> Arc<Thread>
    where
        F: FnOnce(&Cx) -> Result<V, Value> + Send + 'static,
        V: Into<Value>,
    {
        self.spawn_with(tc::erase_try(f), ThreadState::Delayed, None, None)
    }

    /// Creates a delayed thread (`create-thread`): it runs only when
    /// demanded by [`tc::touch`], [`tc::wait`]ed on after a
    /// [`tc::thread_run`], or stolen.
    pub fn delayed<F, V>(self: &Arc<Vm>, f: F) -> Arc<Thread>
    where
        F: FnOnce(&Cx) -> V + Send + 'static,
        V: Into<Value>,
    {
        self.spawn_with(tc::erase(f), ThreadState::Delayed, None, None)
    }

    /// Forks `f` and blocks the calling OS thread until it determines.
    /// The usual entry point from `main`.
    pub fn run<F, V>(self: &Arc<Vm>, f: F) -> ThreadResult
    where
        F: FnOnce(&Cx) -> V + Send + 'static,
        V: Into<Value>,
    {
        let t = self.fork(f);
        t.join_blocking()
    }

    pub(crate) fn spawn_with(
        self: &Arc<Vm>,
        thunk: TryThunk,
        state: ThreadState,
        vp: Option<usize>,
        opts: Option<SpawnOpts>,
    ) -> Arc<Thread> {
        let opts = opts.unwrap_or_default();
        let parent = tc::current_thread()
            .filter(|t| t.belongs_to(self))
            .map(|t| Arc::downgrade(&t))
            .unwrap_or_default();
        let group = opts.group.unwrap_or_else(|| {
            parent
                .upgrade()
                .map(|p| p.group().clone())
                .unwrap_or_else(|| self.root_group.clone())
        });
        // Always created delayed; schedule_fresh flips to Scheduled below so
        // the state change and the enqueue stay consistent.
        let t = Thread::new(
            self,
            thunk,
            ThreadState::Delayed,
            group,
            parent,
            opts.name,
            opts.stealable,
            opts.priority,
            opts.quantum,
        );
        {
            // Amortized-O(1) dead-entry pruning: sweep only when the list
            // doubles past the previous sweep's survivor count.
            let mut all = self.all_threads.lock();
            if all.0.len() >= all.1.max(256) {
                all.0.retain(|w| w.strong_count() > 0);
                all.1 = all.0.len() * 2;
            }
            all.0.push(Arc::downgrade(&t));
        }
        if state == ThreadState::Scheduled {
            let vp = vp.unwrap_or(0) % self.vp_count();
            self.schedule_fresh(&t, vp).expect("fresh thread schedules");
        }
        t
    }

    /// Moves a delayed thread to `Scheduled` and enqueues it on `vp`.
    pub(crate) fn schedule_fresh(
        self: &Arc<Vm>,
        thread: &Arc<Thread>,
        vp: usize,
    ) -> Result<(), CoreError> {
        if self.is_stopped() {
            return Err(CoreError::Shutdown);
        }
        let vp_arc = self.vp(vp)?.clone();
        {
            let core = thread.core.lock();
            if thread.state() != ThreadState::Delayed {
                return Err(CoreError::InvalidTransition {
                    detail: "only a delayed thread can be scheduled",
                });
            }
            thread.set_state(ThreadState::Scheduled);
            thread.home_vp.store(vp, Ordering::Relaxed);
            drop(core);
        }
        vp_arc.enqueue(RunItem::Fresh(thread.clone()), EnqueueState::New);
        Ok(())
    }

    /// Enqueues a woken TCB on `vp`.
    pub(crate) fn enqueue_parked(
        self: &Arc<Vm>,
        tcb: crate::tcb::Tcb,
        vp: usize,
        state: EnqueueState,
    ) {
        let vp = vp % self.vp_count();
        self.vps[vp].enqueue(RunItem::Parked(tcb), state);
    }

    /// Enqueues many woken TCBs on `vp` in one batched publication (see
    /// [`WakeBatch`](crate::wait::WakeBatch)).
    pub(crate) fn enqueue_parked_batch(
        self: &Arc<Vm>,
        tcbs: Vec<crate::tcb::Tcb>,
        vp: usize,
        state: EnqueueState,
    ) {
        let vp = vp % self.vp_count();
        self.vps[vp].enqueue_batch(tcbs.into_iter().map(RunItem::Parked).collect(), state);
    }

    /// Wakes parked machine workers (new work is available).
    pub(crate) fn signal_work(&self) {
        if let Some(m) = self.machine.lock().clone() {
            m.signal_work();
        }
    }

    /// Drains due timers, waking suspended threads and expiring timed
    /// parks.  Called by machine workers and the timekeeper.
    pub(crate) fn process_timers(self: &Arc<Vm>) {
        // Fast path: skip the clock read and the wheel lock when nothing is
        // pending — workers sweep every attached VM each pass, so a fleet
        // would otherwise pay both per shard per pass.
        if !self.timers.has_pending() {
            return;
        }
        let due = self.timers.take_due(std::time::Instant::now());
        for entry in due {
            match entry {
                crate::timers::Due::Resume(t) => t.unblock(),
                crate::timers::Due::WaitDeadline { thread, node, gen } => {
                    // The CAS loses (and the wake-up is skipped) if a waker
                    // or a cancellation consumed the episode first.
                    if node.state().timeout(gen) {
                        crate::trace_event!(
                            self.tracer(),
                            tls::current().map(|c| c.vp.index()),
                            crate::trace::EventKind::BlockTimeout,
                            thread.id().0,
                            0,
                            gen as u32
                        );
                        thread.unblock();
                    }
                }
            }
        }
    }

    /// Renders a human-readable snapshot of the machine: every live
    /// thread with its state, name and blocker, plus per-VP queue depths
    /// and the counters — the monitoring view of a "robust programming
    /// environment" (paper §1).
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "vm {:?} ({} vps, stopped={})",
            self.name,
            self.vp_count(),
            self.is_stopped()
        );
        for vp in &self.vps {
            let _ = writeln!(
                s,
                "  vp {}: policy={} queued={}",
                vp.index(),
                vp.policy_name(),
                vp.queue_len()
            );
        }
        let mut threads = self.threads();
        threads.sort_by_key(|t| t.id());
        for t in threads {
            let blocker = t.blocker().map(|b| format!(" on {b}")).unwrap_or_default();
            let _ = writeln!(
                s,
                "  {} [{:?}]{} name={} group={}",
                t.id(),
                t.state(),
                blocker,
                t.name().unwrap_or("-"),
                t.group().id()
            );
        }
        let c = self.counters.snapshot();
        let _ = writeln!(
            s,
            "  counters: threads={} tcbs={} steals={} switches={} blocks={} preemptions={}",
            c.threads_created,
            c.tcbs_allocated,
            c.steals,
            c.context_switches,
            c.blocks,
            c.preemptions
        );
        s
    }

    /// Stops the machine: no further threads run.  Undetermined threads are
    /// completed with the exception value `vm-shutdown` so joiners observe
    /// termination rather than hanging.
    ///
    /// Call from outside the VM (e.g. `main`).  If called from one of the
    /// VM's own threads, the drain is deferred to [`Vm`]'s drop.
    pub fn shutdown(self: &Arc<Vm>) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        self.signal_work();
        if tls::on_thread() {
            // Deferred: we are running on one of our own fibers.
            return;
        }
        // Quiesce: wait for in-flight VP slices to finish.
        while self.active_slices.load(Ordering::Acquire) != 0 {
            std::thread::yield_now();
        }
        self.drain();
        // Tear down the I/O subsystem after the drain: every thread parked
        // on a reactor wait or an offload has already been unwound (its
        // episode cancelled by the park-guard), so late readiness events
        // and completing pool jobs find dead episodes and their wake-ups
        // fail the claim CAS harmlessly.  Joining here — before the audit
        // — also keeps the trace quiet once it is linted.
        self.io_driver.stop();
        self.io_pool.stop();
        // Debug builds lint the flight recording now that the machine has
        // quiesced (the drain determines everything still queued, so a
        // clean run must produce zero findings).  Blocking-protocol
        // violations are hard failures: a wake-up delivered to a cancelled
        // episode or an episode leaked past determination means the claim
        // token was bypassed.
        #[cfg(debug_assertions)]
        if self.tracer.is_enabled() {
            let report = self.trace_audit();
            if !report.is_clean() {
                eprintln!("sting-core: scheduler {report}");
                if report.findings.iter().any(|f| {
                    matches!(
                        f.kind,
                        crate::audit::FindingKind::WakeAfterCancel
                            | crate::audit::FindingKind::WaiterLeak
                    )
                }) {
                    panic!("sting-core: blocking-protocol audit failed at shutdown: {report}");
                }
            }
        }
    }

    /// Completes every undetermined thread with a `vm-shutdown` exception,
    /// unwinding parked fibers so destructors run.
    pub(crate) fn drain(self: &Arc<Vm>) {
        let shutdown_err: ThreadResult = Err(Value::sym("vm-shutdown"));
        // Empty the ready queues first (both tiers).  Completing an item
        // can wake joiners whose re-enqueues land back on a queue we just
        // emptied, so loop until a full pass finds nothing.
        for vp in &self.vps {
            loop {
                let items = vp.drain_ready();
                if items.is_empty() {
                    break;
                }
                for item in items {
                    match item {
                        RunItem::Fresh(t) => t.complete(shutdown_err.clone()),
                        RunItem::Parked(tcb) => {
                            let t = tcb.thread().clone();
                            drop(tcb); // force-unwinds the fiber
                            t.complete(shutdown_err.clone());
                        }
                    }
                }
            }
        }
        // Sweep threads parked outside any queue (blocked/suspended) and
        // passive threads nobody will ever demand.
        for t in self.threads() {
            if t.is_determined() {
                continue;
            }
            let parked = t.core.lock().parked.take();
            drop(parked);
            t.complete(shutdown_err.clone());
        }
    }
}

impl Drop for Vm {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Remaining parked TCBs unwind as their threads drop.
    }
}
