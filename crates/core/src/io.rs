//! Non-blocking I/O support: offloading blocking calls off the VPs.
//!
//! "STING permits … non-blocking I/O": a thread that must make a blocking
//! operating-system call (file read, DNS lookup, …) should not stall its
//! virtual processor — every other thread on that VP would stall with it.
//! [`offload`] runs the blocking closure on a small pool of plain OS
//! threads and parks only the calling STING thread; the VP keeps running
//! other threads, and the caller is rescheduled with the result when the
//! call completes (the paper's "non-blocking I/O calls with call-back",
//! with the continuation being the parked thread itself).

use crate::tc;
use parking_lot::Mutex;
use std::sync::mpsc::{channel, Sender};
use std::sync::OnceLock;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    tx: Mutex<Sender<Job>>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let (tx, rx) = channel::<Job>();
        let rx = std::sync::Arc::new(Mutex::new(rx));
        for i in 0..4 {
            let rx = rx.clone();
            std::thread::Builder::new()
                .name(format!("sting-io-{i}"))
                .spawn(move || loop {
                    let job = {
                        let guard = rx.lock();
                        guard.recv()
                    };
                    match job {
                        Ok(job) => job(),
                        Err(_) => return,
                    }
                })
                .expect("spawn io worker");
        }
        Pool { tx: Mutex::new(tx) }
    })
}

/// Runs `f` (a potentially blocking call) on the I/O worker pool, parking
/// only the calling STING thread; the virtual processor stays available
/// for other threads.  Called from a plain OS thread, it just runs `f`
/// inline.
///
/// ```
/// use sting_core::{io, VmBuilder};
///
/// let vm = VmBuilder::new().vps(1).build();
/// let t = vm.fork(|_cx| {
///     io::offload(|| 6 * 7) // imagine a blocking read here
/// });
/// assert_eq!(t.join_blocking().unwrap().as_int(), Some(42));
/// vm.shutdown();
/// ```
pub fn offload<R, F>(f: F) -> R
where
    R: Send + 'static,
    F: FnOnce() -> R + Send + 'static,
{
    let Some(me) = tc::current_owner() else {
        return f();
    };
    let slot: std::sync::Arc<Mutex<Option<R>>> = std::sync::Arc::new(Mutex::new(None));
    let slot2 = slot.clone();
    let job: Job = Box::new(move || {
        let r = f();
        *slot2.lock() = Some(r);
        tc::unblock(&me);
    });
    pool()
        .tx
        .lock()
        .send(job)
        .expect("io pool alive for the process lifetime");
    loop {
        if let Some(r) = slot.lock().take() {
            return r;
        }
        let _ = tc::block_current(Some(sting_value::Value::sym("io-offload")));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VmBuilder;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn offload_returns_value() {
        let vm = VmBuilder::new().vps(1).build();
        let t = vm.fork(|_cx| offload(|| 21i64 * 2));
        assert_eq!(t.join_blocking().unwrap().as_int(), Some(42));
        vm.shutdown();
    }

    #[test]
    fn vp_keeps_running_other_threads_during_offload() {
        let vm = VmBuilder::new().vps(1).processors(1).build();
        let progressed = Arc::new(AtomicUsize::new(0));
        let p = progressed.clone();
        // One thread blocks in "I/O" for 100ms...
        let io_thread = vm.fork(|_cx| {
            offload(|| {
                std::thread::sleep(Duration::from_millis(100));
                1i64
            })
        });
        // ...while a sibling on the same (only) VP keeps making progress.
        let spinner = vm.fork(move |cx| {
            for _ in 0..1000 {
                p.fetch_add(1, Ordering::SeqCst);
                cx.yield_now();
            }
            0i64
        });
        spinner.join_blocking().unwrap();
        let before_io_done = progressed.load(Ordering::SeqCst);
        assert_eq!(before_io_done, 1000, "VP was never stalled by the I/O");
        assert_eq!(io_thread.join_blocking().unwrap().as_int(), Some(1));
        vm.shutdown();
    }

    #[test]
    fn offload_off_thread_runs_inline() {
        assert_eq!(offload(|| 5), 5);
    }

    #[test]
    fn many_concurrent_offloads() {
        let vm = VmBuilder::new().vps(1).build();
        let ts: Vec<_> = (0..16i64)
            .map(|i| vm.fork(move |_cx| offload(move || i * i)))
            .collect();
        let sum: i64 = ts
            .iter()
            .map(|t| t.join_blocking().unwrap().as_int().unwrap())
            .sum();
        assert_eq!(sum, (0..16i64).map(|i| i * i).sum());
        vm.shutdown();
    }
}
