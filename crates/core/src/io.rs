//! Non-blocking I/O support: offloading blocking calls off the VPs.
//!
//! "STING permits … non-blocking I/O": a thread that must make a blocking
//! operating-system call should not stall its virtual processor — every
//! other thread on that VP would stall with it.  Calls the kernel can
//! express as fd *readiness* go through the reactor ([`crate::reactor`] /
//! [`crate::net`]); [`offload`] is the fallback for everything else (DNS
//! lookups, file I/O, third-party blocking APIs): it runs the closure on a
//! per-VM pool of plain OS threads and parks only the calling STING
//! thread.  The VP keeps running other threads, and the caller is
//! rescheduled with the result when the call completes (the paper's
//! "non-blocking I/O calls with call-back", the continuation being the
//! parked thread itself).
//!
//! ## Protocol
//!
//! The caller parks through a standard generation-numbered wait episode
//! ([`crate::wait`]), so an offload composes with the rest of the blocking
//! protocol: terminating the caller mid-offload unwinds it cleanly, and
//! the worker's completion wake-up then fails the episode's claim CAS
//! instead of `unblock`ing a recycled TCB.  A panicking closure is caught
//! on the worker (which survives), stored in the result slot as a poison
//! value, and resumed on the **caller's** stack.  The pool belongs to the
//! [`Vm`](crate::Vm): it starts empty, grows on demand while jobs are
//! queued and nobody is idle — up to
//! [`VmBuilder::io_workers`](crate::builder::VmBuilder::io_workers) — and
//! is joined at [`Vm::shutdown`](crate::vm::Vm::shutdown).

use crate::tc;
use crate::wait::{self, TimedOut, Waiter};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;
use sting_value::Value;

/// Default cap on I/O pool workers per VM (see
/// [`VmBuilder::io_workers`](crate::builder::VmBuilder::io_workers)).
pub const DEFAULT_IO_WORKERS: usize = 64;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The per-VM blocking-call worker pool.
///
/// A single queue + condvar pair (not a channel): every idle worker waits
/// on the condvar and dequeues independently, so one slow job never
/// head-of-line blocks pickup of the next — the defect the old global
/// pool's `Mutex<Receiver>` around `recv()` had.
pub(crate) struct IoPool {
    inner: Arc<PoolInner>,
}

struct PoolInner {
    state: Mutex<PoolState>,
    work: Condvar,
    cap: usize,
}

struct PoolState {
    queue: VecDeque<Job>,
    idle: usize,
    workers: usize,
    stop: bool,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl IoPool {
    pub(crate) fn new(cap: usize) -> IoPool {
        IoPool {
            inner: Arc::new(PoolInner {
                state: Mutex::new(PoolState {
                    queue: VecDeque::new(),
                    idle: 0,
                    workers: 0,
                    stop: false,
                    handles: Vec::new(),
                }),
                work: Condvar::new(),
                cap: cap.max(1),
            }),
        }
    }

    /// Queues `job`, growing the pool by one worker when every existing
    /// worker is busy and the cap allows.  Returns the job back if the
    /// pool has stopped (VM shutdown) — the caller runs it inline.
    pub(crate) fn submit(&self, job: Job) -> Result<(), Job> {
        let mut s = self.inner.state.lock();
        if s.stop {
            return Err(job);
        }
        s.queue.push_back(job);
        if s.idle == 0 && s.workers < self.inner.cap {
            s.workers += 1;
            let name = format!("sting-io-{}", s.workers);
            let inner = self.inner.clone();
            match std::thread::Builder::new()
                .name(name)
                .spawn(move || worker_loop(inner))
            {
                Ok(h) => s.handles.push(h),
                Err(_) => s.workers -= 1, // spawn failed; existing workers will get to it
            }
        }
        drop(s);
        self.inner.work.notify_one();
        Ok(())
    }

    /// Stops the pool and joins the workers.  Queued-but-unstarted jobs
    /// are dropped: their callers were already unwound by the VM drain (or
    /// will run the job inline after the rejected submit), so running them
    /// would only delay shutdown.  In-flight jobs finish first.  Safe to
    /// call twice; never joins from a pool worker itself.
    pub(crate) fn stop(&self) {
        let handles = {
            let mut s = self.inner.state.lock();
            s.stop = true;
            s.queue.clear();
            std::mem::take(&mut s.handles)
        };
        self.inner.work.notify_all();
        let me = std::thread::current().id();
        for h in handles {
            if h.thread().id() != me {
                let _ = h.join();
            }
        }
    }

    #[cfg(test)]
    fn workers(&self) -> usize {
        self.inner.state.lock().workers
    }
}

impl Drop for IoPool {
    fn drop(&mut self) {
        // Non-joining stop for the deferred-shutdown path: workers hold
        // only the inner Arc and exit once notified.
        let mut s = self.inner.state.lock();
        s.stop = true;
        s.queue.clear();
        drop(s);
        self.inner.work.notify_all();
    }
}

fn worker_loop(inner: Arc<PoolInner>) {
    loop {
        let job = {
            let mut s = inner.state.lock();
            loop {
                if s.stop {
                    return;
                }
                if let Some(job) = s.queue.pop_front() {
                    break job;
                }
                s.idle += 1;
                inner.work.wait(&mut s);
                s.idle -= 1;
            }
        };
        // Belt and braces: offload jobs catch their own unwind to capture
        // the payload, but no job whatsoever may take the worker down.
        let _ = panic::catch_unwind(AssertUnwindSafe(job));
    }
}

/// The caller↔worker rendezvous: the worker stores the closure's outcome
/// (value or panic payload) and wakes whatever episode is registered.
struct OffloadSlot<R> {
    outcome: Option<std::thread::Result<R>>,
    waiter: Option<Waiter>,
}

/// Boxes `f` with its completion protocol and queues it; on a stopped
/// pool the job runs inline on the caller (the subsequent wait then
/// completes without parking).
fn submit_offload<R, F>(pool: &IoPool, f: F) -> Arc<Mutex<OffloadSlot<R>>>
where
    R: Send + 'static,
    F: FnOnce() -> R + Send + 'static,
{
    let slot = Arc::new(Mutex::new(OffloadSlot {
        outcome: None,
        waiter: None,
    }));
    let slot2 = slot.clone();
    let job: Job = Box::new(move || {
        let outcome = panic::catch_unwind(AssertUnwindSafe(f));
        let waiter = {
            let mut s = slot2.lock();
            s.outcome = Some(outcome);
            s.waiter.take()
        };
        // A dead episode (caller terminated or timed out) fails the claim
        // CAS here and the wake-up is simply dropped — never an `unblock`
        // against a recycled TCB or a dead VM.
        if let Some(w) = waiter {
            w.wake();
        }
    });
    if let Err(job) = pool.submit(job) {
        job();
    }
    slot
}

/// Completes the wait for an offload: checks the slot, else registers the
/// episode.  Used under [`wait::block_until`]'s registration lock-step.
fn check_or_register<R>(
    slot: &Arc<Mutex<OffloadSlot<R>>>,
    w: &Waiter,
) -> Option<std::thread::Result<R>> {
    let mut s = slot.lock();
    if let Some(out) = s.outcome.take() {
        return Some(out);
    }
    s.waiter = Some(w.clone());
    None
}

fn finish<R>(outcome: std::thread::Result<R>) -> R {
    match outcome {
        Ok(r) => r,
        // Poison value: the closure panicked on the worker; the panic
        // continues on the caller's stack, as if the call were inline.
        Err(payload) => panic::resume_unwind(payload),
    }
}

/// Runs `f` (a potentially blocking call) on the VM's I/O worker pool,
/// parking only the calling STING thread; the virtual processor stays
/// available for other threads.  Called from a plain OS thread, it just
/// runs `f` inline.  If `f` panics, the panic is re-raised here, on the
/// caller's stack, and the pool worker survives.
///
/// ```
/// use sting_core::{io, VmBuilder};
///
/// let vm = VmBuilder::new().vps(1).build();
/// let t = vm.fork(|_cx| {
///     io::offload(|| 6 * 7) // imagine a blocking read here
/// });
/// assert_eq!(t.join_blocking().unwrap().as_int(), Some(42));
/// vm.shutdown();
/// ```
pub fn offload<R, F>(f: F) -> R
where
    R: Send + 'static,
    F: FnOnce() -> R + Send + 'static,
{
    let Some(vm) = tc::current_owner().and_then(|me| me.vm()) else {
        return f();
    };
    let slot = submit_offload(vm.io_pool(), f);
    finish(wait::block_until(&Value::sym("io-offload"), |w| {
        check_or_register(&slot, w)
    }))
}

/// [`offload`] with a deadline, consistent with every other timed blocking
/// op in the substrate (`wait_deadline`, `offload` being to `offload_deadline`
/// what [`tc::block_current`] is to a timed park).
///
/// On [`TimedOut`] the closure **keeps running** on the worker — there is
/// no cancelling an OS call in flight — but its result is discarded and
/// its completion wake-up dies against the already-finished episode.  A
/// panic that completes *before* the deadline still propagates here.
///
/// ```
/// use sting_core::{io, VmBuilder};
/// use std::time::{Duration, Instant};
///
/// let vm = VmBuilder::new().vps(1).build();
/// let t = vm.fork(|_cx| {
///     let slow = io::offload_deadline(
///         || {
///             std::thread::sleep(Duration::from_millis(200));
///             1i64
///         },
///         Instant::now() + Duration::from_millis(10),
///     );
///     assert!(slow.is_err());
///     i64::from(io::offload_deadline(|| 7i64, Instant::now() + Duration::from_secs(5)).unwrap())
/// });
/// assert_eq!(t.join_blocking().unwrap().as_int(), Some(7));
/// vm.shutdown();
/// ```
///
/// # Errors
///
/// [`TimedOut`] if the deadline passed before the closure completed.
pub fn offload_deadline<R, F>(f: F, deadline: Instant) -> Result<R, TimedOut>
where
    R: Send + 'static,
    F: FnOnce() -> R + Send + 'static,
{
    let Some(vm) = tc::current_owner().and_then(|me| me.vm()) else {
        return Ok(f());
    };
    let slot = submit_offload(vm.io_pool(), f);
    match wait::block_until_deadline(&Value::sym("io-offload"), Some(deadline), |w| {
        check_or_register(&slot, w)
    }) {
        Some(outcome) => Ok(finish(outcome)),
        None => Err(TimedOut),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VmBuilder;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn offload_returns_value() {
        let vm = VmBuilder::new().vps(1).build();
        let t = vm.fork(|_cx| offload(|| 21i64 * 2));
        assert_eq!(t.join_blocking().unwrap().as_int(), Some(42));
        vm.shutdown();
    }

    #[test]
    fn vp_keeps_running_other_threads_during_offload() {
        let vm = VmBuilder::new().vps(1).processors(1).build();
        let progressed = Arc::new(AtomicUsize::new(0));
        let p = progressed.clone();
        // One thread blocks in "I/O" for 100ms...
        let io_thread = vm.fork(|_cx| {
            offload(|| {
                std::thread::sleep(Duration::from_millis(100));
                1i64
            })
        });
        // ...while a sibling on the same (only) VP keeps making progress.
        let spinner = vm.fork(move |cx| {
            for _ in 0..1000 {
                p.fetch_add(1, Ordering::SeqCst);
                cx.yield_now();
            }
            0i64
        });
        spinner.join_blocking().unwrap();
        let before_io_done = progressed.load(Ordering::SeqCst);
        assert_eq!(before_io_done, 1000, "VP was never stalled by the I/O");
        assert_eq!(io_thread.join_blocking().unwrap().as_int(), Some(1));
        vm.shutdown();
    }

    #[test]
    fn offload_off_thread_runs_inline() {
        assert_eq!(offload(|| 5), 5);
    }

    #[test]
    fn many_concurrent_offloads() {
        let vm = VmBuilder::new().vps(1).build();
        let ts: Vec<_> = (0..16i64)
            .map(|i| vm.fork(move |_cx| offload(move || i * i)))
            .collect();
        let sum: i64 = ts
            .iter()
            .map(|t| t.join_blocking().unwrap().as_int().unwrap())
            .sum();
        assert_eq!(sum, (0..16i64).map(|i| i * i).sum());
        vm.shutdown();
    }

    /// Regression, both halves of the panic bug: the panic payload lands
    /// on the *caller's* stack, and the worker that ran the panicking job
    /// survives to serve later offloads (pool capped at one worker, so a
    /// dead worker would hang the follow-up).
    #[test]
    fn offload_panic_propagates_and_worker_survives() {
        let vm = VmBuilder::new().vps(1).io_workers(1).build();
        let t = vm.fork(|_cx| {
            let caught = panic::catch_unwind(AssertUnwindSafe(|| {
                offload(|| -> i64 { panic!("io boom") })
            }));
            let payload = caught.expect_err("offload panic must resurface at the call site");
            assert_eq!(payload.downcast_ref::<&str>(), Some(&"io boom"));
            // Same worker, next job: the pool must still be alive.  A
            // deadline bounds the failure mode (hang → test failure).
            offload_deadline(|| 40i64 + 2, Instant::now() + Duration::from_secs(10)).unwrap()
        });
        assert_eq!(t.join_blocking().unwrap().as_int(), Some(42));
        assert_eq!(vm.io_pool().workers(), 1);
        vm.shutdown();
    }

    #[test]
    fn offload_deadline_times_out_and_discards_result() {
        let vm = VmBuilder::new().vps(1).build();
        let ran = Arc::new(AtomicUsize::new(0));
        let r = ran.clone();
        let t = vm.fork(move |_cx| {
            let out = offload_deadline(
                move || {
                    std::thread::sleep(Duration::from_millis(80));
                    r.fetch_add(1, Ordering::SeqCst);
                    9i64
                },
                Instant::now() + Duration::from_millis(5),
            );
            assert_eq!(out, Err(TimedOut));
            3i64
        });
        assert_eq!(t.join_blocking().unwrap().as_int(), Some(3));
        // The job still ran to completion on the worker; its result and
        // wake-up died against the finished episode (audited at shutdown).
        while ran.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        vm.shutdown();
    }

    #[test]
    fn pool_grows_to_cap_and_not_past() {
        let vm = VmBuilder::new().vps(1).io_workers(3).build();
        let ts: Vec<_> = (0..9)
            .map(|_| {
                vm.fork(|_cx| {
                    offload(|| {
                        std::thread::sleep(Duration::from_millis(30));
                        1i64
                    })
                })
            })
            .collect();
        for t in ts {
            assert_eq!(t.join_blocking().unwrap().as_int(), Some(1));
        }
        assert_eq!(vm.io_pool().workers(), 3);
        vm.shutdown();
    }
}
