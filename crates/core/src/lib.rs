//! # sting-core — the STING coordination substrate
//!
//! A Rust reproduction of the substrate from *A Customizable Substrate for
//! Concurrent Languages* (Jagannathan & Philbin, PLDI 1992): first-class
//! lightweight threads multiplexed on first-class virtual processors, whose
//! scheduling, placement and migration behaviour is supplied by replaceable
//! [policy managers](pm::PolicyManager) — concurrency management entirely
//! in library code, with no operating-system involvement.
//!
//! ## Shape of the system
//!
//! * [`Thread`] — a small passive object (thunk + state + waiters +
//!   genealogy).  Expensive dynamic state (a stack) lives in a
//!   [`Tcb`](tcb::Tcb) allocated only when the thread starts evaluating and
//!   recycled when it determines.
//! * [`vp::Vp`] — a virtual processor: the thread-controller loop plus
//!   a [`pm::PolicyManager`].  Different VPs of one machine
//!   can run different policies.  FIFO/LIFO policies get a lock-free
//!   [`deque`]-based ready queue (the scheduler fast path); everything
//!   else runs through the locked policy tier (see
//!   [`pm::PolicyManager::queue_kind`]).
//! * [`Vm`] — a set of VPs sharing counters, timers and a root
//!   [`ThreadGroup`].
//! * [`machine::PhysicalMachine`] — OS worker threads
//!   multiplexing the VPs of one or more VMs, plus the preemption
//!   timekeeper.
//! * [`tc`] — the thread controller operations (`fork-thread`,
//!   `thread-wait`, `yield-processor`, …) including [`tc::touch`] with the
//!   paper's *thread stealing* optimization.
//!
//! ## Quick start
//!
//! ```
//! use sting_core::VmBuilder;
//!
//! let vm = VmBuilder::new().vps(2).build();
//! let t = vm.fork(|cx| {
//!     let inner = cx.fork(|_cx| 20i64);
//!     22 + cx.wait(&inner).unwrap().as_int().unwrap()
//! });
//! assert_eq!(t.join_blocking().unwrap().as_int(), Some(42));
//! vm.shutdown();
//! ```

#![deny(missing_docs)]

pub mod audit;
pub mod builder;
pub mod counters;
pub mod deque;
pub mod error;
pub mod fleet;
pub mod group;
pub mod io;
pub mod machine;
pub mod metrics;
pub mod net;
pub mod pm;
pub mod policies;
pub mod reactor;
pub mod state;
pub mod sys;
pub mod tc;
pub mod tcb;
pub mod thread;
pub mod timers;
mod tls;
pub mod topology;
pub mod trace;
pub mod uring;
pub mod vm;
pub mod vp;
pub mod wait;

pub use audit::{AuditReport, Finding, FindingKind};
pub use builder::{ThreadBuilder, VmBuilder};
pub use counters::{CounterSnapshot, Counters};
pub use error::CoreError;
pub use fleet::{Fleet, FleetBuilder};
pub use group::ThreadGroup;
pub use machine::PhysicalMachine;
pub use metrics::{Histogram, HistogramSnapshot, Metrics, MetricsSnapshot};
pub use pm::{BandMap, DequeCaps, EnqueueState, PolicyManager, QueueKind, RunItem};
pub use reactor::{IoBackend, IoStats};
pub use state::{StateRequest, ThreadState};
pub use tc::Cx;
pub use thread::{JoinNode, Thread, ThreadId, ThreadResult, Thunk, TryThunk};
pub use timers::TimerId;
pub use topology::Topology;
pub use trace::{EventKind, TraceEvent, Tracer};
pub use uring::UringReactor;
pub use vm::Vm;
pub use vp::Vp;
pub use wait::{TimedOut, WaitList, Waiter, WakeBatch, WakeReason};
