//! The virtual machine's timer wheel: wake-ups for `thread-suspend` with a
//! quantum argument, [`Cx::sleep`](crate::tc::Cx::sleep), and the deadlines
//! of timed blocking operations ([`Waiter::park_until`]).
//!
//! Precision is bounded by the machine's preemption tick — the timekeeper
//! and the processor workers both drain due timers.
//!
//! Every entry is **cancellable**: [`Timers::add`] and
//! `Timers::add_wait_deadline` (crate-internal) return a [`TimerId`]
//! which the sleeper
//! cancels when it is woken early (terminate/unblock before the deadline),
//! so tombstones neither fire spurious wake-ups nor pin their
//! `Arc<Thread>` until the deadline.  Cancelled entries are dropped lazily
//! at the heap head and compacted in bulk once they outnumber half the
//! heap, keeping the heap within a constant factor of the live count.
//!
//! [`Waiter::park_until`]: crate::wait::Waiter::park_until

use crate::thread::Thread;
use crate::wait::WaitNode;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Handle for cancelling a pending timer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerId(u64);

/// What a due timer entry asks the machine to do.
pub(crate) enum Due {
    /// Resume a suspended/sleeping thread (spurious if it already woke —
    /// the thread re-checks, but early wake-ups cancel the entry so this
    /// stays rare).
    Resume(Arc<Thread>),
    /// A timed park's deadline: mark the wait episode timed out (the CAS
    /// fails harmlessly if a waker or cancellation got there first) and
    /// wake the thread so it observes the outcome.
    WaitDeadline {
        thread: Arc<Thread>,
        node: Arc<WaitNode>,
        gen: u64,
    },
}

enum EntryKind {
    Resume(Arc<Thread>),
    WaitDeadline {
        thread: Arc<Thread>,
        node: Arc<WaitNode>,
        gen: u64,
    },
}

struct Entry {
    when: Instant,
    seq: u64,
    kind: EntryKind,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Entry) -> bool {
        self.when == other.when && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Entry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Entry) -> std::cmp::Ordering {
        (self.when, self.seq).cmp(&(other.when, other.seq))
    }
}

#[derive(Default)]
struct Inner {
    heap: BinaryHeap<Reverse<Entry>>,
    /// Seqs of entries still in the heap and not cancelled.
    live: HashSet<u64>,
    /// Seqs cancelled but still physically in the heap (tombstones).
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl Inner {
    fn add(&mut self, when: Instant, kind: EntryKind) -> TimerId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.heap.push(Reverse(Entry { when, seq, kind }));
        TimerId(seq)
    }

    /// Rebuild the heap without tombstones once they dominate: keeps the
    /// physical heap within ~2× the live count under churn (threshold 16
    /// so small bursts never pay for a rebuild).
    fn maybe_compact(&mut self) {
        if self.cancelled.len() >= 16 && self.cancelled.len() * 2 >= self.heap.len() {
            let drained = std::mem::take(&mut self.heap);
            self.heap = drained
                .into_iter()
                .filter(|Reverse(e)| !self.cancelled.contains(&e.seq))
                .collect();
            self.cancelled.clear();
        }
    }
}

/// A min-heap of pending, cancellable thread wake-ups.
#[derive(Default)]
pub struct Timers {
    inner: Mutex<Inner>,
    /// Live entries, mirrored outside the lock so the per-slice
    /// [`Timers::take_due`] poll can skip the mutex (and the caller can
    /// skip reading the clock) on the common no-timers path — machines
    /// sweep every attached VM's timers once per pass, so a fleet pays
    /// this per shard.  Writes happen only while `inner` is held, so the
    /// mirror never under-counts entries already in the heap.
    pending: AtomicUsize,
}

impl std::fmt::Debug for Timers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Timers({} pending)", self.len())
    }
}

impl Timers {
    /// Creates an empty timer wheel.
    pub fn new() -> Timers {
        Timers::default()
    }

    /// Schedules `thread` to be woken at `when`.  Cancel with the returned
    /// id if the thread is woken early.
    pub fn add(&self, when: Instant, thread: Arc<Thread>) -> TimerId {
        let mut inner = self.inner.lock();
        let id = inner.add(when, EntryKind::Resume(thread));
        // Increment while still holding the lock: every decrement
        // (`take_due`, `cancel`) runs under it, so `pending` can never
        // under-count entries already in the heap — a late increment
        // ordered after an early decrement would transiently wrap the
        // counter and defeat the `has_pending` fast path.
        self.pending.fetch_add(1, Ordering::Release);
        drop(inner);
        id
    }

    /// Schedules the deadline of a timed park: at `when`, episode `gen` of
    /// `node` is marked timed out and `thread` is woken.  The parking code
    /// cancels the entry when it wakes before the deadline.
    pub(crate) fn add_wait_deadline(
        &self,
        when: Instant,
        thread: Arc<Thread>,
        node: Arc<WaitNode>,
        gen: u64,
    ) -> TimerId {
        let mut inner = self.inner.lock();
        let id = inner.add(when, EntryKind::WaitDeadline { thread, node, gen });
        // Under the lock for the same reason as `Timers::add`.
        self.pending.fetch_add(1, Ordering::Release);
        drop(inner);
        id
    }

    /// Cancels a pending entry.  Returns `false` if it already fired (or
    /// was already cancelled); sequence numbers are never reused, so a
    /// stale id can never cancel someone else's entry.
    pub fn cancel(&self, id: TimerId) -> bool {
        let mut inner = self.inner.lock();
        if !inner.live.remove(&id.0) {
            return false;
        }
        inner.cancelled.insert(id.0);
        inner.maybe_compact();
        self.pending.fetch_sub(1, Ordering::Release);
        true
    }

    /// Removes and returns the actions for all live entries whose deadline
    /// is at or before `now`.  Tombstones encountered on the way are
    /// discarded silently.
    pub(crate) fn take_due(&self, now: Instant) -> Vec<Due> {
        if !self.has_pending() {
            return Vec::new();
        }
        let mut inner = self.inner.lock();
        let mut due = Vec::new();
        while let Some(Reverse(head)) = inner.heap.peek() {
            if head.when > now {
                break;
            }
            let entry = inner.heap.pop().expect("peeked").0;
            if inner.cancelled.remove(&entry.seq) {
                continue;
            }
            inner.live.remove(&entry.seq);
            self.pending.fetch_sub(1, Ordering::Release);
            due.push(match entry.kind {
                EntryKind::Resume(t) => Due::Resume(t),
                EntryKind::WaitDeadline { thread, node, gen } => {
                    Due::WaitDeadline { thread, node, gen }
                }
            });
        }
        due
    }

    /// The earliest pending live deadline, if any.
    pub fn next_deadline(&self) -> Option<Instant> {
        let mut inner = self.inner.lock();
        while let Some(Reverse(head)) = inner.heap.peek() {
            if !inner.cancelled.contains(&head.seq) {
                return Some(head.when);
            }
            let seq = head.seq;
            inner.heap.pop();
            inner.cancelled.remove(&seq);
        }
        None
    }

    /// Whether any live wake-up is pending, without taking the lock.
    ///
    /// A concurrent `add` racing past the check is caught on the next
    /// sweep — the slack is bounded by one preemption tick, which is
    /// already the timer wheel's precision.
    pub(crate) fn has_pending(&self) -> bool {
        self.pending.load(Ordering::Acquire) != 0
    }

    /// Number of pending live wake-ups (cancelled tombstones excluded).
    pub fn len(&self) -> usize {
        self.inner.lock().live.len()
    }

    /// Whether no live wake-ups are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The *physical* heap size, tombstones included — observability for
    /// the compaction bound (and its regression test).
    pub fn heap_len(&self) -> usize {
        self.inner.lock().heap.len()
    }
}

#[cfg(all(test, not(sting_check)))]
mod tests {
    use super::*;
    use crate::VmBuilder;
    use std::time::Duration;

    #[test]
    fn cancel_removes_from_live_and_due() {
        let vm = VmBuilder::new().vps(1).build();
        let t = vm.delayed(|_| 0i64);
        let timers = Timers::new();
        let far = Instant::now() + Duration::from_secs(3600);
        let id = timers.add(far, t.clone());
        assert_eq!(timers.len(), 1);
        assert!(timers.cancel(id));
        assert!(!timers.cancel(id), "double cancel reports already-gone");
        assert_eq!(timers.len(), 0);
        assert!(timers.next_deadline().is_none());
        assert!(timers.take_due(far + Duration::from_secs(1)).is_empty());
        let _ = sting_value::Value::Nil; // keep vm alive until here
        vm.shutdown();
    }

    #[test]
    fn heap_stays_bounded_under_early_wake_churn() {
        // A churn of sleepers that are all "woken early" (cancelled before
        // their deadline) must not grow the physical heap without bound:
        // compaction keeps it within a small constant of the live count.
        let vm = VmBuilder::new().vps(1).build();
        let t = vm.delayed(|_| 0i64);
        let timers = Timers::new();
        let far = Instant::now() + Duration::from_secs(3600);
        let mut max_heap = 0;
        for _ in 0..10_000 {
            let id = timers.add(far, t.clone());
            assert!(timers.cancel(id));
            max_heap = max_heap.max(timers.heap_len());
        }
        assert_eq!(timers.len(), 0);
        assert!(
            max_heap <= 64,
            "tombstones must be compacted, heap peaked at {max_heap}"
        );
        vm.shutdown();
    }

    #[test]
    fn next_deadline_skips_tombstones() {
        let vm = VmBuilder::new().vps(1).build();
        let t = vm.delayed(|_| 0i64);
        let timers = Timers::new();
        let soon = Instant::now() + Duration::from_secs(10);
        let later = soon + Duration::from_secs(10);
        let id = timers.add(soon, t.clone());
        let _keep = timers.add(later, t.clone());
        timers.cancel(id);
        assert_eq!(timers.next_deadline(), Some(later));
        vm.shutdown();
    }
}
