//! The virtual machine's timer wheel: wake-ups for `thread-suspend` with a
//! quantum argument and for [`Cx::sleep`](crate::tc::Cx::sleep).
//!
//! Precision is bounded by the machine's preemption tick — the timekeeper
//! and the processor workers both drain due timers.

use crate::thread::Thread;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

struct Entry {
    when: Instant,
    seq: u64,
    thread: Arc<Thread>,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Entry) -> bool {
        self.when == other.when && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Entry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Entry) -> std::cmp::Ordering {
        (self.when, self.seq).cmp(&(other.when, other.seq))
    }
}

/// A min-heap of pending thread wake-ups.
#[derive(Default)]
pub struct Timers {
    heap: Mutex<BinaryHeap<Reverse<Entry>>>,
    seq: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for Timers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Timers({} pending)", self.heap.lock().len())
    }
}

impl Timers {
    /// Creates an empty timer wheel.
    pub fn new() -> Timers {
        Timers::default()
    }

    /// Schedules `thread` to be woken at `when`.
    pub fn add(&self, when: Instant, thread: Arc<Thread>) {
        let seq = self.seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.heap.lock().push(Reverse(Entry { when, seq, thread }));
    }

    /// Removes and returns all threads whose deadline is at or before
    /// `now`.
    pub fn take_due(&self, now: Instant) -> Vec<Arc<Thread>> {
        let mut heap = self.heap.lock();
        let mut due = Vec::new();
        while let Some(Reverse(head)) = heap.peek() {
            if head.when > now {
                break;
            }
            due.push(heap.pop().expect("peeked").0.thread);
        }
        due
    }

    /// The earliest pending deadline, if any.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.heap.lock().peek().map(|Reverse(e)| e.when)
    }

    /// Number of pending wake-ups.
    pub fn len(&self) -> usize {
        self.heap.lock().len()
    }

    /// Whether no wake-ups are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
