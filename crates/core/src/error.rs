//! Substrate error types.

use std::error::Error;
use std::fmt;

/// Errors returned by fallible substrate operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A virtual-processor index was out of range for its virtual machine.
    VpOutOfRange {
        /// The requested index.
        index: usize,
        /// Number of VPs in the machine.
        len: usize,
    },
    /// The operation requires running on a STING thread, but the calling OS
    /// thread is not executing one.
    NotOnThread,
    /// The virtual machine has been shut down.
    Shutdown,
    /// A thread operation was requested in a state that forbids it (e.g.
    /// `thread_run` on an evaluating thread).
    InvalidTransition {
        /// Human-readable description of the offending transition.
        detail: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::VpOutOfRange { index, len } => {
                write!(
                    f,
                    "virtual processor {index} out of range (machine has {len})"
                )
            }
            CoreError::NotOnThread => write!(f, "not executing on a STING thread"),
            CoreError::Shutdown => write!(f, "virtual machine is shut down"),
            CoreError::InvalidTransition { detail } => {
                write!(f, "invalid thread state transition: {detail}")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::VpOutOfRange { index: 9, len: 4 };
        assert_eq!(
            e.to_string(),
            "virtual processor 9 out of range (machine has 4)"
        );
        assert!(CoreError::NotOnThread.to_string().contains("STING thread"));
    }
}
