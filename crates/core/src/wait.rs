//! The substrate's blocking protocol: generation-tagged wait episodes with
//! a claim token, deadline parking, and prompt cancellation.
//!
//! The paper "imposes no a priori synchronization protocol" (§4): every
//! library builds its own blocking discipline out of `thread-block` /
//! wake-up primitives.  What those disciplines share — *register a waiter,
//! re-check the condition, park; a waker consumes exactly one waiter* — is
//! promoted here into a substrate service so mutexes, channels, streams,
//! ivars, barriers, thread joins and tuple-space readers all park through
//! one verified mechanism (see DESIGN.md, "Blocking protocol").
//!
//! ## The claim token
//!
//! Each thread owns one [`WaitNode`] for its whole lifetime.  A blocking
//! attempt *arms* the node, producing a fresh generation number; the pair
//! (node, generation) is an **episode**, handed to structures as a
//! [`Waiter`] handle.  Waking is a single compare-and-swap on the node's
//! packed `generation << 3 | phase` word from `Armed(g)` to `Claimed(g)`:
//!
//! * at most one waker wins — a wake-up is consumed **exactly once**;
//! * a stale handle (earlier generation, or an episode already finished,
//!   timed out or cancelled) fails the CAS and the waker moves on to the
//!   next registered waiter, so a dead entry can never absorb a wake-up
//!   meant for a live one (the `wake_one` lost-wakeup hazard);
//! * timeout ([`Timers`](crate::timers::Timers) firing) and cancellation
//!   (`thread-terminate` / `thread-raise` on a blocked thread) race wakers
//!   through the same CAS, so every episode has exactly one outcome.
//!
//! The owner closes an episode with `finish`, which reports that outcome
//! as a [`WakeReason`] and returns the node to `Idle` for the next arm.
//!
//! Like [`deque`](crate::deque), the claim word's atomics switch to the
//! [`sting_check`] shims under `--cfg sting_check`, so the park/wake/
//! cancel race is explored by the model checker against this exact source
//! (`crates/core/tests/model_wait.rs`).
//!
//! [`sting_check`]: https://example.com/sting

use crate::thread::Thread;
use crate::timers::TimerId;
use crate::tls;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::{Arc, Weak};
use std::time::Instant;
use sting_value::Value;

// Under `--cfg sting_check` the claim word is the model checker's shim
// atomic, so `ci.sh check` explores this exact production source (see
// crates/core/tests/model_wait.rs); in normal builds it is std's.
#[cfg(not(sting_check))]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(sting_check)]
use sting_check::atomic::{AtomicU64, Ordering};

/// Why a park ended.  Returned by [`Waiter::park_until`] and
/// [`crate::tc::block_current`] so callers distinguish a (possibly
/// spurious) wake-up from a deadline or a cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeReason {
    /// A waker consumed this episode (or the wake-up was spurious); the
    /// caller must re-check its condition.
    Woken,
    /// The episode's deadline fired first.
    TimedOut,
    /// The episode was cancelled — the thread is being terminated or has
    /// an exception pending.
    Cancelled,
}

/// Error type for the timed variants of blocking operations (`Err` means
/// the deadline passed before the operation completed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedOut;

impl std::fmt::Display for TimedOut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("timed out")
    }
}

impl std::error::Error for TimedOut {}

/// How an episode ended, as observed by [`ClaimState::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Finish {
    /// Nothing consumed the episode: the wake-up (if any) was spurious.
    Spurious,
    /// A waker claimed the episode: a real wake-up was spent on it.
    Claimed,
    /// The episode was cancelled (termination / raised exception).
    Cancelled,
    /// The episode's deadline timer fired.
    TimedOut,
}

const IDLE: u64 = 0;
const ARMED: u64 = 1;
const CLAIMED: u64 = 2;
const CANCELLED: u64 = 3;
const TIMED_OUT: u64 = 4;
const PHASE_MASK: u64 = 0b111;
const GEN_SHIFT: u32 = 3;

const fn pack(gen: u64, phase: u64) -> u64 {
    (gen << GEN_SHIFT) | phase
}
const fn phase_of(word: u64) -> u64 {
    word & PHASE_MASK
}
const fn gen_of(word: u64) -> u64 {
    word >> GEN_SHIFT
}

/// The claim token at the heart of the protocol: one atomic word packing
/// `generation << 3 | phase`.
///
/// Phases: `Idle` (no episode), `Armed` (owner may park; wakers may
/// claim), and the three terminal phases `Claimed`, `Cancelled`,
/// `TimedOut`.  Only the owning thread arms and finishes; any thread may
/// attempt the `Armed(g) → terminal(g)` transitions, and the CAS
/// guarantees exactly one of them wins per episode.
///
/// The generation is bumped on every arm, so handles from earlier
/// episodes fail all CASes — the ABA door is closed without any
/// deregistration traffic.
#[derive(Debug)]
pub struct ClaimState {
    word: AtomicU64,
}

impl Default for ClaimState {
    fn default() -> ClaimState {
        ClaimState::new()
    }
}

impl ClaimState {
    /// A fresh, idle claim word (generation 0).
    pub fn new() -> ClaimState {
        ClaimState {
            word: AtomicU64::new(pack(0, IDLE)),
        }
    }

    /// Starts a new episode and returns its generation.  Owner-only: the
    /// store is plain (not a CAS) because no other thread ever writes the
    /// word while it is not `Armed`.
    pub fn arm(&self) -> u64 {
        let cur = self.word.load(Ordering::Relaxed);
        debug_assert_ne!(
            phase_of(cur),
            ARMED,
            "armed a new wait episode while the previous one is still armed"
        );
        let gen = gen_of(cur) + 1;
        self.word.store(pack(gen, ARMED), Ordering::Release);
        gen
    }

    /// Consumes episode `gen` as a wake-up.  `true` iff this call won the
    /// race (against other wakers, timeout and cancellation).
    pub fn claim(&self, gen: u64) -> bool {
        self.word
            .compare_exchange(
                pack(gen, ARMED),
                pack(gen, CLAIMED),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Marks episode `gen` as timed out.  `true` iff the deadline won.
    pub fn timeout(&self, gen: u64) -> bool {
        self.word
            .compare_exchange(
                pack(gen, ARMED),
                pack(gen, TIMED_OUT),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Cancels episode `gen`.  `true` iff the cancellation won.
    pub fn cancel(&self, gen: u64) -> bool {
        self.word
            .compare_exchange(
                pack(gen, ARMED),
                pack(gen, CANCELLED),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Cancels whatever episode is currently armed, if any, returning its
    /// generation.  Used by `thread-terminate`/`thread-raise` on a blocked
    /// thread, which do not know the generation.
    pub fn cancel_current(&self) -> Option<u64> {
        let mut cur = self.word.load(Ordering::Acquire);
        loop {
            if phase_of(cur) != ARMED {
                return None;
            }
            let gen = gen_of(cur);
            match self.word.compare_exchange(
                cur,
                pack(gen, CANCELLED),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(gen),
                Err(c) => cur = c,
            }
        }
    }

    /// Whether episode `gen` is still armed (not yet consumed).
    pub fn is_armed(&self, gen: u64) -> bool {
        self.word.load(Ordering::Acquire) == pack(gen, ARMED)
    }

    /// Closes episode `gen` and reports how it ended, returning the word
    /// to `Idle`.  Owner-only.  If the episode is still armed, nothing
    /// consumed it and the wake-up (if any) was spurious.
    pub fn finish(&self, gen: u64) -> Finish {
        if self
            .word
            .compare_exchange(
                pack(gen, ARMED),
                pack(gen, IDLE),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            return Finish::Spurious;
        }
        let cur = self.word.load(Ordering::Acquire);
        debug_assert_eq!(
            gen_of(cur),
            gen,
            "finish() on a generation that is not the current episode"
        );
        let finish = match phase_of(cur) {
            CLAIMED => Finish::Claimed,
            CANCELLED => Finish::Cancelled,
            TIMED_OUT => Finish::TimedOut,
            _ => Finish::Spurious,
        };
        self.word.store(pack(gen, IDLE), Ordering::Release);
        finish
    }

    /// Non-consuming snapshot of the current phase as a [`WakeReason`]
    /// (`Claimed`/`Armed`/`Idle` map to `Woken`).  Used by
    /// [`crate::tc::block_current`] to report why the thread resumed; the
    /// episode owner's `finish` remains the authoritative consumer.
    pub fn snapshot_reason(&self) -> WakeReason {
        match phase_of(self.word.load(Ordering::Acquire)) {
            TIMED_OUT => WakeReason::TimedOut,
            CANCELLED => WakeReason::Cancelled,
            _ => WakeReason::Woken,
        }
    }
}

/// How a [`WaitNode`]'s owner actually sleeps.
enum Parker {
    /// A STING thread: park the green thread via
    /// [`block_current`](crate::tc::block_current); wakers
    /// [`unblock`](crate::thread::Thread) it.  Weak, because the node is
    /// owned by the thread itself (a strong edge would leak the cycle).
    Green(Weak<Thread>),
    /// A plain OS thread (e.g. `main`): a condvar, with the claim word as
    /// the one-shot wake token — there is no reset step, so a second wake
    /// racing the first cannot be absorbed by a stale reset.
    Os(OsParker),
}

struct OsParker {
    lock: Mutex<()>,
    cv: Condvar,
}

/// One thread's parking spot: a [`ClaimState`] plus the means to wake the
/// owner.  STING threads embed one node for their whole lifetime
/// (generations distinguish episodes); OS threads get a fresh node per
/// blocking call.
pub struct WaitNode {
    state: ClaimState,
    parker: Parker,
}

impl std::fmt::Debug for WaitNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaitNode")
            .field("state", &self.state)
            .field(
                "parker",
                &match self.parker {
                    Parker::Green(_) => "green",
                    Parker::Os(_) => "os",
                },
            )
            .finish()
    }
}

impl WaitNode {
    /// The node embedded in a [`Thread`] at construction.
    pub(crate) fn green(thread: Weak<Thread>) -> WaitNode {
        WaitNode {
            state: ClaimState::new(),
            parker: Parker::Green(thread),
        }
    }

    fn os() -> WaitNode {
        WaitNode {
            state: ClaimState::new(),
            parker: Parker::Os(OsParker {
                lock: Mutex::new(()),
                cv: Condvar::new(),
            }),
        }
    }

    /// The node's claim word.
    pub fn state(&self) -> &ClaimState {
        &self.state
    }
}

/// A handle to one wait episode: the unit synchronization structures
/// register and wake.
///
/// Clones are cheap and share the episode; once the episode ends (wake,
/// timeout, cancellation, or the owner finishing it), every clone is
/// *dead* — [`Waiter::wake`] on it fails the claim CAS and returns
/// `false`, and [`WaitList`] skips and eventually prunes it.  Structures
/// therefore never need to chase down registrations: deregistration is
/// O(1) by construction.
#[derive(Clone)]
pub struct Waiter {
    node: Arc<WaitNode>,
    gen: u64,
}

impl std::fmt::Debug for Waiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Waiter")
            .field("gen", &self.gen)
            .field("live", &self.is_live())
            .finish()
    }
}

impl Waiter {
    /// Arms a new episode for the calling thread and returns its handle.
    ///
    /// On a STING thread this arms the **TCB owner**'s node — during a
    /// steal the stealer, not the stolen thread, is what parks (see
    /// [`crate::tc::current_owner`]).  On a plain OS thread a fresh
    /// condvar-backed node is created.
    pub fn current() -> Waiter {
        match tls::current() {
            Some(cur) => {
                let node = cur.shared.thread.wait_node().clone();
                drop(cur);
                let gen = node.state.arm();
                Waiter { node, gen }
            }
            None => {
                let node = Arc::new(WaitNode::os());
                let gen = node.state.arm();
                Waiter { node, gen }
            }
        }
    }

    /// Consumes the episode as a wake-up and makes its owner runnable.
    ///
    /// Returns `false` — without waking anyone — if the episode was
    /// already consumed (woken, timed out, cancelled or finished): the
    /// caller should spend its wake-up on the next waiter instead.
    pub fn wake(&self) -> bool {
        if !self.node.state.claim(self.gen) {
            return false;
        }
        match &self.node.parker {
            Parker::Green(weak) => {
                if let Some(thread) = weak.upgrade() {
                    thread.unblock_claimed(self.gen);
                }
            }
            Parker::Os(p) => {
                // Lock so a waiter between its armed-check and its sleep
                // cannot miss the notification.
                let _g = p.lock.lock();
                p.cv.notify_all();
            }
        }
        true
    }

    /// [`Waiter::wake`], but a woken green thread's ready-queue publication
    /// is deferred into `batch` instead of enqueued immediately, so a sweep
    /// over many waiters (broadcast, barrier release) publishes them all
    /// with one injector CAS at [`WakeBatch::publish`].  The claim, state
    /// transition and Unblock trace still happen here, synchronously — only
    /// the queue insertion is deferred.  OS-thread waiters are notified
    /// immediately (a condvar has nothing to batch).
    pub fn wake_into(&self, batch: &mut WakeBatch) -> bool {
        if !self.node.state.claim(self.gen) {
            return false;
        }
        match &self.node.parker {
            Parker::Green(weak) => {
                if let Some(thread) = weak.upgrade() {
                    thread.unblock_deferred(self.gen, batch);
                }
            }
            Parker::Os(p) => {
                let _g = p.lock.lock();
                p.cv.notify_all();
            }
        }
        true
    }

    /// Whether the episode is still armed (registered and not yet
    /// consumed).  [`WaitList::len`] counts only live entries.
    pub fn is_live(&self) -> bool {
        self.node.state.is_armed(self.gen)
    }

    /// Parks until the episode is consumed; see [`Waiter::park_until`].
    pub fn park(&self, blocker: &Value) -> WakeReason {
        self.park_until(blocker, None)
    }

    /// Parks the calling thread until the episode is consumed or
    /// `deadline` passes.
    ///
    /// The episode is finished on return: the handle (and every clone of
    /// it) is dead afterwards, and the caller must arm a fresh one (or use
    /// [`block_until_deadline`], which does) to block again.  Green
    /// threads route the deadline through the machine's
    /// [`Timers`](crate::timers::Timers) wheel; the timer entry is
    /// cancelled on early wake-up so no tombstone fires a spurious wake.
    /// If the park unwinds (thread termination, raised exception, VM
    /// drain), a drop guard cancels the episode and its timer so no
    /// structure ever wakes or counts the dead waiter.
    pub fn park_until(&self, blocker: &Value, deadline: Option<Instant>) -> WakeReason {
        match &self.node.parker {
            Parker::Green(_) => self.park_green(blocker, deadline),
            Parker::Os(p) => self.park_os(p, deadline),
        }
    }

    fn park_green(&self, blocker: &Value, deadline: Option<Instant>) -> WakeReason {
        let cur = tls::current().expect("green waiter parked off its thread");
        let thread = cur.shared.thread.clone();
        drop(cur);
        debug_assert!(
            Arc::ptr_eq(thread.wait_node(), &self.node),
            "a green Waiter may only be parked by the thread that armed it"
        );
        let timer = match (deadline, thread.vm()) {
            (Some(when), Some(vm)) => Some(vm.timers().add_wait_deadline(
                when,
                thread.clone(),
                self.node.clone(),
                self.gen,
            )),
            _ => None,
        };
        let mut guard = ParkGuard {
            node: &self.node,
            gen: self.gen,
            thread: &thread,
            timer,
            done: false,
        };
        let _ = crate::tc::block_current(Some(blocker.clone()));
        guard.done = true;
        let timer = guard.timer.take();
        drop(guard);
        if let (Some(id), Some(vm)) = (timer, thread.vm()) {
            vm.timers().cancel(id);
        }
        match self.node.state.finish(self.gen) {
            Finish::Spurious | Finish::Claimed => WakeReason::Woken,
            Finish::TimedOut => WakeReason::TimedOut,
            Finish::Cancelled => WakeReason::Cancelled,
        }
    }

    fn park_os(&self, p: &OsParker, deadline: Option<Instant>) -> WakeReason {
        let mut g = p.lock.lock();
        while self.node.state.is_armed(self.gen) {
            match deadline {
                Some(d) => {
                    if p.cv.wait_until(&mut g, d).timed_out() {
                        // Claim the timeout ourselves; if the CAS loses, a
                        // waker got there first and the loop exits anyway.
                        let _ = self.node.state.timeout(self.gen);
                    }
                }
                None => p.cv.wait(&mut g),
            }
        }
        drop(g);
        match self.node.state.finish(self.gen) {
            Finish::Spurious | Finish::Claimed => WakeReason::Woken,
            Finish::TimedOut => WakeReason::TimedOut,
            Finish::Cancelled => WakeReason::Cancelled,
        }
    }

    /// Finishes the episode without parking.  Returns `true` iff a waker
    /// had already claimed it — a real wake-up was spent on this handle,
    /// which callers that abandon a registered episode (timeout paths,
    /// tuple-space self-service) must re-donate by re-checking their
    /// condition or waking a peer, or the wake-up is lost.
    pub fn retire(&self) -> bool {
        matches!(self.node.state.finish(self.gen), Finish::Claimed)
    }

    fn same_episode(&self, other: &Waiter) -> bool {
        Arc::ptr_eq(&self.node, &other.node) && self.gen == other.gen
    }

    /// The id of the green thread behind this episode, or 0 for an
    /// OS-thread waiter — diagnostics and trace payloads only.
    pub(crate) fn thread_id(&self) -> u64 {
        match &self.node.parker {
            Parker::Green(weak) => weak.upgrade().map(|t| t.id().0).unwrap_or(0),
            Parker::Os(_) => 0,
        }
    }
}

/// Cancels the episode (and its deadline timer) if the park unwinds:
/// `thread-terminate` / `thread-raise` panic out of
/// [`block_current`](crate::tc::block_current)'s request application, and
/// [`Vm::shutdown`](crate::vm::Vm::shutdown) force-unwinds parked fibers.
struct ParkGuard<'a> {
    node: &'a Arc<WaitNode>,
    gen: u64,
    thread: &'a Arc<Thread>,
    timer: Option<TimerId>,
    done: bool,
}

impl Drop for ParkGuard<'_> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        let vm = self.thread.vm();
        if let (Some(id), Some(vm)) = (self.timer.take(), vm.as_ref()) {
            vm.timers().cancel(id);
        }
        if self.node.state.cancel(self.gen) {
            if let Some(vm) = &vm {
                crate::trace_event!(
                    vm.tracer(),
                    tls::current().map(|c| c.vp.index()),
                    crate::trace::EventKind::WaiterCancelled,
                    self.thread.id().0,
                    1, // origin: park unwind
                    self.gen as u32
                );
            }
        }
    }
}

/// A set of woken-but-not-yet-enqueued threads, collected across a
/// wait-list sweep and published to the ready queues in bulk.
///
/// Waking `n` threads one at a time costs `n` injector CASes and `n`
/// machine signals; a batch groups the TCBs by destination VP and
/// publishes each group with **one** CAS
/// ([`BandedInjector::push_batch`](crate::deque::BandedInjector)) and one
/// signal.  Arrival order is preserved, so FIFO-within-band dispatch of
/// the woken set matches the wake order.
///
/// Dropping an unpublished batch publishes it — a woken TCB can never be
/// lost to an early return or unwind.
#[derive(Default)]
pub struct WakeBatch {
    /// The first wake-up, held inline: a sweep that claims exactly one
    /// waiter (the overwhelmingly common case — `wake_one`, a lone joiner,
    /// an uncontended lock handoff) publishes through the ordinary single
    /// enqueue without ever allocating.
    first: Option<(Arc<crate::vm::Vm>, usize, crate::tcb::Tcb)>,
    rest: Vec<(Arc<crate::vm::Vm>, usize, crate::tcb::Tcb)>,
}

impl std::fmt::Debug for WakeBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WakeBatch({} pending)", self.len())
    }
}

impl WakeBatch {
    /// An empty batch.
    pub fn new() -> WakeBatch {
        WakeBatch::default()
    }

    /// How many wake-ups are pending publication.
    pub fn len(&self) -> usize {
        usize::from(self.first.is_some()) + self.rest.len()
    }

    /// Whether no wake-up is pending.
    pub fn is_empty(&self) -> bool {
        self.first.is_none() && self.rest.is_empty()
    }

    pub(crate) fn add(&mut self, vm: Arc<crate::vm::Vm>, vp: usize, tcb: crate::tcb::Tcb) {
        if self.first.is_none() && self.rest.is_empty() {
            self.first = Some((vm, vp, tcb));
        } else {
            self.rest.push((vm, vp, tcb));
        }
    }

    /// Publishes every collected wake-up to its VP's ready queue, one
    /// batched enqueue per destination VP.  Returns how many were
    /// published.
    pub fn publish(mut self) -> usize {
        self.flush()
    }

    fn flush(&mut self) -> usize {
        let Some((vm, vp, tcb)) = self.first.take() else {
            return 0;
        };
        if self.rest.is_empty() {
            // Single wake: the plain enqueue path, no batching machinery.
            vm.enqueue_parked(tcb, vp, crate::pm::EnqueueState::Unblocked);
            return 1;
        }
        let published = 1 + self.rest.len();
        // Group by (vm, vp), preserving wake order within each group.
        let mut groups: Vec<(Arc<crate::vm::Vm>, usize, Vec<crate::tcb::Tcb>)> =
            vec![(vm, vp, vec![tcb])];
        for (vm, vp, tcb) in self.rest.drain(..) {
            match groups
                .iter_mut()
                .find(|g| Arc::ptr_eq(&g.0, &vm) && g.1 == vp)
            {
                Some(g) => g.2.push(tcb),
                None => groups.push((vm, vp, vec![tcb])),
            }
        }
        for (vm, vp, tcbs) in groups {
            vm.enqueue_parked_batch(tcbs, vp, crate::pm::EnqueueState::Unblocked);
        }
        published
    }
}

impl Drop for WakeBatch {
    fn drop(&mut self) {
        self.flush();
    }
}

/// An ordered collection of registered [`Waiter`]s — the wait queue every
/// blocking structure embeds (under its own lock).
///
/// Dead entries (consumed, timed-out, cancelled or superseded episodes)
/// are skipped by [`wake_one`](WaitList::wake_one) via the failing claim
/// CAS and pruned amortized on [`push`](WaitList::push), so explicit
/// [`remove`](WaitList::remove) is optional and O(1).
#[derive(Default)]
pub struct WaitList {
    entries: VecDeque<Waiter>,
    sweep_at: usize,
}

impl std::fmt::Debug for WaitList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WaitList({} live)", self.len())
    }
}

impl WaitList {
    /// An empty wait list.
    pub fn new() -> WaitList {
        WaitList {
            entries: VecDeque::new(),
            sweep_at: 8,
        }
    }

    /// Registers a waiter at the back of the queue.
    ///
    /// Dead entries are swept when the list doubles past the previous
    /// sweep's survivors, keeping registration O(1) amortized even if no
    /// one ever calls [`remove`](WaitList::remove).
    pub fn push(&mut self, w: Waiter) {
        if self.entries.len() >= self.sweep_at.max(8) {
            self.entries.retain(Waiter::is_live);
            self.sweep_at = (self.entries.len() * 2).max(8);
        }
        self.entries.push_back(w);
    }

    /// Wakes the frontmost *live* waiter, skipping (and discarding) dead
    /// entries.  Returns `false` if no live waiter was found — the
    /// wake-up was not consumed and the caller keeps its resource
    /// available for the next arrival.
    pub fn wake_one(&mut self) -> bool {
        while let Some(w) = self.entries.pop_front() {
            if w.wake() {
                return true;
            }
        }
        false
    }

    /// Wakes every live waiter, emptying the list.  Returns how many
    /// wake-ups were actually delivered.
    ///
    /// The woken green threads are published to their ready queues in
    /// bulk through a [`WakeBatch`] — one injector CAS and one machine
    /// signal per destination VP, however many waiters the sweep claims.
    pub fn wake_all(&mut self) -> usize {
        let mut batch = WakeBatch::new();
        let mut woken = 0;
        for w in self.entries.drain(..) {
            if w.wake_into(&mut batch) {
                woken += 1;
            }
        }
        batch.publish();
        woken
    }

    /// Deregisters `w` in O(1) amortized time: the entry is physically
    /// removed only if it sits at the back (the common register-then-
    /// immediately-succeed case); otherwise it is left in place, where its
    /// finished episode makes it dead — unclaimable by
    /// [`wake_one`](WaitList::wake_one), uncounted by
    /// [`len`](WaitList::len), and swept by a later
    /// [`push`](WaitList::push).
    pub fn remove(&mut self, w: &Waiter) {
        if self.entries.back().is_some_and(|b| b.same_episode(w)) {
            self.entries.pop_back();
        }
    }

    /// The number of **live** registered waiters.  A thread terminated or
    /// timed out while blocked stops counting immediately, even before
    /// its entry is physically swept.
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|w| w.is_live()).count()
    }

    /// Whether no live waiter is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Blocks the current thread until `try_register` succeeds.
///
/// `try_register` is called with a freshly armed [`Waiter`]; it must
/// either perform the operation and return `Some` (registering nothing),
/// or register the waiter with the structure(s) it is waiting on — under
/// the structure's lock, *after* re-checking the condition — and return
/// `None`.  Wake-ups can be spurious; the closure simply runs again.
///
/// Callable from plain OS threads too (condvar-backed parking).
pub fn block_until<T>(blocker: &Value, mut try_register: impl FnMut(&Waiter) -> Option<T>) -> T {
    loop {
        // A `None` without a deadline means the episode was cancelled; if
        // the cancellation did not unwind the thread (it normally does),
        // re-arming and blocking again is the only sound continuation.
        if let Some(v) = block_until_deadline(blocker, None, &mut try_register) {
            return v;
        }
    }
}

/// [`block_until`] with an optional deadline: returns `None` if the
/// deadline passes (or the thread is cancelled) before `try_register`
/// succeeds.
///
/// On the abandon path a wake-up already spent on this waiter is
/// re-donated by re-running `try_register` once, so a timeout racing a
/// wake never loses the wake-up.
pub fn block_until_deadline<T>(
    blocker: &Value,
    deadline: Option<Instant>,
    mut try_register: impl FnMut(&Waiter) -> Option<T>,
) -> Option<T> {
    loop {
        let w = Waiter::current();
        if let Some(v) = try_register(&w) {
            let _ = w.retire();
            return Some(v);
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                if w.retire() {
                    // A waker picked us between registration and abandon;
                    // consume the wake-up (the condition it signalled is
                    // ours to take) rather than lose it.
                    if let Some(v) = try_register(&w) {
                        return Some(v);
                    }
                }
                return None;
            }
        }
        match w.park_until(blocker, deadline) {
            WakeReason::Woken => {}
            WakeReason::TimedOut | WakeReason::Cancelled => return None,
        }
    }
}

#[cfg(all(test, not(sting_check)))]
mod tests {
    use super::*;
    use std::time::Duration;

    fn os_waiter() -> Waiter {
        assert!(!tls::on_thread());
        Waiter::current()
    }

    #[test]
    fn os_waiter_park_wake_round_trip() {
        let w = os_waiter();
        let peer = w.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            assert!(peer.wake());
        });
        assert_eq!(w.park(&Value::sym("test")), WakeReason::Woken);
        h.join().unwrap();
    }

    #[test]
    fn wake_is_a_one_shot_token() {
        let w = os_waiter();
        assert!(w.wake());
        assert!(!w.wake(), "a second wake must not be absorbed");
        // The pending claim is consumed without sleeping.
        assert_eq!(w.park(&Value::sym("test")), WakeReason::Woken);
    }

    #[test]
    fn park_until_times_out() {
        let w = os_waiter();
        let reason = w.park_until(
            &Value::sym("test"),
            Some(Instant::now() + Duration::from_millis(5)),
        );
        assert_eq!(reason, WakeReason::TimedOut);
        assert!(!w.wake(), "a timed-out episode is not claimable");
    }

    #[test]
    fn cancelled_episode_rejects_wakes() {
        let w = os_waiter();
        assert_eq!(w.node.state().cancel_current(), Some(w.gen));
        assert!(!w.wake());
        assert_eq!(w.park(&Value::sym("test")), WakeReason::Cancelled);
    }

    #[test]
    fn stale_generation_never_claims() {
        let w = os_waiter();
        let stale = w.clone();
        let _ = w.retire();
        let next = Waiter {
            node: w.node.clone(),
            gen: w.node.state().arm(),
        };
        assert!(!stale.wake(), "finished episode must not claim");
        assert!(next.wake(), "current episode still wakeable");
    }

    #[test]
    fn wake_one_skips_dead_entries() {
        let dead = os_waiter();
        let _ = dead.retire();
        let live = os_waiter();
        let mut list = WaitList::new();
        list.push(dead);
        list.push(live.clone());
        assert_eq!(list.len(), 1);
        assert!(list.wake_one(), "wake must fall through to the live entry");
        assert!(!live.is_live(), "the live waiter consumed the wake");
        assert!(!list.wake_one());
    }

    #[test]
    fn wake_all_drains_the_list() {
        let ws: Vec<Waiter> = (0..4).map(|_| os_waiter()).collect();
        let mut list = WaitList::new();
        for w in &ws {
            list.push(w.clone());
        }
        assert_eq!(list.wake_all(), 4);
        assert!(list.is_empty());
        assert!(ws.iter().all(|w| !w.is_live()));
    }

    #[test]
    fn wake_one_is_fifo() {
        let a = os_waiter();
        let b = os_waiter();
        let mut list = WaitList::new();
        list.push(a.clone());
        list.push(b.clone());
        assert!(list.wake_one());
        assert!(!a.is_live(), "first registered is first woken");
        assert!(b.is_live());
    }

    #[test]
    fn remove_pops_the_back_and_kills_elsewhere() {
        let a = os_waiter();
        let b = os_waiter();
        let mut list = WaitList::new();
        list.push(a.clone());
        list.push(b.clone());
        list.remove(&b); // back: physically removed
        assert_eq!(list.len(), 1);
        let _ = a.retire(); // middle: dies in place
        assert_eq!(list.len(), 0);
        assert!(!list.wake_one());
    }

    #[test]
    fn push_prunes_dead_entries() {
        let mut list = WaitList::new();
        for _ in 0..64 {
            let w = os_waiter();
            list.push(w.clone());
            let _ = w.retire();
        }
        assert!(
            list.entries.len() <= 17,
            "dead entries must be swept amortized (got {})",
            list.entries.len()
        );
    }
}
