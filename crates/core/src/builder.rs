//! Builders for virtual machines and threads.

use crate::error::CoreError;
use crate::group::ThreadGroup;
use crate::machine::PhysicalMachine;
use crate::pm::PolicyManager;
use crate::policies;
use crate::state::ThreadState;
use crate::tc::{self, Cx};
use crate::thread::Thread;
use crate::vm::Vm;
use std::sync::Arc;
use std::time::Duration;
use sting_value::Value;

/// Configures and creates a [`Vm`].
///
/// ```
/// use sting_core::{policies, VmBuilder};
///
/// let vm = VmBuilder::new()
///     .vps(2)
///     .policy(|_vp| policies::local_fifo().migrating(true).boxed())
///     .build();
/// let t = vm.fork(|_cx| 21i64 * 2);
/// assert_eq!(t.join_blocking().unwrap().as_int(), Some(42));
/// vm.shutdown();
/// ```
pub struct VmBuilder {
    name: String,
    vps: usize,
    policy: Box<dyn FnMut(usize) -> Box<dyn PolicyManager>>,
    stack_size: usize,
    pool_capacity: usize,
    processors: Option<usize>,
    tick: Duration,
    machine: Option<Arc<PhysicalMachine>>,
    trace: bool,
    trace_capacity: usize,
    metrics: bool,
    metrics_sample: u64,
    io_workers: usize,
    io_backend: crate::reactor::IoBackend,
    shard: usize,
    tid_source: Option<Arc<std::sync::atomic::AtomicU64>>,
}

/// Everything [`Vm::create`](Vm) needs besides the policy managers,
/// assembled by [`VmBuilder::build`].
pub(crate) struct VmConfig {
    pub(crate) name: String,
    pub(crate) stack_size: usize,
    pub(crate) pool_capacity: usize,
    pub(crate) trace: bool,
    pub(crate) trace_capacity: usize,
    pub(crate) metrics: bool,
    pub(crate) metrics_sample: u64,
    pub(crate) io_workers: usize,
    /// Reactor backend for the VM's I/O driver.
    pub(crate) io_backend: crate::reactor::IoBackend,
    /// Shard index within a fleet (0 standalone).
    pub(crate) shard: usize,
    /// Shared thread-id counter for fleet-unique ids (`None` standalone).
    pub(crate) tid_source: Option<Arc<std::sync::atomic::AtomicU64>>,
}

impl std::fmt::Debug for VmBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VmBuilder")
            .field("name", &self.name)
            .field("vps", &self.vps)
            .finish()
    }
}

impl Default for VmBuilder {
    fn default() -> VmBuilder {
        VmBuilder::new()
    }
}

impl VmBuilder {
    /// Starts with defaults: one VP per available CPU, migrating FIFO
    /// policy (fair, as the paper's defaults), 512 KiB stacks, 500 µs tick.
    pub fn new() -> VmBuilder {
        let cpus = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        VmBuilder {
            name: "sting".to_string(),
            vps: cpus,
            policy: Box::new(|_| policies::local_fifo().migrating(true).boxed()),
            stack_size: 512 * 1024,
            pool_capacity: 64,
            processors: None,
            tick: Duration::from_micros(500),
            machine: None,
            trace: false,
            trace_capacity: crate::trace::DEFAULT_CAPACITY,
            metrics: true,
            metrics_sample: crate::metrics::DEFAULT_SAMPLE_PERIOD,
            io_workers: crate::io::DEFAULT_IO_WORKERS,
            io_backend: crate::reactor::IoBackend::from_env(),
            shard: 0,
            tid_source: None,
        }
    }

    /// Marks the VM as shard `shard` of a fleet, drawing thread ids from
    /// `tid_source` so ids stay unique fleet-wide.  Used by
    /// [`crate::fleet::FleetBuilder`]; standalone VMs keep the defaults.
    pub fn shard_identity(
        mut self,
        shard: usize,
        tid_source: Arc<std::sync::atomic::AtomicU64>,
    ) -> VmBuilder {
        self.shard = shard;
        self.tid_source = Some(tid_source);
        self
    }

    /// Sets the VM name (diagnostics).
    pub fn name(mut self, name: &str) -> VmBuilder {
        self.name = name.to_string();
        self
    }

    /// Number of virtual processors.
    pub fn vps(mut self, vps: usize) -> VmBuilder {
        self.vps = vps.max(1);
        self
    }

    /// Policy-manager factory, called once per VP with the VP index.
    /// Different VPs may receive different policies.
    pub fn policy(
        mut self,
        factory: impl FnMut(usize) -> Box<dyn PolicyManager> + 'static,
    ) -> VmBuilder {
        self.policy = Box::new(factory);
        self
    }

    /// Stack size for thread TCBs, in bytes.
    pub fn stack_size(mut self, bytes: usize) -> VmBuilder {
        self.stack_size = bytes;
        self
    }

    /// Per-VP capacity of the TCB stack recycling pool.
    pub fn stack_pool_capacity(mut self, stacks: usize) -> VmBuilder {
        self.pool_capacity = stacks;
        self
    }

    /// Number of physical processors (worker OS threads) when the builder
    /// creates its own [`PhysicalMachine`]; default: min(vps, CPUs).
    pub fn processors(mut self, processors: usize) -> VmBuilder {
        self.processors = Some(processors.max(1));
        self
    }

    /// Preemption tick for a builder-created machine.
    pub fn tick(mut self, tick: Duration) -> VmBuilder {
        self.tick = tick;
        self
    }

    /// Attach to an existing machine instead of creating one (several VMs
    /// can share a physical machine).
    pub fn machine(mut self, machine: Arc<PhysicalMachine>) -> VmBuilder {
        self.machine = Some(machine);
        self
    }

    /// Starts the VM with the scheduler flight recorder already running
    /// (see [`Vm::tracer`](crate::Vm::tracer)); recording can also be
    /// toggled later with [`Tracer::set_enabled`](crate::Tracer::set_enabled).
    pub fn trace(mut self, on: bool) -> VmBuilder {
        self.trace = on;
        self
    }

    /// Per-VP capacity of the flight-recorder rings, in events (default
    /// [`trace::DEFAULT_CAPACITY`](crate::trace::DEFAULT_CAPACITY)).  When
    /// a ring fills, the oldest events are overwritten.
    pub fn trace_capacity(mut self, events: usize) -> VmBuilder {
        self.trace_capacity = events;
        self
    }

    /// Whether latency metrics (dispatch/steal/wake/GC-pause histograms,
    /// see [`crate::metrics`]) stamp events from the start (default on;
    /// stamping is sampled, see [`VmBuilder::metrics_sample`]).  Can also
    /// be toggled later with
    /// [`Metrics::set_enabled`](crate::Metrics::set_enabled).
    pub fn metrics(mut self, on: bool) -> VmBuilder {
        self.metrics = on;
        self
    }

    /// Latency-metrics sampling period: one in this many eligible events
    /// takes a timestamp (rounded up to a power of two; default
    /// [`metrics::DEFAULT_SAMPLE_PERIOD`](crate::metrics::DEFAULT_SAMPLE_PERIOD)).
    /// `1` stamps every event — highest fidelity, highest overhead.
    pub fn metrics_sample(mut self, period: u64) -> VmBuilder {
        self.metrics_sample = period;
        self
    }

    /// Cap on the VM's blocking-call worker pool (see
    /// [`io::offload`](crate::io::offload); default
    /// [`io::DEFAULT_IO_WORKERS`](crate::io::DEFAULT_IO_WORKERS)).  The
    /// pool starts empty and grows one worker at a time while offloads are
    /// queued and no worker is idle, so the cap is the ceiling on
    /// *concurrent* blocking calls, not a standing thread count.
    pub fn io_workers(mut self, cap: usize) -> VmBuilder {
        self.io_workers = cap.max(1);
        self
    }

    /// Reactor backend for the VM's non-blocking I/O driver (see
    /// [`IoBackend`](crate::reactor::IoBackend)).  The default is
    /// [`Auto`](crate::reactor::IoBackend::Auto) — io_uring when the
    /// kernel supports it, epoll otherwise — unless the `STING_IO_BACKEND`
    /// environment variable (`auto` | `epoll` | `uring`) overrides it; an
    /// explicit call here beats both.
    pub fn io_backend(mut self, backend: crate::reactor::IoBackend) -> VmBuilder {
        self.io_backend = backend;
        self
    }

    /// Builds the VM, attaches it to its machine, and returns it running.
    pub fn build(mut self) -> Arc<Vm> {
        let policies: Vec<_> = (0..self.vps).map(|i| (self.policy)(i)).collect();
        let vm = Vm::create(
            policies,
            VmConfig {
                name: self.name,
                stack_size: self.stack_size,
                pool_capacity: self.pool_capacity,
                trace: self.trace,
                trace_capacity: self.trace_capacity,
                metrics: self.metrics,
                metrics_sample: self.metrics_sample,
                io_workers: self.io_workers,
                io_backend: self.io_backend,
                shard: self.shard,
                tid_source: self.tid_source.take(),
            },
        );
        let machine = self.machine.take().unwrap_or_else(|| {
            let cpus = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            PhysicalMachine::with_tick(self.processors.unwrap_or(cpus.min(self.vps)), self.tick)
        });
        machine.attach(&vm);
        vm
    }
}

/// Per-thread spawn options (see [`ThreadBuilder`]).
#[derive(Debug)]
pub(crate) struct SpawnOpts {
    pub(crate) name: Option<String>,
    pub(crate) group: Option<Arc<ThreadGroup>>,
    pub(crate) stealable: bool,
    pub(crate) priority: i32,
    pub(crate) quantum: u32,
}

impl Default for SpawnOpts {
    fn default() -> SpawnOpts {
        SpawnOpts {
            name: None,
            group: None,
            stealable: true,
            priority: 0,
            quantum: 1,
        }
    }
}

/// Configures a thread before spawning it.
///
/// ```
/// use sting_core::{ThreadBuilder, VmBuilder};
///
/// let vm = VmBuilder::new().vps(1).build();
/// let t = ThreadBuilder::new(&vm)
///     .name("worker")
///     .priority(3)
///     .stealable(false)
///     .spawn(|_cx| 7i64)
///     .unwrap();
/// assert_eq!(t.join_blocking().unwrap().as_int(), Some(7));
/// vm.shutdown();
/// ```
#[derive(Debug)]
pub struct ThreadBuilder {
    vm: Arc<Vm>,
    opts: SpawnOpts,
    vp: Option<usize>,
}

impl ThreadBuilder {
    /// Starts building a thread on `vm`.
    pub fn new(vm: &Arc<Vm>) -> ThreadBuilder {
        ThreadBuilder {
            vm: vm.clone(),
            opts: SpawnOpts::default(),
            vp: None,
        }
    }

    /// Debug name.
    pub fn name(mut self, name: &str) -> ThreadBuilder {
        self.opts.name = Some(name.to_string());
        self
    }

    /// Thread group (default: the spawning thread's group, else root).
    pub fn group(mut self, group: Arc<ThreadGroup>) -> ThreadBuilder {
        self.opts.group = Some(group);
        self
    }

    /// Whether touching threads may steal this thread's thunk.
    pub fn stealable(mut self, stealable: bool) -> ThreadBuilder {
        self.opts.stealable = stealable;
        self
    }

    /// Scheduling priority hint.
    pub fn priority(mut self, priority: i32) -> ThreadBuilder {
        self.opts.priority = priority;
        self
    }

    /// Quantum in preemption ticks per slice.
    pub fn quantum(mut self, ticks: u32) -> ThreadBuilder {
        self.opts.quantum = ticks.max(1);
        self
    }

    /// Target VP for the initial placement.
    pub fn on_vp(mut self, vp: usize) -> ThreadBuilder {
        self.vp = Some(vp);
        self
    }

    /// Spawns the thread scheduled for execution.
    ///
    /// # Errors
    ///
    /// [`CoreError::VpOutOfRange`] if [`ThreadBuilder::on_vp`] was out of
    /// range.
    pub fn spawn<F, V>(self, f: F) -> Result<Arc<Thread>, CoreError>
    where
        F: FnOnce(&Cx) -> V + Send + 'static,
        V: Into<Value>,
    {
        if let Some(vp) = self.vp {
            if vp >= self.vm.vp_count() {
                return Err(CoreError::VpOutOfRange {
                    index: vp,
                    len: self.vm.vp_count(),
                });
            }
        }
        Ok(self.vm.spawn_with(
            tc::erase(f),
            ThreadState::Scheduled,
            self.vp,
            Some(self.opts),
        ))
    }

    /// Creates the thread delayed (runs only when demanded).
    pub fn delayed<F, V>(self, f: F) -> Arc<Thread>
    where
        F: FnOnce(&Cx) -> V + Send + 'static,
        V: Into<Value>,
    {
        self.vm
            .spawn_with(tc::erase(f), ThreadState::Delayed, None, Some(self.opts))
    }
}
