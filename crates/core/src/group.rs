//! Thread groups: "a means of gaining control over a related collection of
//! threads".
//!
//! Every thread carries a group identifier; groups offer the ordinary
//! thread operations en masse (termination, suspension, resumption) plus
//! debugging/monitoring operations (listing members and subgroups, state
//! histograms, genealogy profiling).  A child thread inherits its parent's
//! group unless the [`ThreadBuilder`](crate::builder::ThreadBuilder) says
//! otherwise, so terminating the group of a computation's root thread kills
//! the whole process tree (the paper's `kill-group`).

use crate::error::CoreError;
use crate::state::{StateRequest, ThreadState};
use crate::thread::Thread;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;
use sting_value::Value;

static NEXT_GROUP_ID: AtomicU64 = AtomicU64::new(1);

/// A group of related threads.
pub struct ThreadGroup {
    id: u64,
    name: Option<String>,
    members: Mutex<Members>,
    parent: Weak<ThreadGroup>,
    subgroups: Mutex<Vec<Weak<ThreadGroup>>>,
}

/// Member list with amortized-O(1) pruning of dead weak references: we
/// sweep only when the list doubles past the last sweep's survivor count.
#[derive(Debug, Default)]
struct Members {
    list: Vec<Weak<Thread>>,
    prune_at: usize,
}

impl Members {
    fn push(&mut self, w: Weak<Thread>) {
        if self.list.len() >= self.prune_at.max(64) {
            self.list.retain(|w| w.strong_count() > 0);
            self.prune_at = self.list.len() * 2;
        }
        self.list.push(w);
    }
}

impl std::fmt::Debug for ThreadGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadGroup")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("live", &self.threads().len())
            .finish()
    }
}

impl ThreadGroup {
    /// Creates a root group (no parent).
    pub fn root(name: Option<String>) -> Arc<ThreadGroup> {
        Arc::new(ThreadGroup {
            id: NEXT_GROUP_ID.fetch_add(1, Ordering::Relaxed),
            name,
            members: Mutex::new(Members::default()),
            parent: Weak::new(),
            subgroups: Mutex::new(Vec::new()),
        })
    }

    /// Creates a subgroup of `self`.
    pub fn subgroup(self: &Arc<ThreadGroup>, name: Option<String>) -> Arc<ThreadGroup> {
        let g = Arc::new(ThreadGroup {
            id: NEXT_GROUP_ID.fetch_add(1, Ordering::Relaxed),
            name,
            members: Mutex::new(Members::default()),
            parent: Arc::downgrade(self),
            subgroups: Mutex::new(Vec::new()),
        });
        self.subgroups.lock().push(Arc::downgrade(&g));
        g
    }

    /// The group's unique identifier.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Optional debug name.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The enclosing group, if any.
    pub fn parent(&self) -> Option<Arc<ThreadGroup>> {
        self.parent.upgrade()
    }

    /// Live subgroups.
    pub fn subgroups(&self) -> Vec<Arc<ThreadGroup>> {
        let mut subs = self.subgroups.lock();
        subs.retain(|w| w.strong_count() > 0);
        subs.iter().filter_map(Weak::upgrade).collect()
    }

    pub(crate) fn add(&self, thread: &Arc<Thread>) {
        self.members.lock().push(Arc::downgrade(thread));
    }

    /// Live threads directly in this group (monitoring: "listing all
    /// threads in a given group").
    pub fn threads(&self) -> Vec<Arc<Thread>> {
        self.members
            .lock()
            .list
            .iter()
            .filter_map(Weak::upgrade)
            .collect()
    }

    /// Live threads in this group and all subgroups, transitively.
    pub fn threads_recursive(&self) -> Vec<Arc<Thread>> {
        let mut out = self.threads();
        for sub in self.subgroups() {
            out.extend(sub.threads_recursive());
        }
        out
    }

    /// Histogram of member states (monitoring aid).
    pub fn state_histogram(&self) -> HashMap<ThreadState, usize> {
        let mut h = HashMap::new();
        for t in self.threads_recursive() {
            *h.entry(t.state()).or_insert(0) += 1;
        }
        h
    }

    /// Requests termination of every live member (the paper's
    /// `kill-group`), with `value` as each member's result.  Already
    /// determined members are skipped; per-thread transition errors are
    /// ignored (the group sweep is best-effort by design).
    pub fn terminate_all(&self, value: Value) {
        for t in self.threads_recursive() {
            let _ = t.request(StateRequest::Terminate(value.clone()));
        }
    }

    /// Requests suspension of every live member.
    pub fn suspend_all(&self, quantum: Option<Duration>) {
        for t in self.threads_recursive() {
            let _ = t.request(StateRequest::Suspend(quantum));
        }
    }

    /// Resumes every blocked/suspended member.
    pub fn resume_all(&self) {
        for t in self.threads_recursive() {
            let _ = t.request(StateRequest::Resume);
        }
    }

    /// Renders the genealogy of `root`'s process tree, one thread per line
    /// (the paper's profiling of "the dynamic unfolding of a process
    /// tree").
    pub fn genealogy(root: &Arc<Thread>) -> String {
        fn walk(t: &Arc<Thread>, depth: usize, out: &mut String) {
            use std::fmt::Write;
            let _ = writeln!(
                out,
                "{:indent$}{} [{:?}] group={}",
                "",
                t.id(),
                t.state(),
                t.group().id(),
                indent = depth * 2
            );
            for c in t.children() {
                walk(&c, depth + 1, out);
            }
        }
        let mut s = String::new();
        walk(root, 0, &mut s);
        s
    }

    /// Number of live members (direct only).
    pub fn len(&self) -> usize {
        self.threads().len()
    }

    /// Whether the group has no live members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Convenience: `kill-group (thread.group T)`.
///
/// # Errors
///
/// Currently infallible; returns `Result` for future compatibility.
pub fn kill_group(thread: &Arc<Thread>, value: Value) -> Result<(), CoreError> {
    thread.group().terminate_all(value);
    Ok(())
}
