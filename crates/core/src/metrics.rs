//! Low-overhead latency metrics: per-VP log2-bucketed histograms.
//!
//! The paper's evaluation is a claim about *operation latencies* — how long
//! a thread waits between becoming ready and running, what a steal costs,
//! how quickly a wake-up turns back into execution.  Mean-only timings hide
//! exactly the tail behaviour a substrate must guarantee, so the substrate
//! records distributions, not averages:
//!
//! * **dispatch latency** — ready-enqueue → start of execution,
//! * **steal latency** — duration of a successful migration
//!   ([`crate::vp::Vp::try_offer_migration`]), recorded on the thief,
//! * **block→wake latency** — park commit → the wake-up that re-enqueues
//!   the parked TCB,
//! * **GC scavenge pauses** — forwarded from `sting_areas` heaps by the
//!   embedding (the areas crate stands below the substrate and keeps its
//!   own pause buckets; see `HeapStats`).
//!
//! ## Overhead discipline
//!
//! The fast path of the scheduler runs in hundreds of nanoseconds, so the
//! instrumentation must cost almost nothing when idle and very little when
//! active:
//!
//! * Each histogram bucket is a relaxed [`AtomicU64`]; recording is two
//!   relaxed RMWs plus min/max updates — no locks anywhere.
//! * Latency *stamping* is **sampled**: each VP keeps a racy tick counter
//!   (relaxed load + store — losing an increment under contention merely
//!   shifts the sampling phase) and only every `sample_period`-th event
//!   takes an [`Instant`] timestamp.  Unsampled events pay one relaxed
//!   load on the consume side.
//! * The whole layer sits behind an `enabled` flag
//!   ([`Metrics::set_enabled`]); disabled, every hook is a single relaxed
//!   load and a branch.
//!
//! Recorded values are therefore a *sample* of the underlying population
//! (1-in-`sample_period` events); counts are sampled counts, while the
//! distribution shape (min/mean/percentiles) is unbiased for latencies
//! uncorrelated with the sampling phase.

use crate::thread::Thread;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Number of log2 buckets per histogram.  Bucket `i` covers
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 covers `[0, 2)`), so 64 buckets
/// span every representable `u64` latency.
pub const BUCKETS: usize = 64;

/// Default sampling period: one in this many eligible scheduler events is
/// stamped.  Chosen so the instrumentation stays within a ~2% budget on
/// the dispatch fast path (hundreds of nanoseconds per decision): the
/// unsampled path is two relaxed loads and a store, and the two clock
/// reads a stamped event pays amortize to well under a nanosecond per
/// dispatch at this period.
pub const DEFAULT_SAMPLE_PERIOD: u64 = 64;

/// Returns the bucket index for a latency of `ns` nanoseconds.
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    if ns < 2 {
        0
    } else {
        63 - ns.leading_zeros() as usize
    }
}

/// Returns the `[low, high)` nanosecond bounds of bucket `i`
/// (`high` saturates at `u64::MAX` for the last bucket).
///
/// # Panics
///
/// Panics if `i >= BUCKETS`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket index out of range");
    let low = if i == 0 { 0 } else { 1u64 << i };
    let high = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
    (low, high)
}

/// A lock-free log2-bucketed latency histogram.
///
/// All fields are relaxed atomics: the histogram is statistics, not
/// synchronization.  A [`Histogram::snapshot`] taken while writers are
/// recording is internally consistent in one direction: `record` bumps the
/// bucket *before* the count, and `snapshot` reads the count *before* the
/// buckets, so a snapshot's bucket total is always `>=` its count.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one latency observation of `ns` nanoseconds.
    #[inline]
    pub fn record(&self, ns: u64) {
        // Bucket before count: see the snapshot-consistency note above.
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.min.fetch_min(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Copies the current values.  Safe (and racy, in the documented
    /// direction) while writers are active.
    pub fn snapshot(&self) -> HistogramSnapshot {
        // Count before buckets: see the snapshot-consistency note above.
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let buckets = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        HistogramSnapshot {
            buckets,
            count,
            sum,
            min: if count == 0 { 0 } else { min },
            max,
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; bucket `i` covers
    /// [`bucket_bounds`]`(i)` nanoseconds.
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed latencies, in nanoseconds.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Merges `other` into `self` (bucket-wise sum, min/max union).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.sum += other.sum;
        if other.count > 0 {
            self.min = if self.count == 0 {
                other.min
            } else {
                self.min.min(other.min)
            };
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
    }

    /// Returns the merge of an iterator of snapshots.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a HistogramSnapshot>) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for p in parts {
            out.merge(p);
        }
        out
    }

    /// Mean latency in nanoseconds (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) in nanoseconds from the
    /// bucket midpoints, clamped to the observed `[min, max]` (so a
    /// single-valued distribution reports that exact value).  Returns 0
    /// when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        // Nearest-rank on the bucketed CDF.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                let (low, high) = bucket_bounds(i);
                let mid = low + (high - low) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (p50) in nanoseconds.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 99th percentile in nanoseconds.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

/// Per-VP histograms plus the VP's private sampling tick counters.
#[derive(Debug, Default)]
struct VpMetrics {
    dispatch: Histogram,
    steal: Histogram,
    wake: Histogram,
    /// Racy sampling counters (relaxed load + store).  One per event kind
    /// so a burst of one kind does not starve sampling of another.
    dispatch_tick: AtomicU64,
    steal_tick: AtomicU64,
    wake_tick: AtomicU64,
}

/// Latency histograms for the three paper-level scheduler latencies plus
/// GC scavenge pauses.
///
/// One `Metrics` lives in each [`crate::Vm`]; reach it via
/// [`Vm::metrics`](crate::Vm::metrics).  See the [module docs](self) for
/// the sampling/overhead discipline.
#[derive(Debug)]
pub struct Metrics {
    enabled: AtomicBool,
    /// `sample_period - 1` for a power-of-two period; an event is stamped
    /// when `tick & sample_mask == 0`.
    sample_mask: u64,
    base: Instant,
    vps: Vec<VpMetrics>,
    gc_pause: Histogram,
}

impl Metrics {
    /// Creates metrics for `vp_count` VPs.  `sample_period` is rounded up
    /// to a power of two; `enabled` gates all stamping at runtime.
    pub(crate) fn new(vp_count: usize, enabled: bool, sample_period: u64) -> Metrics {
        Metrics {
            enabled: AtomicBool::new(enabled),
            sample_mask: sample_period.max(1).next_power_of_two() - 1,
            base: Instant::now(),
            vps: (0..vp_count).map(|_| VpMetrics::default()).collect(),
            gc_pause: Histogram::default(),
        }
    }

    /// Whether latency stamping is currently on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns latency stamping on or off at runtime.  Already-stamped
    /// events still record when consumed.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// The effective sampling period (power of two): one in this many
    /// eligible events is stamped.
    pub fn sample_period(&self) -> u64 {
        self.sample_mask + 1
    }

    /// Nanoseconds since this VM's metrics epoch (never 0: 0 is the
    /// "unstamped" sentinel in thread stamp slots).
    #[inline]
    pub(crate) fn now_ns(&self) -> u64 {
        (self.base.elapsed().as_nanos() as u64).max(1)
    }

    /// Advances a sampling tick; returns `true` when this event is chosen.
    #[inline]
    fn sample(&self, tick: &AtomicU64) -> bool {
        // Racy on purpose: a lost increment under contention only shifts
        // the sampling phase, and `fetch_add` on a shared line is exactly
        // the cost this layer must not impose.
        let t = tick.load(Ordering::Relaxed).wrapping_add(1);
        tick.store(t, Ordering::Relaxed);
        t & self.sample_mask == 0
    }

    /// Hook: `thread` was pushed onto `vp`'s ready queue.  Stamps the
    /// enqueue time on a sampled subset.
    #[inline]
    pub(crate) fn stamp_enqueue(&self, vp: usize, thread: &Thread) {
        if !self.is_enabled() {
            return;
        }
        if let Some(m) = self.vps.get(vp) {
            if self.sample(&m.dispatch_tick) {
                thread
                    .enqueued_at_ns
                    .store(self.now_ns(), Ordering::Relaxed);
            }
        }
    }

    /// Hook: `vp` is about to run `thread`.  Consumes a pending enqueue
    /// stamp and records the dispatch latency.
    #[inline]
    pub(crate) fn note_dispatch(&self, vp: usize, thread: &Thread) {
        if !self.is_enabled() {
            return;
        }
        let stamped = thread.enqueued_at_ns.load(Ordering::Relaxed);
        if stamped == 0 {
            return;
        }
        thread.enqueued_at_ns.store(0, Ordering::Relaxed);
        if let Some(m) = self.vps.get(vp) {
            m.dispatch.record(self.now_ns().saturating_sub(stamped));
        }
    }

    /// Hook: VP `thief` starts a migration attempt.  Returns a start stamp
    /// when this attempt is sampled.
    #[inline]
    pub(crate) fn steal_begin(&self, thief: usize) -> Option<u64> {
        if !self.is_enabled() {
            return None;
        }
        let m = self.vps.get(thief)?;
        self.sample(&m.steal_tick).then(|| self.now_ns())
    }

    /// Hook: the sampled migration attempt that began at `t0` succeeded.
    #[inline]
    pub(crate) fn note_steal(&self, thief: usize, t0: u64) {
        if let Some(m) = self.vps.get(thief) {
            m.steal.record(self.now_ns().saturating_sub(t0));
        }
    }

    /// Hook: `thread` committed a park on `vp`.  Stamps the block time on
    /// a sampled subset.
    #[inline]
    pub(crate) fn stamp_block(&self, vp: usize, thread: &Thread) {
        if !self.is_enabled() {
            return;
        }
        if let Some(m) = self.vps.get(vp) {
            if self.sample(&m.wake_tick) {
                thread.blocked_at_ns.store(self.now_ns(), Ordering::Relaxed);
            }
        }
    }

    /// Hook: `thread`'s parked TCB is being re-enqueued on `vp`.  Consumes
    /// a pending block stamp and records the block→wake latency.
    #[inline]
    pub(crate) fn note_wake(&self, vp: usize, thread: &Thread) {
        if !self.is_enabled() {
            return;
        }
        let stamped = thread.blocked_at_ns.load(Ordering::Relaxed);
        if stamped == 0 {
            return;
        }
        thread.blocked_at_ns.store(0, Ordering::Relaxed);
        if let Some(m) = self.vps.get(vp) {
            m.wake.record(self.now_ns().saturating_sub(stamped));
        }
    }

    /// Records one GC scavenge pause of `ns` nanoseconds.  Pauses are rare
    /// relative to scheduler events, so they are recorded unsampled.
    pub fn record_gc_pause(&self, ns: u64) {
        if self.is_enabled() {
            self.gc_pause.record(ns);
        }
    }

    /// Snapshots every histogram, merged across VPs (per-VP views
    /// included).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let per_vp: Vec<VpMetricsSnapshot> = self
            .vps
            .iter()
            .map(|m| VpMetricsSnapshot {
                dispatch: m.dispatch.snapshot(),
                steal: m.steal.snapshot(),
                wake: m.wake.snapshot(),
            })
            .collect();
        MetricsSnapshot {
            dispatch: HistogramSnapshot::merged(per_vp.iter().map(|v| &v.dispatch)),
            steal: HistogramSnapshot::merged(per_vp.iter().map(|v| &v.steal)),
            wake: HistogramSnapshot::merged(per_vp.iter().map(|v| &v.wake)),
            gc_pause: self.gc_pause.snapshot(),
            sample_period: self.sample_period(),
            per_vp,
        }
    }
}

/// One VP's slice of a [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, Default)]
pub struct VpMetricsSnapshot {
    /// Ready-enqueue → run latency.
    pub dispatch: HistogramSnapshot,
    /// Successful-migration duration (recorded on the thief).
    pub steal: HistogramSnapshot,
    /// Park commit → wake re-enqueue latency.
    pub wake: HistogramSnapshot,
}

/// A point-in-time copy of a VM's [`Metrics`], merged across VPs.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Ready-enqueue → run latency, all VPs.
    pub dispatch: HistogramSnapshot,
    /// Successful-migration duration, all thieves.
    pub steal: HistogramSnapshot,
    /// Park commit → wake re-enqueue latency, all VPs.
    pub wake: HistogramSnapshot,
    /// GC scavenge pauses forwarded by the embedding.
    pub gc_pause: HistogramSnapshot,
    /// Sampling period the latencies were collected under.
    pub sample_period: u64,
    /// Per-VP views of the three scheduler histograms.
    pub per_vp: Vec<VpMetricsSnapshot>,
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "latency (ns, 1-in-{} sampled):", self.sample_period)?;
        for (name, h) in [
            ("dispatch", &self.dispatch),
            ("steal", &self.steal),
            ("block-wake", &self.wake),
            ("gc-pause", &self.gc_pause),
        ] {
            writeln!(
                f,
                "  {name:<10} n={:<8} min={:<8} mean={:<10.0} p50={:<8} p99={:<8} max={}",
                h.count,
                h.min,
                h.mean(),
                h.p50(),
                h.p99(),
                h.max
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_bounds(0), (0, 2));
        assert_eq!(bucket_bounds(10), (1024, 2048));
        assert_eq!(bucket_bounds(63), (1u64 << 63, u64::MAX));
        // Every value maps into the bucket whose bounds contain it.
        for ns in [0u64, 1, 2, 7, 100, 4096, 1 << 40] {
            let (low, high) = bucket_bounds(bucket_index(ns));
            assert!(low <= ns && ns < high, "{ns} not in [{low}, {high})");
        }
    }

    #[test]
    fn record_and_stats() {
        let h = Histogram::default();
        for ns in [100u64, 100, 100, 100] {
            h.record(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 400);
        assert_eq!(s.min, 100);
        assert_eq!(s.max, 100);
        // Single-valued distribution: percentiles clamp to the exact value.
        assert_eq!(s.p50(), 100);
        assert_eq!(s.p99(), 100);
        assert!((s.mean() - 100.0).abs() < f64::EPSILON);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!((s.count, s.min, s.max, s.p50(), s.p99()), (0, 0, 0, 0, 0));
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn percentile_orders_buckets() {
        let h = Histogram::default();
        for _ in 0..98 {
            h.record(10);
        }
        h.record(1 << 20);
        h.record(1 << 20);
        let s = h.snapshot();
        assert!(s.p50() < 16, "p50 {} should sit in the low bucket", s.p50());
        assert!(
            s.p99() >= 1 << 20,
            "p99 {} should reach the outlier",
            s.p99()
        );
        assert_eq!(s.percentile(0.0), s.min);
        assert_eq!(s.percentile(1.0).max(s.max), s.max);
    }

    #[test]
    fn merge_combines() {
        let a = {
            let h = Histogram::default();
            h.record(8);
            h.record(16);
            h.snapshot()
        };
        let b = {
            let h = Histogram::default();
            h.record(1 << 30);
            h.snapshot()
        };
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 8 + 16 + (1 << 30));
        assert_eq!(m.min, 8);
        assert_eq!(m.max, 1 << 30);
        // Merging an empty snapshot is the identity.
        let mut id = m;
        id.merge(&HistogramSnapshot::default());
        assert_eq!(id, m);
        let mut id2 = HistogramSnapshot::default();
        id2.merge(&m);
        assert_eq!(id2, m);
    }

    #[test]
    fn snapshot_vs_concurrent_record() {
        let h = std::sync::Arc::new(Histogram::default());
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|i| {
                let h = h.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        h.record((i + 1) * 97 + (n % 1000));
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        for _ in 0..200 {
            let s = h.snapshot();
            let bucket_total: u64 = s.buckets.iter().sum();
            // record() bumps the bucket before the count and snapshot()
            // reads the count first, so this holds under concurrency.
            assert!(
                bucket_total >= s.count,
                "bucket total {bucket_total} < count {}",
                s.count
            );
            if s.count > 0 {
                assert!(s.min <= s.max);
            }
        }
        stop.store(true, Ordering::Relaxed);
        let written: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
        let final_snapshot = h.snapshot();
        assert_eq!(final_snapshot.count, written);
        assert_eq!(final_snapshot.buckets.iter().sum::<u64>(), written);
    }

    #[test]
    fn sampling_period_rounds_to_power_of_two() {
        let m = Metrics::new(1, true, 10);
        assert_eq!(m.sample_period(), 16);
        let m = Metrics::new(1, true, 1);
        assert_eq!(m.sample_period(), 1);
        let m = Metrics::new(1, true, 0);
        assert_eq!(m.sample_period(), 1);
    }
}
