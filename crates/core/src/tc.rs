//! The thread controller: synchronous state transitions on the current
//! thread.
//!
//! These are the paper's TC operations (Section 3.1):
//!
//! | paper                      | here                                    |
//! |----------------------------|-----------------------------------------|
//! | `(fork-thread expr vp)`    | [`Cx::fork_on`] / [`Vm::fork_on`]       |
//! | `(create-thread expr)`     | [`Cx::delayed`] / [`Vm::delayed`]       |
//! | `(thread-run thread vp)`   | [`thread_run`]                          |
//! | `(thread-wait thread)`     | [`wait`]                                |
//! | `(thread-value thread)`    | [`touch`] (with stealing) / [`wait`]    |
//! | `(thread-block thread)`    | [`thread_block`]                        |
//! | `(thread-suspend thread)`  | [`thread_suspend`]                      |
//! | `(thread-terminate t v)`   | [`thread_terminate`]                    |
//! | `(yield-processor)`        | [`yield_now`]                           |
//! | `(current-thread)`         | [`current_thread`]                      |
//! | `(current-vp)`             | [`current_vp`]                          |
//!
//! Operations on *other* threads only record requests (see
//! [`Thread::request`]); operations on the current thread take effect
//! immediately.  A thread also enters the controller on preemption — in
//! this implementation, whenever it calls [`checkpoint`], which the Scheme
//! virtual machine does automatically every few instructions.
//!
//! Scheduling is split in two: operations here ask the target VP's
//! [`PolicyManager`](crate::pm::PolicyManager) *where* work should go
//! ([`PolicyManager::choose_vp`](crate::pm::PolicyManager::choose_vp) on
//! fork), then hand the item to that VP's ready queue — the lock-free
//! [`deque`](crate::deque) tier for FIFO/LIFO policies, the locked policy
//! tier otherwise (see
//! [`PolicyManager::queue_kind`](crate::pm::PolicyManager::queue_kind) and
//! DESIGN.md, "Scheduler fast path").
//!
//! [`Vm::fork_on`]: crate::vm::Vm::fork_on
//! [`Vm::delayed`]: crate::vm::Vm::delayed

use crate::counters::Counters;
use crate::error::CoreError;
use crate::state::{StateRequest, ThreadState};
use crate::tcb::{Disposition, ThreadSuspender, Wakeup};
use crate::thread::{JoinNode, Thread, ThreadResult, Thunk, TryThunk};
use crate::tls;
use crate::vm::Vm;
use crate::vp::Vp;
use crate::wait::{Waiter, WakeReason};
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use sting_value::Value;

/// Panic payload carrying a `thread-terminate` request through the stack of
/// the terminating thread; converted to the thread's result at its entry
/// frame.
pub(crate) struct TerminatePayload(pub Value);

/// Panic payload for a raised (Scheme-level) exception; converted to an
/// `Err` result at the thread entry frame if no handler catches it.
pub(crate) struct ExceptionPayload(pub Value);

/// Capability token proving the caller is running on a STING thread.
///
/// Thunks receive `&Cx`; its methods are infallible versions of the free
/// functions in this module.  `Cx` is `!Send`, so it cannot leak to OS
/// threads that are not running a STING thread.
pub struct Cx {
    _not_send: PhantomData<*mut ()>,
}

impl std::fmt::Debug for Cx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Cx")
    }
}

impl Cx {
    pub(crate) fn new() -> Cx {
        Cx {
            _not_send: PhantomData,
        }
    }

    /// Obtains the capability token if the caller is running on a STING
    /// thread (language runtimes use this to reach the controller from
    /// primitive implementations).
    pub fn current() -> Option<Cx> {
        tls::on_thread().then(Cx::new)
    }

    /// The thread whose code is currently executing (the stolen thread
    /// during a steal).
    pub fn current_thread(&self) -> Arc<Thread> {
        current_thread().expect("Cx exists off-thread")
    }

    /// The virtual processor this thread is running on.
    pub fn current_vp(&self) -> Arc<Vp> {
        current_vp().expect("Cx exists off-thread")
    }

    /// The virtual machine.
    pub fn vm(&self) -> Arc<Vm> {
        self.current_vp().vm()
    }

    /// Relinquishes the VP; the thread goes back to its policy manager's
    /// ready queue (`yield-processor`).
    pub fn yield_now(&self) {
        yield_now().expect("Cx exists off-thread");
    }

    /// Polls for preemption and asynchronous state-change requests; called
    /// automatically by the Scheme VM, manually from long-running native
    /// code.
    pub fn checkpoint(&self) {
        checkpoint();
    }

    /// Forks `f` as a new thread scheduled on the VP chosen by the current
    /// VP's policy manager (`pm-allocate-vp`).
    pub fn fork<F, V>(&self, f: F) -> Arc<Thread>
    where
        F: FnOnce(&Cx) -> V + Send + 'static,
        V: Into<Value>,
    {
        let vm = self.vm();
        let vp = {
            let cur = self.current_vp();
            let choice = cur.pm.lock().choose_vp(&cur);
            choice % vm.vp_count()
        };
        vm.spawn_with(erase(f), ThreadState::Scheduled, Some(vp), None)
    }

    /// Like [`Cx::fork`] for bodies that produce a `Result`: an `Err`
    /// becomes the thread's exception outcome without unwinding.
    pub fn fork_try<F, V>(&self, f: F) -> Arc<Thread>
    where
        F: FnOnce(&Cx) -> Result<V, Value> + Send + 'static,
        V: Into<Value>,
    {
        let vm = self.vm();
        let vp = {
            let cur = self.current_vp();
            let choice = cur.pm.lock().choose_vp(&cur);
            choice % vm.vp_count()
        };
        vm.spawn_with(erase_try(f), ThreadState::Scheduled, Some(vp), None)
    }

    /// Like [`Cx::fork_on`] for `Result`-producing bodies.
    ///
    /// # Errors
    ///
    /// [`CoreError::VpOutOfRange`] if `vp` is not a valid index.
    pub fn fork_on_try<F, V>(&self, vp: usize, f: F) -> Result<Arc<Thread>, CoreError>
    where
        F: FnOnce(&Cx) -> Result<V, Value> + Send + 'static,
        V: Into<Value>,
    {
        let vm = self.vm();
        if vp >= vm.vp_count() {
            return Err(CoreError::VpOutOfRange {
                index: vp,
                len: vm.vp_count(),
            });
        }
        Ok(vm.spawn_with(erase_try(f), ThreadState::Scheduled, Some(vp), None))
    }

    /// Like [`Cx::delayed`] for `Result`-producing bodies.
    pub fn delayed_try<F, V>(&self, f: F) -> Arc<Thread>
    where
        F: FnOnce(&Cx) -> Result<V, Value> + Send + 'static,
        V: Into<Value>,
    {
        self.vm()
            .spawn_with(erase_try(f), ThreadState::Delayed, None, None)
    }

    /// Forks `f` on virtual processor `vp` (`fork-thread expr vp`).
    ///
    /// # Errors
    ///
    /// [`CoreError::VpOutOfRange`] if `vp` is not a valid index.
    pub fn fork_on<F, V>(&self, vp: usize, f: F) -> Result<Arc<Thread>, CoreError>
    where
        F: FnOnce(&Cx) -> V + Send + 'static,
        V: Into<Value>,
    {
        let vm = self.vm();
        vm.fork_on(vp, f)
    }

    /// Creates a delayed thread: it runs only if demanded with [`touch`] /
    /// [`thread_run`] (`create-thread`).
    pub fn delayed<F, V>(&self, f: F) -> Arc<Thread>
    where
        F: FnOnce(&Cx) -> V + Send + 'static,
        V: Into<Value>,
    {
        self.vm().delayed(f)
    }

    /// Blocks until `thread` determines and returns its result
    /// (`thread-wait` + `thread-value`, without stealing).
    pub fn wait(&self, thread: &Arc<Thread>) -> ThreadResult {
        wait(thread)
    }

    /// Like [`Cx::wait`] with a timeout; `None` if `thread` has not
    /// determined within `timeout`.
    pub fn wait_timeout(&self, thread: &Arc<Thread>, timeout: Duration) -> Option<ThreadResult> {
        wait_timeout(thread, timeout)
    }

    /// Demands `thread`'s value, absorbing its thunk into this thread's TCB
    /// when legal (`touch` with the stealing optimization of §4.1.1).
    pub fn touch(&self, thread: &Arc<Thread>) -> ThreadResult {
        touch(thread)
    }

    /// Blocks the current thread; some other thread must hold an
    /// `Arc<Thread>` to it and resume it later.  `blocker` describes what
    /// we are blocked on (visible via [`Thread::blocker`]).
    ///
    /// Wake-ups can be spurious: callers must re-check their condition.
    /// The returned [`WakeReason`] reports why the thread resumed (a
    /// timed park's deadline, a cancellation that did not unwind, or a
    /// plain wake-up).
    pub fn block(&self, blocker: Option<Value>) -> WakeReason {
        block_current(blocker).expect("Cx exists off-thread")
    }

    /// Suspends the current thread; with `Some(d)` it resumes automatically
    /// after roughly `d` (`thread-suspend`).
    pub fn suspend(&self, duration: Option<Duration>) {
        suspend_current(duration).expect("Cx exists off-thread");
    }

    /// Sleeps for roughly `d` without occupying the VP.
    pub fn sleep(&self, d: Duration) {
        self.suspend(Some(d));
    }

    /// Raises an exception on the current thread.  If nothing catches it,
    /// the thread determines with `Err(value)` and waiters observe the
    /// exception (exception handling crosses thread boundaries).
    pub fn raise(&self, value: Value) -> ! {
        panic::panic_any(ExceptionPayload(value))
    }

    /// Terminates the current thread with `value` as its result.
    pub fn terminate(&self, value: Value) -> ! {
        panic::panic_any(TerminatePayload(value))
    }

    /// Runs `f` with preemption disabled (`without-preemption`); nests.
    /// A preemption arriving meanwhile is honoured right after `f`.
    pub fn without_preemption<R>(&self, f: impl FnOnce() -> R) -> R {
        let cur = tls::current().expect("Cx exists off-thread");
        cur.shared.preempt_disabled.fetch_add(1, Ordering::Relaxed);
        let r = f();
        cur.shared.preempt_disabled.fetch_sub(1, Ordering::Relaxed);
        checkpoint();
        r
    }

    /// Sets the current thread's priority and informs the policy manager
    /// (`pm-priority`).
    pub fn set_priority(&self, priority: i32) {
        let cur = tls::current().expect("Cx exists off-thread");
        cur.shared.thread.set_priority(priority);
        cur.vp.pm.lock().set_priority(&cur.vp, priority);
    }

    /// Sets the current thread's quantum in ticks and informs the policy
    /// manager (`pm-quantum`).
    pub fn set_quantum(&self, ticks: u32) {
        let cur = tls::current().expect("Cx exists off-thread");
        cur.shared.thread.set_quantum(ticks);
        cur.vp.pm.lock().set_quantum(&cur.vp, ticks);
    }
}

pub(crate) fn erase<F, V>(f: F) -> TryThunk
where
    F: FnOnce(&Cx) -> V + Send + 'static,
    V: Into<Value>,
{
    Box::new(move |cx| Ok(f(cx).into()))
}

pub(crate) fn erase_try<F, V>(f: F) -> TryThunk
where
    F: FnOnce(&Cx) -> Result<V, Value> + Send + 'static,
    V: Into<Value>,
{
    Box::new(move |cx| f(cx).map(Into::into))
}

/// Boxes a plain [`Thunk`] as a [`TryThunk`].
pub(crate) fn lift(thunk: Thunk) -> TryThunk {
    Box::new(move |cx| Ok(thunk(cx)))
}

/// The body run by every thread fiber: applies early requests, runs the
/// thunk, and maps unwinds to results.
pub(crate) fn thread_main(thunk: TryThunk) -> ThreadResult {
    let cx = Cx::new();
    apply_requests();
    map_unwind(panic::catch_unwind(AssertUnwindSafe(move || thunk(&cx))))
}

/// Converts a caught unwind into a thread result, re-raising forced
/// unwinds (fiber cancellation) which must propagate.
pub(crate) fn map_unwind(r: Result<ThreadResult, Box<dyn std::any::Any + Send>>) -> ThreadResult {
    match r {
        Ok(v) => v,
        Err(p) => {
            if p.is::<sting_context::ForcedUnwind>() {
                panic::resume_unwind(p);
            } else if let Some(t) = p.downcast_ref::<TerminatePayload>() {
                Ok(t.0.clone())
            } else if let Some(e) = p.downcast_ref::<ExceptionPayload>() {
                Err(e.0.clone())
            } else if let Some(s) = p.downcast_ref::<&str>() {
                Err(Value::from(format!("panic: {s}")))
            } else if let Some(s) = p.downcast_ref::<String>() {
                Err(Value::from(format!("panic: {s}")))
            } else {
                Err(Value::from("panic: (opaque payload)"))
            }
        }
    }
}

/// Whether the calling OS thread is currently executing a STING thread.
pub fn on_thread() -> bool {
    tls::on_thread()
}

/// Installs (once per process) a panic hook that stays silent for the
/// substrate's internal control-flow payloads — thread termination,
/// raised Scheme exceptions, fiber cancellation — which are panics only as
/// an unwinding mechanism, never bugs.  Real panics still print.
pub(crate) fn install_quiet_panic_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            if p.is::<TerminatePayload>()
                || p.is::<ExceptionPayload>()
                || p.is::<sting_context::ForcedUnwind>()
            {
                return;
            }
            prev(info);
        }));
    });
}

/// The currently executing thread (`current-thread`), if on one.
pub fn current_thread() -> Option<Arc<Thread>> {
    tls::current().map(|c| c.shared.current_identity())
}

/// The thread owning the current TCB.  During a steal this is the
/// *stealer*, not the stolen thread ([`current_thread`]) — blocking parks
/// the TCB owner, so synchronization structures must register **this**
/// thread as their waiter and later [`unblock`] it.
pub fn current_owner() -> Option<Arc<Thread>> {
    tls::current().map(|c| c.shared.thread.clone())
}

/// The current virtual processor (`current-vp`), if on a thread.
pub fn current_vp() -> Option<Arc<Vp>> {
    tls::current().map(|c| c.vp)
}

/// The VM (shard) driving the calling thread, if on one.
pub fn current_vm() -> Option<Arc<crate::vm::Vm>> {
    current_vp().map(|vp| vp.vm())
}

/// The shard index of the VM driving the calling thread (`0` on a
/// standalone VM), if on a thread.  See [`crate::fleet`].
pub fn current_shard() -> Option<usize> {
    current_vm().map(|vm| vm.shard_id())
}

/// Switches back to the scheduler with `disposition`; returns on resume.
pub(crate) fn switch_out(disposition: Disposition) -> Wakeup {
    let cur = tls::current().expect("switch_out called off-thread");
    let sus = cur.shared.suspender.load(Ordering::Acquire) as *mut ThreadSuspender;
    debug_assert!(!sus.is_null(), "suspender not registered");
    drop(cur);
    // SAFETY: the suspender lives on this fiber's stack for the fiber's
    // whole lifetime, and only the fiber's own code (us) dereferences it.
    let wake = unsafe { (*sus).suspend(disposition) };
    apply_requests();
    wake
}

/// Applies asynchronous state-change requests queued against the TCB's
/// owning thread (the paper's "requested state transitions ... take place
/// only when the target thread next makes a TC call").
pub(crate) fn apply_requests() {
    let Some(cur) = tls::current() else { return };
    let thread = cur.shared.thread.clone();
    drop(cur);
    for req in thread.take_requests() {
        if let Some(vm) = thread.vm() {
            let code = match &req {
                StateRequest::Terminate(_) => 0,
                StateRequest::Raise(_) => 1,
                StateRequest::Block => 2,
                StateRequest::Suspend(_) => 3,
                StateRequest::Resume => 4,
            };
            crate::trace_event!(
                vm.tracer(),
                current_vp().map(|v| v.index()),
                crate::trace::EventKind::StateRequest,
                thread.id().0,
                code
            );
        }
        match req {
            StateRequest::Terminate(v) => panic::panic_any(TerminatePayload(v)),
            StateRequest::Raise(v) => panic::panic_any(ExceptionPayload(v)),
            StateRequest::Block => {
                switch_out(Disposition::Blocked);
            }
            StateRequest::Suspend(d) => {
                let _timer = resume_timer(d, &thread);
                switch_out(Disposition::Suspended);
            }
            StateRequest::Resume => {}
        }
    }
}

/// Preemption/request poll point.  No-op off-thread.  Long-running native
/// code should call this periodically; the Scheme VM does it per bytecode
/// window.
pub fn checkpoint() {
    let Some(cur) = tls::current() else { return };
    if let Some(vm) = cur.vp.vm_weak().upgrade() {
        if vm.is_stopped() {
            panic::panic_any(ExceptionPayload(Value::sym("vm-shutdown")));
        }
    }
    apply_requests();
    let disabled = cur.shared.preempt_disabled.load(Ordering::Relaxed) > 0;
    if cur.vp.preempt_flag.load(Ordering::Relaxed) {
        if disabled {
            // Remember it; honoured when preemption is re-enabled.
            cur.shared.deferred_preempt.store(true, Ordering::Relaxed);
            return;
        }
        cur.vp.preempt_flag.store(false, Ordering::Relaxed);
        let ticks = cur.shared.ticks_left.load(Ordering::Relaxed);
        if ticks <= 1 {
            drop(cur);
            switch_out(Disposition::Yielded { preempted: true });
        } else {
            cur.shared.ticks_left.store(ticks - 1, Ordering::Relaxed);
        }
    } else if !disabled && cur.shared.deferred_preempt.swap(false, Ordering::Relaxed) {
        drop(cur);
        switch_out(Disposition::Yielded { preempted: true });
    }
}

/// Yields the VP to the next ready thread (`yield-processor`).
///
/// # Errors
///
/// [`CoreError::NotOnThread`] when called from a non-STING OS thread.
pub fn yield_now() -> Result<(), CoreError> {
    if !tls::on_thread() {
        return Err(CoreError::NotOnThread);
    }
    switch_out(Disposition::Yielded { preempted: false });
    Ok(())
}

/// Blocks the current thread until something unblocks it; see
/// [`Cx::block`].
///
/// The returned [`WakeReason`] is a non-consuming snapshot of the
/// thread's current wait episode (if any); timed parks
/// ([`Waiter::park_until`]) consume the episode themselves and remain the
/// authoritative source.  Plain wake-ups report `Woken` and may be
/// spurious: callers must re-check their condition.
///
/// # Errors
///
/// [`CoreError::NotOnThread`] when called from a non-STING OS thread.
pub fn block_current(blocker: Option<Value>) -> Result<WakeReason, CoreError> {
    let cur = tls::current().ok_or(CoreError::NotOnThread)?;
    let thread = cur.shared.thread.clone();
    drop(cur);
    thread.core.lock().blocker = blocker;
    switch_out(Disposition::Blocked);
    Ok(thread.wait_node().state().snapshot_reason())
}

/// Arms the wheel to resume the current thread after `duration`, returning
/// a guard that cancels the entry when the sleep ends — normally *or* by
/// unwinding — so a thread woken early leaves no tombstone to fire a
/// spurious wake-up later.
fn resume_timer(duration: Option<Duration>, thread: &Arc<Thread>) -> Option<ResumeTimerGuard> {
    let (d, vm) = (duration?, thread.vm()?);
    let id = vm.timers().add(Instant::now() + d, thread.clone());
    Some(ResumeTimerGuard { vm, id })
}

struct ResumeTimerGuard {
    vm: Arc<Vm>,
    id: crate::timers::TimerId,
}

impl Drop for ResumeTimerGuard {
    fn drop(&mut self) {
        self.vm.timers().cancel(self.id);
    }
}

/// Suspends the current thread, optionally auto-resuming after `duration`;
/// see [`Cx::suspend`].
///
/// # Errors
///
/// [`CoreError::NotOnThread`] when called from a non-STING OS thread.
pub fn suspend_current(duration: Option<Duration>) -> Result<(), CoreError> {
    let cur = tls::current().ok_or(CoreError::NotOnThread)?;
    let thread = cur.shared.thread.clone();
    drop(cur);
    let _timer = resume_timer(duration, &thread);
    switch_out(Disposition::Suspended);
    Ok(())
}

/// Blocks until `thread` determines, returning its result.  On a STING
/// thread this parks only the green thread; on a plain OS thread it falls
/// back to [`Thread::join_blocking`].
pub fn wait(thread: &Arc<Thread>) -> ThreadResult {
    loop {
        // `None` without a deadline is unreachable in practice (a
        // cancellation unwinds instead); re-enter if it ever happens.
        if let Some(r) = wait_deadline(thread, None) {
            return r;
        }
    }
}

/// [`wait`] with a timeout: `None` if `thread` has not determined within
/// `timeout`.  The watched thread never counts the abandoned waiter — the
/// join node is deactivated on every exit path.
pub fn wait_timeout(thread: &Arc<Thread>, timeout: Duration) -> Option<ThreadResult> {
    wait_deadline(thread, Some(Instant::now() + timeout))
}

/// [`wait`] with an optional absolute deadline; `None` on timeout.
pub fn wait_deadline(thread: &Arc<Thread>, deadline: Option<Instant>) -> Option<ThreadResult> {
    if !tls::on_thread() {
        return match deadline {
            None => Some(thread.join_blocking()),
            Some(d) => thread.join_blocking_timeout(d.saturating_duration_since(Instant::now())),
        };
    }
    let waiter = tls::current().expect("on thread").shared.thread.clone();
    // One join node for the whole wait, registered at most once: a spurious
    // wake-up must re-block on the *same* registration, not append a fresh
    // node to the target's waiter list each time around the loop (that
    // leaked nodes — and duplicate wake-ups — for as long as the wait
    // lasted).  The guard deactivates it on *every* exit (timeout,
    // cancellation, unwind), so the target never wakes a dead waiter.
    let node = JoinNode::new(waiter, 1);
    let guard = JoinGuard { node: &node };
    let mut registered = false;
    loop {
        if let Some(r) = thread.result() {
            std::mem::forget(guard);
            // Keep counting completions toward the (satisfied) node is
            // pointless: deactivate so the target's amortized sweep can
            // drop it early.
            node.cancel();
            return Some(r);
        }
        if !registered {
            registered = thread.add_wait_node(&node);
            if !registered {
                // The target determined between the result check and the
                // registration; the next iteration returns its result.
                continue;
            }
        }
        // Park one wait episode.  Determination wakes us through the join
        // node (a plain unblock — spurious from the episode's view), the
        // deadline through the timer wheel.
        let w = Waiter::current();
        if thread.is_determined() {
            // Determined between the check above and arming: the unblock
            // may already have been spent before we parked.
            let _ = w.retire();
            continue;
        }
        match w.park_until(&thread.to_value(), deadline) {
            WakeReason::Woken => continue,
            WakeReason::TimedOut | WakeReason::Cancelled => {
                std::mem::forget(guard);
                node.cancel();
                return None;
            }
        }
    }
}

/// Deactivates a join node if the wait unwinds (thread termination).
struct JoinGuard<'a> {
    node: &'a Arc<JoinNode>,
}

impl Drop for JoinGuard<'_> {
    fn drop(&mut self) {
        self.node.cancel();
    }
}

/// How deep steals may nest on one TCB before `touch` falls back to
/// scheduling + blocking.  Each nested steal consumes machine stack on the
/// stealer's TCB; unbounded chains (e.g. a long dependency chain of
/// delayed futures) would overflow it.
pub const MAX_STEAL_DEPTH: u32 = 32;

/// Demands `thread`'s value with the stealing optimization: a delayed or
/// scheduled stealable thread is run directly on the caller's TCB as a
/// procedure call, avoiding a context switch and a TCB allocation
/// (§4.1.1).  Otherwise equivalent to [`wait`].  Steals nest at most
/// [`MAX_STEAL_DEPTH`] deep; beyond that the target is scheduled and
/// waited on instead (semantically equivalent, bounded stack).
pub fn touch(thread: &Arc<Thread>) -> ThreadResult {
    loop {
        match thread.state() {
            ThreadState::Determined => {
                return thread.result().expect("determined");
            }
            s if s.is_claimable() && thread.is_stealable() && tls::on_thread() => {
                let cur = tls::current().expect("on thread");
                if cur.shared.steal_depth.load(Ordering::Relaxed) >= MAX_STEAL_DEPTH {
                    drop(cur);
                    // Too deep: hand the thread to the scheduler and park.
                    if s == ThreadState::Delayed && !demand_via_scheduler(thread) {
                        continue;
                    }
                    return wait(thread);
                }
                drop(cur);
                if let Some(thunk) = thread.claim(ThreadState::Stolen) {
                    return run_stolen(thread, thunk);
                }
                // Lost the race; re-inspect the new state.
            }
            s => {
                // Touch *is* the demand: a delayed thread that cannot be
                // stolen must still be scheduled, or the wait would never
                // end ("a delayed thread will never be run unless the value
                // of the thread is explicitly demanded").
                if s == ThreadState::Delayed && !demand_via_scheduler(thread) {
                    continue;
                }
                return wait(thread);
            }
        }
    }
}

/// Hands a delayed thread to the scheduler on the toucher's VP so a
/// subsequent [`wait`] terminates.  Returns `true` when it is safe to wait:
/// either the schedule succeeded or nothing ever will run the thread (VM
/// shutdown), in which case the thread is determined here so the waiter
/// observes termination.  Returns `false` when the thread changed state
/// under us (someone else ran, stole or terminated it) — the touch loop
/// must re-inspect rather than park on a discarded demand, which could
/// otherwise leave the toucher blocked forever.
fn demand_via_scheduler(thread: &Arc<Thread>) -> bool {
    let vp = current_vp().map(|v| v.index()).unwrap_or(0);
    match thread_run(thread, vp) {
        Ok(()) => true,
        Err(CoreError::Shutdown) => {
            thread.complete(Err(Value::sym("vm-shutdown")));
            true
        }
        Err(_) => false,
    }
}

/// Runs a stolen thunk on the current TCB under the stolen thread's
/// identity, determining the stolen thread with the outcome.
fn run_stolen(thread: &Arc<Thread>, thunk: TryThunk) -> ThreadResult {
    let cur = tls::current().expect("stealing requires a thread");
    if let Some(vm) = thread.vm() {
        Counters::bump(&vm.counters().steals);
        crate::trace_event!(
            vm.tracer(),
            Some(cur.vp.index()),
            crate::trace::EventKind::Steal,
            thread.id().0,
            cur.shared.steal_depth.load(Ordering::Relaxed)
        );
    }
    cur.shared.steal_depth.fetch_add(1, Ordering::Relaxed);
    cur.shared.identity.lock().push(thread.clone());
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        let cx = Cx::new();
        thunk(&cx)
    }));
    cur.shared.identity.lock().pop();
    cur.shared.steal_depth.fetch_sub(1, Ordering::Relaxed);
    match outcome {
        Ok(r) => {
            thread.complete(r.clone());
            r
        }
        Err(p) => {
            if let Some(e) = p.downcast_ref::<ExceptionPayload>() {
                // The stolen computation raised: the stolen thread sees the
                // exception, and it propagates into the toucher as a result.
                thread.complete(Err(e.0.clone()));
                Err(e.0.clone())
            } else {
                // Termination/cancellation of the *stealer* sweeps away the
                // stolen thread too (it runs on the stealer's TCB).
                thread.complete(Err(Value::sym("stealer-unwound")));
                panic::resume_unwind(p);
            }
        }
    }
}

/// Wakes `thread` if it is blocked or suspended; otherwise records a
/// pending wake-up so a park that is racing with this call is skipped.
/// Idempotent; the woken thread must re-check its condition (wake-ups can
/// be spurious).  This is the hook synchronization structures use to build
/// their own blocking protocols ("the application completely controls the
/// condition under which blocked threads may be resumed").
pub fn unblock(thread: &Arc<Thread>) {
    thread.unblock();
}

/// Inserts a delayed thread into `vp`'s ready queue, or resumes a blocked
/// or suspended one (`thread-run thread vp`).
///
/// # Errors
///
/// [`CoreError::InvalidTransition`] if `thread` is scheduled, evaluating or
/// determined; [`CoreError::VpOutOfRange`] for a bad VP index.
pub fn thread_run(thread: &Arc<Thread>, vp: usize) -> Result<(), CoreError> {
    let vm = thread.vm().ok_or(CoreError::Shutdown)?;
    if vp >= vm.vp_count() {
        return Err(CoreError::VpOutOfRange {
            index: vp,
            len: vm.vp_count(),
        });
    }
    match thread.state() {
        ThreadState::Delayed => vm.schedule_fresh(thread, vp),
        ThreadState::Blocked | ThreadState::Suspended => {
            thread.home_vp.store(vp, Ordering::Relaxed);
            thread.unblock();
            Ok(())
        }
        _ => Err(CoreError::InvalidTransition {
            detail: "thread-run requires a delayed, blocked or suspended thread",
        }),
    }
}

/// Requests `thread` to block (`thread-block`).  Evaluating targets honour
/// it at their next controller entry.
///
/// # Errors
///
/// [`CoreError::InvalidTransition`] if the target state forbids blocking.
pub fn thread_block(thread: &Arc<Thread>) -> Result<(), CoreError> {
    if let Some(cur) = tls::current() {
        if Arc::ptr_eq(&cur.shared.thread, thread) {
            drop(cur);
            return block_current(None).map(|_| ());
        }
    }
    thread.request(StateRequest::Block)
}

/// Requests `thread` to suspend, optionally auto-resuming after `quantum`
/// (`thread-suspend`).
///
/// # Errors
///
/// [`CoreError::InvalidTransition`] if the target state forbids suspension.
pub fn thread_suspend(thread: &Arc<Thread>, quantum: Option<Duration>) -> Result<(), CoreError> {
    if let Some(cur) = tls::current() {
        if Arc::ptr_eq(&cur.shared.thread, thread) {
            drop(cur);
            return suspend_current(quantum);
        }
    }
    thread.request(StateRequest::Suspend(quantum))
}

/// Raises an exception in `thread` (`thread-raise!`): the target unwinds
/// at its next controller entry and determines with `Err(value)` —
/// exception handling across thread boundaries (§2, program model).
///
/// # Errors
///
/// [`CoreError::InvalidTransition`] if the target has already determined
/// or was stolen.
pub fn thread_raise(thread: &Arc<Thread>, value: Value) -> Result<(), CoreError> {
    if let Some(cur) = tls::current() {
        if Arc::ptr_eq(&cur.shared.thread, thread) {
            panic::panic_any(ExceptionPayload(value));
        }
    }
    thread.request(StateRequest::Raise(value))
}

/// Requests `thread` to terminate with `value` as its result
/// (`thread-terminate`).  Passive targets determine immediately; evaluating
/// targets unwind (running destructors) at their next controller entry.
///
/// # Errors
///
/// [`CoreError::InvalidTransition`] if the target has already determined or
/// was stolen.
pub fn thread_terminate(thread: &Arc<Thread>, value: Value) -> Result<(), CoreError> {
    if let Some(cur) = tls::current() {
        if Arc::ptr_eq(&cur.shared.thread, thread) {
            panic::panic_any(TerminatePayload(value));
        }
    }
    thread.request(StateRequest::Terminate(value))
}
