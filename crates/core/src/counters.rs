//! Substrate event counters.
//!
//! The shape experiments in the evaluation (stealing vs. context switching,
//! policy comparisons, preemption effects) are driven by these counters, so
//! they are first-class rather than a debug afterthought.  All counters are
//! relaxed atomics: they are statistics, not synchronization.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    ($(#[$doc:meta] $name:ident),+ $(,)?) => {
        /// Monotonic event counters for one virtual machine.
        #[derive(Debug, Default)]
        pub struct Counters {
            $(#[$doc] pub $name: AtomicU64,)+
        }

        /// A point-in-time copy of [`Counters`].
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
        pub struct CounterSnapshot {
            $(#[$doc] pub $name: u64,)+
        }

        impl Counters {
            /// Copies the current values.
            pub fn snapshot(&self) -> CounterSnapshot {
                CounterSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)+
                }
            }
        }

        impl CounterSnapshot {
            /// Per-field difference `self - earlier` (saturating).
            ///
            /// Counters are monotonic, so a field that went backwards means
            /// an attribution bug (an event counted on the wrong side of a
            /// snapshot, or a miscounted source); debug builds assert on it
            /// so the shutdown audit catches it, while release builds keep
            /// the forgiving saturating behaviour (delta 0).
            pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
                $(debug_assert!(
                    self.$name >= earlier.$name,
                    concat!("counter `", stringify!($name), "` went backwards: {} -> {}"),
                    earlier.$name,
                    self.$name,
                );)+
                CounterSnapshot {
                    $($name: self.$name.saturating_sub(earlier.$name),)+
                }
            }
        }
    };
}

counters! {
    /// Thread objects created (fork-thread + create-thread).
    threads_created,
    /// Thread control blocks allocated (a TCB means a stack + fiber).
    tcbs_allocated,
    /// TCB stacks satisfied from a VP's recycling pool.
    stacks_recycled,
    /// Delayed/scheduled thunks absorbed by a toucher (thread stealing).
    steals,
    /// Context switches into a thread (fiber resumes).
    context_switches,
    /// Voluntary yields (yield-processor).
    yields,
    /// Preemption-induced yields.
    preemptions,
    /// Threads that parked blocked.
    blocks,
    /// Blocked/suspended threads made runnable again.
    wakeups,
    /// Threads that parked suspended.
    suspends,
    /// Threads migrated between virtual processors.
    migrations,
    /// Threads handed off to another VM shard over the fleet fabric.
    handoffs,
    /// Tuple-space operations routed to a remote shard partition.
    routed_ops,
    /// Threads that reached the determined state.
    determinations,
    /// Threads determined by an uncaught exception.
    exceptions,
}

impl Counters {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_since() {
        let c = Counters::default();
        c.steals.fetch_add(3, Ordering::Relaxed);
        c.blocks.fetch_add(1, Ordering::Relaxed);
        let a = c.snapshot();
        c.steals.fetch_add(2, Ordering::Relaxed);
        let b = c.snapshot();
        let d = b.since(&a);
        assert_eq!(d.steals, 2);
        assert_eq!(d.blocks, 0);
        assert_eq!(b.steals, 5);
    }

    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "debug_assert only fires in debug builds"
    )]
    #[should_panic(expected = "went backwards")]
    fn since_asserts_monotonicity_in_debug() {
        let c = Counters::default();
        c.wakeups.fetch_add(4, Ordering::Relaxed);
        let later = c.snapshot();
        c.wakeups.fetch_sub(1, Ordering::Relaxed);
        let earlier_but_higher = later;
        let _ = c.snapshot().since(&earlier_but_higher);
    }
}
