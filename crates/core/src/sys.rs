//! Raw Linux system calls for the I/O substrate — no `libc`.
//!
//! The build is offline and dependency-free, so the reactor
//! ([`crate::reactor`]) and socket wrappers ([`crate::net`]) sit on this
//! small module instead of a C library: each call is the bare x86-64
//! `syscall` instruction behind a typed Rust signature, in the same spirit
//! as the raw context switch in `sting-context` (`crates/context/src/raw.rs`).
//!
//! Only what the substrate needs is bound: TCP sockets (`socket`/`bind`/
//! `listen`/`accept4`/`connect`), byte transfer (`read`/`write`), the epoll
//! readiness family (`epoll_create1`/`epoll_ctl`/`epoll_wait`), the
//! io_uring family (`io_uring_setup`/`io_uring_enter` plus the `mmap`/
//! `munmap` the shared SQ/CQ rings need) for the second reactor backend,
//! an `eventfd` for waking the reactor, `ppoll` as the degraded path for
//! plain OS threads, and `socketpair` for deterministic unit tests.
//!
//! Errors are the kernel's `-errno` convention surfaced as [`Errno`];
//! nothing in here retries or blocks on behalf of the caller — policy
//! (EINTR loops, EAGAIN parking) lives a layer up.

use core::arch::asm;

/// A raw file descriptor.  Ownership/close discipline lives in
/// [`crate::net`]; this layer just moves integers.
pub type RawFd = i32;

/// A kernel error number (positive, e.g. `Errno(11)` for `EAGAIN`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Errno(pub i32);

impl Errno {
    /// Symbolic name for the errnos the substrate actually branches on.
    pub fn name(self) -> &'static str {
        match self.0 {
            2 => "ENOENT",
            4 => "EINTR",
            9 => "EBADF",
            11 => "EAGAIN",
            13 => "EACCES",
            17 => "EEXIST",
            22 => "EINVAL",
            24 => "EMFILE",
            32 => "EPIPE",
            98 => "EADDRINUSE",
            104 => "ECONNRESET",
            107 => "ENOTCONN",
            110 => "ETIMEDOUT",
            111 => "ECONNREFUSED",
            115 => "EINPROGRESS",
            _ => "E?",
        }
    }
}

impl core::fmt::Display for Errno {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} (errno {})", self.name(), self.0)
    }
}

impl std::error::Error for Errno {}

/// Result alias for raw calls.
pub type Result<T> = core::result::Result<T, Errno>;

/// The signal was delivered mid-call; callers that can, retry.
pub const EINTR: i32 = 4;
/// Operation would block on a non-blocking fd — park on readiness instead.
pub const EAGAIN: i32 = 11;
/// `epoll_ctl(ADD)` on an fd already in the set — retry as `MOD`.
pub const EEXIST: i32 = 17;
/// `epoll_ctl(MOD)` on an fd not in the set — retry as `ADD`.
pub const ENOENT: i32 = 2;
/// Non-blocking `connect` is underway; readiness reports completion.
pub const EINPROGRESS: i32 = 115;
/// The socket is already connected — a retried `connect` reports success
/// this way.
pub const EISCONN: i32 = 106;
/// A previous `connect` is still in progress — keep waiting.
pub const EALREADY: i32 = 114;
/// The kernel does not implement the syscall (io_uring on pre-5.1
/// kernels, or a seccomp filter) — probe result for backend `Auto`.
pub const ENOSYS: i32 = 38;
/// The endpoint is shut down — also what a registration against a
/// stopped reactor driver reports, so parked I/O can never outlive its VM.
pub const ESHUTDOWN: i32 = 108;
/// A timer expired: `IORING_OP_TIMEOUT` completions report their normal
/// expiry this way (negated in the CQE `res`).
pub const ETIME: i32 = 62;
/// Invalid argument — e.g. `IORING_SETUP_CQSIZE` on a pre-5.5 kernel,
/// which backend setup retries without the flag.
pub const EINVAL: i32 = 22;
/// `io_uring_enter` with a full, unflushed completion ring — drain the
/// CQ and retry.
pub const EBUSY: i32 = 16;
/// The operation was cancelled — a `POLL_REMOVE`d poll completes this
/// way, and the completion must be swallowed, not surfaced as readiness.
pub const ECANCELED: i32 = 125;

// x86-64 Linux syscall numbers (arch/x86/entry/syscalls/syscall_64.tbl).
const SYS_READ: usize = 0;
const SYS_WRITE: usize = 1;
const SYS_CLOSE: usize = 3;
const SYS_MMAP: usize = 9;
const SYS_MUNMAP: usize = 11;
const SYS_SOCKET: usize = 41;
const SYS_CONNECT: usize = 42;
const SYS_SHUTDOWN: usize = 48;
const SYS_BIND: usize = 49;
const SYS_LISTEN: usize = 50;
const SYS_GETSOCKNAME: usize = 51;
const SYS_SOCKETPAIR: usize = 53;
const SYS_SETSOCKOPT: usize = 54;
const SYS_EPOLL_WAIT: usize = 232;
const SYS_EPOLL_CTL: usize = 233;
const SYS_PPOLL: usize = 271;
const SYS_ACCEPT4: usize = 288;
const SYS_EVENTFD2: usize = 290;
const SYS_EPOLL_CREATE1: usize = 291;
const SYS_IO_URING_SETUP: usize = 425;
const SYS_IO_URING_ENTER: usize = 426;

const AF_INET: usize = 2;
const AF_UNIX: usize = 1;
const SOCK_STREAM: usize = 1;
/// `O_NONBLOCK` folded into the socket type (also `EFD_NONBLOCK`).
const SOCK_NONBLOCK: usize = 0o4000;
/// `O_CLOEXEC` folded into the socket type (also `EFD_CLOEXEC`).
const SOCK_CLOEXEC: usize = 0o2000000;
const SOL_SOCKET: usize = 1;
const SO_REUSEADDR: usize = 2;
const SOL_TCP: usize = 6;
const TCP_NODELAY: usize = 1;
/// `shutdown(2)` how-argument: close the write half.
pub const SHUT_WR: usize = 1;
/// `shutdown(2)` how-argument: close both halves.
pub const SHUT_RDWR: usize = 2;

/// epoll interest/readiness bit: readable.
pub const EPOLLIN: u32 = 0x001;
/// epoll interest/readiness bit: writable.
pub const EPOLLOUT: u32 = 0x004;
/// epoll readiness bit: error condition (always reported).
pub const EPOLLERR: u32 = 0x008;
/// epoll readiness bit: hang-up (always reported).
pub const EPOLLHUP: u32 = 0x010;
/// epoll interest bit: disarm the fd after one event is delivered.
pub const EPOLLONESHOT: u32 = 1 << 30;
/// `epoll_ctl` op: add an fd to the interest set.
pub const EPOLL_CTL_ADD: i32 = 1;
/// `epoll_ctl` op: remove an fd from the interest set.
pub const EPOLL_CTL_DEL: i32 = 2;
/// `epoll_ctl` op: change an fd's registration.
pub const EPOLL_CTL_MOD: i32 = 3;

/// `poll(2)`/`ppoll(2)` event bit: readable.
pub const POLLIN: i16 = 0x001;
/// `poll(2)`/`ppoll(2)` event bit: writable.
pub const POLLOUT: i16 = 0x004;
/// `poll(2)` revents bit: error condition (always reported).
pub const POLLERR: i16 = 0x008;
/// `poll(2)` revents bit: hang-up (always reported).
pub const POLLHUP: i16 = 0x010;

/// One `epoll_wait` result slot, kernel layout (packed on x86-64).
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bits (`EPOLLIN` | `EPOLLOUT` | `EPOLLERR` | `EPOLLHUP`).
    pub events: u32,
    /// The registration's user word.
    pub data: u64,
}

impl EpollEvent {
    /// An empty slot for pre-sizing wait buffers.
    pub const fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }
}

/// IPv4 socket address, kernel layout.
#[repr(C)]
struct SockAddrIn {
    family: u16,
    /// Big-endian.
    port: u16,
    /// Big-endian.
    addr: u32,
    zero: [u8; 8],
}

impl SockAddrIn {
    fn new(addr: u32, port: u16) -> SockAddrIn {
        SockAddrIn {
            family: AF_INET as u16,
            port: port.to_be(),
            addr: addr.to_be(),
            zero: [0; 8],
        }
    }
}

/// `struct timespec` for `ppoll`.
#[repr(C)]
struct Timespec {
    sec: i64,
    nsec: i64,
}

/// `struct pollfd` for `ppoll`.
#[repr(C)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

// The raw trap.  System V syscall convention: number in rax, arguments in
// rdi/rsi/rdx/r10/r8/r9, result (or -errno) back in rax; rcx and r11 are
// clobbered by the instruction itself.

/// # Safety
/// The caller must uphold the kernel contract for syscall `n`: every
/// pointer argument valid for the access the call performs, for its full
/// length, for the duration of the call.
unsafe fn syscall6(
    n: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    // SAFETY: per the function contract; the asm declares every register
    // the instruction reads or clobbers, and memory is left as a default
    // clobber so buffer writes by the kernel are visible.
    unsafe {
        asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            out("rcx") _,
            out("r11") _,
            options(nostack),
        );
    }
    ret
}

/// # Safety
/// See [`syscall6`].
unsafe fn syscall4(n: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
    // SAFETY: forwarded contract; unused argument registers are ignored by
    // the kernel for calls of lower arity.
    unsafe { syscall6(n, a1, a2, a3, a4, 0, 0) }
}

/// # Safety
/// See [`syscall6`].
unsafe fn syscall3(n: usize, a1: usize, a2: usize, a3: usize) -> isize {
    // SAFETY: forwarded contract.
    unsafe { syscall6(n, a1, a2, a3, 0, 0, 0) }
}

fn ret(r: isize) -> Result<usize> {
    if (-4095..0).contains(&r) {
        Err(Errno(-r as i32))
    } else {
        Ok(r as usize)
    }
}

/// Creates a non-blocking, close-on-exec TCP socket.
pub fn socket_tcp() -> Result<RawFd> {
    // SAFETY: no pointer arguments.
    let r = unsafe {
        syscall3(
            SYS_SOCKET,
            AF_INET,
            SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
            0,
        )
    };
    ret(r).map(|fd| fd as RawFd)
}

/// Binds `fd` to an IPv4 address (`addr` host order, e.g. `0x7f000001` for
/// loopback) and `port` (host order; 0 asks the kernel for an ephemeral
/// port — read it back with [`local_port`]).
pub fn bind_ipv4(fd: RawFd, addr: u32, port: u16) -> Result<()> {
    let sa = SockAddrIn::new(addr, port);
    // SAFETY: `sa` is a live, correctly-laid-out sockaddr_in for the
    // duration of the call; its exact size is passed.
    let r = unsafe {
        syscall3(
            SYS_BIND,
            fd as usize,
            &sa as *const SockAddrIn as usize,
            core::mem::size_of::<SockAddrIn>(),
        )
    };
    ret(r).map(|_| ())
}

/// Marks `fd` as a passive socket with the given accept backlog.
pub fn listen(fd: RawFd, backlog: i32) -> Result<()> {
    // SAFETY: no pointer arguments.
    let r = unsafe { syscall3(SYS_LISTEN, fd as usize, backlog as usize, 0) };
    ret(r).map(|_| ())
}

/// Accepts one connection; the returned fd is non-blocking and
/// close-on-exec.  `EAGAIN` means no connection is pending.
pub fn accept4(fd: RawFd) -> Result<RawFd> {
    // SAFETY: null addr/addrlen is the documented "don't care" form.
    let r = unsafe { syscall4(SYS_ACCEPT4, fd as usize, 0, 0, SOCK_NONBLOCK | SOCK_CLOEXEC) };
    ret(r).map(|fd| fd as RawFd)
}

/// Starts a connect to an IPv4 address/port (host order).  On a
/// non-blocking socket this typically fails with `EINPROGRESS`; wait for
/// writability, then the socket is connected (or carries an error).
pub fn connect_ipv4(fd: RawFd, addr: u32, port: u16) -> Result<()> {
    let sa = SockAddrIn::new(addr, port);
    // SAFETY: `sa` is a live sockaddr_in for the duration of the call.
    let r = unsafe {
        syscall3(
            SYS_CONNECT,
            fd as usize,
            &sa as *const SockAddrIn as usize,
            core::mem::size_of::<SockAddrIn>(),
        )
    };
    ret(r).map(|_| ())
}

/// Returns the locally-bound port of an IPv4 socket (host order).
pub fn local_port(fd: RawFd) -> Result<u16> {
    let mut sa = SockAddrIn::new(0, 0);
    let mut len: u32 = core::mem::size_of::<SockAddrIn>() as u32;
    // SAFETY: `sa` and `len` are live and writable for the call; the kernel
    // writes at most `len` bytes of address.
    let r = unsafe {
        syscall3(
            SYS_GETSOCKNAME,
            fd as usize,
            &mut sa as *mut SockAddrIn as usize,
            &mut len as *mut u32 as usize,
        )
    };
    ret(r).map(|_| u16::from_be(sa.port))
}

/// Sets `SO_REUSEADDR` so rebinding a just-closed listener port works.
pub fn set_reuseaddr(fd: RawFd) -> Result<()> {
    let one: i32 = 1;
    // SAFETY: `one` is live for the call; its exact size is passed.
    let r = unsafe {
        syscall6(
            SYS_SETSOCKOPT,
            fd as usize,
            SOL_SOCKET,
            SO_REUSEADDR,
            &one as *const i32 as usize,
            core::mem::size_of::<i32>(),
            0,
        )
    };
    ret(r).map(|_| ())
}

/// Sets `TCP_NODELAY`, disabling Nagle batching — echo-style workloads
/// measure per-message latency and must not wait out the coalesce timer.
pub fn set_nodelay(fd: RawFd) -> Result<()> {
    let one: i32 = 1;
    // SAFETY: `one` is live for the call; its exact size is passed.
    let r = unsafe {
        syscall6(
            SYS_SETSOCKOPT,
            fd as usize,
            SOL_TCP,
            TCP_NODELAY,
            &one as *const i32 as usize,
            core::mem::size_of::<i32>(),
            0,
        )
    };
    ret(r).map(|_| ())
}

/// Reads into `buf`; `Ok(0)` is end-of-stream, `EAGAIN` means park.
pub fn read(fd: RawFd, buf: &mut [u8]) -> Result<usize> {
    // SAFETY: `buf` is a live writable slice; its exact length bounds the
    // kernel's write.
    let r = unsafe { syscall3(SYS_READ, fd as usize, buf.as_mut_ptr() as usize, buf.len()) };
    ret(r)
}

/// Writes from `buf`; may be short, `EAGAIN` means park for writability.
pub fn write(fd: RawFd, buf: &[u8]) -> Result<usize> {
    // SAFETY: `buf` is a live readable slice; its exact length bounds the
    // kernel's read.
    let r = unsafe { syscall3(SYS_WRITE, fd as usize, buf.as_ptr() as usize, buf.len()) };
    ret(r)
}

/// Closes `fd`.  Closing also drops the fd from any epoll interest sets.
pub fn close(fd: RawFd) -> Result<()> {
    // SAFETY: no pointer arguments.
    let r = unsafe { syscall3(SYS_CLOSE, fd as usize, 0, 0) };
    ret(r).map(|_| ())
}

/// Half-closes a socket (`how` = e.g. [`SHUT_WR`] to send EOF).
pub fn shutdown(fd: RawFd, how: usize) -> Result<()> {
    // SAFETY: no pointer arguments.
    let r = unsafe { syscall3(SYS_SHUTDOWN, fd as usize, how, 0) };
    ret(r).map(|_| ())
}

/// Creates an epoll instance (close-on-exec).
pub fn epoll_create1() -> Result<RawFd> {
    // SAFETY: no pointer arguments.
    let r = unsafe { syscall3(SYS_EPOLL_CREATE1, SOCK_CLOEXEC, 0, 0) };
    ret(r).map(|fd| fd as RawFd)
}

/// Adds/modifies/deletes `fd` in `epfd`'s interest set.  `events` is an
/// `EPOLL*` bit set, `data` the user word echoed back in [`EpollEvent`].
pub fn epoll_ctl(epfd: RawFd, op: i32, fd: RawFd, events: u32, data: u64) -> Result<()> {
    let ev = EpollEvent { events, data };
    // SAFETY: `ev` is live for the call (ignored for DEL, where Linux ≥
    // 2.6.9 permits a valid-or-null pointer; passing valid is always fine).
    let r = unsafe {
        syscall4(
            SYS_EPOLL_CTL,
            epfd as usize,
            op as usize,
            fd as usize,
            &ev as *const EpollEvent as usize,
        )
    };
    ret(r).map(|_| ())
}

/// Waits for readiness on `epfd`, filling `events`.  `timeout_ms` < 0
/// blocks indefinitely.  Returns the number of slots filled; `EINTR` is
/// swallowed here (reported as zero events) because every caller treats
/// it as a spurious wake-up anyway.
pub fn epoll_wait(epfd: RawFd, events: &mut [EpollEvent], timeout_ms: i32) -> Result<usize> {
    // SAFETY: `events` is a live writable slice; its length bounds the
    // kernel's write of result slots.
    let r = unsafe {
        syscall4(
            SYS_EPOLL_WAIT,
            epfd as usize,
            events.as_mut_ptr() as usize,
            events.len(),
            timeout_ms as usize,
        )
    };
    match ret(r) {
        Err(Errno(EINTR)) => Ok(0),
        other => other,
    }
}

// --- io_uring -----------------------------------------------------------
//
// The second reactor backend (`crate::uring`).  Only the submission path
// the substrate needs is bound: ring setup, the shared-memory ring mmaps,
// and `io_uring_enter` for batched submission + completion waits.  The
// ring protocol itself (SQE layout, head/tail publication) lives in
// `crate::uring`, next to the memory-ordering argument.

/// `io_uring_setup` flag: `cq_entries` in the params is a request, not 0.
pub const IORING_SETUP_CQSIZE: u32 = 1 << 3;
/// `io_uring_params.features` bit: completions are never dropped on CQ
/// overflow (kernel ≥ 5.5 buffers them internally until drained).
pub const IORING_FEAT_NODROP: u32 = 1 << 1;
/// `io_uring_enter` flag: block until `min_complete` completions exist.
pub const IORING_ENTER_GETEVENTS: u32 = 1;
/// SQE opcode: one-shot readiness poll (the io_uring `EPOLLONESHOT`).
pub const IORING_OP_POLL_ADD: u8 = 6;
/// SQE opcode: cancel an outstanding poll by matching `user_data`.
pub const IORING_OP_POLL_REMOVE: u8 = 7;
/// SQE opcode: a relative timeout (the wait's liveness backstop).
pub const IORING_OP_TIMEOUT: u8 = 11;
/// `mmap` offset selecting the submission-queue ring.
pub const IORING_OFF_SQ_RING: usize = 0;
/// `mmap` offset selecting the completion-queue ring.
pub const IORING_OFF_CQ_RING: usize = 0x800_0000;
/// `mmap` offset selecting the SQE array.
pub const IORING_OFF_SQES: usize = 0x1000_0000;

/// Kernel-reported layout of the submission ring (`io_sqring_offsets`):
/// byte offsets of each field inside the SQ ring mapping.
#[repr(C)]
#[derive(Debug, Default, Clone, Copy)]
pub struct SqringOffsets {
    /// Consumer head (kernel-owned).
    pub head: u32,
    /// Producer tail (user-owned).
    pub tail: u32,
    /// Index mask (`ring_entries - 1`).
    pub ring_mask: u32,
    /// Ring capacity.
    pub ring_entries: u32,
    /// Ring flags (`IORING_SQ_NEED_WAKEUP`, unused without SQPOLL).
    pub flags: u32,
    /// Count of invalid SQEs the kernel dropped.
    pub dropped: u32,
    /// The indirection array (SQE indices).
    pub array: u32,
    /// Reserved.
    pub resv1: u32,
    /// Reserved.
    pub resv2: u64,
}

/// Kernel-reported layout of the completion ring (`io_cqring_offsets`).
#[repr(C)]
#[derive(Debug, Default, Clone, Copy)]
pub struct CqringOffsets {
    /// Consumer head (user-owned).
    pub head: u32,
    /// Producer tail (kernel-owned).
    pub tail: u32,
    /// Index mask (`ring_entries - 1`).
    pub ring_mask: u32,
    /// Ring capacity.
    pub ring_entries: u32,
    /// Completions lost to overflow (stays 0 with [`IORING_FEAT_NODROP`]).
    pub overflow: u32,
    /// The CQE array.
    pub cqes: u32,
    /// Ring flags.
    pub flags: u32,
    /// Reserved.
    pub resv1: u32,
    /// Reserved.
    pub resv2: u64,
}

/// `struct io_uring_params`: setup request + the kernel's ring geometry
/// answer (entries, feature bits, and the two ring layouts).
#[repr(C)]
#[derive(Debug, Default, Clone, Copy)]
pub struct IoUringParams {
    /// SQ capacity granted (power of two).
    pub sq_entries: u32,
    /// CQ capacity granted (request with [`IORING_SETUP_CQSIZE`]).
    pub cq_entries: u32,
    /// Setup flags.
    pub flags: u32,
    /// SQPOLL kernel-thread CPU (unused here).
    pub sq_thread_cpu: u32,
    /// SQPOLL idle time (unused here).
    pub sq_thread_idle: u32,
    /// Feature bits the kernel supports (e.g. [`IORING_FEAT_NODROP`]).
    pub features: u32,
    /// Shared async backend fd (unused here).
    pub wq_fd: u32,
    /// Reserved.
    pub resv: [u32; 3],
    /// Submission-ring layout.
    pub sq_off: SqringOffsets,
    /// Completion-ring layout.
    pub cq_off: CqringOffsets,
}

/// One submission-queue entry, kernel layout (64 bytes).  Fields past the
/// ones the poll family uses are folded into `pad`.
#[repr(C)]
#[derive(Debug, Default, Clone, Copy)]
pub struct IoUringSqe {
    /// Operation (`IORING_OP_*`).
    pub opcode: u8,
    /// Submission flags.
    pub flags: u8,
    /// Priority (unused here).
    pub ioprio: u16,
    /// Target fd.
    pub fd: i32,
    /// Offset / `addr2` union (unused by the poll family).
    pub off: u64,
    /// Address union: the timespec for `TIMEOUT`, the `user_data` to
    /// match for `POLL_REMOVE`.
    pub addr: u64,
    /// Length union: the completion count for `TIMEOUT`.
    pub len: u32,
    /// Per-op flags union: the poll mask for `POLL_ADD` (low 16 bits,
    /// little-endian layout of `poll32_events`).
    pub op_flags: u32,
    /// The user word echoed back in the matching [`IoUringCqe`].
    pub user_data: u64,
    /// Remaining unions (buf_index, personality, …) — zero for us.
    pub pad: [u64; 3],
}

/// One completion-queue entry, kernel layout (16 bytes).
#[repr(C)]
#[derive(Debug, Default, Clone, Copy)]
pub struct IoUringCqe {
    /// The submission's user word.
    pub user_data: u64,
    /// Result: revents for a poll, `-errno` on failure.
    pub res: i32,
    /// Completion flags.
    pub flags: u32,
}

/// `struct timespec` for `IORING_OP_TIMEOUT` (a relative timeout).
#[repr(C)]
#[derive(Debug, Default, Clone, Copy)]
pub struct UringTimespec {
    /// Seconds.
    pub sec: i64,
    /// Nanoseconds.
    pub nsec: i64,
}

/// Creates an io_uring instance with (at least) `entries` SQ slots,
/// filling `params` with the granted geometry.  `ENOSYS` (old kernel or
/// seccomp) is the "no io_uring here" probe result backend `Auto` keys on.
pub fn io_uring_setup(entries: u32, params: &mut IoUringParams) -> Result<RawFd> {
    // SAFETY: `params` is a live, writable, correctly-laid-out
    // io_uring_params for the duration of the call.
    let r = unsafe {
        syscall3(
            SYS_IO_URING_SETUP,
            entries as usize,
            params as *mut IoUringParams as usize,
            0,
        )
    };
    ret(r).map(|fd| fd as RawFd)
}

/// Submits `to_submit` queued SQEs and, with [`IORING_ENTER_GETEVENTS`],
/// blocks until `min_complete` completions are available.  Returns the
/// number of SQEs consumed.  `EINTR` is surfaced (the reactor treats it as
/// a spurious wake); `EBUSY` means the CQ must be drained first.
pub fn io_uring_enter(fd: RawFd, to_submit: u32, min_complete: u32, flags: u32) -> Result<usize> {
    // SAFETY: no pointer arguments (sigmask null = keep the current mask).
    let r = unsafe {
        syscall6(
            SYS_IO_URING_ENTER,
            fd as usize,
            to_submit as usize,
            min_complete as usize,
            flags as usize,
            0,
            0,
        )
    };
    ret(r)
}

/// Maps `len` bytes of `fd` at `offset` shared and read-write — the
/// io_uring ring regions ([`IORING_OFF_SQ_RING`] and friends).
pub fn mmap_rings(fd: RawFd, offset: usize, len: usize) -> Result<*mut u8> {
    const PROT_READ_WRITE: usize = 0x3;
    const MAP_SHARED_POPULATE: usize = 0x1 | 0x8000;
    // SAFETY: no pointer arguments the kernel dereferences (addr 0 = let
    // the kernel place the mapping); the returned region is valid for
    // `len` bytes until `munmap`.
    let r = unsafe {
        syscall6(
            SYS_MMAP,
            0,
            len,
            PROT_READ_WRITE,
            MAP_SHARED_POPULATE,
            fd as usize,
            offset,
        )
    };
    ret(r).map(|p| p as *mut u8)
}

/// Unmaps a [`mmap_rings`] region.
///
/// # Safety
/// `ptr..ptr+len` must be exactly a live mapping returned by
/// [`mmap_rings`], with no further access to it after this call.
pub unsafe fn munmap(ptr: *mut u8, len: usize) -> Result<()> {
    // SAFETY: per the function contract.
    let r = unsafe { syscall3(SYS_MUNMAP, ptr as usize, len, 0) };
    ret(r).map(|_| ())
}

/// Creates a non-blocking eventfd, used to kick the reactor out of
/// [`epoll_wait`] (write a count to it; reading drains it).
pub fn eventfd() -> Result<RawFd> {
    // SAFETY: no pointer arguments.
    let r = unsafe { syscall3(SYS_EVENTFD2, 0, SOCK_NONBLOCK | SOCK_CLOEXEC, 0) };
    ret(r).map(|fd| fd as RawFd)
}

/// Creates a connected pair of non-blocking Unix stream sockets — the
/// deterministic fixture for reactor unit tests (readiness is fully under
/// the test's control, no ports or timing involved).
pub fn socketpair_stream() -> Result<(RawFd, RawFd)> {
    let mut fds = [0i32; 2];
    // SAFETY: `fds` is a live writable 2-slot array, exactly what the call
    // writes.
    let r = unsafe {
        syscall4(
            SYS_SOCKETPAIR,
            AF_UNIX,
            SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
            0,
            fds.as_mut_ptr() as usize,
        )
    };
    ret(r).map(|_| (fds[0], fds[1]))
}

/// Blocks the calling **OS** thread until `fd` is ready for `events`
/// (`POLLIN`/`POLLOUT`) or `timeout_ms` elapses (< 0 = forever).  Returns
/// the revents bits (0 on timeout).  This is the degraded path for calls
/// arriving off any STING thread, where there is no VP to keep busy.
pub fn poll_one(fd: RawFd, events: i16, timeout_ms: i32) -> Result<i16> {
    let mut pfd = PollFd {
        fd,
        events,
        revents: 0,
    };
    let ts = Timespec {
        sec: (timeout_ms.max(0) / 1000) as i64,
        nsec: (timeout_ms.max(0) % 1000) as i64 * 1_000_000,
    };
    let ts_ptr = if timeout_ms < 0 {
        0
    } else {
        &ts as *const Timespec as usize
    };
    // SAFETY: `pfd` is live and writable, `ts` (when passed) live and
    // readable, sigmask null = keep the current mask.
    let r = unsafe { syscall4(SYS_PPOLL, &mut pfd as *mut PollFd as usize, 1, ts_ptr, 0) };
    match ret(r) {
        Ok(_) => Ok(pfd.revents),
        Err(Errno(EINTR)) => Ok(0),
        Err(e) => Err(e),
    }
}

#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
compile_error!(
    "sting-core's sys module binds raw x86-64 Linux syscalls only; port the \
     syscall numbers and trap sequence in sys.rs to this platform"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socketpair_round_trip() {
        let (a, b) = socketpair_stream().unwrap();
        assert_eq!(write(a, b"ping").unwrap(), 4);
        let mut buf = [0u8; 8];
        assert_eq!(read(b, &mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");
        // Nothing more to read: non-blocking read reports EAGAIN.
        assert_eq!(read(b, &mut buf), Err(Errno(EAGAIN)));
        close(a).unwrap();
        // Peer close reads as EOF.
        assert_eq!(read(b, &mut buf).unwrap(), 0);
        close(b).unwrap();
    }

    #[test]
    fn epoll_sees_readiness() {
        let (a, b) = socketpair_stream().unwrap();
        let ep = epoll_create1().unwrap();
        epoll_ctl(ep, EPOLL_CTL_ADD, b, EPOLLIN | EPOLLONESHOT, 7).unwrap();
        // Not yet readable.
        let mut evs = [EpollEvent::zeroed(); 4];
        assert_eq!(epoll_wait(ep, &mut evs, 0).unwrap(), 0);
        write(a, b"x").unwrap();
        assert_eq!(epoll_wait(ep, &mut evs, 1000).unwrap(), 1);
        let (events, data) = (evs[0].events, evs[0].data);
        assert_ne!(events & EPOLLIN, 0);
        assert_eq!(data, 7);
        // Oneshot: disarmed until re-MODed, even though data is pending.
        assert_eq!(epoll_wait(ep, &mut evs, 0).unwrap(), 0);
        epoll_ctl(ep, EPOLL_CTL_MOD, b, EPOLLIN | EPOLLONESHOT, 8).unwrap();
        assert_eq!(epoll_wait(ep, &mut evs, 1000).unwrap(), 1);
        let data = evs[0].data;
        assert_eq!(data, 8);
        for fd in [a, b, ep] {
            close(fd).unwrap();
        }
    }

    #[test]
    fn eventfd_wakes_epoll() {
        let ef = eventfd().unwrap();
        let ep = epoll_create1().unwrap();
        epoll_ctl(ep, EPOLL_CTL_ADD, ef, EPOLLIN, 1).unwrap();
        write(ef, &1u64.to_ne_bytes()).unwrap();
        let mut evs = [EpollEvent::zeroed(); 1];
        assert_eq!(epoll_wait(ep, &mut evs, 1000).unwrap(), 1);
        // Drain so the level-triggered registration goes quiet.
        let mut count = [0u8; 8];
        read(ef, &mut count).unwrap();
        assert_eq!(epoll_wait(ep, &mut evs, 0).unwrap(), 0);
        close(ef).unwrap();
        close(ep).unwrap();
    }

    #[test]
    fn tcp_listen_accept_connect() {
        let l = socket_tcp().unwrap();
        set_reuseaddr(l).unwrap();
        bind_ipv4(l, 0x7f00_0001, 0).unwrap();
        listen(l, 16).unwrap();
        let port = local_port(l).unwrap();
        assert_ne!(port, 0);

        let c = socket_tcp().unwrap();
        match connect_ipv4(c, 0x7f00_0001, port) {
            Ok(()) => {}
            Err(Errno(EINPROGRESS)) => {
                assert_ne!(poll_one(c, POLLOUT, 2000).unwrap() & POLLOUT, 0);
            }
            Err(e) => panic!("connect failed: {e}"),
        }
        // Loopback connect completes promptly; poll for the accept side.
        assert_ne!(poll_one(l, POLLIN, 2000).unwrap() & POLLIN, 0);
        let s = accept4(l).unwrap();
        write(c, b"hello").unwrap();
        poll_one(s, POLLIN, 2000).unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(read(s, &mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
        for fd in [s, c, l] {
            close(fd).unwrap();
        }
    }

    #[test]
    fn errno_names() {
        assert_eq!(Errno(EAGAIN).name(), "EAGAIN");
        assert_eq!(format!("{}", Errno(111)), "ECONNREFUSED (errno 111)");
    }
}
