//! Partitioned tuple spaces over a VM fleet.
//!
//! A [`ShardedSpace`] splits one logical tuple space into `S` partitions,
//! one per shard of a [`Fleet`].  Tuples and templates route to a
//! partition by the same `(arity, field₀)` hash the [`crate::hashed`]
//! representation buckets by — the partition choice and the in-partition
//! bucket choice are two moduli of one key, so routing never disagrees
//! with matching.
//!
//! Operations run in one of three tiers:
//!
//! * **Local fast path** — the caller runs on the shard that owns the
//!   target partition (or outside any fleet shard entirely).  The op is a
//!   plain [`TupleSpace`] op on the partition: no mailbox, no extra
//!   allocation, byte-for-byte the unsharded code path.
//! * **Routed tier** — the caller runs on a shard of the fleet and every
//!   candidate partition is owned by a *different* shard (one partition
//!   in the common literal-keyed case; two when the arity-only partition
//!   where live-thread-headed tuples land differs).  Deposits ship to the
//!   owner as a fire-and-forget [`Fabric::call_durable`] (applied even by
//!   the shutdown sweep, so a routed `put` is never lost — though the
//!   putting shard's own *non-blocking* probes may miss it until the
//!   owner applies it; see [`ShardedSpace::put`]); blocking reads ship a
//!   *register-and-check* closure per owner (template + shared reply
//!   cell + the caller's wait episode) so the match scan, waiter
//!   registration, and wake all execute with owner-shard locality, and
//!   the caller parks until an owner's reply or a matching deposit wakes
//!   it across the fabric.
//! * **Wild slow path** — the template has no literal first field, so
//!   every partition (including the caller's own) is a candidate.  The op
//!   degrades to the shared-memory protocol over all partitions: correct,
//!   and documented as the tier to avoid in hot loops.
//!
//! Partition data structures are ordinary shared memory, so the routed
//! tier is a *locality* optimization, not a correctness requirement —
//! which is what lets the wild tier and off-fleet callers fall back to
//! direct access.
//!
//! ## Conservation under abandonment
//!
//! A routed `get` removes a tuple on the owner shard while the requester
//! may concurrently time out or be terminated.  The reply cell arbitrates:
//! the owner only removes while the cell is `Waiting`, and a requester
//! that gives up flips the cell to `Abandoned` first (both under the cell
//! mutex), so a removed tuple always has exactly one taker and an
//! abandoned request never strands a removal — the
//! `routed_timeout_conserves_deposits` test drives this race.

use crate::hashed::hash_key;
use crate::template::Template;
use crate::{SpaceKind, TupleSpace};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};
use sting_core::fleet::{Fabric, Fleet};
use sting_core::tc;
use sting_sync::{Waiter, WakeReason};
use sting_value::Value;

/// Reply cell for one routed blocking attempt (see module docs on
/// conservation: `Filled` and `Abandoned` are mutually exclusive
/// outcomes decided under the mutex).
enum Reply {
    /// The requester is parked (or about to park) on this attempt.
    Waiting,
    /// The owner matched and (for `get`) removed a tuple; the bindings
    /// belong to the requester.
    Filled(Vec<Value>),
    /// The requester timed out, was cancelled, or retried; the owner
    /// must leave the partition untouched.
    Abandoned,
}

struct ShardedInner {
    /// One parentless partition per shard; index = owning shard.
    partitions: Vec<TupleSpace>,
    /// `None` for single-shard fleets: every op is the local fast path.
    fabric: Option<Arc<Fabric>>,
}

/// A tuple space partitioned across the shards of a [`Fleet`]; clones
/// share the space.
#[derive(Clone)]
pub struct ShardedSpace {
    inner: Arc<ShardedInner>,
}

impl std::fmt::Debug for ShardedSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSpace")
            .field("partitions", &self.inner.partitions.len())
            .field("len", &self.len())
            .finish()
    }
}

impl ShardedSpace {
    /// A sharded space over `fleet`, one 64-bucket hashed partition per
    /// shard.  A single-shard fleet yields a space whose every operation
    /// takes the local fast path.
    pub fn new(fleet: &Fleet) -> ShardedSpace {
        ShardedSpace::with_buckets(fleet, 64)
    }

    /// Like [`ShardedSpace::new`] with an explicit per-partition bucket
    /// count.
    pub fn with_buckets(fleet: &Fleet, buckets: usize) -> ShardedSpace {
        ShardedSpace {
            inner: Arc::new(ShardedInner {
                partitions: (0..fleet.len())
                    .map(|_| TupleSpace::with_kind(SpaceKind::Hashed { buckets }))
                    .collect(),
                fabric: fleet.fabric().cloned(),
            }),
        }
    }

    /// Number of partitions (= shards of the owning fleet).
    pub fn partitions(&self) -> usize {
        self.inner.partitions.len()
    }

    /// Tuples stored across all partitions.
    pub fn len(&self) -> usize {
        self.inner.partitions.iter().map(|p| p.len()).sum()
    }

    /// Whether no partition holds a tuple.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tuples stored in one partition (test/diagnostic visibility into
    /// where routing placed a deposit).
    pub fn partition_len(&self, index: usize) -> usize {
        self.inner.partitions[index].len()
    }

    /// Live readers blocked across all partitions (a reader may count
    /// once per partition it registered in — see [`TupleSpace::blocked`]).
    pub fn blocked(&self) -> usize {
        self.inner.partitions.iter().map(|p| p.blocked()).sum()
    }

    /// The partition a tuple deposits into.  Mirrors the hashed rep's
    /// bucket rule: a live-thread first field could evaluate to anything,
    /// so such tuples route by arity alone.
    pub fn partition_of_tuple(&self, fields: &[Value]) -> usize {
        let f0 = fields
            .first()
            .filter(|v| v.as_native().is_none_or(|h| h.tag() != "thread"));
        (hash_key(fields.len(), f0) % self.partitions() as u64) as usize
    }

    /// The partitions a template must consult: its literal-keyed
    /// partition plus the arity-only partition where live-thread-headed
    /// tuples land (one entry when they coincide).  `None` means no
    /// usable key — every partition is a candidate (the wild slow path).
    pub fn partitions_of_template(&self, t: &Template) -> Option<Vec<usize>> {
        let n = self.partitions() as u64;
        match t.hash_key() {
            Some((0, v)) => {
                let lit = (hash_key(t.arity(), Some(v)) % n) as usize;
                let wild = (hash_key(t.arity(), None) % n) as usize;
                let mut out = vec![lit];
                if wild != lit {
                    out.push(wild);
                }
                Some(out)
            }
            _ => None,
        }
    }

    /// The calling shard, iff the current thread runs on a VM that is a
    /// shard of *this* space's fleet (pointer identity, not just a shard
    /// index — a thread on some other fleet must not masquerade as local).
    fn local_shard(&self) -> Option<usize> {
        let fabric = self.inner.fabric.as_ref()?;
        let vm = tc::current_vm()?;
        let s = vm.shard_id();
        match fabric.shard_vm(s) {
            Some(shard_vm) if Arc::ptr_eq(&shard_vm, &vm) => Some(s),
            _ => None,
        }
    }

    /// Deposits a passive tuple into its partition.  Cross-shard deposits
    /// ship to the owner (fire-and-forget) so the match scan and any
    /// wake-ups run with owner-shard locality.
    ///
    /// A routed deposit is therefore *asynchronous*: until the owner
    /// applies it, the putting thread's own immediately-following
    /// [`try_get`](ShardedSpace::try_get) / [`try_rd`](ShardedSpace::try_rd)
    /// / [`len`](ShardedSpace::len) can miss the tuple — there is no
    /// cross-shard read-your-writes for non-blocking probes.  Blocking
    /// reads are unaffected (a same-thread `get` after a `put` queues its
    /// owner closure behind the deposit in the same FIFO mailbox; reads
    /// from elsewhere park until the deposit lands and wakes them).  The
    /// deposit itself is never lost: one still in flight at fleet
    /// shutdown is applied by the fabric's shutdown sweep
    /// ([`Fabric::call_durable`]).
    pub fn put(&self, fields: Vec<Value>) {
        let dest = self.partition_of_tuple(&fields);
        match (self.inner.fabric.as_ref(), self.local_shard()) {
            (Some(fabric), Some(me)) if me != dest => {
                let part = self.inner.partitions[dest].clone();
                let vm = tc::current_vm().expect("local_shard implies a current VM");
                fabric.call_durable(&vm, dest, Box::new(move |_vm| part.put(fields)));
            }
            _ => self.inner.partitions[dest].put(fields),
        }
    }

    /// Non-blocking removal across the template's candidate partitions.
    /// May miss a tuple whose routed deposit is still in flight — see
    /// [`ShardedSpace::put`].
    pub fn try_get(&self, template: &Template) -> Option<Vec<Value>> {
        self.try_parts(template, true)
    }

    /// Non-blocking read across the template's candidate partitions.
    /// May miss a tuple whose routed deposit is still in flight — see
    /// [`ShardedSpace::put`].
    pub fn try_rd(&self, template: &Template) -> Option<Vec<Value>> {
        self.try_parts(template, false)
    }

    /// Blocking removal (`in`); see the module docs for which tier runs.
    pub fn get(&self, template: &Template) -> Vec<Value> {
        self.blocking_op(template, true)
    }

    /// Blocking read (`rd`).
    pub fn rd(&self, template: &Template) -> Vec<Value> {
        self.blocking_op(template, false)
    }

    /// [`ShardedSpace::get`] with a timeout.
    pub fn get_timeout(&self, template: &Template, timeout: Duration) -> Option<Vec<Value>> {
        self.blocking_op_deadline(template, true, Some(Instant::now() + timeout))
    }

    /// [`ShardedSpace::rd`] with a timeout.
    pub fn rd_timeout(&self, template: &Template, timeout: Duration) -> Option<Vec<Value>> {
        self.blocking_op_deadline(template, false, Some(Instant::now() + timeout))
    }

    fn candidate_partitions(&self, template: &Template) -> Vec<usize> {
        self.partitions_of_template(template)
            .unwrap_or_else(|| (0..self.partitions()).collect())
    }

    fn try_parts(&self, template: &Template, remove: bool) -> Option<Vec<Value>> {
        for p in self.candidate_partitions(template) {
            let part = &self.inner.partitions[p];
            let got = if remove {
                part.try_get(template)
            } else {
                part.try_rd(template)
            };
            if got.is_some() {
                return got;
            }
        }
        None
    }

    fn blocking_op(&self, template: &Template, remove: bool) -> Vec<Value> {
        loop {
            // `None` without a deadline means the wait episode was
            // cancelled without unwinding this frame; re-arm and retry.
            if let Some(b) = self.blocking_op_deadline(template, remove, None) {
                return b;
            }
        }
    }

    fn blocking_op_deadline(
        &self,
        template: &Template,
        remove: bool,
        deadline: Option<Instant>,
    ) -> Option<Vec<Value>> {
        let parts = self.candidate_partitions(template);
        if let (Some(fabric), Some(me)) = (self.inner.fabric.as_ref(), self.local_shard()) {
            if !parts.is_empty() && parts.iter().all(|&p| p != me) {
                return self.routed_blocking(fabric.clone(), &parts, template, remove, deadline);
            }
        }
        self.direct_blocking(&parts, template, remove, deadline)
    }

    /// The local/wild tier: the [`TupleSpace::blocking_op_deadline`]
    /// protocol generalized over a set of partitions.  Register one wait
    /// episode in every candidate, re-check once to close the deposit
    /// race, then park; a wasted wake (self-served or timed out after a
    /// deposit spent its wake on us) is re-donated to every candidate.
    fn direct_blocking(
        &self,
        parts: &[usize],
        template: &Template,
        remove: bool,
        deadline: Option<Instant>,
    ) -> Option<Vec<Value>> {
        let rewake = |parts: &[usize]| {
            for &p in parts {
                self.inner.partitions[p].rewake_local();
            }
        };
        loop {
            if let Some(b) = self.try_parts(template, remove) {
                return Some(b);
            }
            let w = Waiter::current();
            for &p in parts {
                self.inner.partitions[p].register_local(template, w.clone());
            }
            if let Some(b) = self.try_parts(template, remove) {
                if w.retire() {
                    rewake(parts);
                }
                return Some(b);
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    if w.retire() {
                        rewake(parts);
                    }
                    return None;
                }
            }
            match w.park_until(&Value::sym("tuple-space"), deadline) {
                WakeReason::Woken => {}
                WakeReason::TimedOut | WakeReason::Cancelled => return None,
            }
        }
    }

    /// The routed tier: every candidate partition is owned by a remote
    /// shard, so the match scan, waiter registration, and removal run on
    /// the owners inside fabric calls while the requester parks on the
    /// shipped wait episode.  Per attempt: one direct probe (the shared
    /// memory is coherent; the hops buy locality, not safety), then one
    /// register-and-check closure per owner, all sharing a reply cell
    /// that settles who owns a removed tuple — the first owner to match
    /// fills it, later owners and an abandoning requester see the state
    /// change under the mutex (see module docs on conservation).
    fn routed_blocking(
        &self,
        fabric: Arc<Fabric>,
        parts: &[usize],
        template: &Template,
        remove: bool,
        deadline: Option<Instant>,
    ) -> Option<Vec<Value>> {
        loop {
            if let Some(b) = self.try_parts(template, remove) {
                return Some(b);
            }
            let w = Waiter::current();
            let reply = Arc::new(Mutex::new(Reply::Waiting));
            let vm = tc::current_vm().expect("routed tier implies a current VM");
            for &dest in parts {
                let part = self.inner.partitions[dest].clone();
                let template = template.clone();
                let (w, reply) = (w.clone(), reply.clone());
                fabric.call(
                    &vm,
                    dest,
                    Box::new(move |_vm| {
                        let mut cell = reply.lock();
                        if !matches!(*cell, Reply::Waiting) {
                            return; // answered by a sibling owner, or abandoned
                        }
                        // Register *before* probing (the same order
                        // `direct_blocking` uses): a deposit landing between
                        // a failed probe and a later registration would find
                        // no waiter to wake while the requester is already
                        // parked — the one tuple it will ever match would
                        // slip by.  A registration made moot by the probe
                        // below dies with the episode and is pruned lazily.
                        part.register_local(&template, w.clone());
                        let got = if remove {
                            part.try_get(&template)
                        } else {
                            part.try_rd(&template)
                        };
                        match got {
                            Some(b) => {
                                *cell = Reply::Filled(b);
                                drop(cell);
                                // Self-served: wake the parked requester.  A
                                // failed claim means a concurrent deposit (or
                                // the requester's timeout) already consumed
                                // the episode we just registered; if it was a
                                // deposit, its wake-up was spent on us, so
                                // re-donate one to the partition's remaining
                                // waiters.
                                if !w.wake() {
                                    part.rewake_local();
                                }
                            }
                            None => {
                                // Registered and no match yet: a future
                                // deposit on this owner wakes the requester
                                // across the fabric.
                                drop(cell);
                            }
                        }
                    }),
                );
            }
            let reason = w.park_until(&Value::sym("tuple-space"), deadline);
            // Whatever ended the park: a filled reply is our answer, and
            // anything else abandons this attempt so a late-running owner
            // closure cannot strand a removal.
            let filled = {
                let mut cell = reply.lock();
                match std::mem::replace(&mut *cell, Reply::Abandoned) {
                    Reply::Filled(b) => Some(b),
                    _ => None,
                }
            };
            if let Some(b) = filled {
                return Some(b);
            }
            match reason {
                WakeReason::Woken => {} // a deposit woke us: retry (the probe will see it)
                WakeReason::TimedOut | WakeReason::Cancelled => {
                    if w.retire() {
                        for &p in parts {
                            self.inner.partitions[p].rewake_local();
                        }
                    }
                    return None;
                }
            }
        }
    }

    /// Wraps the space as a substrate value.
    pub fn to_value(&self) -> Value {
        Value::native("sharded-tuple-space", Arc::new(self.clone()))
    }

    /// Recovers a space from a value.
    pub fn from_value(v: &Value) -> Option<ShardedSpace> {
        v.native_as::<ShardedSpace>().map(|s| (*s).clone())
    }
}
