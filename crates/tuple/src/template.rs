//! Tuples and templates.
//!
//! A tuple is a vector of substrate values; fields may be live threads
//! (deposited by `spawn`), in which case matching *demands* the thread's
//! value — stealing it onto the matcher's TCB when legal, exactly the
//! quasi-demand-driven behaviour of §4.2.
//!
//! A template is a tuple where some fields are *formals* (`?x` in the
//! paper's syntax): they match any field and acquire its value as a
//! binding.

use sting_core::tc;
use sting_core::thread::Thread;
use sting_value::Value;

/// One field of a [`Template`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateField {
    /// A literal: matches a field structurally equal to the value.
    Lit(Value),
    /// A formal (`?x`): matches anything, binding the field's value.
    Formal,
}

/// Shorthand for a literal template field.
pub fn lit(v: impl Into<Value>) -> TemplateField {
    TemplateField::Lit(v.into())
}

/// Shorthand for a formal template field.
pub fn formal() -> TemplateField {
    TemplateField::Formal
}

/// A matching pattern for tuple-space reads and removals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    fields: Vec<TemplateField>,
}

impl Template {
    /// Builds a template from fields (see [`lit`] and [`formal`]).
    pub fn new(fields: Vec<TemplateField>) -> Template {
        Template { fields }
    }

    /// A template of `n` formals (matches any tuple of arity `n`).
    pub fn any(n: usize) -> Template {
        Template {
            fields: (0..n).map(|_| TemplateField::Formal).collect(),
        }
    }

    /// The template's arity.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// The fields.
    pub fn fields(&self) -> &[TemplateField] {
        &self.fields
    }

    /// Position and value of the first literal field, if any — the hash
    /// key the space uses ("processes ... first hash on their non-formal
    /// tuple elements").
    pub fn hash_key(&self) -> Option<(usize, &Value)> {
        self.fields.iter().enumerate().find_map(|(i, f)| match f {
            TemplateField::Lit(v) => Some((i, v)),
            TemplateField::Formal => None,
        })
    }

    /// Cheap pre-check that never demands thread values: could `tuple`
    /// possibly match?  Used to filter candidates before the (potentially
    /// blocking) full match.
    pub fn may_match(&self, tuple: &[Value]) -> bool {
        if tuple.len() != self.fields.len() {
            return false;
        }
        self.fields.iter().zip(tuple).all(|(f, v)| match f {
            TemplateField::Formal => true,
            TemplateField::Lit(want) => {
                // A live thread field could evaluate to anything.
                is_thread(v) || want == v
            }
        })
    }

    /// Full match: demands thread-valued fields (stealing claimable ones,
    /// blocking on evaluating ones) and compares literals.  Returns the
    /// bindings of the formals, in order, on success.
    ///
    /// A thread field that determined with an exception never matches.
    pub fn match_tuple(&self, tuple: &[Value]) -> Option<Vec<Value>> {
        if tuple.len() != self.fields.len() {
            return None;
        }
        let mut bindings = Vec::new();
        for (f, v) in self.fields.iter().zip(tuple) {
            let resolved = resolve_field(v)?;
            match f {
                TemplateField::Formal => bindings.push(resolved),
                TemplateField::Lit(want) => {
                    if *want != resolved {
                        return None;
                    }
                }
            }
        }
        Some(bindings)
    }
}

fn is_thread(v: &Value) -> bool {
    v.as_native().is_some_and(|h| h.tag() == "thread")
}

/// Demands the value of a thread field ("the matching procedure applies
/// thread-value when it encounters a thread in a tuple"); passes other
/// values through.  `None` if the thread determined exceptionally.
fn resolve_field(v: &Value) -> Option<Value> {
    if is_thread(v) {
        let t = v.native_as::<Thread>().expect("tagged thread");
        tc::touch(&t).ok()
    } else {
        Some(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_and_formal_matching() {
        let t = Template::new(vec![lit("job"), formal()]);
        let bound = t.match_tuple(&[Value::from("job"), Value::Int(3)]).unwrap();
        assert_eq!(bound, vec![Value::Int(3)]);
        assert!(t
            .match_tuple(&[Value::from("ack"), Value::Int(3)])
            .is_none());
        assert!(t.match_tuple(&[Value::from("job")]).is_none(), "arity");
    }

    #[test]
    fn any_matches_by_arity() {
        let t = Template::any(2);
        assert!(t.match_tuple(&[Value::Int(1), Value::Int(2)]).is_some());
        assert!(t.match_tuple(&[Value::Int(1)]).is_none());
    }

    #[test]
    fn hash_key_is_first_literal() {
        let t = Template::new(vec![formal(), lit(5), lit(6)]);
        let (i, v) = t.hash_key().unwrap();
        assert_eq!(i, 1);
        assert_eq!(v, &Value::Int(5));
        assert!(Template::any(3).hash_key().is_none());
    }

    #[test]
    fn may_match_is_conservative() {
        let t = Template::new(vec![lit(1)]);
        assert!(t.may_match(&[Value::Int(1)]));
        assert!(!t.may_match(&[Value::Int(2)]));
        assert!(!t.may_match(&[Value::Int(1), Value::Int(1)]));
    }
}
