//! The general associative representation: the paper's dual hash tables.
//!
//! Tuples hash on `(arity, field₀)` into one of N buckets; a bucket holds
//! both the passive tuples (the paper's H_P) and the readers blocked on
//! templates with a literal first field (H_B).  Readers whose first field
//! is a formal cannot be bucketed and live in a per-space "wild" list.
//!
//! "The implementation minimizes synchronization overhead by associating a
//! mutex with every hash bin rather than having a global mutex on the
//! entire hash table" — construct with `buckets = 1` to get the global-lock
//! strawman the shape experiment compares against.

use crate::rep::{SpaceRep, StoredTuple};
use crate::template::Template;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use sting_sync::Waiter;
use sting_value::Value;

struct Blocked {
    template: Template,
    waiter: Waiter,
}

#[derive(Default)]
struct Bucket {
    /// H_P: passive tuples in this bin.
    tuples: Vec<StoredTuple>,
    /// H_B: readers blocked on templates hashing to this bin.
    blocked: Vec<Blocked>,
}

/// The fully associative representation (see module docs).
pub struct HashedRep {
    buckets: Vec<Mutex<Bucket>>,
    /// Readers whose template has no literal first field.
    wild: Mutex<Vec<Blocked>>,
}

/// The routing hash shared by the in-rep buckets and the cross-shard
/// partition map ([`crate::sharded`]): both address by `(arity, field₀)`,
/// so a sharded space's partition choice and the partition rep's bucket
/// choice are two moduli of the same key.
pub(crate) fn hash_key(arity: usize, f0: Option<&Value>) -> u64 {
    let mut h = DefaultHasher::new();
    arity.hash(&mut h);
    if let Some(v) = f0 {
        v.hash(&mut h);
    }
    h.finish()
}

impl HashedRep {
    /// Creates a representation with `buckets` bins (minimum 1).
    pub fn new(buckets: usize) -> HashedRep {
        let n = buckets.max(1);
        HashedRep {
            buckets: (0..n).map(|_| Mutex::new(Bucket::default())).collect(),
            wild: Mutex::new(Vec::new()),
        }
    }

    fn bucket_of_tuple(&self, tuple: &[Value]) -> usize {
        // A live-thread first field could evaluate to anything, so such
        // tuples are findable only via the scan path; hash them by arity.
        let f0 = tuple
            .first()
            .filter(|v| v.as_native().is_none_or(|h| h.tag() != "thread"));
        (hash_key(tuple.len(), f0) % self.buckets.len() as u64) as usize
    }

    /// Buckets a template must consult: its literal-keyed bucket plus the
    /// arity-only bucket where tuples with a live-thread first field live.
    /// `None` means "no usable key — scan everything".
    fn buckets_of_template(&self, t: &Template) -> Option<Vec<usize>> {
        match t.hash_key() {
            Some((0, v)) => {
                let lit = (hash_key(t.arity(), Some(v)) % self.buckets.len() as u64) as usize;
                let wildcard = (hash_key(t.arity(), None) % self.buckets.len() as u64) as usize;
                let mut v = vec![lit];
                if wildcard != lit {
                    v.push(wildcard);
                }
                Some(v)
            }
            _ => None,
        }
    }
}

impl SpaceRep for HashedRep {
    fn name(&self) -> String {
        format!("hashed({})", self.buckets.len())
    }

    fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.lock().tuples.len()).sum()
    }

    fn deposit(&self, tuple: StoredTuple) {
        let idx = self.bucket_of_tuple(&tuple);
        let wake: Vec<Waiter> = {
            let mut b = self.buckets[idx].lock();
            b.tuples.push(tuple.clone());
            // Wake (and deregister) blocked readers whose template could
            // match the new tuple; they re-run their match loop.
            let mut wake = Vec::new();
            b.blocked.retain(|bl| {
                if bl.template.may_match(&tuple) {
                    wake.push(bl.waiter.clone());
                    false
                } else {
                    true
                }
            });
            wake
        };
        let wake_wild: Vec<Waiter> = {
            let mut w = self.wild.lock();
            let mut wake = Vec::new();
            w.retain(|bl| {
                if bl.template.may_match(&tuple) {
                    wake.push(bl.waiter.clone());
                    false
                } else {
                    true
                }
            });
            wake
        };
        for w in wake.into_iter().chain(wake_wild) {
            w.wake();
        }
    }

    fn snapshot(&self, template: &Template) -> Vec<StoredTuple> {
        match self.buckets_of_template(template) {
            Some(idxs) => {
                let mut out = Vec::new();
                for i in idxs {
                    let b = self.buckets[i].lock();
                    out.extend(b.tuples.iter().filter(|t| template.may_match(t)).cloned());
                }
                out
            }
            None => {
                // No usable hash key: scan every bin (one lock at a time).
                let mut out = Vec::new();
                for b in &self.buckets {
                    let g = b.lock();
                    out.extend(g.tuples.iter().filter(|t| template.may_match(t)).cloned());
                }
                out
            }
        }
    }

    fn remove_exact(&self, tuple: &StoredTuple) -> bool {
        let idx = self.bucket_of_tuple(tuple);
        let mut b = self.buckets[idx].lock();
        match b.tuples.iter().position(|t| Arc::ptr_eq(t, tuple)) {
            Some(i) => {
                b.tuples.remove(i);
                true
            }
            None => false,
        }
    }

    fn register(&self, template: &Template, waiter: Waiter) {
        let blocked = Blocked {
            template: template.clone(),
            waiter,
        };
        match self.buckets_of_template(template) {
            Some(idxs) => {
                for i in idxs {
                    self.buckets[i].lock().blocked.push(Blocked {
                        template: blocked.template.clone(),
                        waiter: blocked.waiter.clone(),
                    });
                }
            }
            None => self.wild.lock().push(blocked),
        }
    }

    fn rewake_one(&self) {
        // Scan for one claimable reader; dead entries (cancelled, timed
        // out, or the duplicate registration of an already-woken reader)
        // are pruned along the way.
        for b in &self.buckets {
            let mut g = b.lock();
            let mut woken = false;
            g.blocked.retain(|bl| {
                if woken {
                    return true;
                }
                woken = bl.waiter.wake();
                false
            });
            if woken {
                return;
            }
        }
        let mut w = self.wild.lock();
        let mut woken = false;
        w.retain(|bl| {
            if woken {
                return true;
            }
            woken = bl.waiter.wake();
            false
        });
    }

    fn waiting(&self) -> usize {
        self.buckets
            .iter()
            .map(|b| {
                b.lock()
                    .blocked
                    .iter()
                    .filter(|bl| bl.waiter.is_live())
                    .count()
            })
            .sum::<usize>()
            + self
                .wild
                .lock()
                .iter()
                .filter(|bl| bl.waiter.is_live())
                .count()
    }
}
