//! Representation specialization: choosing a [`SpaceKind`] from a usage
//! pattern.
//!
//! The paper builds "a customized type inference procedure to specialize
//! the representation of tuple-spaces whenever possible" (Jagannathan,
//! *Optimizing Analysis for First-Class Tuple-Spaces*).  There the
//! analysis runs over Scheme source; here the same decision procedure runs
//! over [`OpSketch`]es — the shapes of the `put`/`get`/`rd` operations a
//! compiler (or a programmer) observed against the space.
//!
//! The rules, applied in order (first match wins):
//!
//! 1. every operation has arity 0 → [`SpaceKind::Semaphore`];
//! 2. arity is uniformly 2, every `put` writes an integer first field and
//!    every read pins the first field to an integer literal and binds the
//!    second → [`SpaceKind::Vector`];
//! 3. every read binds all fields (no associative matching) and removals
//!    occur → [`SpaceKind::Queue`] (FIFO preserves producer order);
//! 4. every read binds all fields and there are **no** removals →
//!    [`SpaceKind::SharedVar`] (reads of the latest deposit);
//! 5. otherwise → the general [`SpaceKind::Hashed`] representation.

use crate::space::SpaceKind;

/// The shape of one tuple-space operation, as seen by analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpSketch {
    /// A deposit of the given arity; `int_first` when the first field is
    /// statically an integer.
    Put {
        /// Tuple arity.
        arity: usize,
        /// First field statically an integer?
        int_first: bool,
    },
    /// A removal with the given template shape.
    Get {
        /// Template arity.
        arity: usize,
        /// All fields formal?
        all_formal: bool,
        /// First field a literal integer?
        int_first_lit: bool,
    },
    /// A read with the given template shape.
    Rd {
        /// Template arity.
        arity: usize,
        /// All fields formal?
        all_formal: bool,
        /// First field a literal integer?
        int_first_lit: bool,
    },
}

impl OpSketch {
    fn arity(self) -> usize {
        match self {
            OpSketch::Put { arity, .. }
            | OpSketch::Get { arity, .. }
            | OpSketch::Rd { arity, .. } => arity,
        }
    }
}

/// Chooses a representation for a space used as described by `ops`.
///
/// An empty `ops` (nothing known) yields the general representation.
pub fn infer(ops: &[OpSketch]) -> SpaceKind {
    if ops.is_empty() {
        return SpaceKind::default();
    }
    // Rule 1: semaphore.
    if ops.iter().all(|o| o.arity() == 0) {
        return SpaceKind::Semaphore;
    }
    // Rule 2: synchronized vector.
    let vector_ok = ops.iter().all(|o| match *o {
        OpSketch::Put { arity, int_first } => arity == 2 && int_first,
        OpSketch::Get {
            arity,
            all_formal,
            int_first_lit,
        }
        | OpSketch::Rd {
            arity,
            all_formal,
            int_first_lit,
        } => arity == 2 && !all_formal && int_first_lit,
    });
    if vector_ok {
        return SpaceKind::Vector;
    }
    // Rules 3 and 4: no associative matching at all.
    let reads_all_formal = ops.iter().all(|o| match *o {
        OpSketch::Put { .. } => true,
        OpSketch::Get { all_formal, .. } | OpSketch::Rd { all_formal, .. } => all_formal,
    });
    if reads_all_formal {
        let has_get = ops.iter().any(|o| matches!(o, OpSketch::Get { .. }));
        return if has_get {
            SpaceKind::Queue
        } else {
            SpaceKind::SharedVar
        };
    }
    // Rule 5: general case.
    SpaceKind::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_empty_tuples_is_semaphore() {
        let ops = [
            OpSketch::Put {
                arity: 0,
                int_first: false,
            },
            OpSketch::Get {
                arity: 0,
                all_formal: true,
                int_first_lit: false,
            },
        ];
        assert_eq!(infer(&ops), SpaceKind::Semaphore);
    }

    #[test]
    fn indexed_pairs_are_a_vector() {
        let ops = [
            OpSketch::Put {
                arity: 2,
                int_first: true,
            },
            OpSketch::Rd {
                arity: 2,
                all_formal: false,
                int_first_lit: true,
            },
        ];
        assert_eq!(infer(&ops), SpaceKind::Vector);
    }

    #[test]
    fn formal_only_reads_with_removal_are_a_queue() {
        let ops = [
            OpSketch::Put {
                arity: 3,
                int_first: false,
            },
            OpSketch::Get {
                arity: 3,
                all_formal: true,
                int_first_lit: false,
            },
        ];
        assert_eq!(infer(&ops), SpaceKind::Queue);
    }

    #[test]
    fn formal_only_reads_without_removal_are_a_shared_var() {
        let ops = [
            OpSketch::Put {
                arity: 1,
                int_first: false,
            },
            OpSketch::Rd {
                arity: 1,
                all_formal: true,
                int_first_lit: false,
            },
        ];
        assert_eq!(infer(&ops), SpaceKind::SharedVar);
    }

    #[test]
    fn associative_usage_stays_hashed() {
        let ops = [
            OpSketch::Put {
                arity: 2,
                int_first: false,
            },
            OpSketch::Get {
                arity: 2,
                all_formal: false,
                int_first_lit: false,
            },
        ];
        assert_eq!(infer(&ops), SpaceKind::default());
    }

    #[test]
    fn unknown_usage_stays_hashed() {
        assert_eq!(infer(&[]), SpaceKind::default());
    }
}
