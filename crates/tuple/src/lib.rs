//! # sting-tuple — first-class tuple spaces over the STING substrate
//!
//! An optimizing implementation of first-class tuple-spaces (§4.2 of the
//! paper): denotable [`TupleSpace`] objects with `put`/`get`/`rd`, active
//! tuples via [`TupleSpace::spawn`] whose fields are live threads matched
//! by demand (with stealing), the dual hash-table representation with a
//! mutex per bucket, and representation specialization
//! ([`specialize::infer`]) mirroring the paper's type-inference-driven
//! choice of vectors, queues, sets, shared variables, semaphores and bags.
//!
//! ```
//! use sting_core::VmBuilder;
//! use sting_tuple::{formal, lit, Template, TupleSpace};
//! use sting_value::Value;
//!
//! let vm = VmBuilder::new().vps(1).build();
//! let ts = TupleSpace::new();
//! let r = {
//!     let ts = ts.clone();
//!     vm.run(move |_cx| {
//!         ts.put(vec![Value::sym("job"), Value::Int(17)]);
//!         let bound = ts.get(&Template::new(vec![lit(Value::sym("job")), formal()]));
//!         bound[0].clone()
//!     })
//! };
//! assert_eq!(r.unwrap().as_int(), Some(17));
//! vm.shutdown();
//! ```

#![deny(missing_docs)]

pub mod hashed;
pub mod rep;
pub mod sharded;
pub mod space;
pub mod specialize;
pub mod template;

pub use sharded::ShardedSpace;
pub use space::{SpaceKind, TupleSpace};
pub use specialize::{infer, OpSketch};
pub use template::{formal, lit, Template, TemplateField};
