//! Tuple-space representations.
//!
//! "Tuple-spaces can be specialized as synchronized vectors, queues, sets,
//! shared variables, semaphores, or bags; the operations permitted on
//! tuple-spaces remain invariant over their representation."  Every
//! representation implements [`SpaceRep`]; the general associative
//! representation (the paper's dual hash tables) lives in
//! [`crate::hashed`].
//!
//! ## Locking discipline
//!
//! A full template match may *block* (a tuple field can be a live thread
//! whose value the match demands), and blocking while holding an internal
//! lock would wedge the whole VP.  Representations therefore never match
//! under their locks; the space uses a match-then-remove protocol:
//!
//! 1. [`SpaceRep::snapshot`] — under the lock, collect cheaply-plausible
//!    candidates ([`Template::may_match`]) and release the lock;
//! 2. full-match each candidate outside any lock (may steal/block);
//! 3. for removals, [`SpaceRep::remove_exact`] — re-take the lock and
//!    remove the candidate *by identity*; if another getter won the race,
//!    the match loop simply continues.

use crate::template::Template;
use parking_lot::Mutex;
use std::sync::Arc;
use sting_sync::{WaitList, Waiter};
use sting_value::Value;

/// A stored tuple; identity (`Arc` pointer) is what removal races on.
pub type StoredTuple = Arc<Vec<Value>>;

/// Interface every tuple-space representation implements.
pub trait SpaceRep: Send + Sync {
    /// Representation name (diagnostics; `"queue"`, `"hashed(64)"`, …).
    fn name(&self) -> String;

    /// Number of tuples currently stored.
    fn len(&self) -> usize;

    /// Whether the representation holds no tuples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deposits a tuple and wakes plausibly-matching blocked readers.
    ///
    /// # Panics
    ///
    /// Specialized representations panic when the tuple violates their
    /// shape contract (e.g. a non-`[index value]` tuple in a vector) —
    /// the specialization was chosen by analysis and a violation is a
    /// program error, as in the paper's typed tuple-spaces.
    fn deposit(&self, tuple: StoredTuple);

    /// Candidates that may match `template` (filtered by
    /// [`Template::may_match`]), in the representation's preferred order.
    fn snapshot(&self, template: &Template) -> Vec<StoredTuple>;

    /// Removes `tuple` by identity; `false` if it was already taken.
    fn remove_exact(&self, tuple: &StoredTuple) -> bool;

    /// Registers a blocked reader to be woken by matching deposits.
    fn register(&self, template: &Template, waiter: Waiter);

    /// Wakes one live blocked reader, if any: used by the space to
    /// re-donate a wake-up it claimed but did not need (it found a tuple
    /// by scanning before parking), so representations that spend exactly
    /// one wake-up per deposit (the semaphore) lose nothing.
    fn rewake_one(&self);

    /// Number of live blocked readers (cancelled and woken episodes do
    /// not count; representations that register a reader in more than one
    /// bin may count it more than once).
    fn waiting(&self) -> usize;
}

/// Element order of a [`ListRep`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListOrder {
    /// Oldest first (queue).
    Fifo,
    /// Newest first (stack).
    Lifo,
    /// Unspecified (bag / set).
    Unordered,
}

/// A list-shaped representation: queue, stack, bag or set.
pub struct ListRep {
    order: ListOrder,
    /// Sets reject duplicate tuples on deposit.
    dedup: bool,
    state: Mutex<(Vec<StoredTuple>, WaitList)>,
}

impl ListRep {
    /// Creates a list representation.
    pub fn new(order: ListOrder, dedup: bool) -> ListRep {
        ListRep {
            order,
            dedup,
            state: Mutex::new((Vec::new(), WaitList::new())),
        }
    }
}

impl SpaceRep for ListRep {
    fn name(&self) -> String {
        match (self.order, self.dedup) {
            (ListOrder::Fifo, _) => "queue".to_string(),
            (ListOrder::Lifo, _) => "stack".to_string(),
            (ListOrder::Unordered, true) => "set".to_string(),
            (ListOrder::Unordered, false) => "bag".to_string(),
        }
    }

    fn len(&self) -> usize {
        self.state.lock().0.len()
    }

    fn deposit(&self, tuple: StoredTuple) {
        let mut g = self.state.lock();
        if self.dedup && g.0.iter().any(|t| **t == *tuple) {
            return;
        }
        g.0.push(tuple);
        g.1.wake_all();
    }

    fn snapshot(&self, template: &Template) -> Vec<StoredTuple> {
        let g = self.state.lock();
        let mut v: Vec<StoredTuple> =
            g.0.iter()
                .filter(|t| template.may_match(t))
                .cloned()
                .collect();
        if self.order == ListOrder::Lifo {
            v.reverse();
        }
        v
    }

    fn remove_exact(&self, tuple: &StoredTuple) -> bool {
        let mut g = self.state.lock();
        match g.0.iter().position(|t| Arc::ptr_eq(t, tuple)) {
            Some(i) => {
                g.0.remove(i);
                true
            }
            None => false,
        }
    }

    fn register(&self, _template: &Template, waiter: Waiter) {
        self.state.lock().1.push(waiter);
    }

    fn rewake_one(&self) {
        self.state.lock().1.wake_one();
    }

    fn waiting(&self) -> usize {
        self.state.lock().1.len()
    }
}

/// A shared variable: holds at most one tuple; deposits replace it.
pub struct CellRep {
    state: Mutex<(Option<StoredTuple>, WaitList)>,
}

impl CellRep {
    /// Creates an empty shared variable.
    pub fn new() -> CellRep {
        CellRep {
            state: Mutex::new((None, WaitList::new())),
        }
    }
}

impl Default for CellRep {
    fn default() -> CellRep {
        CellRep::new()
    }
}

impl SpaceRep for CellRep {
    fn name(&self) -> String {
        "shared-variable".to_string()
    }

    fn len(&self) -> usize {
        usize::from(self.state.lock().0.is_some())
    }

    fn deposit(&self, tuple: StoredTuple) {
        let mut g = self.state.lock();
        g.0 = Some(tuple);
        g.1.wake_all();
    }

    fn snapshot(&self, template: &Template) -> Vec<StoredTuple> {
        let g = self.state.lock();
        g.0.iter()
            .filter(|t| template.may_match(t))
            .cloned()
            .collect()
    }

    fn remove_exact(&self, tuple: &StoredTuple) -> bool {
        let mut g = self.state.lock();
        if g.0.as_ref().is_some_and(|t| Arc::ptr_eq(t, tuple)) {
            g.0 = None;
            true
        } else {
            false
        }
    }

    fn register(&self, _template: &Template, waiter: Waiter) {
        self.state.lock().1.push(waiter);
    }

    fn rewake_one(&self) {
        self.state.lock().1.wake_one();
    }

    fn waiting(&self) -> usize {
        self.state.lock().1.len()
    }
}

/// A semaphore: counts empty (arity-0) tuples.
pub struct CountRep {
    state: Mutex<(usize, WaitList)>,
    empty: StoredTuple,
}

impl CountRep {
    /// Creates a semaphore representation holding `initial` signals.
    pub fn new(initial: usize) -> CountRep {
        CountRep {
            state: Mutex::new((initial, WaitList::new())),
            empty: Arc::new(Vec::new()),
        }
    }
}

impl SpaceRep for CountRep {
    fn name(&self) -> String {
        "semaphore".to_string()
    }

    fn len(&self) -> usize {
        self.state.lock().0
    }

    fn deposit(&self, tuple: StoredTuple) {
        assert!(
            tuple.is_empty(),
            "semaphore tuple-space holds only empty tuples; got arity {}",
            tuple.len()
        );
        let mut g = self.state.lock();
        g.0 += 1;
        g.1.wake_one();
    }

    fn snapshot(&self, template: &Template) -> Vec<StoredTuple> {
        if template.arity() != 0 {
            return Vec::new();
        }
        let g = self.state.lock();
        if g.0 > 0 {
            vec![self.empty.clone()]
        } else {
            Vec::new()
        }
    }

    fn remove_exact(&self, _tuple: &StoredTuple) -> bool {
        let mut g = self.state.lock();
        if g.0 > 0 {
            g.0 -= 1;
            true
        } else {
            false
        }
    }

    fn register(&self, _template: &Template, waiter: Waiter) {
        self.state.lock().1.push(waiter);
    }

    fn rewake_one(&self) {
        self.state.lock().1.wake_one();
    }

    fn waiting(&self) -> usize {
        self.state.lock().1.len()
    }
}

/// A synchronized vector: tuples are `[index value]`; reads of an unset
/// index block until it is written (I-structure semantics per slot).
pub struct VectorRep {
    state: Mutex<(Vec<Option<StoredTuple>>, WaitList)>,
}

impl VectorRep {
    /// Creates an empty synchronized vector (grows on demand).
    pub fn new() -> VectorRep {
        VectorRep {
            state: Mutex::new((Vec::new(), WaitList::new())),
        }
    }

    fn index_of(tuple: &[Value]) -> usize {
        assert!(
            tuple.len() == 2,
            "vector tuple-space holds [index value] pairs; got arity {}",
            tuple.len()
        );
        let i = tuple[0]
            .as_int()
            .expect("vector tuple-space index must be an integer");
        usize::try_from(i).expect("vector tuple-space index must be non-negative")
    }
}

impl Default for VectorRep {
    fn default() -> VectorRep {
        VectorRep::new()
    }
}

impl SpaceRep for VectorRep {
    fn name(&self) -> String {
        "vector".to_string()
    }

    fn len(&self) -> usize {
        self.state.lock().0.iter().flatten().count()
    }

    fn deposit(&self, tuple: StoredTuple) {
        let i = VectorRep::index_of(&tuple);
        let mut g = self.state.lock();
        if g.0.len() <= i {
            g.0.resize(i + 1, None);
        }
        g.0[i] = Some(tuple);
        g.1.wake_all();
    }

    fn snapshot(&self, template: &Template) -> Vec<StoredTuple> {
        let g = self.state.lock();
        // Fast path: indexed lookup when the template pins the index.
        if let Some((0, v)) = template.hash_key() {
            if let Some(i) = v.as_int().and_then(|i| usize::try_from(i).ok()) {
                return g
                    .0
                    .get(i)
                    .and_then(|s| s.clone())
                    .filter(|t| template.may_match(t))
                    .into_iter()
                    .collect();
            }
        }
        g.0.iter()
            .flatten()
            .filter(|t| template.may_match(t))
            .cloned()
            .collect()
    }

    fn remove_exact(&self, tuple: &StoredTuple) -> bool {
        let i = VectorRep::index_of(tuple);
        let mut g = self.state.lock();
        if g.0
            .get(i)
            .is_some_and(|s| s.as_ref().is_some_and(|t| Arc::ptr_eq(t, tuple)))
        {
            g.0[i] = None;
            true
        } else {
            false
        }
    }

    fn register(&self, _template: &Template, waiter: Waiter) {
        self.state.lock().1.push(waiter);
    }

    fn rewake_one(&self) {
        self.state.lock().1.wake_one();
    }

    fn waiting(&self) -> usize {
        self.state.lock().1.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::{formal, lit, Template};
    use sting_value::Value;

    fn tup(items: &[i64]) -> StoredTuple {
        Arc::new(items.iter().map(|&i| Value::Int(i)).collect())
    }

    #[test]
    fn list_rep_orders() {
        let fifo = ListRep::new(ListOrder::Fifo, false);
        let lifo = ListRep::new(ListOrder::Lifo, false);
        for i in 0..3 {
            fifo.deposit(tup(&[i]));
            lifo.deposit(tup(&[i]));
        }
        let t = Template::any(1);
        assert_eq!(fifo.snapshot(&t)[0][0], Value::Int(0), "fifo oldest first");
        assert_eq!(lifo.snapshot(&t)[0][0], Value::Int(2), "lifo newest first");
    }

    #[test]
    fn set_rep_dedups_but_bag_does_not() {
        let set = ListRep::new(ListOrder::Unordered, true);
        let bag = ListRep::new(ListOrder::Unordered, false);
        for _ in 0..3 {
            set.deposit(tup(&[7]));
            bag.deposit(tup(&[7]));
        }
        assert_eq!(set.len(), 1);
        assert_eq!(bag.len(), 3);
    }

    #[test]
    fn remove_exact_is_identity_based() {
        let rep = ListRep::new(ListOrder::Fifo, false);
        let a = tup(&[1]);
        let b = tup(&[1]); // equal contents, different identity
        rep.deposit(a.clone());
        assert!(!rep.remove_exact(&b), "equal-but-distinct must not remove");
        assert!(rep.remove_exact(&a));
        assert!(!rep.remove_exact(&a), "second removal fails");
    }

    #[test]
    fn cell_rep_replaces() {
        let cell = CellRep::new();
        cell.deposit(tup(&[1]));
        cell.deposit(tup(&[2]));
        assert_eq!(cell.len(), 1);
        let t = Template::any(1);
        assert_eq!(cell.snapshot(&t)[0][0], Value::Int(2));
    }

    #[test]
    fn count_rep_counts() {
        let sem = CountRep::new(1);
        assert_eq!(sem.len(), 1);
        sem.deposit(Arc::new(Vec::new()));
        assert_eq!(sem.len(), 2);
        let t = Template::any(0);
        let snap = sem.snapshot(&t);
        assert_eq!(snap.len(), 1);
        assert!(sem.remove_exact(&snap[0]));
        assert!(sem.remove_exact(&snap[0]));
        assert!(!sem.remove_exact(&snap[0]), "empty semaphore");
    }

    #[test]
    #[should_panic(expected = "semaphore tuple-space holds only empty tuples")]
    fn count_rep_rejects_nonempty() {
        CountRep::new(0).deposit(tup(&[1]));
    }

    #[test]
    fn vector_rep_indexes_and_replaces() {
        let v = VectorRep::new();
        v.deposit(tup(&[2, 20]));
        v.deposit(tup(&[0, 0]));
        v.deposit(tup(&[2, 99])); // replaces index 2
        assert_eq!(v.len(), 2);
        let t = Template::new(vec![lit(2), formal()]);
        let snap = v.snapshot(&t);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0][1], Value::Int(99));
    }

    #[test]
    #[should_panic(expected = "vector tuple-space holds [index value] pairs")]
    fn vector_rep_rejects_bad_arity() {
        VectorRep::new().deposit(tup(&[1, 2, 3]));
    }
}
