//! First-class tuple spaces.
//!
//! A [`TupleSpace`] is "an abstraction of a synchronizing
//! content-addressable memory".  Unlike C.Linda's single anonymous tuple
//! space, spaces here are denotable objects: they convert to substrate
//! values, can be stored in tuples, and may form an *inheritance
//! hierarchy* — a read that misses in a space continues in its parent.
//!
//! Operations (names follow the paper/Linda):
//!
//! * [`TupleSpace::put`] (`out`) — deposit a passive tuple.
//! * [`TupleSpace::get`] (`in`/the paper's `get`) — blocking removal.
//! * [`TupleSpace::rd`] — blocking read without removal.
//! * [`TupleSpace::spawn`] — deposit an *active* tuple whose fields are
//!   live threads; matching demands (and may steal) their values.

use crate::hashed::HashedRep;
use crate::rep::{CellRep, CountRep, ListOrder, ListRep, SpaceRep, VectorRep};
use crate::template::Template;
use std::sync::Arc;
use std::time::{Duration, Instant};
use sting_core::tc::Cx;
use sting_core::vm::Vm;
use sting_sync::{Waiter, WakeReason};
use sting_value::Value;

/// Representation choice for a tuple space (see [`crate::specialize`] for
/// choosing one from a usage pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceKind {
    /// General associative storage with `buckets` hash bins.
    Hashed {
        /// Number of hash bins (1 = the global-lock configuration).
        buckets: usize,
    },
    /// FIFO queue.
    Queue,
    /// LIFO stack.
    Stack,
    /// Unordered collection.
    Bag,
    /// Unordered collection without duplicates.
    Set,
    /// Single mutable slot; deposits replace.
    SharedVar,
    /// Counter of empty tuples.
    Semaphore,
    /// Indexed `[index value]` storage with per-slot synchronization.
    Vector,
}

impl Default for SpaceKind {
    fn default() -> SpaceKind {
        SpaceKind::Hashed { buckets: 64 }
    }
}

struct SpaceInner {
    rep: Box<dyn SpaceRep>,
    parent: Option<TupleSpace>,
}

/// A first-class tuple space; clones share the space.
#[derive(Clone)]
pub struct TupleSpace {
    inner: Arc<SpaceInner>,
}

impl std::fmt::Debug for TupleSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TupleSpace")
            .field("rep", &self.inner.rep.name())
            .field("len", &self.len())
            .finish()
    }
}

impl Default for TupleSpace {
    fn default() -> TupleSpace {
        TupleSpace::new()
    }
}

impl TupleSpace {
    /// A general associative tuple space (64 hash bins).
    pub fn new() -> TupleSpace {
        TupleSpace::with_kind(SpaceKind::default())
    }

    /// A tuple space with an explicit representation.
    pub fn with_kind(kind: SpaceKind) -> TupleSpace {
        TupleSpace::build(kind, None)
    }

    /// A tuple space whose representation is chosen by analysis of its
    /// usage pattern (the paper's type-inference-driven specialization;
    /// see [`crate::specialize`] for the rules).
    pub fn specialized(ops: &[crate::specialize::OpSketch]) -> TupleSpace {
        TupleSpace::with_kind(crate::specialize::infer(ops))
    }

    /// A tuple space inheriting from `parent`: reads that miss here
    /// continue (and block on) the parent chain; deposits stay local.
    pub fn with_parent(kind: SpaceKind, parent: &TupleSpace) -> TupleSpace {
        TupleSpace::build(kind, Some(parent.clone()))
    }

    fn build(kind: SpaceKind, parent: Option<TupleSpace>) -> TupleSpace {
        let rep: Box<dyn SpaceRep> = match kind {
            SpaceKind::Hashed { buckets } => Box::new(HashedRep::new(buckets)),
            SpaceKind::Queue => Box::new(ListRep::new(ListOrder::Fifo, false)),
            SpaceKind::Stack => Box::new(ListRep::new(ListOrder::Lifo, false)),
            SpaceKind::Bag => Box::new(ListRep::new(ListOrder::Unordered, false)),
            SpaceKind::Set => Box::new(ListRep::new(ListOrder::Unordered, true)),
            SpaceKind::SharedVar => Box::new(CellRep::new()),
            SpaceKind::Semaphore => Box::new(CountRep::new(0)),
            SpaceKind::Vector => Box::new(VectorRep::new()),
        };
        TupleSpace {
            inner: Arc::new(SpaceInner { rep, parent }),
        }
    }

    /// The representation's name (e.g. `"hashed(64)"`, `"queue"`).
    pub fn rep_name(&self) -> String {
        self.inner.rep.name()
    }

    /// Tuples stored locally (excluding parents).
    pub fn len(&self) -> usize {
        self.inner.rep.len()
    }

    /// Whether the local space holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deposits a passive tuple (`out` / the paper's `put`).
    pub fn put(&self, fields: Vec<Value>) {
        self.inner.rep.deposit(Arc::new(fields));
    }

    /// Deposits an *active* tuple: each thunk is forked as a stealable
    /// thread, and the tuple's fields are those live threads (the paper's
    /// `spawn TS [E1 E2]`).  Matching against the tuple demands the
    /// threads' values — stealing claimable ones onto the matcher's TCB.
    pub fn spawn(&self, cx: &Cx, thunks: Vec<sting_core::Thunk>) {
        let fields: Vec<Value> = thunks
            .into_iter()
            .map(|thunk| cx.vm().fork_thunk(thunk).to_value())
            .collect();
        self.put(fields);
    }

    /// Like [`TupleSpace::spawn`] from outside the machine.
    pub fn spawn_on_vm(&self, vm: &Arc<Vm>, thunks: Vec<sting_core::Thunk>) {
        let fields: Vec<Value> = thunks
            .into_iter()
            .map(|thunk| vm.fork_thunk(thunk).to_value())
            .collect();
        self.put(fields);
    }

    /// Non-blocking removal: bindings of the first matching tuple, if any.
    pub fn try_get(&self, template: &Template) -> Option<Vec<Value>> {
        self.try_op(template, true)
    }

    /// Non-blocking read.
    pub fn try_rd(&self, template: &Template) -> Option<Vec<Value>> {
        self.try_op(template, false)
    }

    /// Blocking removal (`in`): waits until a matching tuple is deposited.
    pub fn get(&self, template: &Template) -> Vec<Value> {
        self.blocking_op(template, true)
    }

    /// Blocking read (`rd`): like [`TupleSpace::get`] without removal.
    pub fn rd(&self, template: &Template) -> Vec<Value> {
        self.blocking_op(template, false)
    }

    /// [`TupleSpace::get`] with a timeout: `None` if no matching tuple
    /// was deposited within `timeout`.
    pub fn get_timeout(&self, template: &Template, timeout: Duration) -> Option<Vec<Value>> {
        self.blocking_op_deadline(template, true, Some(Instant::now() + timeout))
    }

    /// [`TupleSpace::rd`] with a timeout: `None` if no matching tuple was
    /// deposited within `timeout`.
    pub fn rd_timeout(&self, template: &Template, timeout: Duration) -> Option<Vec<Value>> {
        self.blocking_op_deadline(template, false, Some(Instant::now() + timeout))
    }

    /// Number of live readers blocked on the local space (parents not
    /// counted; the hashed representation may count a reader once per bin
    /// it registered in).
    pub fn blocked(&self) -> usize {
        self.inner.rep.waiting()
    }

    /// Atomically removes a matching tuple, applies `f` to its bindings,
    /// and deposits `f`'s result — the paper's
    /// `(get TS [?x] (put TS [(+ x 1)]))` idiom packaged as a helper.
    pub fn update(&self, template: &Template, f: impl FnOnce(Vec<Value>) -> Vec<Value>) {
        let bindings = self.get(template);
        self.put(f(bindings));
    }

    fn chain(&self) -> Vec<&TupleSpace> {
        let mut out = vec![self];
        let mut cur = self;
        while let Some(p) = &cur.inner.parent {
            out.push(p);
            cur = p;
        }
        out
    }

    fn try_op(&self, template: &Template, remove: bool) -> Option<Vec<Value>> {
        for space in self.chain() {
            for cand in space.inner.rep.snapshot(template) {
                if let Some(bindings) = template.match_tuple(&cand) {
                    if !remove || space.inner.rep.remove_exact(&cand) {
                        return Some(bindings);
                    }
                    // Lost the removal race; keep scanning.
                }
            }
        }
        None
    }

    fn blocking_op(&self, template: &Template, remove: bool) -> Vec<Value> {
        loop {
            // `None` without a deadline means the wait episode was
            // cancelled without unwinding this frame; re-arm and retry.
            if let Some(b) = self.blocking_op_deadline(template, remove, None) {
                return b;
            }
        }
    }

    fn blocking_op_deadline(
        &self,
        template: &Template,
        remove: bool,
        deadline: Option<Instant>,
    ) -> Option<Vec<Value>> {
        loop {
            if let Some(b) = self.try_op(template, remove) {
                return Some(b);
            }
            // Register one wait episode in every space of the chain, then
            // re-check once to close the deposit race, then park.
            let w = Waiter::current();
            for space in self.chain() {
                space.inner.rep.register(template, w.clone());
            }
            if let Some(b) = self.try_op(template, remove) {
                if w.retire() {
                    // A deposit spent its wake-up on this episode but we
                    // served ourselves by scanning; pass the wake-up on so
                    // one-wake-per-deposit representations lose nothing.
                    self.rewake_chain();
                }
                return Some(b);
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    if w.retire() {
                        self.rewake_chain();
                    }
                    return None;
                }
            }
            match w.park_until(&Value::sym("tuple-space"), deadline) {
                WakeReason::Woken => {}
                WakeReason::TimedOut | WakeReason::Cancelled => return None,
            }
        }
    }

    fn rewake_chain(&self) {
        for space in self.chain() {
            space.inner.rep.rewake_one();
        }
    }

    /// Registers a wait episode in this space only (no parent chain) —
    /// the sharded fabric registers per partition, and partitions are
    /// parentless by construction.
    pub(crate) fn register_local(&self, template: &Template, waiter: Waiter) {
        self.inner.rep.register(template, waiter);
    }

    /// Re-donates one wake-up to this space only (no parent chain).
    pub(crate) fn rewake_local(&self) {
        self.inner.rep.rewake_one();
    }

    /// Wraps the space as a substrate value (spaces are first-class).
    pub fn to_value(&self) -> Value {
        Value::native("tuple-space", Arc::new(self.clone()))
    }

    /// Recovers a space from a value.
    pub fn from_value(v: &Value) -> Option<TupleSpace> {
        v.native_as::<TupleSpace>().map(|s| (*s).clone())
    }
}
