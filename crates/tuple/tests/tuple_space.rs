//! Behavioural tests for first-class tuple spaces.

use std::sync::Arc;
use std::time::Duration;
use sting_core::{tc, VmBuilder};
use sting_tuple::{formal, lit, SpaceKind, Template, TupleSpace};
use sting_value::Value;

fn job(n: i64) -> Vec<Value> {
    vec![Value::sym("job"), Value::Int(n)]
}

#[test]
fn put_then_get_binds_formals() {
    let ts = TupleSpace::new();
    ts.put(job(5));
    let b = ts.try_get(&Template::new(vec![lit(Value::sym("job")), formal()]));
    assert_eq!(b, Some(vec![Value::Int(5)]));
    assert!(ts.is_empty(), "get removed the tuple");
}

#[test]
fn rd_does_not_remove() {
    let ts = TupleSpace::new();
    ts.put(job(5));
    let t = Template::new(vec![lit(Value::sym("job")), formal()]);
    assert!(ts.try_rd(&t).is_some());
    assert!(ts.try_rd(&t).is_some());
    assert_eq!(ts.len(), 1);
}

#[test]
fn literal_mismatch_does_not_match() {
    let ts = TupleSpace::new();
    ts.put(job(5));
    assert!(ts
        .try_get(&Template::new(vec![lit(Value::sym("ack")), formal()]))
        .is_none());
    assert!(ts
        .try_get(&Template::new(vec![lit(Value::sym("job")), lit(9)]))
        .is_none());
    assert!(ts
        .try_get(&Template::new(vec![lit(Value::sym("job")), lit(5)]))
        .is_some());
}

#[test]
fn get_blocks_until_put() {
    let vm = VmBuilder::new().vps(1).build();
    let ts = TupleSpace::new();
    let ts2 = ts.clone();
    let getter = vm.fork(move |_cx| {
        let b = ts2.get(&Template::new(vec![lit(Value::sym("job")), formal()]));
        b[0].clone()
    });
    std::thread::sleep(Duration::from_millis(20));
    assert!(!getter.is_determined(), "get must block on empty space");
    ts.put(job(42));
    assert_eq!(getter.join_blocking(), Ok(Value::Int(42)));
    vm.shutdown();
}

#[test]
fn formal_first_field_templates_scan() {
    let ts = TupleSpace::new();
    ts.put(vec![Value::Int(1), Value::sym("a")]);
    ts.put(vec![Value::Int(2), Value::sym("b")]);
    // Template [?x 'b] has a formal first field: must still find the tuple.
    let b = ts
        .try_get(&Template::new(vec![formal(), lit(Value::sym("b"))]))
        .unwrap();
    assert_eq!(b, vec![Value::Int(2)]);
}

#[test]
fn counter_update_idiom() {
    let vm = VmBuilder::new().vps(2).build();
    let ts = TupleSpace::new();
    ts.put(vec![Value::Int(0)]);
    let mut workers = Vec::new();
    for _ in 0..4 {
        let ts = ts.clone();
        workers.push(vm.fork(move |_cx| {
            for _ in 0..50 {
                // (get TS [?x] (put TS [(+ x 1)]))
                ts.update(&Template::any(1), |b| {
                    vec![Value::Int(b[0].as_int().unwrap() + 1)]
                });
            }
            0i64
        }));
    }
    for w in workers {
        w.join_blocking().unwrap();
    }
    let b = ts.try_rd(&Template::any(1)).unwrap();
    assert_eq!(b[0], Value::Int(200));
    vm.shutdown();
}

#[test]
fn spawn_creates_active_tuple_matched_by_demand() {
    let vm = VmBuilder::new().vps(1).build();
    let ts = TupleSpace::new();
    let ts2 = ts.clone();
    let before = vm.counters().snapshot();
    let r = vm.run(move |cx| {
        ts2.spawn(
            cx,
            vec![
                Box::new(|_cx: &sting_core::Cx| Value::Int(11)),
                Box::new(|_cx: &sting_core::Cx| Value::Int(22)),
            ],
        );
        // Matching demands the threads' values (stealing them if they have
        // not started).
        let b = ts2.get(&Template::new(vec![formal(), formal()]));
        b[0].as_int().unwrap() + b[1].as_int().unwrap()
    });
    assert_eq!(r.unwrap().as_int(), Some(33));
    let d = vm.counters().snapshot().since(&before);
    assert!(d.steals <= 2, "at most both fields stolen");
    vm.shutdown();
}

#[test]
fn spawn_literal_match_against_thread_value() {
    let vm = VmBuilder::new().vps(1).build();
    let ts = TupleSpace::new();
    let ts2 = ts.clone();
    let r = vm.run(move |cx| {
        ts2.spawn(cx, vec![Box::new(|_cx: &sting_core::Cx| Value::Int(7))]);
        // rd with a literal: the matcher must compute the thread's value
        // and compare.
        let hit = ts2.try_rd(&Template::new(vec![lit(7)])).is_some();
        let miss = ts2.try_rd(&Template::new(vec![lit(8)])).is_some();
        i64::from(hit && !miss)
    });
    assert_eq!(r.unwrap().as_int(), Some(1));
    vm.shutdown();
}

#[test]
fn queue_specialization_is_fifo() {
    let ts = TupleSpace::with_kind(SpaceKind::Queue);
    for i in 0..5i64 {
        ts.put(vec![Value::Int(i)]);
    }
    let order: Vec<i64> = (0..5)
        .map(|_| ts.try_get(&Template::any(1)).unwrap()[0].as_int().unwrap())
        .collect();
    assert_eq!(order, vec![0, 1, 2, 3, 4]);
    assert_eq!(ts.rep_name(), "queue");
}

#[test]
fn stack_specialization_is_lifo() {
    let ts = TupleSpace::with_kind(SpaceKind::Stack);
    for i in 0..3i64 {
        ts.put(vec![Value::Int(i)]);
    }
    let order: Vec<i64> = (0..3)
        .map(|_| ts.try_get(&Template::any(1)).unwrap()[0].as_int().unwrap())
        .collect();
    assert_eq!(order, vec![2, 1, 0]);
}

#[test]
fn set_specialization_dedups() {
    let ts = TupleSpace::with_kind(SpaceKind::Set);
    ts.put(vec![Value::Int(1)]);
    ts.put(vec![Value::Int(1)]);
    ts.put(vec![Value::Int(2)]);
    assert_eq!(ts.len(), 2);
}

#[test]
fn shared_var_replaces() {
    let ts = TupleSpace::with_kind(SpaceKind::SharedVar);
    ts.put(vec![Value::Int(1)]);
    ts.put(vec![Value::Int(2)]);
    assert_eq!(ts.len(), 1);
    assert_eq!(ts.try_rd(&Template::any(1)).unwrap()[0], Value::Int(2));
}

#[test]
fn semaphore_counts_signals() {
    let vm = VmBuilder::new().vps(1).build();
    let ts = TupleSpace::with_kind(SpaceKind::Semaphore);
    ts.put(vec![]);
    ts.put(vec![]);
    assert_eq!(ts.len(), 2);
    assert!(ts.try_get(&Template::any(0)).is_some());
    assert!(ts.try_get(&Template::any(0)).is_some());
    assert!(ts.try_get(&Template::any(0)).is_none());
    // Blocking P waits for a V.
    let ts2 = ts.clone();
    let p = vm.fork(move |_cx| {
        ts2.get(&Template::any(0));
        1i64
    });
    std::thread::sleep(Duration::from_millis(20));
    assert!(!p.is_determined());
    ts.put(vec![]);
    assert_eq!(p.join_blocking(), Ok(Value::Int(1)));
    vm.shutdown();
}

#[test]
fn vector_specialization_indexes() {
    let vm = VmBuilder::new().vps(1).build();
    let ts = TupleSpace::with_kind(SpaceKind::Vector);
    ts.put(vec![Value::Int(3), Value::sym("three")]);
    ts.put(vec![Value::Int(0), Value::sym("zero")]);
    let b = ts.try_rd(&Template::new(vec![lit(3), formal()])).unwrap();
    assert_eq!(b, vec![Value::sym("three")]);
    // Reading an unset slot blocks until written.
    let ts2 = ts.clone();
    let reader = vm.fork(move |_cx| {
        let b = ts2.rd(&Template::new(vec![lit(7), formal()]));
        b[0].clone()
    });
    std::thread::sleep(Duration::from_millis(20));
    assert!(!reader.is_determined());
    ts.put(vec![Value::Int(7), Value::sym("seven")]);
    assert_eq!(reader.join_blocking(), Ok(Value::sym("seven")));
    vm.shutdown();
}

#[test]
fn inheritance_falls_back_to_parent() {
    let vm = VmBuilder::new().vps(1).build();
    let parent = TupleSpace::new();
    let child = TupleSpace::with_parent(SpaceKind::default(), &parent);
    parent.put(job(1));
    // Child read sees the parent's tuple.
    assert!(child.try_rd(&Template::any(2)).is_some());
    // Child deposit is not visible to the parent.
    child.put(job(2));
    assert_eq!(parent.len(), 1);
    // Blocking read in the child wakes on a parent deposit.
    let child2 = child.clone();
    let reader = vm.fork(move |_cx| {
        let b = child2.get(&Template::new(vec![lit(Value::sym("late")), formal()]));
        b[0].clone()
    });
    std::thread::sleep(Duration::from_millis(20));
    assert!(!reader.is_determined());
    parent.put(vec![Value::sym("late"), Value::Int(9)]);
    assert_eq!(reader.join_blocking(), Ok(Value::Int(9)));
    vm.shutdown();
}

#[test]
fn global_lock_configuration_still_correct() {
    let vm = VmBuilder::new().vps(2).build();
    let ts = TupleSpace::with_kind(SpaceKind::Hashed { buckets: 1 });
    assert_eq!(ts.rep_name(), "hashed(1)");
    let mut workers = Vec::new();
    for w in 0..4i64 {
        let ts = ts.clone();
        workers.push(vm.fork(move |_cx| {
            for i in 0..25 {
                ts.put(vec![Value::Int(w), Value::Int(i)]);
            }
            0i64
        }));
    }
    for w in workers {
        w.join_blocking().unwrap();
    }
    assert_eq!(ts.len(), 100);
    let mut taken = 0;
    while ts
        .try_get(&Template::new(vec![formal(), formal()]))
        .is_some()
    {
        taken += 1;
    }
    assert_eq!(taken, 100);
    vm.shutdown();
}

#[test]
fn master_slave_round_trip() {
    let vm = VmBuilder::new().vps(2).build();
    let ts = TupleSpace::new();
    // Slaves: take ("job" n), publish ("ack" n n²).
    let slaves: Vec<_> = (0..3)
        .map(|_| {
            let ts = ts.clone();
            vm.fork(move |_cx| {
                loop {
                    let b = ts.get(&Template::new(vec![lit(Value::sym("job")), formal()]));
                    let n = b[0].as_int().unwrap();
                    if n < 0 {
                        return 0i64; // poison pill
                    }
                    ts.put(vec![Value::sym("ack"), Value::Int(n), Value::Int(n * n)]);
                }
            })
        })
        .collect();
    for n in 0..20i64 {
        ts.put(job(n));
    }
    let mut total = 0i64;
    for n in 0..20i64 {
        let b = ts.get(&Template::new(vec![
            lit(Value::sym("ack")),
            lit(n),
            formal(),
        ]));
        total += b[0].as_int().unwrap();
    }
    assert_eq!(total, (0..20i64).map(|n| n * n).sum::<i64>());
    for _ in &slaves {
        ts.put(job(-1));
    }
    for s in slaves {
        s.join_blocking().unwrap();
    }
    vm.shutdown();
}

#[test]
fn tuple_space_is_first_class() {
    let vm = VmBuilder::new().vps(1).build();
    let ts = TupleSpace::new();
    // A tuple space stored *inside* a tuple of another space.
    let registry = TupleSpace::new();
    registry.put(vec![Value::sym("space"), ts.to_value()]);
    let r = {
        let registry = registry.clone();
        vm.run(move |_cx| {
            let b = registry.rd(&Template::new(vec![lit(Value::sym("space")), formal()]));
            let inner = TupleSpace::from_value(&b[0]).unwrap();
            inner.put(vec![Value::Int(123)]);
            1i64
        })
    };
    r.unwrap();
    assert_eq!(ts.try_rd(&Template::any(1)).unwrap()[0], Value::Int(123));
    vm.shutdown();
}

#[test]
fn concurrent_producers_consumers_hashed() {
    let vm = VmBuilder::new().vps(2).processors(2).build();
    let ts = Arc::new(TupleSpace::new());
    let n_jobs = 200i64;
    let producers: Vec<_> = (0..2)
        .map(|p| {
            let ts = ts.clone();
            vm.fork(move |_cx| {
                for i in 0..n_jobs / 2 {
                    ts.put(vec![Value::sym("work"), Value::Int(p * 1000 + i)]);
                }
                0i64
            })
        })
        .collect();
    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let ts = ts.clone();
            vm.fork(move |cx| {
                let mut got = 0i64;
                for _ in 0..n_jobs / 2 {
                    ts.get(&Template::new(vec![lit(Value::sym("work")), formal()]));
                    got += 1;
                    cx.checkpoint();
                }
                got
            })
        })
        .collect();
    for p in producers {
        p.join_blocking().unwrap();
    }
    let total: i64 = consumers
        .into_iter()
        .map(|c| c.join_blocking().unwrap().as_int().unwrap())
        .sum();
    assert_eq!(total, n_jobs);
    assert!(ts.is_empty());
    vm.shutdown();
}

#[test]
fn exceptional_thread_field_never_matches() {
    let vm = VmBuilder::new().vps(1).build();
    let ts = TupleSpace::new();
    let ts2 = ts.clone();
    let r = vm.run(move |cx| {
        ts2.spawn(
            cx,
            vec![Box::new(|cx: &sting_core::Cx| -> Value {
                cx.raise(Value::sym("boom"))
            })],
        );
        i64::from(ts2.try_rd(&Template::any(1)).is_none())
    });
    assert_eq!(r.unwrap().as_int(), Some(1));
    vm.shutdown();
}

#[test]
fn threads_as_tuple_fields_via_tc() {
    // Depositing a raw thread value manually (not via spawn) also works.
    let vm = VmBuilder::new().vps(1).build();
    let ts = TupleSpace::new();
    let ts2 = ts.clone();
    let r = vm.run(move |cx| {
        let t = cx.delayed(|_cx| 99i64);
        ts2.put(vec![Value::sym("lazy"), t.to_value()]);
        let b = ts2.get(&Template::new(vec![lit(Value::sym("lazy")), formal()]));
        // The formal received the thread's *value*.
        b[0].as_int().unwrap()
    });
    assert_eq!(r.unwrap().as_int(), Some(99));
    assert_eq!(vm.counters().snapshot().steals, 1);
    let _ = tc::on_thread();
    vm.shutdown();
}

#[test]
fn specialized_constructor_uses_inference() {
    use sting_tuple::OpSketch;
    // All-formal gets + puts → queue.
    let ts = TupleSpace::specialized(&[
        OpSketch::Put {
            arity: 1,
            int_first: true,
        },
        OpSketch::Get {
            arity: 1,
            all_formal: true,
            int_first_lit: false,
        },
    ]);
    assert_eq!(ts.rep_name(), "queue");
    // Indexed pairs → vector.
    let ts = TupleSpace::specialized(&[
        OpSketch::Put {
            arity: 2,
            int_first: true,
        },
        OpSketch::Rd {
            arity: 2,
            all_formal: false,
            int_first_lit: true,
        },
    ]);
    assert_eq!(ts.rep_name(), "vector");
    // Associative usage → hashed.
    let ts = TupleSpace::specialized(&[OpSketch::Get {
        arity: 2,
        all_formal: false,
        int_first_lit: false,
    }]);
    assert!(ts.rep_name().starts_with("hashed"));
}
