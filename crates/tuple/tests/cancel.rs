//! Terminate-while-blocked and lost-wake-up regressions for blocking
//! tuple-space operations.
//!
//! Same protocol promise as the sting-sync cancel suite: terminating a
//! thread blocked in `get`/`rd` cancels its wait episode, the space's
//! live-waiter count drops back to zero, peers blocked on the same space
//! are unaffected, and a deposit's one wake-up is never absorbed by the
//! dead registration (the re-donation path in `blocking_op_deadline`).

use std::sync::Arc;
use std::time::{Duration, Instant};
use sting_core::tc;
use sting_core::vm::Vm;
use sting_core::VmBuilder;
use sting_tuple::{SpaceKind, Template, TupleSpace};
use sting_value::Value;

fn vm() -> Arc<Vm> {
    VmBuilder::new()
        .vps(1)
        .trace(true)
        .trace_capacity(1 << 14)
        .build()
}

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn finish(vm: &Arc<Vm>) {
    let report = vm.trace_audit();
    assert!(report.is_clean(), "audit found violations:\n{report}");
    vm.shutdown();
}

#[test]
fn terminate_blocked_getter_leaves_peer_intact() {
    let vm = vm();
    let ts = TupleSpace::new();
    let fork_getter = |ts: &TupleSpace| {
        let ts = ts.clone();
        vm.fork(move |_cx| {
            let b = ts.get(&Template::any(1));
            b[0].clone()
        })
    };
    let victim = fork_getter(&ts);
    let peer = fork_getter(&ts);
    wait_until("both getters to block", || ts.blocked() == 2);
    tc::thread_terminate(&victim, Value::sym("killed")).unwrap();
    wait_until("victim deregistration", || ts.blocked() == 1);
    assert_eq!(victim.join_blocking(), Ok(Value::sym("killed")));
    // Lost-wake-up regression: this single deposit's wake must skip the
    // dead registration and reach the peer.
    ts.put(vec![Value::Int(7)]);
    assert_eq!(peer.join_blocking(), Ok(Value::Int(7)), "wake-up lost");
    assert_eq!(ts.blocked(), 0, "waiter leaked");
    assert!(ts.is_empty(), "tuple double-delivered or stranded");
    finish(&vm);
}

#[test]
fn terminate_blocked_reader_on_semaphore_space() {
    // The specialized CountRep keeps one shared wait list rather than
    // per-template registrations; the cancellation path must behave the
    // same way.
    let vm = vm();
    let ts = TupleSpace::with_kind(SpaceKind::Semaphore);
    let fork_p = |ts: &TupleSpace| {
        let ts = ts.clone();
        vm.fork(move |_cx| {
            ts.get(&Template::any(0));
            1i64
        })
    };
    let victim = fork_p(&ts);
    let peer = fork_p(&ts);
    wait_until("both P operations to block", || ts.blocked() == 2);
    tc::thread_terminate(&victim, Value::sym("killed")).unwrap();
    wait_until("victim deregistration", || ts.blocked() == 1);
    assert_eq!(victim.join_blocking(), Ok(Value::sym("killed")));
    ts.put(vec![]); // one V: its wake must reach the live peer
    assert_eq!(peer.join_blocking(), Ok(Value::Int(1)), "signal lost");
    assert_eq!(ts.blocked(), 0);
    assert_eq!(ts.len(), 0, "signal double-spent");
    finish(&vm);
}

#[test]
fn timeouts_racing_deposits_conserve_tuples() {
    // Timed-out getters racing deposits: every deposited tuple is either
    // consumed by exactly one getter or still in the space at the end —
    // a wasted claim (waiter times out after being woken) must re-donate
    // the wake so a sibling can consume the tuple.
    let vm = vm();
    let ts = TupleSpace::with_kind(SpaceKind::Semaphore);
    const DEPOSITS: usize = 100;
    let consumers: Vec<_> = (0..6)
        .map(|i| {
            let ts = ts.clone();
            vm.fork(move |cx| {
                let mut got = 0i64;
                for round in 0..30usize {
                    let dur = Duration::from_millis(if (i + round) % 2 == 0 { 1 } else { 40 });
                    if ts.get_timeout(&Template::any(0), dur).is_some() {
                        got += 1;
                    }
                    cx.checkpoint();
                }
                got
            })
        })
        .collect();
    let producer = {
        let ts = ts.clone();
        vm.fork(move |cx| {
            for _ in 0..DEPOSITS {
                ts.put(vec![]);
                cx.yield_now();
            }
            0i64
        })
    };
    producer.join_blocking().unwrap();
    let consumed: i64 = consumers
        .into_iter()
        .map(|t| t.join_blocking().unwrap().as_int().unwrap())
        .sum();
    assert_eq!(
        consumed as usize + ts.len(),
        DEPOSITS,
        "tuples lost or duplicated under timeout races"
    );
    assert_eq!(ts.blocked(), 0, "waiter leaked");
    finish(&vm);
}
