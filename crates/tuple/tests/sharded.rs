//! Sharded tuple-space fabric: routing determinism, cross-shard routed
//! `put`/`get`, the wild slow path, and deposit conservation when routed
//! requests time out or their thread is terminated mid-protocol.

use std::time::{Duration, Instant};
use sting_core::audit::FindingKind;
use sting_core::fleet::Fleet;
use sting_core::tc;
use sting_tuple::{formal, lit, ShardedSpace, Template};
use sting_value::Value;

fn fleet(shards: usize) -> Fleet {
    Fleet::builder()
        .shards(shards)
        .trace(true)
        .trace_capacity(1 << 15)
        .build()
}

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// A key whose template `[lit(k), formal()]` has a *single* candidate
/// partition (its literal-keyed and arity-only partitions coincide), plus
/// that owning shard — callers fork the getter on a different shard so
/// the op takes the routed tier.
fn exclusive_key(space: &ShardedSpace) -> (i64, usize) {
    for k in 0..10_000i64 {
        let t = Template::new(vec![lit(Value::Int(k)), formal()]);
        if let Some(parts) = space.partitions_of_template(&t) {
            if let [owner] = parts.as_slice() {
                return (k, *owner);
            }
        }
    }
    panic!("no single-partition key found");
}

fn assert_fleet_clean(fleet: &Fleet) {
    let report = fleet.trace_audit();
    for f in &report.findings {
        assert!(
            !matches!(
                f.kind,
                FindingKind::WaiterLeak | FindingKind::LostWakeup | FindingKind::WakeAfterCancel
            ),
            "sharded-space violation:\n{report}"
        );
    }
}

/// Off-fleet callers use direct shared-memory access; routing is
/// deterministic and every tuple lands in the partition the router names.
#[test]
fn routing_is_deterministic_and_partitioned() {
    let fleet = fleet(4);
    let ts = ShardedSpace::new(&fleet);
    assert_eq!(ts.partitions(), 4);
    for k in 0..64i64 {
        let fields = vec![Value::Int(k), Value::sym("payload")];
        let dest = ts.partition_of_tuple(&fields);
        assert!(dest < 4);
        assert_eq!(dest, ts.partition_of_tuple(&fields), "routing not stable");
        ts.put(fields);
    }
    assert_eq!(ts.len(), 64);
    for k in 0..64i64 {
        let t = Template::new(vec![lit(Value::Int(k)), formal()]);
        let b = ts.try_get(&t).expect("tuple routed away from its template");
        assert_eq!(b[0], Value::sym("payload"));
    }
    assert!(ts.is_empty());
    fleet.shutdown();
}

/// A blocking `get` on shard 0 for a partition owned by shard 1 takes the
/// routed tier: the owner registers the episode, a later owner-side
/// deposit wakes the requester across the fabric, and the op is counted
/// as routed.
#[test]
fn routed_get_crosses_shards() {
    let fleet = fleet(2);
    let ts = ShardedSpace::new(&fleet);
    let (k, owner) = exclusive_key(&ts);
    let other = (owner + 1) % 2;
    let routed_before: u64 = fleet
        .shards()
        .iter()
        .map(|vm| vm.counters().snapshot().routed_ops)
        .sum();
    let getter = {
        let ts = ts.clone();
        fleet.shard(other).fork(move |_cx| {
            assert_ne!(tc::current_shard(), Some(owner));
            let b = ts.get(&Template::new(vec![lit(Value::Int(k)), formal()]));
            b[0].clone()
        })
    };
    wait_until("routed getter to register on the owner", || {
        ts.blocked() >= 1
    });
    let putter = {
        let ts = ts.clone();
        fleet.shard(owner).fork(move |_cx| {
            ts.put(vec![Value::Int(k), Value::Int(99)]);
            0i64
        })
    };
    putter.join_blocking().unwrap();
    assert_eq!(getter.join_blocking(), Ok(Value::Int(99)));
    let routed_after: u64 = fleet
        .shards()
        .iter()
        .map(|vm| vm.counters().snapshot().routed_ops)
        .sum();
    assert!(routed_after > routed_before, "no op was counted as routed");
    assert!(ts.is_empty(), "tuple double-delivered or stranded");
    assert_eq!(ts.blocked(), 0, "waiter leaked on the owner partition");
    assert_fleet_clean(&fleet);
    fleet.shutdown();
}

/// Cross-shard deposits ship to the owner and still satisfy a local
/// reader there; `rd` leaves the tuple in place.
#[test]
fn routed_put_lands_on_owner_partition() {
    let fleet = fleet(2);
    let ts = ShardedSpace::new(&fleet);
    let (k, owner) = exclusive_key(&ts);
    let other = (owner + 1) % 2;
    let t = Template::new(vec![lit(Value::Int(k)), formal()]);
    let putter = {
        let ts = ts.clone();
        fleet.shard(other).fork(move |_cx| {
            ts.put(vec![Value::Int(k), Value::sym("shipped")]);
            0i64
        })
    };
    putter.join_blocking().unwrap();
    let reader = {
        let (ts, t) = (ts.clone(), t.clone());
        fleet.shard(owner).fork(move |_cx| ts.rd(&t)[0].clone())
    };
    assert_eq!(reader.join_blocking(), Ok(Value::sym("shipped")));
    assert_eq!(ts.len(), 1, "rd must not remove");
    assert_eq!(
        ts.partition_len(owner),
        1,
        "routed deposit landed on the wrong partition"
    );
    assert_fleet_clean(&fleet);
    fleet.shutdown();
}

/// A formals-only template has no owner; the wild slow path scans and
/// blocks on every partition and still sees deposits from any shard.
#[test]
fn wild_template_scans_every_partition() {
    let fleet = fleet(4);
    let ts = ShardedSpace::new(&fleet);
    let getter = {
        let ts = ts.clone();
        fleet
            .shard(0)
            .fork(move |_cx| ts.get(&Template::any(2))[1].clone())
    };
    wait_until("wild getter to register everywhere", || ts.blocked() >= 1);
    let putter = {
        let ts = ts.clone();
        fleet.shard(2).fork(move |_cx| {
            ts.put(vec![Value::Int(1234), Value::sym("found")]);
            0i64
        })
    };
    putter.join_blocking().unwrap();
    assert_eq!(getter.join_blocking(), Ok(Value::sym("found")));
    assert!(ts.is_empty());
    assert_eq!(ts.blocked(), 0, "wild registrations leaked");
    assert_fleet_clean(&fleet);
    fleet.shutdown();
}

/// Satellite: deposit conservation under abandonment.  Routed getters
/// with aggressive timeouts race owner-side deposits; every tuple is
/// consumed by exactly one getter or still in the space — an owner
/// closure that loses the reply-cell race must not strand a removal, and
/// a wasted wake is re-donated.
#[test]
fn routed_timeout_conserves_deposits() {
    let fleet = fleet(2);
    let ts = ShardedSpace::new(&fleet);
    let (k, owner) = exclusive_key(&ts);
    let other = (owner + 1) % 2;
    const DEPOSITS: usize = 100;
    let consumers: Vec<_> = (0..6)
        .map(|i| {
            let ts = ts.clone();
            fleet.shard(other).fork(move |cx| {
                let t = Template::new(vec![lit(Value::Int(k)), formal()]);
                let mut got = 0i64;
                for round in 0..30usize {
                    let dur = Duration::from_millis(if (i + round) % 2 == 0 { 1 } else { 40 });
                    if ts.get_timeout(&t, dur).is_some() {
                        got += 1;
                    }
                    cx.checkpoint();
                }
                got
            })
        })
        .collect();
    let producer = {
        let ts = ts.clone();
        fleet.shard(owner).fork(move |cx| {
            for i in 0..DEPOSITS {
                ts.put(vec![Value::Int(k), Value::Int(i as i64)]);
                cx.yield_now();
            }
            0i64
        })
    };
    producer.join_blocking().unwrap();
    let consumed: i64 = consumers
        .into_iter()
        .map(|t| t.join_blocking().unwrap().as_int().unwrap())
        .sum();
    assert_eq!(
        consumed as usize + ts.len(),
        DEPOSITS,
        "tuples lost or duplicated under routed timeout races"
    );
    assert_eq!(ts.blocked(), 0, "waiter leaked");
    assert_fleet_clean(&fleet);
    fleet.shutdown();
}

/// The owner closure must register its waiter *before* probing: with the
/// old probe-then-register order, a deposit landing in that window found
/// no waiter to wake (the requester was already parked) and the only
/// matching tuple sat unobserved — `get` hung and `get_timeout` returned
/// `None` despite a present match.  Owner-local puts on a second VP of
/// the owner shard race the closure directly; every round must complete.
#[test]
fn routed_get_never_misses_a_concurrent_deposit() {
    let fleet = Fleet::builder()
        .shards(2)
        .vps_per_shard(2)
        // Two OS workers even on a 1-CPU host: the probe→register window
        // only opens when the owner's pump and the putter's VP run on
        // different workers, so kernel preemption can split them.
        .processors(2)
        .trace(true)
        .trace_capacity(1 << 15)
        .build();
    let ts = ShardedSpace::new(&fleet);
    let (k, owner) = exclusive_key(&ts);
    let other = (owner + 1) % 2;
    for round in 0..100i64 {
        let getter = {
            let ts = ts.clone();
            fleet.shard(other).fork(move |_cx| {
                let t = Template::new(vec![lit(Value::Int(k)), formal()]);
                ts.get_timeout(&t, Duration::from_secs(30))
                    .expect("deposit missed: owner closure lost the register/deposit race")[0]
                    .clone()
            })
        };
        // Deliberately unsynchronized with the getter's registration —
        // the deposit races the owner closure's probe.
        let putter = {
            let ts = ts.clone();
            fleet.shard(owner).fork(move |_cx| {
                ts.put(vec![Value::Int(k), Value::Int(round)]);
                0i64
            })
        };
        putter.join_blocking().unwrap();
        assert_eq!(getter.join_blocking(), Ok(Value::Int(round)));
        assert!(ts.is_empty(), "tuple stranded after round {round}");
    }
    assert_eq!(ts.blocked(), 0, "waiter leaked");
    assert_fleet_clean(&fleet);
    fleet.shutdown();
}

/// Satellite: terminating a thread parked in a *routed* get cancels its
/// shipped episode without losing the next deposit's wake — the peer
/// blocked on the same remote partition still completes, and both shards
/// audit clean.
#[test]
fn terminate_routed_getter_leaves_peer_and_tuples_intact() {
    let fleet = fleet(2);
    let ts = ShardedSpace::new(&fleet);
    let (k, owner) = exclusive_key(&ts);
    let other = (owner + 1) % 2;
    let fork_getter = || {
        let ts = ts.clone();
        fleet.shard(other).fork(move |_cx| {
            let b = ts.get(&Template::new(vec![lit(Value::Int(k)), formal()]));
            b[0].clone()
        })
    };
    let victim = fork_getter();
    let peer = fork_getter();
    wait_until("both routed getters to register", || ts.blocked() == 2);
    tc::thread_terminate(&victim, Value::sym("killed")).unwrap();
    assert_eq!(victim.join_blocking(), Ok(Value::sym("killed")));
    wait_until("victim episode to die", || ts.blocked() < 2);
    // This one deposit's wake must skip the dead registration.
    let putter = {
        let ts = ts.clone();
        fleet.shard(owner).fork(move |_cx| {
            ts.put(vec![Value::Int(k), Value::Int(7)]);
            0i64
        })
    };
    putter.join_blocking().unwrap();
    assert_eq!(peer.join_blocking(), Ok(Value::Int(7)), "wake-up lost");
    assert!(ts.is_empty(), "tuple double-delivered or stranded");
    assert_fleet_clean(&fleet);
    fleet.shutdown();
}
