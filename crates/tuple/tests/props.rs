//! Property tests: matching semantics and tuple conservation.

use proptest::prelude::*;
use sting_tuple::{formal, lit, SpaceKind, Template, TemplateField, TupleSpace};
use sting_value::Value;

fn arb_field() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-50i64..50).prop_map(Value::from),
        any::<bool>().prop_map(Value::from),
        "[a-c]".prop_map(|s| Value::sym(&s)),
    ]
}

fn arb_tuple() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(arb_field(), 0..4)
}

proptest! {
    /// A template built from a tuple (each field randomly literal or
    /// formal) always matches that tuple, and the bindings are exactly
    /// the formal positions' values.
    #[test]
    fn derived_template_matches(tuple in arb_tuple(), mask in prop::collection::vec(any::<bool>(), 0..4)) {
        let fields: Vec<TemplateField> = tuple
            .iter()
            .enumerate()
            .map(|(i, v)| {
                if mask.get(i).copied().unwrap_or(false) {
                    formal()
                } else {
                    lit(v.clone())
                }
            })
            .collect();
        let t = Template::new(fields);
        let bound = t.match_tuple(&tuple).expect("derived template matches");
        let expect: Vec<Value> = tuple
            .iter()
            .enumerate()
            .filter(|(i, _)| mask.get(*i).copied().unwrap_or(false))
            .map(|(_, v)| v.clone())
            .collect();
        prop_assert_eq!(bound, expect);
        prop_assert!(t.may_match(&tuple));
    }

    /// Arity mismatches never match.
    #[test]
    fn arity_mismatch_never_matches(tuple in arb_tuple()) {
        let t = Template::any(tuple.len() + 1);
        prop_assert!(t.match_tuple(&tuple).is_none());
        prop_assert!(!t.may_match(&tuple));
    }

    /// Conservation: tuples removed = tuples deposited, across kinds.
    #[test]
    fn tuples_are_conserved(
        tuples in prop::collection::vec(arb_tuple(), 1..30),
        kind_pick in 0usize..4,
    ) {
        let kind = match kind_pick {
            0 => SpaceKind::Hashed { buckets: 8 },
            1 => SpaceKind::Queue,
            2 => SpaceKind::Stack,
            _ => SpaceKind::Bag,
        };
        let ts = TupleSpace::with_kind(kind);
        for t in &tuples {
            ts.put(t.clone());
        }
        prop_assert_eq!(ts.len(), tuples.len());
        // Remove everything by arity class.
        let mut removed = 0;
        for arity in 0..4 {
            while ts.try_get(&Template::any(arity)).is_some() {
                removed += 1;
            }
        }
        prop_assert_eq!(removed, tuples.len());
        prop_assert!(ts.is_empty());
    }

    /// try_rd never changes the space.
    #[test]
    fn rd_is_pure(tuples in prop::collection::vec(arb_tuple(), 1..20)) {
        let ts = TupleSpace::new();
        for t in &tuples {
            ts.put(t.clone());
        }
        let before = ts.len();
        for arity in 0..4 {
            let _ = ts.try_rd(&Template::any(arity));
        }
        prop_assert_eq!(ts.len(), before);
    }

    /// Whatever try_get returns was actually deposited (soundness of
    /// associative matching).
    #[test]
    fn bindings_come_from_deposits(tuples in prop::collection::vec(arb_tuple(), 1..20)) {
        let ts = TupleSpace::new();
        for t in &tuples {
            ts.put(t.clone());
        }
        for arity in 0..4usize {
            while let Some(b) = ts.try_get(&Template::any(arity)) {
                prop_assert!(
                    tuples.iter().any(|t| t.len() == arity && t[..] == b[..]),
                    "got bindings {b:?} never deposited"
                );
            }
        }
    }
}
