//! # STING — a customizable substrate for concurrent languages
//!
//! A Rust reproduction of Jagannathan & Philbin, *A Customizable Substrate
//! for Concurrent Languages* (PLDI 1992).  This facade crate re-exports
//! the whole system; see the individual crates for details:
//!
//! * [`core`] (`sting-core`) — first-class threads, virtual processors,
//!   customizable policy managers, thread stealing.
//! * [`sync`] (`sting-sync`) — futures, streams, mutexes, speculative and
//!   barrier synchronization.
//! * [`mod@tuple`] (`sting-tuple`) — first-class tuple spaces.
//! * [`scheme`] (`sting-scheme`) — the Scheme computation language.
//! * [`areas`] (`sting-areas`) — per-thread generational heaps.
//! * [`context`] (`sting-context`) — stackful contexts and stacks.
//! * [`value`] (`sting-value`) — substrate values.
//!
//! ```
//! use sting::prelude::*;
//!
//! let vm = VmBuilder::new().vps(2).build();
//! let r = vm.run(|cx| {
//!     let f = Future::spawn(cx, |_| 6i64);
//!     f.touch().unwrap().as_int().unwrap() * 7
//! });
//! assert_eq!(r.unwrap().as_int(), Some(42));
//! vm.shutdown();
//! ```

#![deny(missing_docs)]

pub use sting_areas as areas;
pub use sting_context as context;
pub use sting_core as core;
pub use sting_scheme as scheme;
pub use sting_sync as sync;
#[allow(rustdoc::bare_urls)]
pub use sting_tuple as tuple;
pub use sting_value as value;

/// The most commonly used items, in one import.
pub mod prelude {
    pub use sting_core::policies;
    pub use sting_core::tc;
    pub use sting_core::{
        Cx, PhysicalMachine, PolicyManager, Thread, ThreadBuilder, ThreadGroup, ThreadState,
        Topology, Vm, VmBuilder,
    };
    pub use sting_scheme::Interp;
    pub use sting_sync::{
        block_on_group, race, wait_for_all, wait_for_one, Barrier, Channel, Future, IVar, Mutex,
        Semaphore, Stream,
    };
    pub use sting_tuple::{formal, lit, SpaceKind, Template, TupleSpace};
    pub use sting_value::{Symbol, Value};
}
