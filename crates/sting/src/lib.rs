//! # STING — a customizable substrate for concurrent languages
//!
//! A Rust reproduction of Jagannathan & Philbin, *A Customizable Substrate
//! for Concurrent Languages* (PLDI 1992).  This facade crate re-exports
//! the whole system; see the individual crates for details:
//!
//! * [`core`] (`sting-core`) — first-class threads, virtual processors,
//!   customizable policy managers, thread stealing.
//! * [`sync`] (`sting-sync`) — futures, streams, mutexes, speculative and
//!   barrier synchronization.
//! * [`mod@tuple`] (`sting-tuple`) — first-class tuple spaces.
//! * [`scheme`] (`sting-scheme`) — the Scheme computation language.
//! * [`analyze`] (`sting-analyze`) — static concurrency analysis of
//!   Scheme programs (deadlock, lost-wakeup and protocol-arity bugs).
//! * [`areas`] (`sting-areas`) — per-thread generational heaps.
//! * [`context`] (`sting-context`) — stackful contexts and stacks.
//! * [`value`] (`sting-value`) — substrate values.
//!
//! ```
//! use sting::prelude::*;
//!
//! let vm = VmBuilder::new().vps(2).build();
//! let r = vm.run(|cx| {
//!     let f = Future::spawn(cx, |_| 6i64);
//!     f.touch().unwrap().as_int().unwrap() * 7
//! });
//! assert_eq!(r.unwrap().as_int(), Some(42));
//! vm.shutdown();
//! ```

#![deny(missing_docs)]

pub use sting_analyze as analyze;
pub use sting_areas as areas;
pub use sting_context as context;
pub use sting_core as core;
pub use sting_scheme as scheme;
pub use sting_sync as sync;
#[allow(rustdoc::bare_urls)]
pub use sting_tuple as tuple;
pub use sting_value as value;

/// The `(analyze ...)` / `(analyze-file ...)` Scheme primitives.
///
/// The static analyzer depends on `sting-scheme`, so its primitives
/// cannot be built-ins; this module registers them through the extension
/// table instead.  Call [`install_analyze_prims`] before creating an
/// [`Interp`](sting_scheme::Interp).
mod analyze_prims {
    use sting_areas::{ObjKind, Val};
    use sting_scheme::machine::Machine;
    use sting_scheme::{prims, print, SchemeError};

    /// Registers `(analyze src)` and `(analyze-file path)`.
    ///
    /// `(analyze src)` takes a source string (or a quoted form, which is
    /// printed back to source text) and returns the list of diagnostic
    /// strings; `(analyze-file path)` analyzes a file the same way.  An
    /// empty result list means the analyzer found nothing to report.
    pub fn install() {
        prims::register_extension("analyze", 1, Some(1), prim_analyze);
        prims::register_extension("analyze-file", 1, Some(1), prim_analyze_file);
    }

    fn report_val(m: &mut Machine, report: &sting_analyze::Report) -> Val {
        let mut n = 0;
        for d in &report.diagnostics {
            let s = m.string(&d.to_string());
            m.push(s);
            n += 1;
        }
        m.list_from_stack(n)
    }

    fn prim_analyze(m: &mut Machine, argc: usize) -> Result<Val, SchemeError> {
        let src = match m.arg(argc, 0) {
            Val::Obj(gc) if m.heap.kind(gc) == ObjKind::Str => m.heap.string_value(gc),
            v => print::write_val(m, v),
        };
        let report = sting_analyze::analyze_source(&src)
            .map_err(|e| SchemeError::runtime(format!("analyze: {e}")))?;
        Ok(report_val(m, &report))
    }

    fn prim_analyze_file(m: &mut Machine, argc: usize) -> Result<Val, SchemeError> {
        let path = match m.arg(argc, 0) {
            Val::Obj(gc) if m.heap.kind(gc) == ObjKind::Str => m.heap.string_value(gc),
            _ => return Err(SchemeError::runtime("analyze-file: expected a path string")),
        };
        let report = sting_analyze::analyze_file(&path)
            .map_err(|e| SchemeError::runtime(format!("analyze-file: {e}")))?;
        Ok(report_val(m, &report))
    }
}

pub use analyze_prims::install as install_analyze_prims;

/// The most commonly used items, in one import.
pub mod prelude {
    pub use sting_core::policies;
    pub use sting_core::tc;
    pub use sting_core::{
        Cx, Fleet, PhysicalMachine, PolicyManager, Thread, ThreadBuilder, ThreadGroup, ThreadState,
        Topology, Vm, VmBuilder,
    };
    pub use sting_scheme::Interp;
    pub use sting_sync::{
        block_on_group, race, wait_for_all, wait_for_one, Barrier, Channel, Future, IVar, Mutex,
        Semaphore, Stream,
    };
    pub use sting_tuple::{formal, lit, ShardedSpace, SpaceKind, Template, TupleSpace};
    pub use sting_value::{Symbol, Value};
}
