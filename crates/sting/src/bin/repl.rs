//! An interactive STING Scheme REPL.
//!
//! Usage: `cargo run --release -p sting --bin repl [--vps N] [--analyze] [file.scm ...]`
//!
//! Files are loaded in order, then an interactive prompt starts.  REPL
//! commands: `,threads` dumps the machine state, `,counters` prints
//! substrate counters, `,quit` exits.
//!
//! With `--analyze`, the files are **not** run: each is checked by the
//! static concurrency analyzer and its report printed; the exit status is
//! non-zero if any file produced diagnostics.  The `(analyze src)` and
//! `(analyze-file path)` primitives are available interactively either way.

use std::io::{BufRead, Write};
use sting_core::VmBuilder;
use sting_scheme::Interp;

fn balanced(src: &str) -> bool {
    let mut depth = 0i64;
    let mut in_str = false;
    let mut escape = false;
    let mut in_comment = false;
    for c in src.chars() {
        if in_comment {
            if c == '\n' {
                in_comment = false;
            }
            continue;
        }
        if in_str {
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            ';' => in_comment = true,
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            _ => {}
        }
    }
    depth <= 0 && !in_str
}

/// Runs the static analyzer over `files`, printing each report.
/// Returns the number of files with diagnostics.
fn analyze_files(files: &[String]) -> usize {
    let mut flagged = 0;
    for f in files {
        match sting::analyze::analyze_file(f) {
            Ok(report) => {
                println!("; {f}:");
                print!("{report}");
                if !report.is_clean() {
                    flagged += 1;
                }
            }
            Err(e) => {
                eprintln!("; cannot analyze {f}: {e}");
                flagged += 1;
            }
        }
    }
    flagged
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut vps = 2usize;
    let mut analyze = false;
    let mut files = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--vps" => {
                vps = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
            }
            "--analyze" => analyze = true,
            f => files.push(f.to_string()),
        }
    }

    if analyze {
        if files.is_empty() {
            eprintln!("; --analyze requires at least one file");
            std::process::exit(2);
        }
        let flagged = analyze_files(&files);
        std::process::exit(i32::from(flagged > 0));
    }

    sting::install_analyze_prims();
    let vm = VmBuilder::new().vps(vps).name("repl").build();
    let interp = Interp::new(vm.clone());

    for f in &files {
        match std::fs::read_to_string(f) {
            Ok(src) => match interp.eval(&src) {
                Ok(v) => println!("; loaded {f} => {v}"),
                Err(e) => {
                    eprintln!("; error loading {f}: {e}");
                    std::process::exit(1);
                }
            },
            Err(e) => {
                eprintln!("; cannot read {f}: {e}");
                std::process::exit(1);
            }
        }
    }

    println!("STING Scheme — PLDI 1992 reproduction ({vps} VPs).  ,threads ,counters ,quit");
    let stdin = std::io::stdin();
    let mut pending = String::new();
    loop {
        if pending.is_empty() {
            print!("sting> ");
        } else {
            print!("  ...> ");
        }
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("; read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if pending.is_empty() {
            match trimmed {
                "" => continue,
                ",quit" | ",q" => break,
                ",threads" => {
                    print!("{}", vm.dump());
                    continue;
                }
                ",counters" => {
                    println!("{:#?}", vm.counters().snapshot());
                    continue;
                }
                _ => {}
            }
        }
        pending.push_str(&line);
        if !balanced(&pending) {
            continue; // keep reading a multi-line form
        }
        let src = std::mem::take(&mut pending);
        match interp.eval(&src) {
            Ok(v) => println!("{v}"),
            Err(e) => println!("; {e}"),
        }
    }
    vm.shutdown();
}
