//! Echo-server benchmark: connection-per-thread scalability and
//! block→wake latency under socket load.
//!
//! The server side is the substrate: every accepted connection is a
//! first-class STING thread parked on fd readiness through the reactor,
//! so the row of interest is the wake histogram — park commit → wake
//! re-enqueue — while thousands of connection threads are held open.
//! The client side is a **subprocess** (this binary re-executed with a
//! hidden `--echo-client` mode, plain `std::net` blocking sockets): the
//! full tier holds 10 000 connections, and with both ends in one process
//! the fd budget would be the thing under test instead of the substrate.
//!
//! Rows (suite `server`, each suffixed with the reactor backend label —
//! `-epoll` / `-uring` — so the two backends keep separate baselines):
//! * `connections-held-{backend}` — peak concurrently-open connection
//!   threads.
//! * `block-wake-{backend}` — the VM's wake histogram (ns), sampled 1:1.
//! * `echo-rtt-{backend}` — client-observed round-trip (ns), the
//!   end-to-end check that the latency the substrate reports is the
//!   latency a peer sees.
//! * `syscalls-per-wake-{backend}` — reactor kernel round-trips divided
//!   by delivered wakes, snapshotted under load: the cost model io_uring's
//!   batched submission exists to shrink.

use crate::report::{BenchRow, Check};
use std::io::{Read, Write};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use sting::core::net::{TcpListener, LOCALHOST};
use sting::core::{HistogramSnapshot, IoBackend};
use sting::prelude::*;

/// The backend matrix for the server suite: epoll unconditionally,
/// io_uring when the kernel supports it.  Labels become row-name suffixes.
pub fn backends() -> Vec<(IoBackend, &'static str)> {
    let mut v = vec![(IoBackend::Epoll, "epoll")];
    if sting::core::uring::uring_supported() {
        v.push((IoBackend::IoUring, "uring"));
    }
    v
}

/// Knobs for one server-bench run.
pub struct ServerScale {
    /// Connections to hold open concurrently.
    pub conns: usize,
    /// Total echo round-trips performed across all connections.
    pub echoes: usize,
    /// Virtual processors for the server VM.
    pub vps: usize,
    /// OS threads the client subprocess drives its sockets with.
    pub client_threads: usize,
}

impl ServerScale {
    /// The acceptance-criteria tier: ≥10k connection threads on ≤4 VPs.
    pub fn full() -> ServerScale {
        ServerScale {
            conns: 10_000,
            echoes: 20_000,
            vps: 4,
            client_threads: 16,
        }
    }

    /// The CI tier: same shape, well under a minute.
    pub fn smoke() -> ServerScale {
        ServerScale {
            conns: 256,
            echoes: 2_000,
            vps: 2,
            client_threads: 4,
        }
    }
}

fn row_from_hist(name: &str, h: &HistogramSnapshot) -> BenchRow {
    BenchRow {
        suite: "server".to_string(),
        name: name.to_string(),
        unit: "ns".to_string(),
        samples: h.count,
        min: h.min as f64,
        mean: h.mean(),
        p50: h.p50() as f64,
        p99: h.p99() as f64,
        paper_us: None,
    }
}

/// Runs the echo-server benchmark on one reactor backend; returns its
/// rows and checks, all suffixed `-{label}`.
///
/// # Errors
///
/// A human-readable description when the server cannot bind, the client
/// subprocess cannot start, or either side misbehaves.
pub fn run(
    scale: &ServerScale,
    backend: IoBackend,
    label: &str,
) -> Result<(Vec<BenchRow>, Vec<Check>), String> {
    let vm = VmBuilder::new()
        .vps(scale.vps)
        .stack_size(32 * 1024)
        .metrics(true)
        .metrics_sample(1)
        .io_backend(backend)
        .name("echo-bench")
        .build();

    let listener = Arc::new(TcpListener::bind(LOCALHOST, 0).map_err(|e| format!("bind: {e}"))?);
    let port = listener.local_port().map_err(|e| format!("port: {e}"))?;

    let active = Arc::new(AtomicUsize::new(0));
    let peak = Arc::new(AtomicUsize::new(0));
    let conns = scale.conns;
    let acceptor = {
        let listener = listener.clone();
        let vm2 = vm.clone();
        let (active, peak) = (active.clone(), peak.clone());
        vm.fork(move |_cx| {
            for _ in 0..conns {
                let s = match listener.accept() {
                    Ok(s) => s,
                    Err(_) => break,
                };
                let was = active.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(was, Ordering::SeqCst);
                let active = active.clone();
                ThreadBuilder::new(&vm2)
                    .spawn(move |_cx| {
                        let mut buf = [0u8; 256];
                        loop {
                            let n = match s.read(&mut buf) {
                                Ok(0) | Err(_) => break,
                                Ok(n) => n,
                            };
                            if s.write_all(&buf[..n]).is_err() {
                                break;
                            }
                        }
                        active.fetch_sub(1, Ordering::SeqCst);
                        0i64
                    })
                    .map_err(|e| e.to_string())
                    .unwrap();
            }
            0i64
        })
    };

    // The client is this same binary re-executed: blocking std sockets in
    // their own process, their own fd table.  It reports RTT on stdout
    // *while still holding every connection*, then waits for stdin EOF —
    // so the wake histogram is snapshotted under full load, before the
    // mass of end-of-stream wake-ups from the teardown lands in it.
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut child = Command::new(exe)
        .args([
            "--echo-client",
            &port.to_string(),
            &scale.conns.to_string(),
            &scale.client_threads.to_string(),
            &scale.echoes.to_string(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawn client: {e}"))?;

    let mut rtt_line = None;
    {
        use std::io::BufRead;
        let stdout = child.stdout.take().ok_or("client stdout missing")?;
        for line in std::io::BufReader::new(stdout).lines() {
            let line = line.map_err(|e| format!("client stdout: {e}"))?;
            if let Some(rest) = line.strip_prefix("rtt ") {
                rtt_line = Some(rest.to_string());
                break;
            }
        }
    }
    let Some(rtt_line) = rtt_line else {
        let _ = child.kill();
        let _ = child.wait();
        vm.shutdown();
        return Err("client exited without reporting rtt".to_string());
    };

    // Snapshot under load: every connection still held, echoes done.
    let wake = vm.metrics().snapshot().wake;
    let io = vm.io_driver().stats();
    let held = peak.load(Ordering::SeqCst);

    // Release the client (stdin EOF) and let the teardown drain.
    drop(child.stdin.take());
    let status = child.wait().map_err(|e| format!("client: {e}"))?;
    if !status.success() {
        vm.shutdown();
        return Err(format!("client failed ({status})"));
    }

    // Client gone → every connection thread sees EOF and drains.
    let deadline = Instant::now() + Duration::from_secs(60);
    while active.load(Ordering::SeqCst) > 0 || !acceptor.is_determined() {
        if Instant::now() > deadline {
            vm.shutdown();
            return Err("connection threads did not drain after client exit".to_string());
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    let mut rows = Vec::new();
    let mut checks = Vec::new();

    rows.push(BenchRow {
        suite: "server".to_string(),
        name: format!("connections-held-{label}"),
        unit: "connections".to_string(),
        samples: 1,
        min: held as f64,
        mean: held as f64,
        p50: held as f64,
        p99: held as f64,
        paper_us: None,
    });
    checks.push(Check {
        name: format!("server:holds>={conns}-connection-threads-{label}"),
        pass: held >= conns,
        detail: format!(
            "peak {held} concurrent connection threads on {} vps ({label})",
            scale.vps
        ),
    });
    checks.push(Check {
        name: format!("server:backend-resolved-{label}"),
        pass: io.backend == label,
        detail: format!("driver resolved to {} (requested {label})", io.backend),
    });

    rows.push(row_from_hist(&format!("block-wake-{label}"), &wake));

    // Reactor kernel round-trips per delivered wake, under load.  One
    // number per run, but with 1:1 metrics sampling it is an exact count,
    // not an estimate.
    let per_wake = io.syscalls as f64 / (io.wakes.max(1)) as f64;
    rows.push(BenchRow {
        suite: "server".to_string(),
        name: format!("syscalls-per-wake-{label}"),
        unit: "syscalls/wake".to_string(),
        samples: io.wakes,
        min: per_wake,
        mean: per_wake,
        p50: per_wake,
        p99: per_wake,
        paper_us: None,
    });

    // Client-observed RTT, reported on its stdout as
    // `rtt <count> <min> <mean> <p50> <p99>` (ns).
    let parts: Vec<_> = rtt_line.split_whitespace().collect();
    if parts.len() == 5 {
        rows.push(BenchRow {
            suite: "server".to_string(),
            name: format!("echo-rtt-{label}"),
            unit: "ns".to_string(),
            samples: parts[0].parse().unwrap_or(0),
            min: parts[1].parse().unwrap_or(0.0),
            mean: parts[2].parse().unwrap_or(0.0),
            p50: parts[3].parse().unwrap_or(0.0),
            p99: parts[4].parse().unwrap_or(0.0),
            paper_us: None,
        });
    }

    vm.shutdown();
    Ok((rows, checks))
}

/// The hidden client mode: `<binary> --echo-client PORT CONNS THREADS
/// ECHOES`.  Opens `CONNS` blocking loopback sockets across `THREADS` OS
/// threads and holds them all; once every connection is up, each thread
/// hammers **one** hot socket back-to-back for its share of `ECHOES` (so
/// the server's wake histogram measures wake-up under load, not the idle
/// time a round-robin would insert between a connection's turns).  RTT
/// stats go to stdout while everything is still held; the process then
/// waits for stdin EOF before closing — the parent snapshots its
/// histograms in that window.
pub fn echo_client_main(args: &[String]) -> Result<(), String> {
    let parse = |i: usize, what: &str| -> Result<usize, String> {
        args.get(i)
            .and_then(|s| s.parse().ok())
            .ok_or(format!("--echo-client: bad {what}"))
    };
    let port = parse(0, "port")? as u16;
    let conns = parse(1, "conns")?.max(1);
    let threads = parse(2, "threads")?.clamp(1, conns);
    let echoes = parse(3, "echoes")?;

    let all_up = Arc::new(std::sync::Barrier::new(threads));
    let (tx, rx) = std::sync::mpsc::channel();
    for t in 0..threads {
        let my_conns = conns / threads + usize::from(t < conns % threads);
        let my_echoes = echoes / threads + usize::from(t < echoes % threads);
        let all_up = all_up.clone();
        let tx = tx.clone();
        std::thread::spawn(move || {
            let work = move || -> Result<(Vec<u64>, Vec<std::net::TcpStream>), String> {
                let mut socks = Vec::with_capacity(my_conns);
                for _ in 0..my_conns {
                    let s = std::net::TcpStream::connect(("127.0.0.1", port))
                        .map_err(|e| format!("connect: {e}"))?;
                    s.set_nodelay(true).ok();
                    socks.push(s);
                }
                all_up.wait();
                let mut samples = Vec::with_capacity(my_echoes);
                let msg = [0x5au8; 64];
                let mut buf = [0u8; 64];
                let hot = &mut socks[0];
                for _ in 0..my_echoes {
                    let start = Instant::now();
                    hot.write_all(&msg).map_err(|e| format!("write: {e}"))?;
                    hot.read_exact(&mut buf).map_err(|e| format!("read: {e}"))?;
                    samples.push(start.elapsed().as_nanos() as u64);
                }
                Ok((samples, socks))
            };
            let _ = tx.send(work());
        });
    }
    drop(tx);

    let mut samples = Vec::new();
    let mut held = Vec::new(); // keeps every socket open until we exit
    for r in rx {
        let (s, socks) = r?;
        samples.extend(s);
        held.extend(socks);
    }
    samples.sort_unstable();
    let pct = |q: f64| -> u64 {
        if samples.is_empty() {
            0
        } else {
            samples[((q * (samples.len() - 1) as f64) as usize).min(samples.len() - 1)]
        }
    };
    let mean = if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<u64>() as f64 / samples.len() as f64
    };
    // stdout is block-buffered when piped — flush, or the parent waits
    // on a line we never sent.
    println!(
        "rtt {} {} {:.0} {} {}",
        samples.len(),
        samples.first().copied().unwrap_or(0),
        mean,
        pct(0.50),
        pct(0.99)
    );
    std::io::stdout().flush().map_err(|e| format!("{e}"))?;

    // Hold all connections until the parent hangs up stdin.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    drop(held);
    Ok(())
}
