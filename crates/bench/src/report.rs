//! Benchmark report schema (`BENCH_*.json`) and regression comparison.
//!
//! Every `bench_all` run emits one schema-versioned JSON document so later
//! PRs can diff performance against a committed baseline with
//! `bench_all --against BENCH_PRn.json`. Rows are keyed by
//! `(suite, name)`; comparison is on p50 (medians are robust to the odd
//! scheduling hiccup that wrecks means on shared CI machines).

use crate::dist::Dist;
use crate::json::{parse, Json};

/// Schema identifier written into every report; bump on breaking change.
pub const SCHEMA: &str = "sting-bench/1";

/// One measured benchmark row.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Suite the row belongs to (`figure6`, `shape`, `gc`, `overhead`).
    pub suite: String,
    /// Row name, unique within its suite.
    pub name: String,
    /// Unit of the statistics (`ns/iter`, `ns/dispatch`, `ns/run`, ...).
    pub unit: String,
    /// Number of samples behind the statistics.
    pub samples: u64,
    /// Minimum sample.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
    /// Paper-reported value in µs, when the row reproduces a Figure 6 line.
    pub paper_us: Option<f64>,
}

impl BenchRow {
    /// Builds a row from a measured distribution.
    pub fn from_dist(suite: &str, name: &str, unit: &str, d: &Dist) -> BenchRow {
        BenchRow {
            suite: suite.to_string(),
            name: name.to_string(),
            unit: unit.to_string(),
            samples: d.len() as u64,
            min: d.min(),
            mean: d.mean(),
            p50: d.p50(),
            p99: d.p99(),
            paper_us: None,
        }
    }

    /// Attaches the paper's Figure 6 µs value for side-by-side reporting.
    pub fn with_paper_us(mut self, us: f64) -> BenchRow {
        self.paper_us = Some(us);
        self
    }
}

/// Outcome of one structural sanity check (e.g. a Figure 6 ordering).
#[derive(Debug, Clone)]
pub struct Check {
    /// Check name.
    pub name: String,
    /// Whether it held.
    pub pass: bool,
    /// Human-readable evidence.
    pub detail: String,
}

/// A complete `bench_all` run.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    /// Free-form run configuration (mode, iteration scale, host).
    pub config: Vec<(String, String)>,
    /// Measured rows.
    pub rows: Vec<BenchRow>,
    /// Structural checks evaluated on the measurements.
    pub checks: Vec<Check>,
}

impl BenchReport {
    /// Looks up a row by suite and name.
    pub fn row(&self, suite: &str, name: &str) -> Option<&BenchRow> {
        self.rows
            .iter()
            .find(|r| r.suite == suite && r.name == name)
    }

    /// Serializes to the schema-versioned JSON document.
    pub fn to_json(&self) -> String {
        let config = Json::Obj(
            self.config
                .iter()
                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                .collect(),
        );
        let rows = Json::Arr(
            self.rows
                .iter()
                .map(|r| {
                    let mut pairs = vec![
                        ("suite", Json::Str(r.suite.clone())),
                        ("name", Json::Str(r.name.clone())),
                        ("unit", Json::Str(r.unit.clone())),
                        ("samples", Json::Num(r.samples as f64)),
                        ("min", Json::Num(r.min)),
                        ("mean", Json::Num(r.mean)),
                        ("p50", Json::Num(r.p50)),
                        ("p99", Json::Num(r.p99)),
                    ];
                    if let Some(us) = r.paper_us {
                        pairs.push(("paper_us", Json::Num(us)));
                    }
                    Json::obj(pairs)
                })
                .collect(),
        );
        let checks = Json::Arr(
            self.checks
                .iter()
                .map(|c| {
                    Json::obj(vec![
                        ("name", Json::Str(c.name.clone())),
                        ("pass", Json::Bool(c.pass)),
                        ("detail", Json::Str(c.detail.clone())),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![
            ("schema", Json::Str(SCHEMA.to_string())),
            ("config", config),
            ("rows", rows),
            ("checks", checks),
        ])
        .pretty()
    }

    /// Parses and validates a report document, checking the schema tag and
    /// that every row carries the full statistics block.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let doc = parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing `schema`")?;
        if schema != SCHEMA {
            return Err(format!("schema mismatch: `{schema}` (want `{SCHEMA}`)"));
        }
        let mut report = BenchReport::default();
        if let Some(Json::Obj(cfg)) = doc.get("config") {
            for (k, v) in cfg {
                if let Some(s) = v.as_str() {
                    report.config.push((k.clone(), s.to_string()));
                }
            }
        }
        let rows = doc
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or("missing `rows` array")?;
        for (i, row) in rows.iter().enumerate() {
            let field_str = |key: &str| {
                row.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or(format!("row {i}: missing string `{key}`"))
            };
            let field_num = |key: &str| {
                row.get(key)
                    .and_then(Json::as_num)
                    .ok_or(format!("row {i}: missing number `{key}`"))
            };
            report.rows.push(BenchRow {
                suite: field_str("suite")?,
                name: field_str("name")?,
                unit: field_str("unit")?,
                samples: field_num("samples")? as u64,
                min: field_num("min")?,
                mean: field_num("mean")?,
                p50: field_num("p50")?,
                p99: field_num("p99")?,
                paper_us: row.get("paper_us").and_then(Json::as_num),
            });
        }
        if let Some(checks) = doc.get("checks").and_then(Json::as_arr) {
            for (i, c) in checks.iter().enumerate() {
                report.checks.push(Check {
                    name: c
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or(format!("check {i}: missing `name`"))?
                        .to_string(),
                    pass: c
                        .get("pass")
                        .and_then(Json::as_bool)
                        .ok_or(format!("check {i}: missing `pass`"))?,
                    detail: c
                        .get("detail")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                });
            }
        }
        Ok(report)
    }
}

/// One row that slowed down past the threshold relative to a baseline.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Suite of the regressed row.
    pub suite: String,
    /// Name of the regressed row.
    pub name: String,
    /// Baseline p50 (ns).
    pub base_p50: f64,
    /// Current p50 (ns).
    pub new_p50: f64,
    /// `new_p50 / base_p50`.
    pub ratio: f64,
}

/// Compares `current` against `baseline` row-by-row and returns the rows
/// that regressed by more than `threshold` (0.10 = 10%) on **both** the
/// p50 and the min statistic.  Requiring both is what makes the gate
/// usable on a shared 1-CPU box: outside interference inflates the
/// median (and p99) of whichever rows it lands on, but a run's best
/// sample survives unless the load is sustained — while a genuine code
/// regression shifts the whole distribution, floor included.  Rows
/// present in only one report are skipped: suites evolve between PRs,
/// and a renamed row should not read as a regression.  Rows without a
/// positive baseline min (older reports) gate on p50 alone.
pub fn compare(baseline: &BenchReport, current: &BenchReport, threshold: f64) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for new_row in &current.rows {
        let Some(base_row) = baseline.row(&new_row.suite, &new_row.name) else {
            continue;
        };
        if base_row.p50 <= 0.0 {
            continue;
        }
        let ratio = new_row.p50 / base_row.p50;
        let min_ok = base_row.min > 0.0 && new_row.min / base_row.min <= 1.0 + threshold;
        if ratio > 1.0 + threshold && !min_ok {
            regressions.push(Regression {
                suite: new_row.suite.clone(),
                name: new_row.name.clone(),
                base_p50: base_row.p50,
                new_p50: new_row.p50,
                ratio,
            });
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(suite: &str, name: &str, p50: f64) -> BenchRow {
        BenchRow {
            suite: suite.into(),
            name: name.into(),
            unit: "ns/iter".into(),
            samples: 32,
            min: p50 * 0.9,
            mean: p50 * 1.05,
            p50,
            p99: p50 * 1.5,
            paper_us: None,
        }
    }

    #[test]
    fn json_roundtrip_preserves_rows_and_checks() {
        let mut report = BenchReport {
            config: vec![("mode".into(), "full".into())],
            rows: vec![row("figure6", "ctx-switch", 310.0).with_paper_us(8.0)],
            checks: vec![Check {
                name: "ctx<steal".into(),
                pass: true,
                detail: "310 < 340".into(),
            }],
        };
        report.rows.push(row("shape", "steal-throughput", 95.0));
        let text = report.to_json();
        let back = BenchReport::from_json(&text).expect("roundtrip");
        assert_eq!(back.rows.len(), 2);
        assert_eq!(back.rows[0].paper_us, Some(8.0));
        assert_eq!(back.rows[1].p50, 95.0);
        assert_eq!(back.checks.len(), 1);
        assert!(back.checks[0].pass);
        assert_eq!(back.config[0].1, "full");
    }

    #[test]
    fn from_json_rejects_wrong_schema_and_missing_fields() {
        assert!(BenchReport::from_json(r#"{"schema": "other/9", "rows": []}"#).is_err());
        let missing_p99 = r#"{"schema": "sting-bench/1", "rows": [
            {"suite": "s", "name": "n", "unit": "ns", "samples": 1,
             "min": 1, "mean": 1, "p50": 1}]}"#;
        assert!(BenchReport::from_json(missing_p99).is_err());
    }

    #[test]
    fn compare_flags_only_regressions_past_threshold() {
        let base = BenchReport {
            config: vec![],
            rows: vec![
                row("figure6", "ctx-switch", 100.0),
                row("figure6", "stealing", 100.0),
                row("figure6", "removed-row", 100.0),
            ],
            checks: vec![],
        };
        let current = BenchReport {
            config: vec![],
            rows: vec![
                row("figure6", "ctx-switch", 125.0), // +25%: regression
                row("figure6", "stealing", 108.0),   // +8%: within threshold
                row("figure6", "new-row", 500.0),    // no baseline: skipped
            ],
            checks: vec![],
        };
        let regs = compare(&base, &current, 0.10);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "ctx-switch");
        assert!((regs[0].ratio - 1.25).abs() < 1e-9);
    }

    #[test]
    fn compare_absolves_p50_spike_when_min_holds() {
        // A p50 spike whose min is unmoved reads as interference, not a
        // regression; a row whose floor also moved still gates.
        let base = BenchReport {
            config: vec![],
            rows: vec![row("shape", "noisy", 100.0), row("shape", "slowed", 100.0)],
            checks: vec![],
        };
        let mut noisy = row("shape", "noisy", 140.0);
        noisy.min = 91.0; // floor held (base min is 90)
        let current = BenchReport {
            config: vec![],
            rows: vec![noisy, row("shape", "slowed", 140.0)],
            checks: vec![],
        };
        let regs = compare(&base, &current, 0.10);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "slowed");
    }
}
