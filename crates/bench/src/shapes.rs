//! Shared workloads behind the shape-experiment binaries and `bench_all`.
//!
//! Each shape experiment used to live entirely inside its binary; the
//! workloads now live here so the unified runner (`bench_all`) and the
//! individual `shape_*` binaries measure exactly the same code, and so the
//! smoke tier can shrink iteration counts without forking the logic.

use std::sync::Arc;
use std::time::Duration;
use sting::areas::{Heap, HeapConfig, Val as AreaVal, Word};
use sting::core::policies::{self, GlobalQueue, QueueOrder};
use sting::core::PolicyManager;
use sting::prelude::*;

use crate::dist::Dist;

/// Iteration scales for one `bench_all` run.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Figure 6 iteration budget per row (rows still apply their own caps).
    pub figure6_iters: u64,
    /// Whole-workload repetitions per shape row.
    pub reps: u64,
    /// E1 primes sieve upper bound.
    pub primes_limit: i64,
    /// E2 farm job count.
    pub farm_jobs: usize,
    /// E2 tree depth.
    pub tree_depth: u32,
    /// Steal-throughput threads hammered onto VP 0.
    pub steal_threads: i64,
    /// Yields per steal-throughput thread.
    pub steal_yields: i64,
    /// E4 preemption workers.
    pub preempt_workers: usize,
    /// E4 rounds per worker.
    pub preempt_rounds: usize,
    /// E3 tuple-space key count.
    pub tuple_keys: i64,
    /// E3 rounds per worker.
    pub tuple_rounds: i64,
    /// Minor collections timed for the GC pause row.
    pub gc_collections: u64,
    /// Cons cells allocated for the GC churn row.
    pub gc_conses: u64,
    /// E7 sharded-farm job count (split across the fleet's shards).
    pub shard_jobs: usize,
    /// E7 sharded-tree depth.
    pub shard_tree_depth: u32,
}

impl Scale {
    /// The full-run scale (matches the standalone binaries' defaults).
    pub fn full() -> Scale {
        Scale {
            figure6_iters: 20_000,
            reps: 5,
            primes_limit: 2_000,
            farm_jobs: 2_000,
            tree_depth: 10,
            steal_threads: 256,
            steal_yields: 64,
            preempt_workers: 4,
            preempt_rounds: 150,
            tuple_keys: 256,
            tuple_rounds: 20,
            gc_collections: 2_000,
            gc_conses: 2_000_000,
            shard_jobs: 2_000,
            shard_tree_depth: 10,
        }
    }

    /// The CI smoke scale: every row still runs, in well under a minute.
    pub fn smoke() -> Scale {
        Scale {
            figure6_iters: 2_000,
            reps: 2,
            primes_limit: 400,
            farm_jobs: 200,
            tree_depth: 6,
            steal_threads: 64,
            steal_yields: 16,
            preempt_workers: 2,
            preempt_rounds: 10,
            tuple_keys: 64,
            tuple_rounds: 3,
            gc_collections: 200,
            gc_conses: 100_000,
            shard_jobs: 400,
            shard_tree_depth: 6,
        }
    }
}

// --- E1: stealing vs scheduling policy (Figure 3 primes) ---

/// Runs the Figure 3 primes-sieve futures workload.
pub fn primes_futures(vm: &Arc<Vm>, limit: i64, lazy: bool, stealable: bool) {
    vm.run(move |cx| {
        let mut primes = Future::spawn(cx, |_| Value::list([Value::Int(2)]));
        let mut i = 3i64;
        while i <= limit {
            let prev = primes.clone();
            let body = move |cx: &Cx| {
                let mut j = 3i64;
                while j * j <= i {
                    if i % j == 0 {
                        return prev.force(cx);
                    }
                    j += 2;
                }
                Value::cons(Value::Int(i), prev.force(cx))
            };
            primes = if lazy {
                Future::delay(&cx.vm(), body)
            } else {
                Future::spawn(cx, body)
            };
            if !stealable {
                // Ablation: forbid the §4.1.1 optimization entirely.
                primes.thread().set_stealable(false);
            }
            i += 2;
        }
        primes.force(cx)
    })
    .unwrap();
}

/// One E1 configuration row.
#[derive(Debug, Clone, Copy)]
pub struct StealingConfig {
    /// Display/report name.
    pub name: &'static str,
    /// LIFO (true) or FIFO local queues.
    pub lifo: bool,
    /// Lazy (delayed) or eager futures.
    pub lazy: bool,
    /// Whether futures may be stolen via `touch`.
    pub stealable: bool,
    /// VP count (1 = the paper's single-queue setting).
    pub vps: usize,
}

/// The E1 configuration sweep, in report order.
pub const STEALING_CONFIGS: &[StealingConfig] = &[
    StealingConfig {
        name: "lifo-eager",
        lifo: true,
        lazy: false,
        stealable: true,
        vps: 1,
    },
    StealingConfig {
        name: "fifo-eager",
        lifo: false,
        lazy: false,
        stealable: true,
        vps: 1,
    },
    StealingConfig {
        name: "lifo-lazy",
        lifo: true,
        lazy: true,
        stealable: true,
        vps: 1,
    },
    StealingConfig {
        name: "fifo-lazy",
        lifo: false,
        lazy: true,
        stealable: true,
        vps: 1,
    },
    StealingConfig {
        name: "lazy-stealing-off",
        lifo: true,
        lazy: true,
        stealable: false,
        vps: 1,
    },
    StealingConfig {
        name: "4vp-migrating-lifo",
        lifo: true,
        lazy: true,
        stealable: true,
        vps: 4,
    },
];

/// Builds the VM for one E1 configuration.
pub fn stealing_vm(cfg: &StealingConfig, trace: bool) -> Arc<Vm> {
    let StealingConfig { lifo, vps, .. } = *cfg;
    let migrating = vps > 1;
    VmBuilder::new()
        .vps(vps)
        .processors(vps)
        .policy(move |_| {
            if lifo {
                policies::local_lifo().migrating(migrating).boxed()
            } else {
                policies::local_fifo().migrating(migrating).boxed()
            }
        })
        .trace(trace)
        .build()
}

// --- E2: policy / program-structure matching ---

/// Master/slave farm: 8 long-lived workers pulling from a shared channel.
pub fn farm_workload(vm: &Arc<Vm>, jobs: usize) {
    let ch = Channel::unbounded();
    for i in 0..jobs {
        ch.send(Value::Int(i as i64)).unwrap();
    }
    ch.close();
    let workers: Vec<_> = (0..8)
        .map(|_| {
            let ch = ch.clone();
            vm.fork(move |cx| {
                let mut acc = 0i64;
                while let Some(v) = ch.recv() {
                    let mut x = v.as_int().unwrap();
                    for _ in 0..200 {
                        x = x.wrapping_mul(1103515245).wrapping_add(12345);
                    }
                    acc ^= x;
                    cx.checkpoint();
                }
                acc
            })
        })
        .collect();
    for w in workers {
        w.join_blocking().unwrap();
    }
}

/// Result-parallel binary tree: `2^depth` leaves, one thread per node.
pub fn tree_workload(vm: &Arc<Vm>, depth: u32) {
    let expect = 1i64 << depth;
    let got = vm
        .run(move |cx| tree_node(cx, depth))
        .unwrap()
        .as_int()
        .unwrap();
    assert_eq!(got, expect);
}

/// One node of the result-parallel tree (shared with the sharded variant).
fn tree_node(cx: &Cx, depth: u32) -> i64 {
    if depth == 0 {
        1
    } else {
        let l = cx.fork(move |cx| tree_node(cx, depth - 1));
        let r = cx.fork(move |cx| tree_node(cx, depth - 1));
        cx.touch(&l).unwrap().as_int().unwrap() + cx.touch(&r).unwrap().as_int().unwrap()
    }
}

/// 4-VP VM scheduled from one global FIFO queue.
pub fn global_queue_vm(trace: bool) -> Arc<Vm> {
    let q = GlobalQueue::shared(QueueOrder::Fifo);
    VmBuilder::new()
        .vps(4)
        .policy(move |_| q.policy())
        .trace(trace)
        .build()
}

/// 4-VP VM with per-VP LIFO queues, optionally migrating for balance.
pub fn local_queue_vm(migrate: bool, trace: bool) -> Arc<Vm> {
    VmBuilder::new()
        .vps(4)
        .policy(move |_| make_local(migrate))
        .trace(trace)
        .build()
}

fn make_local(migrate: bool) -> Box<dyn PolicyManager> {
    policies::local_lifo().migrating(migrate).boxed()
}

// --- E2 addendum: locked vs lock-free dispatch ---

/// Builds the steal-throughput VM: one OS worker per VP, migrating FIFO,
/// pinned to the locked or lock-free scheduler tier.
pub fn steal_vm(vps: usize, locked: bool, trace: bool) -> Arc<Vm> {
    VmBuilder::new()
        .vps(vps)
        // One OS worker per VP: without it a single worker drives every VP
        // and the queues are never contended.
        .processors(vps)
        .policy(move |_| {
            policies::local_fifo()
                .migrating(true)
                .locked(locked)
                .boxed()
        })
        .trace(trace)
        .build()
}

/// Forks `threads` yielding threads onto VP 0 and joins them all; returns
/// the checksum so the work cannot be optimized away.
pub fn steal_hammer(vm: &Arc<Vm>, threads: i64, yields: i64) -> i64 {
    let ts: Vec<_> = (0..threads)
        .map(|i| {
            vm.fork_on(0, move |cx| {
                for _ in 0..yields {
                    cx.yield_now();
                }
                i
            })
            .expect("VP 0 exists")
        })
        .collect();
    ts.iter()
        .map(|t| t.join_blocking().unwrap().as_int().unwrap())
        .sum()
}

/// Dispatches performed by one [`steal_hammer`] run (one per yield plus
/// the initial dispatch, per thread) — the divisor for ns/dispatch rows.
pub fn steal_dispatches(threads: i64, yields: i64) -> f64 {
    (threads * (yields + 1)) as f64
}

/// Builds the priority-policy steal-throughput VM: one OS worker per VP,
/// migrating priority-high, pinned to the locked (heap under the policy
/// lock) or lock-free (banded multi-level deque) scheduler tier.
pub fn steal_vm_priority(vps: usize, locked: bool, trace: bool) -> Arc<Vm> {
    VmBuilder::new()
        .vps(vps)
        .processors(vps)
        .policy(move |_| {
            policies::priority_high()
                .migrating(true)
                .locked(locked)
                .boxed()
        })
        .trace(trace)
        .build()
}

/// [`steal_hammer`] with priorities: the forked threads cycle through the
/// priority bands, so dispatch and stealing exercise the multi-level
/// scan (or the heap's full ordering on the locked tier), not just one
/// band.  Returns the checksum so the work cannot be optimized away.
pub fn priority_steal_hammer(vm: &Arc<Vm>, threads: i64, yields: i64) -> i64 {
    let ts: Vec<_> = (0..threads)
        .map(|i| {
            ThreadBuilder::new(vm)
                .priority(i as i32 % sting::core::deque::BANDS as i32)
                .on_vp(0)
                .spawn(move |cx| {
                    for _ in 0..yields {
                        cx.yield_now();
                    }
                    i
                })
                .expect("VP 0 exists")
        })
        .collect();
    ts.iter()
        .map(|t| t.join_blocking().unwrap().as_int().unwrap())
        .sum()
}

// --- E4: preemption inside critical sections ---

/// Builds the single-VP, fast-tick VM the preemption experiment uses.
pub fn preemption_vm(trace: bool) -> Arc<Vm> {
    VmBuilder::new()
        .vps(1)
        .processors(1)
        .tick(Duration::from_micros(200))
        .trace(trace)
        .build()
}

/// Runs the lock-convoy workload; `shield` wraps the critical section in
/// `without-preemption`.
pub fn preemption_run(vm: &Arc<Vm>, workers: usize, rounds: usize, shield: bool) {
    let m = Mutex::new(64, 2);
    let ts: Vec<_> = (0..workers)
        .map(|_| {
            let m = m.clone();
            vm.fork(move |cx| {
                let mut acc = 0u64;
                for _ in 0..rounds {
                    let mut section = || {
                        m.with(|| {
                            // A critical section long enough that the 200µs
                            // tick regularly expires inside it.
                            for i in 0..40_000u64 {
                                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                                if i % 512 == 0 {
                                    cx.checkpoint();
                                }
                            }
                        });
                    };
                    if shield {
                        cx.without_preemption(&mut section);
                    } else {
                        section();
                    }
                    cx.checkpoint();
                }
                acc as i64
            })
        })
        .collect();
    for t in ts {
        t.join_blocking().unwrap();
    }
}

// --- E3: tuple-space locking granularity ---

/// Preloads `keys` tuples and drives 4 workers over disjoint key ranges.
pub fn tuple_locks_workload(vm: &Arc<Vm>, ts: &TupleSpace, keys: i64, rounds: i64) {
    for k in 0..keys {
        ts.put(vec![Value::Int(k), Value::Int(0)]);
    }
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let ts = ts.clone();
            vm.fork(move |cx| {
                // Each worker owns a quarter of the key space.
                let lo = keys / 4 * w;
                let hi = keys / 4 * (w + 1);
                for r in 0..rounds {
                    for k in lo..hi {
                        let b = ts.get(&Template::new(vec![lit(k), formal()]));
                        let v = b[0].as_int().unwrap();
                        ts.put(vec![Value::Int(k), Value::Int(v + r)]);
                    }
                    cx.checkpoint();
                }
                0i64
            })
        })
        .collect();
    for w in workers {
        w.join_blocking().unwrap();
    }
}

// --- E7: sharded fleets over the partitioned tuple-space fabric ---

/// Builds a fleet of `shards` shards holding the *total* VP count fixed
/// (`shards × vps_per_shard == total_vps`), so multi-shard rows measure
/// partitioning — smaller wake herds, per-partition locks, shorter waiter
/// chains — rather than extra hardware.
pub fn shard_fleet(shards: usize, total_vps: usize, trace: bool) -> Fleet {
    assert_eq!(total_vps % shards, 0, "shards must divide total_vps");
    let mut b = Fleet::builder()
        .shards(shards)
        .vps_per_shard(total_vps / shards)
        .trace(trace);
    if trace {
        // The farm's wake sweeps are event-dense; keep the rings deep
        // enough that the merged audit sees whole episodes.
        b = b.trace_capacity(1 << 16);
    }
    b.build()
}

/// Two keys per shard — a job key and an ack key — whose arity-2 tuples
/// both route to that shard's own partition: the per-shard mailboxes of
/// [`shard_farm_workload`].  Routing is a stable hash, so scanning small
/// integers finds the pairs almost immediately.
pub fn shard_keys(ts: &ShardedSpace) -> Vec<(i64, i64)> {
    let mut keys: Vec<Vec<i64>> = vec![Vec::new(); ts.partitions()];
    let mut missing = 2 * keys.len();
    for k in 0..i64::MAX {
        let owner = ts.partition_of_tuple(&[Value::Int(k), Value::Int(0)]);
        if keys[owner].len() < 2 {
            keys[owner].push(k);
            missing -= 1;
            if missing == 0 {
                break;
            }
        }
    }
    keys.into_iter().map(|ks| (ks[0], ks[1])).collect()
}

/// The farm over the sharded space: one logical job pool, `workers`
/// long-lived workers, every job acknowledged through the space.
/// Sharding partitions the pool — per shard, one master deposits a job
/// under the shard's job key and blocks for its ack (a window of one, so
/// consumers genuinely park between jobs) while `workers / shards`
/// workers block-`get` jobs, crunch them, and deposit acks, all forked
/// on the owning shard.  Total jobs and total workers stay fixed as the
/// shard count varies, so rows are comparable; what shrinks with more
/// shards is the *interference* — each deposit's wake sweep and
/// blocked-chain scan cover only that shard's workers instead of the
/// whole farm's.
pub fn shard_farm_workload(fleet: &Fleet, ts: &ShardedSpace, jobs: usize, workers: usize) {
    let shards = fleet.len();
    assert!(
        workers.is_multiple_of(shards)
            && jobs.is_multiple_of(workers)
            && jobs.is_multiple_of(shards),
        "shards must divide workers and jobs"
    );
    let keys = shard_keys(ts);
    let per_shard = jobs / shards;
    let per_worker = jobs / workers;
    let mut threads = Vec::new();
    for (s, &(job_key, ack_key)) in keys.iter().enumerate() {
        let master = ts.clone();
        threads.push(fleet.shard(s).fork(move |cx| {
            let acks = Template::new(vec![lit(Value::Int(ack_key)), formal()]);
            let mut acc = 0i64;
            for i in 0..per_shard {
                master.put(vec![Value::Int(job_key), Value::Int(i as i64)]);
                acc ^= master.get(&acks)[0].as_int().unwrap();
                cx.checkpoint();
            }
            acc
        }));
        for _ in 0..workers / shards {
            let worker = ts.clone();
            threads.push(fleet.shard(s).fork(move |cx| {
                let t = Template::new(vec![lit(Value::Int(job_key)), formal()]);
                for _ in 0..per_worker {
                    let mut x = worker.get(&t)[0].as_int().unwrap();
                    for _ in 0..32 {
                        x = x.wrapping_mul(1103515245).wrapping_add(12345);
                    }
                    worker.put(vec![Value::Int(ack_key), Value::Int(x)]);
                    cx.checkpoint();
                }
                0i64
            }));
        }
    }
    for t in threads {
        t.join_blocking().unwrap();
    }
    assert!(ts.is_empty(), "farm jobs or acks lost or duplicated");
}

/// The result-parallel tree with its top `log2(shards)` levels split
/// across the fleet: each shard computes an independent subtree, so fork
/// and touch traffic stays shard-local below the roots.
pub fn shard_tree_workload(fleet: &Fleet, depth: u32) {
    let shards = fleet.len();
    assert!(
        shards.is_power_of_two() && depth >= shards.trailing_zeros(),
        "shards must be a power of two no deeper than the tree"
    );
    let sub = depth - shards.trailing_zeros();
    let roots: Vec<_> = (0..shards)
        .map(|s| fleet.shard(s).fork(move |cx| tree_node(cx, sub)))
        .collect();
    let total: i64 = roots
        .into_iter()
        .map(|t| t.join_blocking().unwrap().as_int().unwrap())
        .sum();
    assert_eq!(total, 1i64 << depth);
}

// --- Storage model: scavenge pauses and allocation churn ---

/// Times `collections` minor scavenges of a 64k-word nursery holding a
/// rooted ~1k-pair survivor set; returns per-collection ns.
pub fn gc_minor_pauses(collections: u64) -> Dist {
    let mut heap = Heap::new(HeapConfig {
        young_words: 64 * 1024,
        old_trigger_words: usize::MAX / 2,
    });
    let mut roots: Vec<Word> = Vec::new();
    for i in 0..1000 {
        let gc = heap.cons(AreaVal::Int(i), AreaVal::Nil, &mut roots);
        roots.push(gc.word());
    }
    let mut samples = Vec::with_capacity(collections as usize);
    for _ in 0..collections.max(1) {
        let start = std::time::Instant::now();
        heap.collect_minor(&mut roots);
        samples.push(start.elapsed().as_nanos() as f64);
    }
    Dist::from_samples(samples)
}

/// Allocates `conses` pairs through a small (16k-word) nursery so the
/// allocator regularly scavenges; returns amortized ns per cons, sampled
/// in batches.
pub fn gc_alloc_churn(conses: u64) -> Dist {
    let mut heap = Heap::new(HeapConfig {
        young_words: 16 * 1024,
        old_trigger_words: usize::MAX / 2,
    });
    let mut roots: Vec<Word> = Vec::new();
    let mut i = 0i64;
    crate::dist::time_per_iter(conses, || {
        let _ = heap.cons(AreaVal::Int(i), AreaVal::Nil, &mut roots);
        i += 1;
    })
}
