//! Minimal JSON tree, emitter, and parser.
//!
//! The workspace deliberately carries no third-party dependencies, so the
//! benchmark reports (`BENCH_*.json`) are written and re-read with this
//! small hand-rolled implementation. It supports exactly the JSON subset
//! the reports use: objects, arrays, strings, finite numbers, booleans and
//! null, with `\uXXXX`-free string escapes on output (input accepts the
//! standard escapes including `\u`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys sorted for deterministic output.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Returns the value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Returns the array elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the number if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the bool if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document; the whole input must be one value plus optional
/// trailing whitespace.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass through).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}"));
        }
        *pos += 1;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let doc = Json::obj(vec![
            ("schema", Json::Str("sting-bench/1".into())),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            ("n", Json::Num(42.0)),
            ("frac", Json::Num(0.3125)),
            (
                "rows",
                Json::Arr(vec![Json::Num(1.0), Json::Str("a\"b\\c\nd".into())]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(Default::default())),
        ]);
        let text = doc.pretty();
        let back = parse(&text).expect("parse own output");
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"s": "tab\there é", "xs": [1, -2.5, 1e3]}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "tab\there é");
        let xs = v.get("xs").unwrap().as_arr().unwrap();
        assert_eq!(xs[2].as_num().unwrap(), 1000.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn integers_emit_without_fraction() {
        let text = Json::Num(1500.0).pretty();
        assert_eq!(text.trim(), "1500");
    }
}
