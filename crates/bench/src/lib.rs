//! Shared measurement helpers for the Figure 6 harness and the shape
//! experiments.
//!
//! The paper's baseline timings (Figure 6) were taken on an 8-processor
//! Silicon Graphics MIPS R3000 (~25 MHz) with a single LIFO queue; ours
//! run wherever you run them.  Absolute values are therefore incomparable
//! — what must reproduce is the *shape*: the ordering of operation costs
//! and their rough ratios (see EXPERIMENTS.md).

use std::sync::Arc;
use sting::prelude::*;

pub mod dist;
pub mod json;
pub mod report;
pub mod server;
pub mod shapes;

pub use dist::{time_per_iter, time_runs, Dist};

/// The paper's Figure 6, verbatim (microseconds on the 1992 testbed).
pub const PAPER_FIGURE6: &[(&str, f64)] = &[
    ("Thread Creation", 8.9),
    ("Thread Fork and Value", 44.9),
    ("Scheduling a Thread", 18.9),
    ("Synchronous Context Switch", 3.77),
    ("Stealing", 7.7),
    ("Thread Block and Resume", 27.9),
    ("Tuple-Space", 170.0),
    ("Speculative Fork (2 threads)", 68.9),
    ("Barrier Synchronization (2 threads)", 144.8),
];

/// Builds the measurement VM: one VP, one processor, a single LIFO queue —
/// the configuration Figure 6's caption describes ("derived using a single
/// LIFO queue").
pub fn figure6_vm() -> Arc<Vm> {
    VmBuilder::new()
        .vps(1)
        .processors(1)
        .policy(|_| policies::local_lifo().boxed())
        .name("figure6")
        .build()
}

/// Directory where shape experiments drop their flight-recorder
/// artifacts: `$STING_TRACE_DIR` when set, else `target/traces`.
pub fn trace_dir() -> std::path::PathBuf {
    std::env::var_os("STING_TRACE_DIR")
        .map(Into::into)
        .unwrap_or_else(|| std::path::PathBuf::from("target/traces"))
}

/// Writes `vm`'s flight-recorder contents as chrome://tracing JSON under
/// [`trace_dir`], named `<experiment>-<config>.json`.  Call after the
/// workload and before `vm.shutdown()`; load the file via chrome://tracing
/// or <https://ui.perfetto.dev>.
///
/// # Errors
///
/// Propagates filesystem errors from creating the directory or writing.
pub fn export_trace(
    vm: &Arc<Vm>,
    experiment: &str,
    config: &str,
) -> std::io::Result<std::path::PathBuf> {
    let dir = trace_dir();
    std::fs::create_dir_all(&dir)?;
    let mut slug = String::new();
    for c in config.trim().chars() {
        if c.is_ascii_alphanumeric() {
            slug.push(c.to_ascii_lowercase());
        } else if !slug.ends_with('-') {
            slug.push('-');
        }
    }
    let path = dir.join(format!("{experiment}-{}.json", slug.trim_matches('-')));
    std::fs::write(&path, vm.trace_export())?;
    Ok(path)
}

/// Runs `f` on a STING thread of `vm` and returns its result.
pub fn on_thread<R, F>(vm: &Arc<Vm>, f: F) -> R
where
    F: FnOnce(&Cx) -> R + Send + 'static,
    R: Send + 'static,
{
    let slot: Arc<std::sync::Mutex<Option<R>>> = Arc::new(std::sync::Mutex::new(None));
    let s2 = slot.clone();
    let t = vm.fork(move |cx| {
        *s2.lock().expect("bench slot") = Some(f(cx));
        0i64
    });
    t.join_blocking().expect("bench thread determined");
    let mut g = slot.lock().expect("bench slot");
    g.take().expect("bench thread stored its result")
}

/// One measured row of the Figure 6 reproduction.
#[derive(Debug, Clone)]
pub struct Row {
    /// Operation name (matches [`PAPER_FIGURE6`]).
    pub name: &'static str,
    /// Paper's timing in microseconds.
    pub paper_us: f64,
    /// Distribution of per-iteration costs, in nanoseconds.
    pub dist: Dist,
}

impl Row {
    /// Headline measurement in microseconds (the median — robust to the
    /// scheduling hiccups that skew means on shared machines).
    pub fn measured_us(&self) -> f64 {
        self.dist.p50() / 1e3
    }
}

/// Measures all nine Figure 6 operations; `iters` scales runtime.
pub fn measure_figure6(iters: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    let mut push = |name: &'static str, d: Dist| {
        let paper_us = PAPER_FIGURE6
            .iter()
            .find(|(n, _)| *n == name)
            .expect("known row")
            .1;
        rows.push(Row {
            name,
            paper_us,
            dist: d,
        });
        eprintln!("  measured: {name}");
    };

    // 1. Thread Creation: a thread object with no dynamic state.
    {
        let vm = figure6_vm();
        let d = on_thread(&vm, move |cx| {
            let mut keep = Vec::with_capacity(iters as usize);
            let d = time_per_iter(iters, || {
                keep.push(cx.delayed(|_| 0i64));
            });
            drop(keep);
            d
        });
        push("Thread Creation", d);
        vm.shutdown();
    }

    // 2. Thread Fork and Value: fork the null procedure and wait.
    {
        let vm = figure6_vm();
        let d = on_thread(&vm, move |cx| {
            time_per_iter(iters.min(20_000), || {
                let t = cx.fork(|_| 0i64);
                let _ = cx.wait(&t);
            })
        });
        push("Thread Fork and Value", d);
        vm.shutdown();
    }

    // 3. Scheduling a Thread: insert a delayed thread into the ready queue.
    {
        let vm = figure6_vm();
        let d = on_thread(&vm, move |cx| {
            let n = iters.min(20_000);
            let ts: Vec<_> = (0..n)
                .map(|_| {
                    // Unstealable so nothing short-circuits the queue path.
                    ThreadBuilder::new(&cx.vm())
                        .stealable(false)
                        .delayed(|_| 0i64)
                })
                .collect();
            let vp = cx.current_vp().index();
            let mut i = 0;
            let d = time_per_iter(n, || {
                sting::core::tc::thread_run(&ts[i], vp).expect("schedule");
                i += 1;
            });
            for t in &ts {
                let _ = cx.wait(t);
            }
            d
        });
        push("Scheduling a Thread", d);
        vm.shutdown();
    }

    // 4. Synchronous Context Switch: yield with immediate resumption.
    {
        let vm = figure6_vm();
        let d = on_thread(&vm, move |cx| {
            time_per_iter(iters, || {
                cx.yield_now();
            })
        });
        push("Synchronous Context Switch", d);
        vm.shutdown();
    }

    // 5. Stealing: touch a claimable null thread (runs on our TCB).
    {
        let vm = figure6_vm();
        let d = on_thread(&vm, move |cx| {
            let n = iters.min(50_000);
            let ts: Vec<_> = (0..n).map(|_| cx.delayed(|_| 0i64)).collect();
            let mut i = 0;
            time_per_iter(n, || {
                let _ = cx.touch(&ts[i]);
                i += 1;
            })
        });
        push("Stealing", d);
        vm.shutdown();
    }

    // 6. Thread Block and Resume: strict ping-pong — each side blocks
    // after waking the other, so one iteration is exactly two block+resume
    // pairs; we report the per-pair cost.
    {
        let vm = figure6_vm();
        let d = on_thread(&vm, move |cx| {
            let n = iters.min(20_000);
            let me = cx.current_thread();
            let partner = cx.fork(move |cx2| {
                // Handshake: tell the driver we are running, then enter the
                // ping-pong.  (Blocking — never yield-spinning — matters
                // under LIFO, where a yielder starves fresh threads.)
                sting::core::tc::unblock(&me);
                for _ in 0..n {
                    cx2.block(None);
                    sting::core::tc::unblock(&me);
                }
                0i64
            });
            cx.block(None); // until the partner is up
            let d = time_per_iter(n, || {
                sting::core::tc::unblock(&partner);
                cx.block(None);
            });
            let _ = cx.wait(&partner);
            d.scale(0.5)
        });
        push("Thread Block and Resume", d);
        vm.shutdown();
    }

    // 7. Tuple-Space: create, insert, remove a singleton tuple.
    {
        let vm = figure6_vm();
        let d = on_thread(&vm, move |_cx| {
            let n = iters.min(50_000);
            time_per_iter(n, || {
                let ts = TupleSpace::new();
                ts.put(vec![Value::Int(1)]);
                let _ = ts.get(&Template::any(1));
            })
        });
        push("Tuple-Space", d);
        vm.shutdown();
    }

    // 8. Speculative Fork (2 threads): wait-for-one over two null threads.
    {
        let vm = figure6_vm();
        let d = on_thread(&vm, move |cx| {
            let n = iters.min(10_000);
            time_per_iter(n, || {
                let a = cx.fork(|_| 0i64);
                let b = cx.fork(|_| 0i64);
                let _ = wait_for_one(&[a, b]);
            })
        });
        push("Speculative Fork (2 threads)", d);
        vm.shutdown();
    }

    // 9. Barrier Synchronization (2 threads): wait-for-all over two nulls.
    {
        let vm = figure6_vm();
        let d = on_thread(&vm, move |cx| {
            let n = iters.min(10_000);
            time_per_iter(n, || {
                let a = cx.fork(|_| 0i64);
                let b = cx.fork(|_| 0i64);
                let _ = wait_for_all(&[a, b]);
            })
        });
        push("Barrier Synchronization (2 threads)", d);
        vm.shutdown();
    }

    rows
}

/// Renders the Figure 6 comparison table — median with min/p99 spread,
/// plus shape ratios normalized to the cheapest common operation (context
/// switch).
pub fn render_figure6(rows: &[Row]) -> String {
    use std::fmt::Write;
    let paper_base = rows
        .iter()
        .find(|r| r.name == "Synchronous Context Switch")
        .map(|r| r.paper_us)
        .unwrap_or(1.0);
    let ours_base = rows
        .iter()
        .find(|r| r.name == "Synchronous Context Switch")
        .map(|r| r.measured_us())
        .unwrap_or(1.0);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<38} {:>11} {:>10} {:>9} {:>9} {:>10} {:>9}",
        "Case", "paper (µs)", "p50 (µs)", "min", "p99", "paper ×sw", "ours ×sw"
    );
    let _ = writeln!(s, "{}", "-".repeat(101));
    for r in rows {
        let _ = writeln!(
            s,
            "{:<38} {:>11.2} {:>10.3} {:>9.3} {:>9.3} {:>10.1} {:>9.1}",
            r.name,
            r.paper_us,
            r.measured_us(),
            r.dist.min() / 1e3,
            r.dist.p99() / 1e3,
            r.paper_us / paper_base,
            r.measured_us() / ours_base
        );
    }
    s
}

/// Evaluates the Figure 6 structural checks on a set of measured rows.
///
/// Checks whose name begins with `info:` are report-only: they record how
/// the paper's full cost chain fares on modern hardware but do not gate
/// (thread creation is far cheaper relative to blocking than it was on a
/// 25 MHz R3000, so the paper's `creation+scheduling < block/resume` link
/// does not reproduce — see EXPERIMENTS.md). Everything else must pass on
/// a healthy build.
pub fn figure6_checks(rows: &[Row]) -> Vec<report::Check> {
    let p50 = |name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .map(|r| r.dist.p50())
            .unwrap_or(f64::NAN)
    };
    let ctx = p50("Synchronous Context Switch");
    let steal = p50("Stealing");
    let create = p50("Thread Creation");
    let sched = p50("Scheduling a Thread");
    let block = p50("Thread Block and Resume");
    let fork = p50("Thread Fork and Value");
    let tuple = p50("Tuple-Space");
    let mut checks = Vec::new();
    let mut check = |name: &str, pass: bool, lhs: f64, rhs: f64| {
        checks.push(report::Check {
            name: name.to_string(),
            pass,
            detail: format!("{:.0} ns vs {:.0} ns", lhs, rhs),
        });
    };
    // Gates: orderings with enough headroom to hold on any sane build.
    // Context switch and stealing are within tens of nanoseconds of each
    // other here (both are a touch on a determined/claimable thread), so
    // that link gets 1.5x slack rather than a strict inequality.
    check("ctx-switch<=1.5x-stealing", ctx <= 1.5 * steal, ctx, steal);
    check("ctx-switch<block-resume", ctx < block, ctx, block);
    check(
        "stealing<creation+scheduling",
        steal < create + sched,
        steal,
        create + sched,
    );
    check("block-resume<fork-value", block < fork, block, fork);
    check("ctx-switch<tuple-space", ctx < tuple, ctx, tuple);
    // Report-only: the paper's remaining chain link.
    check(
        "info:creation+scheduling<block-resume",
        create + sched < block,
        create + sched,
        block,
    );
    checks
}

/// Whether every gating (non-`info:`) check passed.
pub fn figure6_gates_pass(checks: &[report::Check]) -> bool {
    checks
        .iter()
        .filter(|c| !c.name.starts_with("info:"))
        .all(|c| c.pass)
}
