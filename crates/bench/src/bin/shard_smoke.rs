//! CI `shard` tier: a fast (<60s) end-to-end exercise of the sharded
//! fleet — a 2-shard job farm over the partitioned tuple-space fabric,
//! then the same farm under tracing with the merged per-shard rings
//! required to audit clean.
//!
//! This is deliberately *not* a benchmark: no gates on timings, only on
//! behavior (conservation of jobs/acks, and no lost wake-up, leaked
//! waiter, or post-cancel wake anywhere in the fleet-wide trace).  The
//! scaling gates live in `bench_all` full mode against `BENCH_PR9.json`.

use sting::core::audit::FindingKind;
use sting::prelude::*;
use sting_bench::shapes;

fn main() {
    const SHARDS: usize = 2;
    const JOBS: usize = 400;
    const WORKERS: usize = 16;

    // Untraced farm: the workload itself asserts conservation (every job
    // consumed exactly once, every ack collected, space drained).
    let fleet = shapes::shard_fleet(SHARDS, 4, false);
    let ts = ShardedSpace::new(&fleet);
    let start = std::time::Instant::now();
    shapes::shard_farm_workload(&fleet, &ts, JOBS, WORKERS);
    println!(
        "shard_smoke: {SHARDS}-shard farm, {JOBS} jobs / {WORKERS} workers: {:?}",
        start.elapsed()
    );
    fleet.shutdown();

    // Traced farm: merge the per-shard rings by Lamport clock and audit.
    let fleet = shapes::shard_fleet(SHARDS, 4, true);
    let ts = ShardedSpace::new(&fleet);
    shapes::shard_farm_workload(&fleet, &ts, JOBS, WORKERS);
    let report = fleet.trace_audit();
    let bad: Vec<_> = report
        .findings
        .iter()
        .filter(|f| {
            matches!(
                f.kind,
                FindingKind::WaiterLeak | FindingKind::LostWakeup | FindingKind::WakeAfterCancel
            )
        })
        .collect();
    fleet.shutdown();
    if !bad.is_empty() {
        eprintln!(
            "shard_smoke: merged {SHARDS}-shard audit found {} wake/waiter violations:",
            bad.len()
        );
        for f in &bad {
            eprintln!("  {f:?}");
        }
        std::process::exit(1);
    }
    println!(
        "shard_smoke: merged {SHARDS}-shard audit clean ({} findings total, none wake/waiter)",
        report.findings.len()
    );
}
