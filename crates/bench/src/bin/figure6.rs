//! Regenerates the paper's Figure 6: baseline timings of the substrate
//! operations, on a single-VP machine with one LIFO queue.
//!
//! Run with: `cargo run --release -p sting-bench --bin figure6 [iters]`
//!
//! Absolute values reflect your hardware (the paper's are a 1992 MIPS
//! R3000); compare the ×sw columns (each row normalized to a synchronous
//! context switch) for the shape.

fn main() {
    let iters: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    eprintln!("measuring Figure 6 with up to {iters} iterations per row...");
    let rows = sting_bench::measure_figure6(iters);
    println!("\nFigure 6 — baseline timings (paper: 8-CPU MIPS R3000, 1992)\n");
    print!("{}", sting_bench::render_figure6(&rows));
    println!("\nShape checks (info: rows are report-only — see EXPERIMENTS.md):");
    for c in sting_bench::figure6_checks(&rows) {
        println!(
            "  [{}] {} ({})",
            if c.pass { "pass" } else { "FAIL" },
            c.name,
            c.detail
        );
    }
}
